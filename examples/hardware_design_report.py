#!/usr/bin/env python
"""Generate the IP core's design report — the paper's tables in one run.

Walks the hardware-design flow the paper describes:

1. regenerate the code-structure tables (Tables 1 and 2),
2. verify the node mapping and shuffle network for a chosen rate,
3. anneal the RAM addressing and report the write-buffer depth (Fig. 5),
4. print the Eq. 8 throughput table and the Table 3 area breakdown.
"""

from repro.codes import build_code
from repro.core.report import (
    table1_report,
    table2_report,
    table3_report,
    throughput_report,
)
from repro.hw.annealing import AnnealingConfig, optimize_rate
from repro.hw.conflicts import simulate_cn_phase, simulate_vn_phase
from repro.hw.mapping import IpMapping
from repro.hw.schedule import DecoderSchedule
from repro.hw.shuffle import ShuffleNetwork

RATE = "1/2"
SA_ITERATIONS = 500


def main() -> None:
    print("Table 1 — Tanner graph parameters")
    print(table1_report())
    print()
    print("Table 2 — edge counts and connectivity storage")
    print(table2_report())

    print(f"\nBuilding full-size rate-{RATE} code and verifying the "
          "hardware mapping...")
    code = build_code(RATE)
    mapping = IpMapping(code)
    mapping.verify()
    ShuffleNetwork(lanes=360).verify_realizes_table(mapping)
    print(f"  {mapping.n_words} address words; every permutation is a "
          "cyclic shift — barrel shuffler verified.")

    print("\nRAM conflict analysis (Fig. 5):")
    canonical = DecoderSchedule.canonical(mapping)
    cn = simulate_cn_phase(canonical)
    vn = simulate_vn_phase(canonical)
    print(f"  canonical addressing: CN-phase peak buffer "
          f"{cn.peak_buffer}, VN-phase {vn.peak_buffer}")

    print(f"  annealing the addressing ({SA_ITERATIONS} moves)...")
    result = optimize_rate(
        mapping, AnnealingConfig(iterations=SA_ITERATIONS, seed=1)
    )
    print(f"  annealed: peak buffer {result.final_stats.peak_buffer} "
          f"(pressure {result.initial_stats.total_deferred} -> "
          f"{result.final_stats.total_deferred})")

    print("\nThroughput at 270 MHz, 30 iterations (Eq. 8):")
    print(throughput_report())

    print("\nTable 3 — synthesis area model vs paper:")
    print(table3_report())


if __name__ == "__main__":
    main()
