#!/usr/bin/env python
"""Adaptive coding for a fading satellite link (DVB-S2's ACM use case).

The DVB-S2 standard specifies eleven code rates precisely so a
transmitter can track link conditions — the paper's IP core decodes all
of them with one set of functional units.  This example simulates a slow
fade: the link SNR drifts down and back up over a pass, and a simple
controller picks the highest code rate whose waterfall leaves margin,
switching the (single) decoder between rates on the fly.
"""

import numpy as np

from repro.channel import AwgnChannel, shannon_limit_ebn0_db
from repro.codes import build_small_code
from repro.decode import ZigzagDecoder
from repro.encode import IraEncoder

PARALLELISM = 36
#: Candidate rates, best spectral efficiency first.
LADDER = ["3/4", "2/3", "1/2", "2/5", "1/3", "1/4"]
#: Operating margin above the Shannon limit a rate needs to be selected.
MARGIN_DB = 1.6


def pick_rate(ebn0_db: float) -> str:
    """Highest-efficiency rate whose limit plus margin fits the link."""
    for rate in LADDER:
        num, den = map(int, rate.split("/"))
        limit = shannon_limit_ebn0_db(num / den)
        if ebn0_db >= limit + MARGIN_DB:
            return rate
    return LADDER[-1]


def main() -> None:
    decoders = {}
    encoders = {}
    for rate in LADDER:
        code = build_small_code(rate, parallelism=PARALLELISM)
        decoders[rate] = (code, ZigzagDecoder(code, "tanh", segments=PARALLELISM))
        encoders[rate] = IraEncoder(code)

    # A pass: SNR dips from 4 dB to 0.5 dB and recovers.
    timeline = np.concatenate(
        [np.linspace(4.0, 0.5, 8), np.linspace(0.5, 4.0, 8)]
    )
    rng = np.random.default_rng(1)
    total_info = 0
    delivered = 0

    print(f"{'t':>3} {'Eb/N0':>6} {'rate':>5} {'iters':>6} "
          f"{'frame':>7} {'goodput bits':>13}")
    for t, ebn0 in enumerate(timeline):
        rate = pick_rate(ebn0)
        code, decoder = decoders[rate]
        encoder = encoders[rate]
        info = rng.integers(0, 2, code.k, dtype=np.uint8)
        frame = encoder.encode(info)
        channel = AwgnChannel(
            ebn0_db=float(ebn0), rate=float(code.profile.rate),
            seed=100 + t,
        )
        result = decoder.decode(channel.llrs(frame), max_iterations=40)
        ok = result.converged and np.array_equal(
            result.bits[: code.k], info
        )
        total_info += code.k
        delivered += code.k if ok else 0
        print(f"{t:3d} {ebn0:6.2f} {rate:>5} {result.iterations:6d} "
              f"{'OK' if ok else 'LOST':>7} {delivered:13d}")

    print(f"\nDelivered {delivered}/{total_info} information bits "
          f"({delivered / total_info:.1%}) across the fade.")


if __name__ == "__main__":
    main()
