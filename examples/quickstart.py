#!/usr/bin/env python
"""Quickstart: encode, transmit and decode one DVB-S2 LDPC frame.

Runs the complete chain of the paper through the public API:

    information bits -> IRA encoder -> BPSK/AWGN -> decoder IP core

Uses a 1/10-scale code instance (identical architecture, 6480-bit frame)
so the script finishes in seconds; switch ``PARALLELISM`` to 360 for a
genuine 64800-bit frame.
"""

import numpy as np

from repro.channel import AwgnChannel
from repro.core import DvbS2LdpcDecoderIp, IpCoreConfig

PARALLELISM = 36  # 360 = full-size DVB-S2 frames
RATE = "1/2"
EBN0_DB = 2.5


def main() -> None:
    print(f"Instantiating DVB-S2 LDPC decoder IP (rate {RATE}, "
          f"P={PARALLELISM})...")
    ip = DvbS2LdpcDecoderIp(
        IpCoreConfig(
            rate=RATE,
            parallelism=PARALLELISM,
            channel_scale=0.5,        # fit channel LLRs to 6-bit messages
            early_stop=True,
            annealing_iterations=200,
        )
    )

    rng = np.random.default_rng(42)
    info_bits = rng.integers(0, 2, ip.code.k, dtype=np.uint8)
    frame = ip.encode(info_bits)
    print(f"Encoded {ip.code.k} information bits into a "
          f"{ip.code.n}-bit systematic codeword.")

    channel = AwgnChannel(
        ebn0_db=EBN0_DB, rate=float(ip.code.profile.rate), seed=7
    )
    llrs = channel.llrs(frame)
    print(f"Transmitted over BPSK/AWGN at Eb/N0 = {EBN0_DB} dB "
          f"(sigma = {channel.sigma:.3f}).")

    result = ip.decode(llrs)
    errors = int(np.count_nonzero(result.bits[: ip.code.k] != info_bits))
    print(f"Decoded in {result.iterations} iterations "
          f"(converged: {result.converged}).")
    print(f"Information bit errors: {errors}")
    print(f"Cycle count (paper Eq. 8): {result.extra['cycles']:.0f}")

    print("\nDatasheet:")
    for key, value in ip.datasheet().items():
        print(f"  {key:24s} {value}")


if __name__ == "__main__":
    main()
