#!/usr/bin/env python
"""Fixed-point design study: message width versus BER and silicon area.

Reproduces the trade-off behind the paper's 6-bit choice (Section 2.1 /
Table 3): sweep the message quantization from 4 to 8 bits, measure BER
at a fixed operating point, and price each option with the area model.
"""

from repro.codes import build_small_code
from repro.decode import QuantizedZigzagDecoder, ZigzagDecoder
from repro.hw.area import AreaModel
from repro.quantize import FixedPointFormat
from repro.sim import measure_ber

PARALLELISM = 36
RATE = "1/2"
EBN0_DB = 1.8
FRAMES = 24

FORMATS = [
    FixedPointFormat(total_bits=4, frac_bits=1),
    FixedPointFormat(total_bits=5, frac_bits=1),
    FixedPointFormat(total_bits=6, frac_bits=2),
    FixedPointFormat(total_bits=8, frac_bits=3),
]


def main() -> None:
    code = build_small_code(RATE, parallelism=PARALLELISM)
    print(f"Code: rate {RATE}, {code.n}-bit frames; operating point "
          f"Eb/N0 = {EBN0_DB} dB; {FRAMES} frames per row.\n")

    print(f"{'format':>8} {'range':>9} {'BER':>10} {'FER':>6} "
          f"{'avg iters':>10} {'core mm^2':>10}")

    float_dec = ZigzagDecoder(code, "minsum", normalization=0.75,
                              segments=PARALLELISM)
    r = measure_ber(code, float_dec, EBN0_DB, max_frames=FRAMES,
                    max_iterations=30, seed=3)
    print(f"{'float':>8} {'inf':>9} {r.ber:10.2e} {r.fer:6.2f} "
          f"{r.avg_iterations:10.1f} {'-':>10}")

    for fmt in FORMATS:
        dec = QuantizedZigzagDecoder(
            code, fmt=fmt, normalization=0.75, channel_scale=0.5
        )
        r = measure_ber(code, dec, EBN0_DB, max_frames=FRAMES,
                        max_iterations=30, seed=3)
        area = AreaModel(width_bits=fmt.total_bits).report().total
        label = f"{fmt.total_bits}b.q{fmt.frac_bits}"
        print(f"{label:>8} ±{fmt.max_real:8.2f} {r.ber:10.2e} "
              f"{r.fer:6.2f} {r.avg_iterations:10.1f} {area:10.2f}")

    print("\nThe paper synthesizes the 6-bit option: ~0.1 dB from float")
    print("(ref [9]) at 22.74 mm^2; 5 bits would trade ~0.1 dB more for")
    print("roughly one sixth of the message RAM.")


if __name__ == "__main__":
    main()
