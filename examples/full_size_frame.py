#!/usr/bin/env python
"""The real thing: a genuine 64800-bit DVB-S2 frame through the IP core.

Everything at full scale — 360 functional units, q = 90 checks per FU,
450-word message RAMs, annealed addressing — decoding one noisy frame
cycle-faithfully and printing the numbers the paper reports for this
configuration.
"""

import numpy as np

from repro.channel import AwgnChannel
from repro.core import DvbS2LdpcDecoderIp, IpCoreConfig

RATE = "1/2"
EBN0_DB = 2.0


def main() -> None:
    print("Building the full-size IP core (this builds the 64800-bit "
          "code,\nverifies the mapping, and anneals the addressing)...")
    ip = DvbS2LdpcDecoderIp(
        IpCoreConfig(
            rate=RATE,
            parallelism=360,
            channel_scale=0.5,
            early_stop=True,
            annealing_iterations=300,
        )
    )
    sheet = ip.datasheet()
    print(f"\nConfiguration: rate {RATE}, {sheet['frame_bits']}-bit "
          f"frames, {sheet['message_bits']}-bit messages")
    print(f"  write buffer depth (annealed) : "
          f"{sheet['write_buffer_depth']}")
    print(f"  cycles per block (30 iters)   : "
          f"{sheet['cycles_per_block']}")
    print(f"  info throughput at 270 MHz    : "
          f"{sheet['info_throughput_mbps']:.1f} Mb/s")
    print(f"  total area (Table 3 model)    : "
          f"{sheet['total_area_mm2']:.2f} mm^2")

    rng = np.random.default_rng(2026)
    info = rng.integers(0, 2, ip.code.k, dtype=np.uint8)
    frame = ip.encode(info)
    channel = AwgnChannel(ebn0_db=EBN0_DB, rate=0.5, seed=7)
    print(f"\nTransmitting one frame at Eb/N0 = {EBN0_DB} dB...")
    result = ip.decode(channel.llrs(frame))
    errors = int(np.count_nonzero(result.bits[: ip.code.k] != info))
    print(f"Decoded in {result.iterations} iterations "
          f"({result.extra['cycles']:.0f} clock cycles): "
          f"{errors} information-bit errors")
    seconds = result.extra["cycles"] / 270e6
    print(f"At 270 MHz this frame took {seconds * 1e6:.0f} us of "
          f"silicon time — {ip.code.k / seconds / 1e6:.0f} Mb/s "
          "with early termination.")


if __name__ == "__main__":
    main()
