#!/usr/bin/env python
"""The complete DVB-S2 FEC chain: outer BCH + inner LDPC.

DVB-S2 wraps every LDPC frame in an outer BCH code so the iterative
decoder's occasional few-bit residues never reach the transport stream.
This demo runs the chain near the waterfall with a deliberately tight
LDPC iteration budget and shows the BCH stage mopping up.
"""

import numpy as np

from repro.bch import Dvbs2FecChain
from repro.channel import AwgnChannel
from repro.codes import build_small_code
from repro.decode import ZigzagDecoder
from repro.encode import IraEncoder

PARALLELISM = 36
RATE = "1/2"
EBN0_DB = 1.5
LDPC_ITERATIONS = 12
FRAMES = 15


def main() -> None:
    code = build_small_code(RATE, parallelism=PARALLELISM)
    decoder = ZigzagDecoder(code, "tanh", segments=PARALLELISM)
    chain = Dvbs2FecChain(code, decoder, bch_m=12, bch_t=8)
    print(f"FEC chain: BCH(n={chain.bch.n}, k={chain.bch.k}, "
          f"t={chain.bch.t}) + LDPC rate {RATE}")
    print(f"Overall rate {chain.rate:.4f} "
          f"(LDPC alone: {float(code.profile.rate):.4f})\n")

    rng = np.random.default_rng(7)
    channel = AwgnChannel(
        ebn0_db=EBN0_DB, rate=float(code.profile.rate), seed=7
    )

    print(f"{'frame':>5} {'LDPC iters':>10} {'residual':>9} "
          f"{'BCH fixed':>9} {'payload':>8}")
    lost = cleaned = 0
    for i in range(FRAMES):
        payload = rng.integers(0, 2, chain.k, dtype=np.uint8)
        frame = chain.encode(payload)
        result = chain.decode(
            channel.llrs(frame), max_iterations=LDPC_ITERATIONS
        )
        residual = int(
            np.count_nonzero(
                result.ldpc_result.bits[: code.k] != frame[: code.k]
            )
        )
        ok = np.array_equal(result.info_bits, payload)
        lost += not ok
        cleaned += residual > 0 and ok
        print(f"{i:5d} {result.ldpc_result.iterations:10d} "
              f"{residual:9d} {result.bch_corrected:9d} "
              f"{'OK' if ok else 'LOST':>8}")

    print(f"\n{FRAMES} frames at Eb/N0 = {EBN0_DB} dB with only "
          f"{LDPC_ITERATIONS} LDPC iterations:")
    print(f"  payloads lost       : {lost}")
    print(f"  residues BCH cleaned: {cleaned}")


if __name__ == "__main__":
    main()
