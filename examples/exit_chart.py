#!/usr/bin/env python
"""EXIT-chart analysis of the DVB-S2 degree distributions.

Draws (in ASCII) the variable- and check-node EXIT curves of the R=1/2
ensemble at its decoding threshold, prints the staircase trajectory, and
tabulates the analytic threshold of every rate against the Shannon
limit — the theory behind the paper's "0.7 dB to Shannon" claim.
"""

import numpy as np

from repro.analysis import (
    cn_exit,
    decoding_threshold_db,
    edge_degree_distribution,
    exit_trajectory,
    vn_exit,
)
from repro.channel import ebn0_db_to_sigma, shannon_limit_ebn0_db
from repro.codes import all_profiles, get_profile

RATE = "1/2"
GRID = 61  # ASCII chart resolution


def ascii_chart(profile, ebn0_db: float) -> str:
    """Plot I_E,VND(I_A) and the inverted CND curve on one ASCII grid."""
    lam, rho = edge_degree_distribution(profile)
    sigma_ch = 2.0 / ebn0_db_to_sigma(ebn0_db, float(profile.rate))
    xs = np.linspace(0.0, 1.0, GRID)
    vn = [vn_exit(x, sigma_ch, lam) for x in xs]
    cn = [cn_exit(x, rho) for x in xs]
    rows = []
    for level in range(GRID - 1, -1, -1):
        y = level / (GRID - 1)
        line = []
        for i, x in enumerate(xs):
            ch = " "
            if abs(cn[i] - y) < 0.5 / GRID:
                ch = "c"
            if abs(vn[i] - y) < 0.5 / GRID:
                ch = "V" if ch == "c" else "v"
            line.append(ch)
        rows.append("|" + "".join(line))
    rows.append("+" + "-" * GRID)
    return "\n".join(rows)


def main() -> None:
    profile = get_profile(RATE)
    threshold = decoding_threshold_db(profile)
    print(f"Rate {RATE}: GA-EXIT threshold {threshold:.2f} dB Eb/N0")
    print(f"(v = variable-node curve, c = check-node curve; the tunnel")
    print(f"is just open at {threshold + 0.1:.2f} dB)\n")
    print(ascii_chart(profile, threshold + 0.1))

    traj = exit_trajectory(profile, threshold + 0.1)
    print(f"\nStaircase trajectory: {len(traj)} steps to I -> 1")
    for step in (0, 1, 2, len(traj) // 2, len(traj) - 1):
        i_vc, i_cv = traj[step]
        print(f"  step {step:3d}: I_V->C = {i_vc:.4f}, I_C->V = {i_cv:.4f}")

    print("\nAnalytic thresholds for all rates (Eb/N0, dB):")
    print(f"{'rate':>6} {'threshold':>10} {'Shannon':>9} {'gap':>6}")
    for p in all_profiles():
        th = decoding_threshold_db(p)
        sh = shannon_limit_ebn0_db(float(p.rate))
        print(f"{p.name:>6} {th:10.2f} {sh:9.2f} {th - sh:6.2f}")


if __name__ == "__main__":
    main()
