#!/usr/bin/env python
"""Waterfall curves for several DVB-S2 rates, plotted in the terminal.

Sweeps Eb/N0 for three rates using the batched fast Monte-Carlo path
and renders the BER curves as ASCII — the qualitative picture behind
the standard's rate ladder.
"""

import numpy as np

from repro.codes import build_small_code
from repro.sim import fast_ber
from repro.sim.plot import ascii_ber_plot

PARALLELISM = 36
FRAMES = 24
RATES = {
    "1/2": np.arange(0.6, 2.61, 0.4),
    "3/4": np.arange(2.0, 4.01, 0.4),
    "9/10": np.arange(3.4, 5.41, 0.4),
}


def main() -> None:
    series = {}
    for rate, ebn0_points in RATES.items():
        code = build_small_code(rate, parallelism=PARALLELISM)
        points = []
        print(f"rate {rate}: ", end="", flush=True)
        for ebn0 in ebn0_points:
            result = fast_ber(
                code, ebn0_db=float(ebn0), frames=FRAMES,
                max_iterations=30, seed=3,
            )
            points.append((float(ebn0), result.ber))
            print(".", end="", flush=True)
        print()
        series[rate] = points

    print()
    print(
        ascii_ber_plot(
            series,
            title=(
                f"BER vs Eb/N0 — 1/10-scale DVB-S2 codes, "
                f"{FRAMES} frames/point, normalized min-sum"
            ),
        )
    )
    print("\nEach rate opens its waterfall ~0.3-1 dB from its Shannon")
    print("limit; higher rates need proportionally more SNR — the")
    print("ladder the DVB-S2 ACM controller climbs.")


if __name__ == "__main__":
    main()
