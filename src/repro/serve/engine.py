"""The decode service: queue → micro-batcher → batched decoder.

:class:`DecodeService` turns the repo's batched decoders into a
streaming service.  The design is a single-threaded event pump over an
injected clock:

* ``submit`` admits a request (or rejects it with a typed reason when
  the bounded queue is full — backpressure, never unbounded growth);
* ``pump`` is the event step: expire overdue requests, form every due
  micro-batch (fill-or-timeout, see
  :class:`~repro.serve.batcher.MicroBatcher`), decode it, and complete
  results;
* ``poll`` hands finished :class:`~repro.serve.api.DecodeResult`\\ s
  back in completion order.

Everything time-dependent takes the clock value from the pump caller
(or the injected ``clock``), so the whole service is deterministic
under a manual clock — the property the batcher/shedding tests lean on.

Degradation is layered (cheapest first): converged frames freeze inside
the batched decoder (free, always on); the iteration-budget controller
sheds the per-batch budget as the queue fills (paper §2.2's saved
iterations as a live knob); per-request deadlines expire queued frames
before they waste decode time, and — on decoders with
``supports_frame_budgets`` — cap each frame's budget to what fits
before its deadline using a measured per-iteration cost estimate;
finally a full queue rejects at the door.

With ``workers > 1`` batches are decoded on a
:class:`~repro.sim.pool.PersistentPool` (created once, reused for every
batch); completions are merged strictly in batch-sequence order, so
metrics and result order are deterministic for any worker count.

The pooled path is *pipelined*: up to ``config.pipeline_depth``
micro-batches stay in flight at once, so batch ``k+1``'s LLR prep and
batch ``k+2``'s formation overlap batch ``k``'s decode — the software
analogue of the paper's double-buffered I/O RAM, where the core decodes
one frame while the next streams in.  The strict batch-sequence merge
makes the overlap invisible in the results: decoded bits, statuses and
result order are identical to ``pipeline_depth=1`` for any depth (the
inline/no-pool path degrades to depth 1).  One caveat is inherent:
deadline-capped *per-frame* budgets use the per-iteration cost EWMA,
which updates at batch completion — a quantity that is timing-dependent
on any real clock regardless of depth.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..codes.construction import LdpcCode
from ..decode.batch import make_batch_decoder
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.trace import TraceRecorder
from ..sim.pool import PersistentPool
from .api import (
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    DecodeRequest,
    DecodeResult,
    ServeConfig,
)
from .batcher import MicroBatcher
from .policy import IterationBudgetController
from .queue import BoundedRequestQueue

#: Batch-occupancy histogram buckets (powers of two up to 256 frames).
OCCUPANCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Latency histogram buckets in milliseconds.
LATENCY_BUCKETS_MS = (
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
)

#: EWMA weight of the newest per-iteration cost sample.
_ITER_COST_ALPHA = 0.3


# ----------------------------------------------------------------------
# Worker-side machinery for the pooled path (mirrors sim.parallel).
_SERVE_WORKER: dict = {}


def _decoder_params(config: ServeConfig) -> dict:
    return {
        "schedule": config.schedule,
        "normalization": config.normalization,
        "segments": config.segments,
        "fmt": config.fmt,
        "channel_scale": config.channel_scale,
        "backend": config.backend,
    }


def _build_serve_decoder(code: LdpcCode, params: dict):
    return make_batch_decoder(
        code,
        schedule=params["schedule"],
        normalization=params["normalization"],
        segments=params["segments"],
        fmt=params["fmt"],
        channel_scale=params["channel_scale"],
        backend=params["backend"],
    )


def _init_serve_worker(code: LdpcCode, params: dict) -> None:
    _SERVE_WORKER["decoder"] = _build_serve_decoder(code, params)


def _decode_batch_task(llrs: np.ndarray, budgets) -> tuple:
    """Pool entry point: decode one micro-batch on the worker's decoder."""
    result = _SERVE_WORKER["decoder"].decode_batch(
        llrs, max_iterations=budgets, early_stop=True
    )
    return result.bits, result.converged, result.iterations


class DecodeService:
    """Streaming decode service over one LDPC code.

    Parameters
    ----------
    code:
        The code every submitted frame belongs to (batches are
        same-rate by construction).
    config:
        Batching/degradation/decoder knobs; see
        :class:`~repro.serve.api.ServeConfig`.
    registry:
        Metrics sink; defaults to the process-wide registry.
    trace:
        Optional JSONL trace recorder; one ``serve_batch`` event per
        decoded batch and one ``serve_drop`` event per reject/expiry.
    clock:
        Monotonic-seconds callable; tests inject a manual clock.
    pool:
        Persistent worker pool for ``config.workers > 1``; created (and
        owned) by the service when not supplied.
    """

    def __init__(
        self,
        code: LdpcCode,
        config: Optional[ServeConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        clock=time.monotonic,
        pool: Optional[PersistentPool] = None,
    ) -> None:
        self.code = code
        self.config = config if config is not None else ServeConfig()
        self.registry = registry if registry is not None else get_registry()
        self.trace = trace
        self.clock = clock
        params = _decoder_params(self.config)
        build_params = params
        if (
            self.config.instrument_kernels
            and self.config.schedule.startswith("quantized")
        ):
            from ..decode.backend import instrument_backend

            build_params = dict(
                params,
                backend=instrument_backend(
                    self.config.backend, self.registry
                ),
            )
        self.decoder = _build_serve_decoder(code, build_params)
        self._frame_budgets_ok = bool(
            getattr(self.decoder, "supports_frame_budgets", False)
        )
        self.queue = BoundedRequestQueue(self.config.queue_capacity)
        self.batcher = MicroBatcher(
            self.config.max_batch, self.config.max_linger_s
        )
        self.controller = IterationBudgetController(
            self.config.max_iterations,
            self.config.min_iterations,
            self.config.shed_start,
        )
        self._pool: Optional[PersistentPool] = None
        self._owns_pool = False
        requested_depth = self.config.pipeline_depth
        # pipeline_depth > 1 with a single worker still wants a real
        # child process — otherwise there is nothing to overlap with.
        wants_pool = (
            self.config.workers > 1
            or (requested_depth or 1) > 1
            or (pool is not None and not pool.serial)
        )
        if wants_pool:
            if pool is None:
                pool = PersistentPool(
                    self.config.workers,
                    label="serve engine",
                    dedicated=self.config.workers == 1,
                )
                self._owns_pool = True
            pool.configure(
                _init_serve_worker,
                (code, params),
                key=("serve", id(code)) + tuple(
                    (k, id(v) if k == "fmt" else v)
                    for k, v in sorted(params.items())
                ),
            )
            self._pool = None if pool.serial else pool
        #: Resolved max batches in flight (1 on the inline path; the
        #: config's ``None`` means ``2 * workers`` on the pooled path).
        self.pipeline_depth = 1 if self._pool is None else (
            requested_depth if requested_depth is not None
            else 2 * self.config.workers
        )
        self.registry.gauge("serve.pipeline.depth").set(self.pipeline_depth)
        self._next_id = 0
        self._batch_seq = 0
        self._next_merge_seq = 0
        #: In-flight pooled batches: seq -> (future, requests, meta).
        self._pending: Dict[int, Tuple[object, List[DecodeRequest], dict]] = {}
        self._completed: List[DecodeResult] = []
        #: EWMA of seconds per batch iteration (deadline budgeting).
        self._iter_cost_s: Optional[float] = None
        #: External queue-pressure hint (see :meth:`set_load_hint`).
        self._load_hint = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        llrs: np.ndarray,
        *,
        deadline_s: Optional[float] = None,
        now: Optional[float] = None,
        modcod: Optional[str] = None,
    ) -> int:
        """Admit one frame of channel LLRs; returns its request id.

        The result (decoded bits, or a typed rejection when the queue
        is full) arrives via :meth:`poll` after a :meth:`pump` — a
        rejected request completes immediately.  ``deadline_s`` is an
        absolute service-clock deadline overriding the config default;
        ``now`` overrides the clock (loadgen backdates arrivals to the
        scheduled offered-rate instants, so queueing delay includes
        time the pump spent decoding).  ``modcod`` labels the frame for
        per-MODCOD accounting (``serve.modcod.<label>.*`` counters) and
        is echoed on the result; it does not change decoding — this
        service still serves exactly one code/config.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        with self.registry.timer("serve.stage.enqueue"):
            return self._submit(
                llrs, deadline_s=deadline_s, now=now, modcod=modcod
            )

    def _submit(
        self,
        llrs: np.ndarray,
        *,
        deadline_s: Optional[float],
        now: Optional[float],
        modcod: Optional[str] = None,
    ) -> int:
        llrs = np.asarray(llrs, dtype=np.float64)
        if llrs.shape != (self.code.n,):
            raise ValueError(f"expected shape ({self.code.n},) LLRs")
        now = self.clock() if now is None else now
        request_id = self._next_id
        self._next_id += 1
        if deadline_s is None and self.config.deadline_ms is not None:
            deadline_s = now + self.config.deadline_ms / 1e3
        request = DecodeRequest(
            request_id=request_id,
            llrs=llrs,
            arrival_s=now,
            deadline_s=deadline_s,
            modcod=modcod,
        )
        self.registry.counter("serve.requests.submitted").inc()
        if modcod is not None:
            self.registry.counter(
                f"serve.modcod.{modcod}.submitted"
            ).inc()
        if not self.queue.offer(request):
            self.registry.counter("serve.requests.rejected").inc()
            self._drop(request, STATUS_REJECTED, REASON_QUEUE_FULL, now)
            return request_id
        self.registry.gauge("serve.queue.depth").set(len(self.queue))
        return request_id

    # ------------------------------------------------------------------
    # Event pump
    # ------------------------------------------------------------------
    def pump(self, now: Optional[float] = None) -> int:
        """Run the service forward: expire, batch, decode.  Returns the
        number of batches dispatched.

        On the pooled path at most :attr:`pipeline_depth` batches are in
        flight: forming (and LLR-prepping) a batch past the depth first
        block-collects the oldest in-flight batch, and the pump tail
        drains completions non-blocking — so host-side prep/completion
        of batch ``k+1`` overlaps the workers' decode of batch ``k``.
        """
        now = self.clock() if now is None else now
        with self.registry.timer("serve.stage.pump"):
            self._expire(now)
            dispatched = 0
            while self.batcher.due(self.queue, now):
                if (
                    self._pool is not None
                    and len(self._pending) >= self.pipeline_depth
                ):
                    self._collect(block=True, limit=1)
                self._dispatch_batch(now)
                dispatched += 1
                now = self.clock() if self._pool is None else now
                self._expire(now)
            self._collect(block=False)
            self.registry.gauge("serve.pipeline.backlog").set(
                self.batcher.due_count(self.queue, now)
            )
        return dispatched

    def next_due(self, now: Optional[float] = None) -> Optional[float]:
        """When the pump next has work (None = idle until a submit).

        With pooled batches in flight the answer is ``now`` — the pump
        should keep collecting completions.
        """
        now = self.clock() if now is None else now
        if self._pending:
            return now
        return self.batcher.next_due(self.queue, now)

    def poll(self) -> List[DecodeResult]:
        """Drain and return results completed since the last poll."""
        out = self._completed
        self._completed = []
        return out

    def set_load_hint(self, fill: float) -> None:
        """Install an external queue-pressure signal in ``[0, 1]``.

        A distributed front-end (the decode fabric) keeps each worker's
        local queue nearly empty by construction — one micro-batch in,
        decode, results out — so the local fill fraction never reflects
        system overload.  The hint lets the fabric forward its admission
        queue fill; the iteration-budget controller sheds on the
        *maximum* of local fill and hint, so standalone behaviour is
        unchanged (the hint defaults to 0).
        """
        if not 0.0 <= fill:
            raise ValueError("load hint must be non-negative")
        self._load_hint = float(fill)
        self.registry.gauge("serve.load_hint").set(round(fill, 4))

    def flush(self, now: Optional[float] = None) -> None:
        """Decode everything queued (ignoring linger) and wait for it.

        Respects :attr:`pipeline_depth` while draining (the depth bound
        holds even at shutdown), then waits for every in-flight batch.
        """
        now = self.clock() if now is None else now
        with self.registry.timer("serve.stage.pump"):
            self._expire(now)
            while len(self.queue):
                if (
                    self._pool is not None
                    and len(self._pending) >= self.pipeline_depth
                ):
                    self._collect(block=True, limit=1)
                self._dispatch_batch(now)
                now = self.clock() if self._pool is None else now
            self._collect(block=True)

    def close(self) -> None:
        """Flush outstanding work, flush the trace sink, and release
        the pool (idempotent) — no tail events are lost at shutdown."""
        if self._closed:
            return
        self.flush()
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown()
        if self.trace is not None:
            self.trace.flush()
        self._closed = True

    def __enter__(self) -> "DecodeService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop(
        self,
        request: DecodeRequest,
        status: str,
        reason: str,
        now: float,
    ) -> None:
        self._completed.append(
            DecodeResult(
                request_id=request.request_id,
                status=status,
                reason=reason,
                latency_s=now - request.arrival_s,
                modcod=request.modcod,
            )
        )
        if request.modcod is not None:
            self.registry.counter(
                f"serve.modcod.{request.modcod}.dropped"
            ).inc()
        if self.trace is not None:
            self.trace.event(
                "serve_drop",
                request=request.request_id,
                status=status,
                reason=reason,
                waited_s=round(now - request.arrival_s, 6),
            )

    def _expire(self, now: float) -> None:
        with self.registry.timer("serve.stage.expire"):
            for request in self.queue.expire(now):
                self.registry.counter("serve.requests.expired").inc()
                self._drop(request, STATUS_EXPIRED, REASON_DEADLINE, now)
            self.registry.gauge("serve.queue.depth").set(len(self.queue))

    def _frame_budget_vector(
        self,
        requests: List[DecodeRequest],
        batch_budget: int,
        now: float,
    ):
        """Per-frame budgets: the batch budget, capped per deadline.

        A frame whose deadline leaves room for fewer iterations than
        the batch budget gets only what fits, using the EWMA of the
        measured per-iteration batch cost (no estimate yet → no cap).
        Frames without deadlines always get the full batch budget, so
        deadline-free serving is bit-identical to the offline decoder.
        """
        if not self._frame_budgets_ok:
            return batch_budget, 0
        has_deadline = any(r.deadline_s is not None for r in requests)
        if not has_deadline or not self._iter_cost_s:
            return batch_budget, 0
        budgets = np.full(len(requests), batch_budget, dtype=np.int64)
        capped = 0
        for i, request in enumerate(requests):
            if request.deadline_s is None:
                continue
            affordable = int(
                (request.deadline_s - now) / self._iter_cost_s
            )
            if affordable < batch_budget:
                budgets[i] = max(1, affordable)
                capped += 1
        if not capped:
            return batch_budget, 0
        return budgets, capped

    def _dispatch_batch(self, now: float) -> None:
        with self.registry.timer("serve.stage.batch_form"):
            fill = max(self.queue.fill, self._load_hint)
            batch_budget = self.controller.budget(fill)
            requests = self.batcher.take(self.queue)
            self.registry.gauge("serve.queue.depth").set(len(self.queue))
            occupancy = len(requests)
            self.registry.histogram(
                "serve.batch.occupancy", OCCUPANCY_BUCKETS
            ).observe(occupancy)
            self.registry.gauge("serve.batch.budget").set(batch_budget)
            shed = (self.config.max_iterations - batch_budget) * occupancy
            if shed:
                self.registry.counter("serve.iterations.shed").inc(shed)
            ttfb = self.registry.timer("serve.request.ttfb")
            for request in requests:
                ttfb.record_ns(int((now - request.arrival_s) * 1e9))
        with self.registry.timer("serve.stage.llr_prep"):
            budgets, deadline_capped = self._frame_budget_vector(
                requests, batch_budget, now
            )
            llrs = np.stack([r.llrs for r in requests])
        seq = self._batch_seq
        self._batch_seq += 1
        meta = {
            "formed_s": now,
            "budget": batch_budget,
            "fill": fill,
            "deadline_capped": deadline_capped,
        }
        if self._pool is not None:
            # Submission (argument pickling into the worker pipe) is its
            # own stage; the decode stage's busy time is recorded at
            # collect, once the batch's pool round-trip is known.
            with self.registry.timer("serve.stage.dispatch"):
                future = self._pool.submit(
                    _decode_batch_task, llrs, budgets
                )
            self._pending[seq] = (future, requests, meta)
            self.registry.gauge("serve.pipeline.inflight").set(
                len(self._pending)
            )
            return
        with self.registry.timer("serve.stage.decode"), \
                self.registry.timer("serve.batch.decode") as timer:
            result = self.decoder.decode_batch(
                llrs,
                max_iterations=(
                    budgets if self._frame_budgets_ok else int(
                        budgets if np.ndim(budgets) == 0
                        else np.min(budgets)
                    )
                ),
                early_stop=True,
            )
        self._finish_batch(
            seq, requests, meta,
            result.bits, result.converged, result.iterations,
            decode_s=timer.last_s,
        )

    def _collect(
        self, block: bool, limit: Optional[int] = None
    ) -> None:
        """Fold finished pooled batches in, strictly in sequence order.

        ``limit`` folds at most that many batches (the pump's depth
        gate frees exactly one slot).  The blocking wait on the oldest
        future sits *outside* the ``collect`` stage span: waiting for a
        worker is pipeline stall, not collect work, and counting it as
        a stage would double-book the decode busy time recorded below.
        """
        folded = 0
        while self._next_merge_seq in self._pending:
            if limit is not None and folded >= limit:
                return
            seq = self._next_merge_seq
            future, requests, meta = self._pending[seq]
            if not block and not future.done():
                return
            bits, converged, iterations = future.result()
            # Service time on the pooled path is submission-to-merge
            # (includes queueing on the pool), on this clock.  The same
            # span is the decode stage's *busy* time: at depth > 1 the
            # per-stage busy sums may exceed the pump wall — that excess
            # is exactly the measured overlap (see repro.obs.profile).
            decode_s = self.clock() - meta["formed_s"]
            decode_ns = max(0, int(decode_s * 1e9))
            self.registry.timer("serve.batch.decode").record_ns(decode_ns)
            self.registry.timer("serve.stage.decode").record_ns(decode_ns)
            with self.registry.timer("serve.stage.collect"):
                del self._pending[seq]
                self.registry.gauge("serve.pipeline.inflight").set(
                    len(self._pending)
                )
            self._finish_batch(
                seq, requests, meta,
                bits, converged, iterations, decode_s=decode_s,
            )
            folded += 1

    def _finish_batch(
        self,
        seq: int,
        requests: List[DecodeRequest],
        meta: dict,
        bits: np.ndarray,
        converged: np.ndarray,
        iterations: np.ndarray,
        decode_s: float,
    ) -> None:
        with self.registry.timer("serve.stage.complete"):
            self._complete_batch(
                seq, requests, meta, bits, converged, iterations, decode_s
            )

    def _complete_batch(
        self,
        seq: int,
        requests: List[DecodeRequest],
        meta: dict,
        bits: np.ndarray,
        converged: np.ndarray,
        iterations: np.ndarray,
        decode_s: float,
    ) -> None:
        self._next_merge_seq = max(self._next_merge_seq, seq + 1)
        done = self.clock()
        occupancy = len(requests)
        total_iters = int(iterations.sum())
        self.registry.counter("serve.batches").inc()
        self.registry.counter("serve.requests.completed").inc(occupancy)
        self.registry.counter("serve.iterations.executed").inc(total_iters)
        max_iters = int(iterations.max()) if occupancy else 0
        if max_iters > 0 and decode_s > 0:
            sample = decode_s / max_iters
            if self._iter_cost_s is None:
                self._iter_cost_s = sample
            else:
                self._iter_cost_s += _ITER_COST_ALPHA * (
                    sample - self._iter_cost_s
                )
        latency_h = self.registry.histogram(
            "serve.request.latency_ms", LATENCY_BUCKETS_MS
        )
        queue_h = self.registry.histogram(
            "serve.request.queue_ms", LATENCY_BUCKETS_MS
        )
        for i, request in enumerate(requests):
            latency = done - request.arrival_s
            queued = meta["formed_s"] - request.arrival_s
            latency_h.observe(latency * 1e3)
            queue_h.observe(queued * 1e3)
            if request.modcod is not None:
                self.registry.counter(
                    f"serve.modcod.{request.modcod}.completed"
                ).inc()
            self._completed.append(
                DecodeResult(
                    request_id=request.request_id,
                    status=STATUS_OK,
                    bits=bits[i],
                    converged=bool(converged[i]),
                    iterations=int(iterations[i]),
                    iteration_budget=meta["budget"],
                    batch_seq=seq,
                    batch_occupancy=occupancy,
                    latency_s=latency,
                    queued_s=queued,
                    modcod=request.modcod,
                )
            )
        if self.trace is not None:
            self.trace.event(
                "serve_batch",
                seq=seq,
                occupancy=occupancy,
                budget=meta["budget"],
                fill=round(meta["fill"], 4),
                deadline_capped=meta["deadline_capped"],
                converged=int(np.asarray(converged).sum()),
                iterations=total_iters,
                decode_s=round(decode_s, 6),
            )
