"""Closed-loop load generator for the decode service.

One process plays both roles: it releases requests on an open-loop
arrival schedule (a fixed offered rate, what an antenna front-end would
deliver) and drives the service pump in the gaps — a closed loop
between generator and service with no threads, so a run is fully
described by ``(code, config, offered_fps, duration, seed)``.

Arrivals are *backdated to the schedule*: if the pump spent 8 ms
decoding a batch, the three frames that "arrived" meanwhile are
submitted with their scheduled timestamps, so queueing delay and linger
accounting see true offered-load behaviour rather than the generator's
call times.  That is what makes the latency-vs-offered-load curves
honest near saturation.

Ground truth travels with every frame: the generator encodes random
codewords through a seeded AWGN channel and compares decoded payloads
bit-for-bit on completion, so a sweep reports correctness (frame/bit
errors) next to throughput — degradation should cost iterations, not
silent corruption.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

import numpy as np

from ..channel.awgn import AwgnChannel
from ..codes.construction import LdpcCode
from ..encode.encoder import IraEncoder
from ..obs.publish import SnapshotPublisher
from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceRecorder
from .api import ServeConfig
from .engine import DecodeService
from .fabric import DecodeFabric, FabricConfig
from .report import ServiceReport


@dataclass(frozen=True)
class FramePool:
    """A cycle of pre-generated noisy frames with their true codewords."""

    llrs: np.ndarray  #: ``(pool, n)`` channel LLRs.
    codewords: np.ndarray  #: ``(pool, n)`` transmitted bits.
    ebn0_db: float

    def __len__(self) -> int:
        return self.llrs.shape[0]


def make_frame_pool(
    code: LdpcCode,
    *,
    pool_size: int = 64,
    ebn0_db: float = 2.0,
    seed: int = 2005,
    channel=None,
) -> FramePool:
    """Encode ``pool_size`` random codewords and pass them through AWGN.

    The generator cycles through the pool instead of synthesizing a
    fresh frame per arrival — frame generation must never become the
    bottleneck that caps the offered rate.

    ``channel`` overrides the default seeded AWGN channel with any
    prebuilt object whose ``llrs(bits)`` accepts a ``(frames, n)``
    batch (a :func:`repro.channel.build_channel` cell); when given,
    ``ebn0_db`` only labels the pool and the channel's own stream is
    consumed.
    """
    rng = np.random.default_rng(seed)
    encoder = IraEncoder(code)
    info = rng.integers(0, 2, size=(pool_size, code.k), dtype=np.int8)
    codewords = encoder.encode_batch(info)
    if channel is None:
        channel = AwgnChannel(ebn0_db, code.k / code.n, seed=seed + 1)
    llrs = channel.llrs(codewords)
    return FramePool(llrs=llrs, codewords=codewords, ebn0_db=ebn0_db)


@dataclass(frozen=True)
class LoadgenResult:
    """Outcome of one constant-rate run."""

    offered_fps: float
    duration_s: float
    report: ServiceReport
    snapshot: dict
    #: Completed frames whose decoded codeword differed from the truth.
    frame_errors: int
    #: Total wrong bits across completed frames.
    bit_errors: int
    #: Decoded-and-compared frame count (``report.completed``).
    checked: int

    def to_dict(self) -> dict:
        return {
            "offered_fps": self.offered_fps,
            "duration_s": self.duration_s,
            "frame_errors": self.frame_errors,
            "bit_errors": self.bit_errors,
            "checked": self.checked,
            "report": self.report.to_dict(),
        }


def run_loadgen(
    code: LdpcCode,
    config: Optional[ServeConfig] = None,
    *,
    offered_fps: float,
    duration_s: float,
    frame_pool: Optional[FramePool] = None,
    ebn0_db: float = 2.0,
    seed: int = 2005,
    registry: Optional[MetricsRegistry] = None,
    trace: Optional[TraceRecorder] = None,
    publisher: Optional[SnapshotPublisher] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Optional[Callable[[float], None]] = None,
    fabric: Optional[FabricConfig] = None,
    clients: int = 0,
) -> LoadgenResult:
    """Offer ``offered_fps`` frames/s for ``duration_s`` and report.

    A fresh :class:`MetricsRegistry` is used per run (pass ``registry``
    to accumulate across runs instead); the returned snapshot therefore
    isolates exactly this run.  ``sleep`` defaults to ``time.sleep``
    when the clock is real and to busy-spinning otherwise.  With a
    ``publisher`` the run streams registry snapshots while it pumps
    (the publisher is re-attached to this run's registry, so delta
    records stay non-negative across sweep points).

    With a ``fabric`` config the run drives a multi-worker
    :class:`~repro.serve.fabric.DecodeFabric` instead of the in-process
    service; the serve knobs still come from ``config`` (``fabric``'s
    embedded serve config is replaced), the returned snapshot is the
    cross-worker merge, and ``clients`` > 0 stamps arrivals with a
    rotating client identity so affinity dispatch gets exercised.
    """
    if offered_fps <= 0:
        raise ValueError("offered_fps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    config = config if config is not None else ServeConfig()
    registry = registry if registry is not None else MetricsRegistry()
    if frame_pool is None:
        frame_pool = make_frame_pool(code, ebn0_db=ebn0_db, seed=seed)
    if sleep is None:
        sleep = time.sleep if clock is time.monotonic else (lambda s: None)

    total = max(1, int(offered_fps * duration_s))
    period = 1.0 / offered_fps
    frame_of: dict = {}  # request id -> pool index
    frame_errors = 0
    bit_errors = 0

    def check(results) -> None:
        nonlocal frame_errors, bit_errors
        for result in results:
            if not result.ok:
                continue
            truth = frame_pool.codewords[frame_of[result.request_id]]
            wrong = int(np.count_nonzero(result.bits != truth))
            if wrong:
                frame_errors += 1
                bit_errors += wrong

    if fabric is not None:
        service = DecodeFabric(
            code,
            replace(fabric, serve=config),
            registry=registry,
            trace=trace,
            clock=clock,
        )
    else:
        service = DecodeService(
            code, config, registry=registry, trace=trace, clock=clock
        )
    if publisher is not None:
        # The fabric quacks like a registry (merged snapshot()), so the
        # publisher streams the cross-worker view.
        publisher.attach(service if fabric is not None else registry)
    start = clock()
    submitted = 0
    with service:
        while submitted < total:
            now = clock()
            if publisher is not None:
                publisher.publish(now)
            # Release every arrival the schedule says has happened,
            # stamped with its scheduled time (not the call time).
            while submitted < total:
                scheduled = start + submitted * period
                if scheduled > now:
                    break
                idx = submitted % len(frame_pool)
                if fabric is not None and clients > 0:
                    rid = service.submit(
                        frame_pool.llrs[idx],
                        now=scheduled,
                        client=f"client{submitted % clients}",
                    )
                else:
                    rid = service.submit(
                        frame_pool.llrs[idx], now=scheduled
                    )
                frame_of[rid] = idx
                submitted += 1
            service.pump(now)
            check(service.poll())
            if submitted >= total:
                break
            next_arrival = start + submitted * period
            due = service.next_due(clock())
            wake = next_arrival if due is None else min(next_arrival, due)
            delay = wake - clock()
            if delay > 0:
                sleep(min(delay, period))
        service.flush()
        check(service.poll())
        wall = clock() - start
    if publisher is not None:
        publisher.publish(clock(), force=True)
    snapshot = (
        service.merged_snapshot() if fabric is not None
        else registry.snapshot()
    )
    report = ServiceReport.from_snapshot(
        code, snapshot, wall, max_batch=config.max_batch
    )
    return LoadgenResult(
        offered_fps=offered_fps,
        duration_s=duration_s,
        report=report,
        snapshot=snapshot,
        frame_errors=frame_errors,
        bit_errors=bit_errors,
        checked=report.completed,
    )


def sweep_offered_rates(
    code: LdpcCode,
    config: Optional[ServeConfig] = None,
    *,
    rates_fps: List[float],
    duration_s: float,
    ebn0_db: float = 2.0,
    seed: int = 2005,
    channel=None,
    trace: Optional[TraceRecorder] = None,
    publisher: Optional[SnapshotPublisher] = None,
    progress: Optional[Callable[[LoadgenResult], None]] = None,
    fabric: Optional[FabricConfig] = None,
    clients: int = 0,
) -> List[LoadgenResult]:
    """Run one loadgen pass per offered rate (shared frame pool).

    This is the latency-vs-offered-load experiment: sweep rates from
    well below to beyond saturation and watch p99 latency, shed
    iterations, and rejects take over in that order.  ``channel``
    overrides the pool's AWGN channel (see :func:`make_frame_pool`).
    """
    frame_pool = make_frame_pool(
        code, ebn0_db=ebn0_db, seed=seed, channel=channel
    )
    results = []
    for rate in rates_fps:
        result = run_loadgen(
            code,
            config,
            offered_fps=rate,
            duration_s=duration_s,
            frame_pool=frame_pool,
            seed=seed,
            trace=trace,
            publisher=publisher,
            fabric=fabric,
            clients=clients,
        )
        results.append(result)
        if progress is not None:
            progress(result)
    return results
