"""Service report: measured serving throughput vs the paper's Eq. 7/8.

The hardware model in :mod:`repro.hw.throughput` predicts what the
synthesized core sustains at 270 MHz for a given iteration count.  The
serve layer measures what this software service actually sustained —
frames/s, info bit/s, latency percentiles, batching efficiency — from
the same metrics the engine records while running.  Putting both in one
:class:`ServiceReport` answers the question every serving experiment
ends with: *how far is the software path from the silicon it models,
and how much of the gap did batching close?*

The comparison is evaluated at the **measured mean iteration count**,
not the nominal budget: under load shedding the service runs fewer
iterations, and Eq. 8 says the hardware would speed up the same way, so
holding the model at 30 iterations would flatter the software.

A second model column keeps the comparison honest for the *pipelined*
pump (``ServeConfig.pipeline_depth > 1``): the frame-pipelined hardware
model (:class:`~repro.hw.pipeline.FramePipelineModel`) streams frames
at its bottleneck stage's pace, and its fill latency bounds how much
of the measured latency is pipeline structure rather than queueing —
``model_pipeline_frames_per_s`` / ``model_pipeline_fill_ms`` put those
numbers next to the sequential Eq. 8 prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..codes.construction import LdpcCode
from ..hw.pipeline import FramePipelineModel
from ..hw.throughput import ThroughputModel


def snapshot_percentile(hist: dict, q: float) -> float:
    """Estimate the ``q``-th percentile from a histogram snapshot dict.

    Uses linear interpolation inside the bucket containing the target
    rank (the standard Prometheus-style estimate); the overflow bucket
    reports its lower bound.  NaN for an empty histogram.
    """
    count = hist.get("count", 0)
    if count <= 0:
        return float("nan")
    bounds = [float(b) for b in hist["bounds"]]
    counts = hist["counts"]
    target = q / 100.0 * count
    seen = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if seen + c >= target:
            if i >= len(bounds):  # overflow bucket
                return bounds[-1]
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            return lo + (hi - lo) * (target - seen) / c
        seen += c
    return bounds[-1]


@dataclass(frozen=True)
class ServiceReport:
    """Measured service performance next to the Eq. 7/8 hardware model."""

    rate: str
    wall_s: float
    # -- request accounting -------------------------------------------
    submitted: int
    completed: int
    rejected: int
    expired: int
    # -- batching ------------------------------------------------------
    batches: int
    mean_occupancy: float
    max_batch: int
    # -- iterations ----------------------------------------------------
    iterations_executed: int
    iterations_shed: int
    mean_iterations: float
    # -- latency (milliseconds) ---------------------------------------
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    queue_p50_ms: float
    # -- throughput ----------------------------------------------------
    frames_per_s: float
    info_bps: float
    coded_bps: float
    # -- hardware model at the measured mean iteration count ----------
    model_frames_per_s: float
    model_info_bps: float
    hardware_fraction: float
    # -- pipeline profile ---------------------------------------------
    #: Per-stage ``{total_s, count, mean_us, of_pump}`` rows from the
    #: ``serve.stage.*`` spans (see :mod:`repro.obs.profile`); the
    #: in-pump stages plus ``other`` sum to 100% of pump time.  ``None``
    #: when the snapshot carries no stage spans.
    stages: Optional[dict] = None
    #: Decode workers behind the numbers (1 = single service; the
    #: distributed fabric reports its worker count so merged reports
    #: are self-describing).
    workers: int = 1
    # -- pipeline terms (the frame-pipelined hardware model) ----------
    #: Resolved ``ServeConfig.pipeline_depth`` of the measured service
    #: (from the ``serve.pipeline.depth`` gauge; 1 when absent).
    pipeline_depth: int = 1
    #: Bottleneck-stage frames/s of the frame-pipelined hardware model
    #: (:class:`~repro.hw.pipeline.FramePipelineModel`, one decode
    #: core) at the measured mean iteration count — the ceiling a
    #: perfectly overlapped deframe/decode/BCH pipeline streams at,
    #: vs ``model_frames_per_s``'s sequential Eq. 8.
    model_pipeline_frames_per_s: float = float("nan")
    #: Predicted latency of one frame through that pipeline including
    #: fill (milliseconds) — the model-side floor under the measured
    #: latency percentiles at depth > 1.
    model_pipeline_fill_ms: float = float("nan")
    #: Per-MODCOD request accounting on the ACM path: ``{label:
    #: {"submitted": n, "completed": n, "dropped": n}}`` from the
    #: ``serve.modcod.<label>.*`` counters (labels must not contain
    #: ``.``).  ``None`` when no MODCOD-labeled traffic was served.
    modcods: Optional[dict] = None

    @classmethod
    def from_snapshot(
        cls,
        code: LdpcCode,
        snapshot: dict,
        wall_s: float,
        *,
        max_batch: int = 0,
        model: Optional[ThroughputModel] = None,
        workers: Optional[int] = None,
    ) -> "ServiceReport":
        """Build the report from a :meth:`MetricsRegistry.snapshot`.

        ``wall_s`` is the measured serving interval (the registry has no
        notion of elapsed time); ``model`` defaults to the paper's
        270 MHz / P=360 configuration for the code's profile.
        ``workers`` defaults to what the snapshot itself says: a merged
        fabric snapshot carries per-worker sub-views under ``workers``
        (see :func:`~repro.obs.registry.merge_snapshots`), whose
        ``worker*`` labels are counted; otherwise 1.
        """
        from ..obs.profile import stage_breakdown

        if workers is None:
            labeled = snapshot.get("workers", {})
            workers = sum(
                1 for label in labeled if label.startswith("worker")
            ) or 1
        counters = snapshot.get("counters", {})
        histograms = snapshot.get("histograms", {})
        completed = counters.get("serve.requests.completed", 0)
        batches = counters.get("serve.batches", 0)
        iters = counters.get("serve.iterations.executed", 0)
        latency = histograms.get(
            "serve.request.latency_ms",
            {"count": 0, "bounds": [1.0], "counts": [0, 0]},
        )
        queued = histograms.get(
            "serve.request.queue_ms",
            {"count": 0, "bounds": [1.0], "counts": [0, 0]},
        )
        mean_iters = iters / completed if completed else float("nan")
        frames_per_s = completed / wall_s if wall_s > 0 else float("nan")
        if model is None:
            model = ThroughputModel(code.profile)
        model_iters = max(1, int(round(mean_iters))) if completed else 1
        model_frames = model.clock_hz / model.cycles_per_block(model_iters)
        model_info = model.throughput_bps(model_iters)
        pipeline_model = FramePipelineModel(
            code.profile,
            clock_hz=model.clock_hz,
            io_parallelism=model.io_parallelism,
            latency_cycles=model.latency_cycles,
        )
        depth_gauge = (
            snapshot.get("gauges", {})
            .get("serve.pipeline.depth", {})
            .get("value", 1)
        )
        modcods: dict = {}
        prefix = "serve.modcod."
        for name, value in counters.items():
            if not name.startswith(prefix):
                continue
            label, _, field = name[len(prefix):].rpartition(".")
            if label and field:
                modcods.setdefault(label, {})[field] = int(value)
        info_bps = frames_per_s * code.k
        return cls(
            rate=code.profile.name,
            wall_s=wall_s,
            submitted=counters.get("serve.requests.submitted", 0),
            completed=completed,
            rejected=counters.get("serve.requests.rejected", 0),
            expired=counters.get("serve.requests.expired", 0),
            batches=batches,
            mean_occupancy=(
                completed / batches if batches else float("nan")
            ),
            max_batch=max_batch,
            iterations_executed=iters,
            iterations_shed=counters.get("serve.iterations.shed", 0),
            mean_iterations=mean_iters,
            latency_p50_ms=snapshot_percentile(latency, 50),
            latency_p95_ms=snapshot_percentile(latency, 95),
            latency_p99_ms=snapshot_percentile(latency, 99),
            queue_p50_ms=snapshot_percentile(queued, 50),
            frames_per_s=frames_per_s,
            info_bps=info_bps,
            coded_bps=frames_per_s * code.n,
            model_frames_per_s=model_frames,
            model_info_bps=model_info,
            hardware_fraction=(
                info_bps / model_info if model_info else float("nan")
            ),
            stages=stage_breakdown(snapshot) or None,
            workers=workers,
            pipeline_depth=int(depth_gauge or 1),
            model_pipeline_frames_per_s=pipeline_model.frames_per_s(
                model_iters
            ),
            model_pipeline_fill_ms=pipeline_model.fill_latency_s(
                model_iters
            ) * 1e3,
            modcods=modcods or None,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able dict (NaNs become None, recursively)."""
        def clean(v):
            if isinstance(v, float) and math.isnan(v):
                return None
            if isinstance(v, dict):
                return {k: clean(x) for k, x in v.items()}
            return v

        return {k: clean(v) for k, v in self.__dict__.items()}

    def format(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        lines = [
            f"service report  rate={self.rate}  wall={self.wall_s:.3f}s"
            + (f"  workers={self.workers}" if self.workers > 1 else ""),
            (
                f"  requests   submitted={self.submitted}"
                f"  completed={self.completed}"
                f"  rejected={self.rejected}  expired={self.expired}"
            ),
            (
                f"  batches    n={self.batches}"
                f"  mean_occupancy={self.mean_occupancy:.2f}"
                + (f"/{self.max_batch}" if self.max_batch else "")
            ),
            (
                f"  iterations executed={self.iterations_executed}"
                f"  shed={self.iterations_shed}"
                f"  mean/frame={self.mean_iterations:.2f}"
            ),
            (
                f"  latency    p50={self.latency_p50_ms:.2f}ms"
                f"  p95={self.latency_p95_ms:.2f}ms"
                f"  p99={self.latency_p99_ms:.2f}ms"
                f"  queue_p50={self.queue_p50_ms:.2f}ms"
            ),
            (
                f"  throughput {self.frames_per_s:.1f} frames/s"
                f"  info={self.info_bps / 1e6:.3f} Mbit/s"
                f"  coded={self.coded_bps / 1e6:.3f} Mbit/s"
            ),
            (
                f"  eq7/8 hw   {self.model_frames_per_s:.1f} frames/s"
                f"  info={self.model_info_bps / 1e6:.1f} Mbit/s"
                f"  -> software at {self.hardware_fraction * 1e2:.4f}%"
                " of modeled silicon"
            ),
        ]
        if self.pipeline_depth > 1:
            lines.append(
                f"  pipeline   depth={self.pipeline_depth}"
                f"  hw bottleneck {self.model_pipeline_frames_per_s:.1f}"
                f" frames/s  fill={self.model_pipeline_fill_ms:.3f}ms"
            )
        if self.modcods:
            for label in sorted(self.modcods):
                row = self.modcods[label]
                lines.append(
                    f"  modcod     {label}:"
                    f"  submitted={row.get('submitted', 0)}"
                    f"  completed={row.get('completed', 0)}"
                    f"  dropped={row.get('dropped', 0)}"
                )
        if self.stages:
            in_pump = [
                (name, row) for name, row in self.stages.items()
                if name not in ("pump", "enqueue")
                and row["of_pump"] == row["of_pump"]
            ]
            if in_pump:
                parts = "  ".join(
                    f"{name}={row['of_pump'] * 100:.1f}%"
                    for name, row in in_pump
                )
                lines.append(f"  stages     {parts}")
        return "\n".join(lines)
