"""Bounded FIFO request queue with backpressure and deadline expiry.

The queue is deliberately dumb: it owns admission (capacity) and
ordering, nothing else.  Batching policy lives in
:class:`~repro.serve.batcher.MicroBatcher` and accounting in the
engine, so each piece stays independently testable and the queue's
behaviour is a pure function of the submitted requests and the clock
values the engine passes in (no hidden time reads — deterministic under
a manual clock).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .api import DecodeRequest


class BoundedRequestQueue:
    """FIFO of :class:`DecodeRequest` with a hard capacity.

    ``offer`` refuses work once ``capacity`` requests are queued — the
    caller turns that into a :data:`~repro.serve.api.REASON_QUEUE_FULL`
    rejection.  Refusing at the door keeps the queue (and therefore
    worst-case queueing delay) bounded under overload; the shedding
    policy upstream keeps the door from being hit in the first place.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: Deque[DecodeRequest] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """True when the next ``offer`` would be refused."""
        return len(self._items) >= self.capacity

    @property
    def fill(self) -> float:
        """Queue depth as a fraction of capacity (the shedding input)."""
        return len(self._items) / self.capacity

    def offer(self, request: DecodeRequest) -> bool:
        """Enqueue unless full; returns whether the request was taken."""
        if self.full:
            return False
        self._items.append(request)
        return True

    def oldest_arrival(self) -> Optional[float]:
        """Arrival time of the head request (None when empty)."""
        return self._items[0].arrival_s if self._items else None

    def arrival_at(self, index: int) -> float:
        """Arrival time of the ``index``-th queued request (FIFO order).

        The batcher's backlog accounting needs the arrival of the
        request that would head the queue *after* the full batches in
        front of it are taken; raises ``IndexError`` past the tail.
        """
        return self._items[index].arrival_s

    def expire(self, now: float) -> List[DecodeRequest]:
        """Remove and return every queued request whose deadline passed.

        Expiry sweeps the whole queue (not just the head): deadlines
        need not be monotone in arrival order once callers mix deadline
        classes.
        """
        expired = [r for r in self._items if r.expired(now)]
        if expired:
            self._items = deque(
                r for r in self._items if not r.expired(now)
            )
        return expired

    def take(self, limit: int) -> List[DecodeRequest]:
        """Dequeue up to ``limit`` requests in FIFO order."""
        out: List[DecodeRequest] = []
        while self._items and len(out) < limit:
            out.append(self._items.popleft())
        return out

    def drain(self) -> List[DecodeRequest]:
        """Dequeue everything (service shutdown path)."""
        return self.take(len(self._items))
