"""Request/result types and configuration of the decode service.

The service's unit of work is one noisy frame: a caller submits the
``(n,)`` channel-LLR vector of a received codeword as a
:class:`DecodeRequest` and gets a :class:`DecodeResult` carrying the
hard-decision codeword bits (or a typed rejection).  Everything that
shapes batching, deadlines and degradation lives in one
:class:`ServeConfig` value object so a service instance is fully
described by ``(code, config)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

# -- request lifecycle states ------------------------------------------
#: Decoded; ``bits``/``converged``/``iterations`` are populated.
STATUS_OK = "ok"
#: Never queued; ``reason`` says why (e.g. :data:`REASON_QUEUE_FULL`).
STATUS_REJECTED = "rejected"
#: Queued but dropped before decode because its deadline passed.
STATUS_EXPIRED = "expired"

# -- rejection / drop reasons ------------------------------------------
REASON_QUEUE_FULL = "queue_full"
REASON_DEADLINE = "deadline_expired"
REASON_SHUTDOWN = "shutdown"
REASON_BAD_FRAME = "bad_frame"


@dataclass
class ServeConfig:
    """All serving knobs in one place.

    Batching
    --------
    ``max_batch`` frames are packed per decode call; a partial batch is
    flushed once its oldest request has lingered ``max_linger_ms``
    (fill-or-timeout).  ``queue_capacity`` bounds the request queue —
    a full queue rejects new work with :data:`REASON_QUEUE_FULL`
    (backpressure) instead of growing without bound.

    Degradation
    -----------
    ``deadline_ms`` is the default per-request deadline (``None`` means
    no deadline).  The iteration-budget controller runs every batch with
    the full ``max_iterations`` while the queue is below
    ``shed_start`` × capacity and sheds linearly down to
    ``min_iterations`` as the queue fills — the paper's §2.2 observation
    that the zigzag schedule "saves about 10 iterations" turned into a
    live load-shedding knob (fewer iterations per frame = more frames
    per second, at a graceful BER cost).

    Decoder
    -------
    ``schedule`` / ``normalization`` / ``fmt`` / ``channel_scale`` /
    ``segments`` / ``backend`` are forwarded to
    :func:`repro.decode.batch.make_batch_decoder`; the default is the
    paper's 6-bit fixed-point zigzag path (``backend`` picks the array
    backend running its hot loop — see :mod:`repro.decode.backend`;
    results are bit-identical across backends).  ``workers > 1``
    decodes batches on a persistent process pool (batch order
    deterministic).

    Pipelining
    ----------
    ``pipeline_depth`` bounds how many micro-batches the engine keeps
    in flight on the pooled path: while batch ``k`` decodes in a
    worker, batch ``k+1``'s LLR prep and batch ``k+2``'s formation
    proceed on the submitting side, and completions are drained
    non-blocking — the software mirror of the paper's double-buffered
    I/O RAM (the core decodes frame ``k`` while frame ``k+1`` streams
    in).  ``None`` (the default) resolves to 1 for the inline path and
    ``2 * workers`` for the pooled path; any depth produces results
    bit-identical to depth 1 — only wall-clock overlap changes.
    ``pipeline_depth > 1`` with ``workers == 1`` promotes the single
    worker to a dedicated child process so host-side prep and
    completion genuinely overlap its decode.
    """

    max_batch: int = 32
    max_linger_ms: float = 5.0
    queue_capacity: int = 128
    deadline_ms: Optional[float] = None
    max_iterations: int = 30
    min_iterations: int = 10
    shed_start: float = 0.5
    schedule: str = "quantized-zigzag"
    normalization: float = 0.75
    fmt: Optional[object] = None
    channel_scale: float = 1.0
    segments: Optional[int] = None
    backend: Optional[str] = None
    workers: int = 1
    #: Max micro-batches in flight on the pooled path (``None`` = auto:
    #: 1 inline, ``2 * workers`` pooled); see *Pipelining* above.
    pipeline_depth: Optional[int] = None
    #: Wrap the array backend with per-kernel timers
    #: (``decode.kernel.*`` — see ``repro obs profile``).  In-process
    #: decode only: pooled workers build their own unwrapped decoder,
    #: since their kernel time would land in a worker-local registry.
    instrument_kernels: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.max_linger_ms < 0:
            raise ValueError("max_linger_ms must be non-negative")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when set")
        if not 0 < self.min_iterations <= self.max_iterations:
            raise ValueError(
                "need 0 < min_iterations <= max_iterations"
            )
        if not 0.0 <= self.shed_start <= 1.0:
            raise ValueError("shed_start must be in [0, 1]")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.pipeline_depth is not None and self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be positive when set")

    @property
    def max_linger_s(self) -> float:
        """Linger bound in seconds."""
        return self.max_linger_ms / 1e3


@dataclass
class DecodeRequest:
    """One queued frame awaiting decode."""

    request_id: int
    llrs: np.ndarray
    #: Arrival timestamp on the service clock (seconds).
    arrival_s: float
    #: Absolute deadline on the service clock, or ``None``.
    deadline_s: Optional[float] = None
    #: Opaque client identity for affinity dispatch (the distributed
    #: fabric's consistent-hash policy pins a client's frames to one
    #: worker); ``None`` means no affinity.
    client: Optional[str] = None
    #: MODCOD label of the frame (e.g. ``"1/2:bpsk:normal"``) for
    #: per-MODCOD accounting on the ACM path; a single-config service
    #: serves one code, so ``None`` means "the service's only config".
    modcod: Optional[str] = None

    def expired(self, now: float) -> bool:
        """True once the deadline (if any) has passed."""
        return self.deadline_s is not None and now >= self.deadline_s


@dataclass
class DecodeResult:
    """Outcome of one request — decoded bits or a typed drop.

    ``status`` is one of :data:`STATUS_OK` / :data:`STATUS_REJECTED` /
    :data:`STATUS_EXPIRED`; only :data:`STATUS_OK` results carry bits.
    ``iteration_budget`` records the (possibly shed) budget the batch
    ran with, so callers can tell a full-quality decode from a degraded
    one even when both converge.
    """

    request_id: int
    status: str
    reason: Optional[str] = None
    bits: Optional[np.ndarray] = None
    converged: bool = False
    iterations: int = 0
    iteration_budget: int = 0
    batch_seq: int = -1
    batch_occupancy: int = 0
    #: Submit-to-completion latency on the service clock (seconds).
    latency_s: float = float("nan")
    #: Time spent queued before the batch formed (seconds).
    queued_s: float = float("nan")
    #: MODCOD label echoed from the request (``None`` off the ACM path).
    modcod: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True for a decoded (possibly non-converged) frame."""
        return self.status == STATUS_OK
