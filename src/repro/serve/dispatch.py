"""Pluggable dispatch policies for the distributed decode fabric.

The fabric (:mod:`repro.serve.fabric`) admits requests into one shared
queue plus one pinned queue per worker; a dispatch policy decides, for
every request and every ready micro-batch, which decode worker gets the
work.  Two decisions, two hooks:

* :meth:`DispatchPolicy.route` runs at admission: it may pin a request
  to a specific worker (consistent hashing pins by client identity so
  one client's frames always land on the same worker — cache affinity,
  and per-client ordering for free), or return ``None`` to leave the
  request in the shared queue;
* :meth:`DispatchPolicy.select` runs at batch-dispatch time for shared
  batches: given the per-worker outstanding frame counts it picks a
  worker among those with window room.

Both hooks are pure functions of their arguments, so dispatch is
deterministic for a given request schedule — the property the fabric's
bit-identity guarantee leans on.  The NoC-interconnect flexible decoder
(PAPERS.md, Condo & Masera) is the hardware precedent: a routing fabric
between frame producers and decode elements, with the routing policy a
swappable block.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Optional, Sequence

from .api import DecodeRequest


def _stable_hash(key: str) -> int:
    """64-bit stable hash (process-seed independent, unlike ``hash``)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
    )


class DispatchPolicy:
    """Base policy: everything through the shared queue, least-loaded."""

    name = "base"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers

    # -- admission-time hook -------------------------------------------
    def route(self, request: DecodeRequest) -> Optional[int]:
        """Worker index this request is pinned to (``None`` = shared)."""
        return None

    # -- dispatch-time hook --------------------------------------------
    def select(self, outstanding: Sequence[int],
               eligible: Sequence[int]) -> int:
        """Pick a worker for a shared batch.

        ``outstanding`` maps worker index to frames currently in flight
        there; ``eligible`` lists the indices with window room (always
        non-empty — the fabric only asks when somebody has room).
        """
        raise NotImplementedError


class LeastLoadedDispatch(DispatchPolicy):
    """Send each shared batch to the emptiest worker (ties: lowest
    index, so dispatch is deterministic for a given schedule)."""

    name = "least-loaded"

    def select(self, outstanding: Sequence[int],
               eligible: Sequence[int]) -> int:
        return min(eligible, key=lambda w: (outstanding[w], w))


class RoundRobinDispatch(DispatchPolicy):
    """Cycle through workers regardless of load (the paper's functional
    units in lockstep; useful as a scaling baseline)."""

    name = "round-robin"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self._next = 0

    def select(self, outstanding: Sequence[int],
               eligible: Sequence[int]) -> int:
        eligible_set = set(eligible)
        for _ in range(self.workers):
            candidate = self._next
            self._next = (self._next + 1) % self.workers
            if candidate in eligible_set:
                return candidate
        return eligible[0]


class ConsistentHashDispatch(DispatchPolicy):
    """Pin each client to a worker via a consistent-hash ring.

    Every worker owns ``replicas`` virtual nodes on a 64-bit ring; a
    request's client key hashes to a point and walks clockwise to the
    next virtual node.  The classic property holds: when the worker
    count changes, only the keys owned by the vanished (or newly
    inserted) virtual nodes move — every other client keeps its worker,
    so warm per-client state survives rescales.  Requests without a
    client identity fall back to the shared queue and least-loaded
    selection.
    """

    name = "hash"

    def __init__(self, workers: int, *, replicas: int = 64) -> None:
        super().__init__(workers)
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        ring = []
        for worker in range(workers):
            for replica in range(replicas):
                ring.append((_stable_hash(f"w{worker}:r{replica}"), worker))
        ring.sort()
        self._ring_points = [point for point, _ in ring]
        self._ring_workers = [worker for _, worker in ring]

    def worker_for(self, key: str) -> int:
        """The ring owner of ``key``."""
        point = _stable_hash(key)
        index = bisect.bisect_right(self._ring_points, point)
        if index == len(self._ring_points):
            index = 0
        return self._ring_workers[index]

    def route(self, request: DecodeRequest) -> Optional[int]:
        if request.client is None:
            return None
        return self.worker_for(request.client)

    def select(self, outstanding: Sequence[int],
               eligible: Sequence[int]) -> int:
        return min(eligible, key=lambda w: (outstanding[w], w))


#: Registered policy names (the ``FabricConfig.dispatch`` values).
DISPATCH_POLICIES = {
    "least-loaded": LeastLoadedDispatch,
    "round-robin": RoundRobinDispatch,
    "hash": ConsistentHashDispatch,
}


def make_dispatch(name: str, workers: int, **kwargs) -> DispatchPolicy:
    """Instantiate a policy by registry name.

    Unknown names raise with the available choices listed, mirroring
    :func:`repro.decode.backend.resolve_backend`'s error shape.
    """
    try:
        cls = DISPATCH_POLICIES[name]
    except KeyError:
        available = ", ".join(sorted(DISPATCH_POLICIES))
        raise ValueError(
            f"unknown dispatch policy {name!r} (available: {available})"
        ) from None
    return cls(workers, **kwargs)
