"""Dynamic micro-batching: the fill-or-timeout policy.

The batched decoders amortize their per-call overhead over the frames
axis, so serving wants batches as full as possible — but a frame that
arrives into an idle service must not wait forever for company.  The
classic resolution (used by every batching inference server) is
*fill-or-timeout*:

* **fill** — the moment ``max_batch`` requests are queued, a batch is
  due immediately;
* **timeout** — otherwise a non-empty queue becomes due once its oldest
  request has lingered ``max_linger`` seconds.

The batcher is a pure policy object: given the queue and a clock value
it answers "is a batch due?", "when will one be due?" and "take it" —
it never reads the clock itself, which makes the policy exactly
reproducible under the tests' manual clock (deterministic under seeded
arrival order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .api import DecodeRequest
from .queue import BoundedRequestQueue


@dataclass(frozen=True)
class MicroBatcher:
    """Fill-or-timeout batch former over a :class:`BoundedRequestQueue`.

    Parameters
    ----------
    max_batch:
        Hard upper bound on frames per decode call.
    max_linger_s:
        Longest time the oldest queued request may wait before a
        partial batch is flushed.  ``0`` degrades to decode-on-arrival
        (every pump flushes whatever is queued).
    """

    max_batch: int
    max_linger_s: float

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.max_linger_s < 0:
            raise ValueError("max_linger_s must be non-negative")

    # ------------------------------------------------------------------
    def due(self, queue: BoundedRequestQueue, now: float) -> bool:
        """True when a batch should be formed at time ``now``."""
        depth = len(queue)
        if depth >= self.max_batch:
            return True
        oldest = queue.oldest_arrival()
        if oldest is None:
            return False
        # Same expression as next_due() (not `now - oldest >= linger`):
        # float addition is not associative, so mixing the two forms
        # lets a caller step the clock exactly to next_due() and still
        # find nothing due — an infinite loop in event-driven callers.
        return now >= oldest + self.max_linger_s

    def next_due(
        self, queue: BoundedRequestQueue, now: float
    ) -> Optional[float]:
        """Earliest time a batch will be due without new arrivals.

        ``None`` for an empty queue; ``now`` when already due.  The
        engine's pump loop sleeps until this moment (or the next
        arrival, whichever is sooner).
        """
        if self.due(queue, now):
            return now
        oldest = queue.oldest_arrival()
        if oldest is None:
            return None
        return oldest + self.max_linger_s

    def due_count(self, queue: BoundedRequestQueue, now: float) -> int:
        """How many batches repeated ``take`` calls would form at ``now``.

        Every ``max_batch``-full slice of the queue is due by fill; the
        trailing partial slice counts only once *its own* oldest request
        (the one at index ``full * max_batch``) has lingered out —
        the same rule ``due`` applies after the full slices are taken.
        The pipelined pump publishes this as the formation backlog
        (``serve.pipeline.backlog``): batches ready to go the moment an
        in-flight slot frees up.
        """
        depth = len(queue)
        full = depth // self.max_batch
        remainder = depth - full * self.max_batch
        if remainder:
            oldest = queue.arrival_at(full * self.max_batch)
            if now >= oldest + self.max_linger_s:
                return full + 1
        return full

    def take(self, queue: BoundedRequestQueue) -> List[DecodeRequest]:
        """Form one batch: up to ``max_batch`` requests, FIFO order."""
        return queue.take(self.max_batch)
