"""BBFRAME-aware byte gateway: bytes → noisy LLR frames → bytes.

``repro serve`` speaks bytes at both ends.  On the way in, the gateway
slices the input stream into BBFRAMEs (:mod:`repro.stream.bbframe`),
encodes each payload with the systematic IRA encoder, and passes the
codewords through a seeded AWGN channel — producing exactly the
``(n,)`` channel-LLR vectors the decode service consumes.  On the way
out, it takes the service's :class:`~repro.serve.api.DecodeResult`\\ s,
re-parses the decoded payloads with :meth:`BbFramer.try_deframe`
(corruption is *data* on the serve path, never an exception), and
reassembles the surviving data fields into the output byte stream.

Each direction returns per-frame records alongside the payload so the
CLI can report what happened to every frame — decoded/expired/rejected,
CRC intact or not — instead of silently dropping bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..channel.awgn import AwgnChannel
from ..codes.construction import LdpcCode
from ..encode.encoder import IraEncoder
from ..stream.bbframe import BbFramer
from .api import REASON_BAD_FRAME, STATUS_OK, DecodeResult


@dataclass(frozen=True)
class FrameOutcome:
    """What became of one submitted frame on the way back to bytes."""

    request_id: int
    status: str  #: Service status (``ok`` / ``rejected`` / ``expired``).
    reason: Optional[str]  #: Drop reason, or framing error text.
    crc_ok: bool  #: BBHEADER CRC-8 matched after decode.
    data_bits: int  #: Data-field bits contributed to the output.
    iterations: int
    converged: bool


class ByteStreamGateway:
    """Bytes → BBFRAME → encode → AWGN on submit; the reverse on poll.

    Parameters
    ----------
    code:
        The LDPC code; BBFRAMEs are sized to its ``k`` info bits
        (``K_ldpc`` payloads — no outer BCH in this reproduction).
    ebn0_db:
        AWGN operating point for the simulated channel.
    seed:
        Channel noise seed (``None`` draws OS entropy).
    matype:
        MATYPE header field stamped on every frame.
    """

    def __init__(
        self,
        code: LdpcCode,
        *,
        ebn0_db: float = 2.0,
        seed: Optional[int] = 2005,
        matype: int = 0x7200,
    ) -> None:
        self.code = code
        self.framer = BbFramer(code.k, matype=matype)
        self.encoder = IraEncoder(code)
        self.channel = AwgnChannel(ebn0_db, code.k / code.n, seed=seed)

    # ------------------------------------------------------------------
    def llr_frames(self, data: bytes) -> np.ndarray:
        """Turn a byte stream into ``(frames, n)`` channel LLRs."""
        payloads = self.framer.frame_stream(data)
        info = np.stack(payloads).astype(np.uint8)
        codewords = self.encoder.encode_batch(info)
        return self.channel.llrs(codewords)

    # ------------------------------------------------------------------
    def reassemble(
        self, results: List[DecodeResult]
    ) -> Tuple[bytes, List[FrameOutcome]]:
        """Decoded results (submit order) → output bytes + outcomes.

        Frames the service dropped contribute nothing; frames that
        decoded but fail the BBHEADER checks contribute their clamped
        data field (``try_deframe`` semantics) and are flagged
        ``crc_ok=False`` with :data:`REASON_BAD_FRAME`.
        """
        parts: List[np.ndarray] = []
        outcomes: List[FrameOutcome] = []
        for result in results:
            if result.status != STATUS_OK:
                outcomes.append(
                    FrameOutcome(
                        request_id=result.request_id,
                        status=result.status,
                        reason=result.reason,
                        crc_ok=False,
                        data_bits=0,
                        iterations=result.iterations,
                        converged=result.converged,
                    )
                )
                continue
            payload = result.bits[: self.code.k]
            parsed = self.framer.try_deframe(payload)
            parts.append(parsed.data_bits)
            outcomes.append(
                FrameOutcome(
                    request_id=result.request_id,
                    status=result.status,
                    reason=(
                        None if parsed.ok
                        else f"{REASON_BAD_FRAME}: {parsed.error}"
                    ),
                    crc_ok=parsed.ok,
                    data_bits=int(parsed.data_bits.size),
                    iterations=result.iterations,
                    converged=result.converged,
                )
            )
        bits = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint8)
        )
        usable = (bits.size // 8) * 8
        return np.packbits(bits[:usable]).tobytes(), outcomes
