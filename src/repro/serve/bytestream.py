"""BBFRAME-aware byte gateway: bytes → noisy LLR frames → bytes.

``repro serve`` speaks bytes at both ends.  On the way in, the gateway
slices the input stream into BBFRAMEs (:mod:`repro.stream.bbframe`),
optionally BCH-encodes each payload (the DVB-S2 concatenated FEC:
BBFRAME → BCH → LDPC), encodes with the systematic IRA encoder, and
passes the codewords through a seeded channel — producing exactly the
``(n,)`` channel-LLR vectors the decode service consumes.  On the way
out, it takes the service's :class:`~repro.serve.api.DecodeResult`\\ s,
BCH-decodes when the outer code is on (correcting up to ``t`` residual
bit errors the LDPC decoder left behind), re-parses the decoded
payloads with :meth:`BbFramer.try_deframe` (corruption is *data* on the
serve path, never an exception), and reassembles the surviving data
fields into the output byte stream.

Each direction returns per-frame records alongside the payload so the
CLI can report what happened to every frame — decoded/expired/rejected,
BCH corrections spent, CRC intact or not — instead of silently
dropping bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..channel.awgn import AwgnChannel
from ..codes.construction import LdpcCode
from ..encode.encoder import IraEncoder
from ..stream.bbframe import BbFramer
from .api import REASON_BAD_FRAME, STATUS_OK, DecodeResult


@dataclass(frozen=True)
class FrameOutcome:
    """What became of one submitted frame on the way back to bytes."""

    request_id: int
    status: str  #: Service status (``ok`` / ``rejected`` / ``expired``).
    reason: Optional[str]  #: Drop reason, or framing error text.
    crc_ok: bool  #: BBHEADER CRC-8 matched after decode.
    data_bits: int  #: Data-field bits contributed to the output.
    iterations: int
    converged: bool
    #: Bit errors the outer BCH decoder corrected (0 without BCH).
    bch_corrected: int = 0
    #: BCH decode succeeded (always True without BCH; False means more
    #: than ``t`` residual errors — the payload went through uncorrected).
    bch_ok: bool = True


class ByteStreamGateway:
    """Bytes → BBFRAME → [BCH] → encode → channel on submit; reverse on
    poll.

    Parameters
    ----------
    code:
        The LDPC code; BBFRAMEs are sized to its ``k`` info bits, or to
        the BCH payload ``k_bch`` when the outer code is enabled.
    ebn0_db:
        AWGN operating point for the simulated channel.
    seed:
        Channel noise seed (``None`` draws OS entropy).
    matype:
        MATYPE header field stamped on every frame.
    bch_t:
        Outer-BCH error-correction capability; ``None`` (default)
        disables the outer code (bare-LDPC payloads, the legacy
        behaviour).  With BCH on, each BBFRAME payload is shortened to
        ``code.k - n_parity`` bits and the concatenated BCH+LDPC chain
        runs both ways.
    bch_m:
        Galois-field degree for the BCH code; ``None`` picks the
        smallest ``m`` with ``2^m - 1 >= code.k`` (the DVB-S2 sizing
        rule: the BCH codeword length matches ``K_ldpc``).
    channel:
        Prebuilt channel object (``llrs(bits)`` accepting a
        ``(frames, n)`` batch, e.g. a :func:`repro.channel.build_channel`
        cell) replacing the seeded AWGN default; ``ebn0_db`` and
        ``seed`` are then ignored.
    """

    def __init__(
        self,
        code: LdpcCode,
        *,
        ebn0_db: float = 2.0,
        seed: Optional[int] = 2005,
        matype: int = 0x7200,
        bch_t: Optional[int] = None,
        bch_m: Optional[int] = None,
        channel=None,
    ) -> None:
        self.code = code
        self.bch = None
        payload_bits = code.k
        if bch_t is not None:
            from ..bch.code import BchCode

            if bch_m is None:
                bch_m = 1
                while (1 << bch_m) - 1 < code.k:
                    bch_m += 1
            probe = BchCode(bch_m, bch_t)
            if probe.n_parity >= code.k:
                raise ValueError(
                    f"BCH(m={bch_m}, t={bch_t}) parity "
                    f"({probe.n_parity} bits) does not fit inside "
                    f"k={code.k}"
                )
            self.bch = BchCode(bch_m, bch_t, k=code.k - probe.n_parity)
            payload_bits = self.bch.k
        self.framer = BbFramer(payload_bits, matype=matype)
        self.encoder = IraEncoder(code)
        if channel is None:
            channel = AwgnChannel(ebn0_db, code.k / code.n, seed=seed)
        self.channel = channel

    # ------------------------------------------------------------------
    def llr_frames(self, data: bytes) -> np.ndarray:
        """Turn a byte stream into ``(frames, n)`` channel LLRs."""
        payloads = self.framer.frame_stream(data)
        info = np.stack(payloads).astype(np.uint8)
        if self.bch is not None:
            info = np.stack([self.bch.encode(row) for row in info])
        codewords = self.encoder.encode_batch(info)
        return self.channel.llrs(codewords)

    # ------------------------------------------------------------------
    def reassemble(
        self, results: List[DecodeResult]
    ) -> Tuple[bytes, List[FrameOutcome]]:
        """Decoded results (submit order) → output bytes + outcomes.

        Frames the service dropped contribute nothing; frames that
        decoded but fail the BBHEADER checks contribute their clamped
        data field (``try_deframe`` semantics) and are flagged
        ``crc_ok=False`` with :data:`REASON_BAD_FRAME`.  With the outer
        BCH on, each decoded payload is BCH-decoded first: up to ``t``
        residual LDPC bit errors are corrected (and counted), more than
        ``t`` flows through uncorrected with ``bch_ok=False`` — the CRC
        then renders the verdict, still as data.
        """
        parts: List[np.ndarray] = []
        outcomes: List[FrameOutcome] = []
        for result in results:
            if result.status != STATUS_OK:
                outcomes.append(
                    FrameOutcome(
                        request_id=result.request_id,
                        status=result.status,
                        reason=result.reason,
                        crc_ok=False,
                        data_bits=0,
                        iterations=result.iterations,
                        converged=result.converged,
                    )
                )
                continue
            payload = result.bits[: self.code.k]
            bch_corrected = 0
            bch_ok = True
            if self.bch is not None:
                decoded = self.bch.decode(payload)
                bch_corrected = decoded.corrected
                bch_ok = decoded.success
                payload = self.bch.extract_message(decoded.bits)
            parsed = self.framer.try_deframe(payload)
            parts.append(parsed.data_bits)
            outcomes.append(
                FrameOutcome(
                    request_id=result.request_id,
                    status=result.status,
                    reason=(
                        None if parsed.ok
                        else f"{REASON_BAD_FRAME}: {parsed.error}"
                    ),
                    crc_ok=parsed.ok,
                    data_bits=int(parsed.data_bits.size),
                    iterations=result.iterations,
                    converged=result.converged,
                    bch_corrected=bch_corrected,
                    bch_ok=bch_ok,
                )
            )
        bits = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint8)
        )
        usable = (bits.size // 8) * 8
        return np.packbits(bits[:usable]).tobytes(), outcomes
