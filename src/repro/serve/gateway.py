"""Async network front door for the decode fabric.

:class:`FabricGateway` exposes a :class:`~repro.serve.fabric.DecodeFabric`
over TCP with a deliberately boring protocol: **one JSON object per
line** in each direction (newline-delimited, UTF-8).  Requests:

``{"op": "ping"}``
    Liveness probe → ``{"ok": true, "op": "ping", "workers": N}``.
``{"op": "stats"}``
    Cross-worker merged registry snapshot →
    ``{"ok": true, "op": "stats", "snapshot": {...}}``.
``{"op": "decode", "id": <any>, "llrs": [...], ...}``
    Decode one frame.  ``llrs`` is either a JSON list of floats or —
    cheaper on the wire — ``llrs_f32``: little-endian ``float32`` bytes
    hex-encoded.  Optional ``deadline_ms`` (relative, propagated as an
    absolute fabric deadline) and ``client`` (affinity key for hash
    dispatch).  The response echoes ``id`` and carries ``status``
    (``ok`` / ``rejected`` / ``expired``), packed codeword bits as hex
    (``bits``, via ``np.packbits``) plus ``n`` for exact unpacking,
    ``iterations``, ``converged`` and ``latency_ms``.

Flow control is per connection: at most ``window`` decodes may be in
flight per client; when a client hits its window the gateway simply
stops reading its socket until completions drain, so backpressure is
plain TCP — a fast client cannot starve others or flood the admission
queue past its share.  Responses are written in completion order, which
(by the fabric's strict chunk-order merge) is deterministic for a given
request schedule.

The gateway owns one background *pump task* that advances the fabric,
routes completions back to their connections, and sleeps until the
fabric's ``next_due`` — the same event-loop discipline as the
single-process service, lifted onto asyncio.

:class:`FabricClient` is the matching blocking client (used by
``repro loadgen --connect`` and the tests): it pipelines up to
``window`` requests and reads responses as they land.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from typing import Dict, Optional, Tuple

import numpy as np

from .fabric import DecodeFabric

#: Pump idle sleep while chunks are in flight (seconds).
_BUSY_TICK_S = 0.001
#: Pump sleep when completely idle (seconds) — bounded so new arrivals
#: admitted by connection handlers are picked up promptly.
_IDLE_TICK_S = 0.02


def _decode_llrs(message: dict, n: int) -> np.ndarray:
    """Extract the LLR vector from a decode message (list or hex)."""
    if "llrs_f32" in message:
        raw = bytes.fromhex(message["llrs_f32"])
        llrs = np.frombuffer(raw, dtype="<f4").astype(np.float64)
    elif "llrs" in message:
        llrs = np.asarray(message["llrs"], dtype=np.float64)
    else:
        raise ValueError("decode needs 'llrs' or 'llrs_f32'")
    if llrs.shape != (n,):
        raise ValueError(f"expected {n} LLRs, got {llrs.shape}")
    return llrs


def pack_bits_hex(bits: np.ndarray) -> str:
    """Codeword bits → hex string of ``np.packbits`` bytes."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes().hex()


def unpack_bits_hex(text: str, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits_hex` for an ``n``-bit codeword."""
    packed = np.frombuffer(bytes.fromhex(text), dtype=np.uint8)
    return np.unpackbits(packed)[:n]


class _Connection:
    """Per-client state: writer, in-flight count, drain signal."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.inflight = 0
        self.drained = asyncio.Event()
        self.drained.set()
        self.closed = False


class FabricGateway:
    """Asyncio TCP server admitting remote frames into a fabric.

    Parameters
    ----------
    fabric:
        The decode plane (constructed and owned by the caller).
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    window:
        Per-connection in-flight decode cap (the backpressure knob).
    """

    def __init__(
        self,
        fabric: DecodeFabric,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window: int = 64,
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.fabric = fabric
        self.host = host
        self.port = port
        self.window = window
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task: Optional[asyncio.Task] = None
        #: fabric request id -> (connection, client correlation id).
        self._routes: Dict[int, Tuple[_Connection, object]] = {}
        self._connections = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, start serving, and start the pump task."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.get_running_loop().create_task(
            self._pump_loop()
        )

    async def stop(self) -> None:
        """Stop accepting, finish in-flight work, close the fabric."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        # Flush inside the loop's executor-free context is fine: the
        # fabric blocks on its own worker futures, not the loop.
        self.fabric.flush()
        self._route_completions()
        self.fabric.close()

    # ------------------------------------------------------------------
    async def _pump_loop(self) -> None:
        fabric = self.fabric
        while True:
            fabric.pump()
            self._route_completions()
            now = fabric.clock()
            due = fabric.next_due(now)
            if fabric._pending:
                delay = _BUSY_TICK_S
            elif due is None:
                delay = _IDLE_TICK_S
            else:
                delay = min(max(due - now, 0.0), _IDLE_TICK_S)
            await asyncio.sleep(delay)

    def _route_completions(self) -> None:
        for result in self.fabric.poll():
            route = self._routes.pop(result.request_id, None)
            if route is None:
                continue  # locally submitted (not via a connection)
            conn, correlation = route
            response = {
                "ok": True,
                "op": "decode",
                "id": correlation,
                "status": result.status,
            }
            if result.ok:
                response.update(
                    bits=pack_bits_hex(result.bits),
                    n=int(self.fabric.code.n),
                    converged=bool(result.converged),
                    iterations=int(result.iterations),
                    iteration_budget=int(result.iteration_budget),
                )
            else:
                response["reason"] = result.reason
            latency = result.latency_s
            if latency == latency:  # not NaN
                response["latency_ms"] = round(latency * 1e3, 3)
            conn.inflight -= 1
            if conn.inflight < self.window:
                conn.drained.set()
            if not conn.closed:
                try:
                    conn.writer.write(
                        (json.dumps(response) + "\n").encode()
                    )
                except (ConnectionError, RuntimeError):
                    conn.closed = True

    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        conn = _Connection(writer)
        self._connections += 1
        client_tag = f"conn{self._connections}"
        try:
            while True:
                # Backpressure: a client at its window is not read from
                # until completions drain (TCP pushes back upstream).
                while conn.inflight >= self.window:
                    conn.drained.clear()
                    await conn.drained.wait()
                line = await reader.readline()
                if not line:
                    break
                await self._handle_line(conn, client_tag, line, writer)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            conn.closed = True
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _handle_line(
        self,
        conn: _Connection,
        client_tag: str,
        line: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            message = json.loads(line)
            op = message.get("op")
            if op == "ping":
                writer.write((json.dumps({
                    "ok": True,
                    "op": "ping",
                    "workers": self.fabric.config.workers,
                    "dispatch": self.fabric.config.dispatch,
                }) + "\n").encode())
                return
            if op == "stats":
                writer.write((json.dumps({
                    "ok": True,
                    "op": "stats",
                    "snapshot": self.fabric.merged_snapshot(),
                }) + "\n").encode())
                return
            if op != "decode":
                raise ValueError(f"unknown op {op!r}")
            llrs = _decode_llrs(message, self.fabric.code.n)
            now = self.fabric.clock()
            deadline_s = None
            if message.get("deadline_ms") is not None:
                deadline_s = now + float(message["deadline_ms"]) / 1e3
            request_id = self.fabric.submit(
                llrs,
                deadline_s=deadline_s,
                now=now,
                client=message.get("client", client_tag),
            )
            conn.inflight += 1
            self._routes[request_id] = (conn, message.get("id"))
        except (ValueError, KeyError, TypeError) as exc:
            writer.write((json.dumps({
                "ok": False,
                "error": str(exc),
            }) + "\n").encode())


class FabricClient:
    """Blocking line-protocol client with request pipelining.

    ``decode`` pipelines: it returns as soon as the request is written,
    handing completed responses to the constructor's ``on_response``
    callback as they arrive (possibly during a later ``decode`` call,
    when the pipeline is full).  ``drain`` blocks until every
    outstanding response landed.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        window: int = 64,
        timeout_s: float = 30.0,
        on_response=None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.on_response = on_response
        self._sock = socket.create_connection(
            (host, port), timeout=timeout_s
        )
        self._file = self._sock.makefile("rwb")
        self.inflight = 0

    # ------------------------------------------------------------------
    def _send(self, message: dict) -> None:
        self._file.write((json.dumps(message) + "\n").encode())
        self._file.flush()

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("gateway closed the connection")
        return json.loads(line)

    def request(self, message: dict) -> dict:
        """Strict RPC (no pipelining): send one line, read one line."""
        if self.inflight:
            raise RuntimeError("drain pipelined decodes before RPCs")
        self._send(message)
        return self._recv()

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        """The gateway's merged cross-worker snapshot."""
        return self.request({"op": "stats"})["snapshot"]

    # ------------------------------------------------------------------
    def decode(
        self,
        llrs: np.ndarray,
        *,
        correlation=None,
        deadline_ms: Optional[float] = None,
        client: Optional[str] = None,
    ) -> None:
        """Pipeline one decode; blocks only when the window is full."""
        while self.inflight >= self.window:
            self._consume_one()
        message = {
            "op": "decode",
            "id": correlation,
            "llrs_f32": np.asarray(llrs, dtype="<f4").tobytes().hex(),
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        if client is not None:
            message["client"] = client
        self._send(message)
        self.inflight += 1

    def _consume_one(self) -> None:
        response = self._recv()
        if response.get("op") == "decode":
            self.inflight -= 1
        if self.on_response is not None:
            self.on_response(response)

    def drain(self) -> None:
        """Read responses until nothing is outstanding."""
        while self.inflight:
            self._consume_one()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "FabricClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def run_remote_loadgen(
    host: str,
    port: int,
    *,
    frame_pool,
    offered_fps: float,
    duration_s: float,
    window: int = 64,
    deadline_ms: Optional[float] = None,
    clients: int = 0,
    timeout_s: float = 60.0,
) -> dict:
    """Closed-loop load generation against a *running* gateway.

    The remote twin of :func:`~repro.serve.loadgen.run_loadgen`: frames
    from ``frame_pool`` are offered at ``offered_fps`` over one
    pipelined connection (at most ``window`` in flight), decoded bits
    are checked against the pool's ground truth, and the gateway's
    merged snapshot is fetched at the end.  Latency here is measured at
    the client — it includes the wire and the gateway event loop, not
    just the fabric.
    """
    if offered_fps <= 0:
        raise ValueError("offered_fps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    n = frame_pool.llrs.shape[1]
    counts = {"ok": 0, "rejected": 0, "expired": 0}
    outcome = {
        "frame_errors": 0, "bit_errors": 0, "protocol_errors": 0,
    }
    latencies_ms: list = []

    def on_response(response: dict) -> None:
        if not response.get("ok"):
            outcome["protocol_errors"] += 1
            return
        if response.get("op") != "decode":
            return
        status = response["status"]
        counts[status] = counts.get(status, 0) + 1
        if "latency_ms" in response:
            latencies_ms.append(response["latency_ms"])
        if status == "ok":
            bits = unpack_bits_hex(response["bits"], n)
            truth = frame_pool.codewords[
                response["id"] % len(frame_pool)
            ]
            wrong = int(np.count_nonzero(bits != truth))
            if wrong:
                outcome["frame_errors"] += 1
                outcome["bit_errors"] += wrong

    total = max(1, int(offered_fps * duration_s))
    period = 1.0 / offered_fps
    with FabricClient(
        host, port,
        window=window, timeout_s=timeout_s, on_response=on_response,
    ) as client:
        start = time.monotonic()
        for i in range(total):
            delay = start + i * period - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            client.decode(
                frame_pool.llrs[i % len(frame_pool)],
                correlation=i,
                deadline_ms=deadline_ms,
                client=f"client{i % clients}" if clients > 0 else None,
            )
        client.drain()
        wall = time.monotonic() - start
        snapshot = client.stats()
    latencies_ms.sort()

    def percentile(q: float) -> float:
        if not latencies_ms:
            return float("nan")
        rank = min(
            len(latencies_ms) - 1,
            max(0, int(round(q / 100.0 * (len(latencies_ms) - 1)))),
        )
        return latencies_ms[rank]

    served = counts["ok"]
    return {
        "offered_fps": offered_fps,
        "duration_s": duration_s,
        "submitted": total,
        "completed": served,
        "rejected": counts.get("rejected", 0),
        "expired": counts.get("expired", 0),
        "protocol_errors": outcome["protocol_errors"],
        "frame_errors": outcome["frame_errors"],
        "bit_errors": outcome["bit_errors"],
        "wall_s": wall,
        "served_fps": served / wall if wall > 0 else float("nan"),
        "latency_p50_ms": percentile(50),
        "latency_p99_ms": percentile(99),
        "server_snapshot": snapshot,
    }


def serve_fabric(
    fabric: DecodeFabric,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    window: int = 64,
    duration_s: Optional[float] = None,
    ready: Optional[object] = None,
    chaos_kill_worker_after_s: Optional[float] = None,
) -> None:
    """Run a gateway until ``duration_s`` elapses (or forever).

    Blocking entry point for ``repro fabric``.  ``ready`` is an
    optional callable invoked with the gateway once the port is bound
    (the CLI uses it to write a port file).
    ``chaos_kill_worker_after_s`` SIGKILLs worker 0 once, that many
    seconds in — the soak test's crash-recovery probe.
    """

    async def _main() -> None:
        gateway = FabricGateway(
            fabric, host=host, port=port, window=window
        )
        await gateway.start()
        if ready is not None:
            ready(gateway)
        start = time.monotonic()
        killed = False
        try:
            while True:
                await asyncio.sleep(0.05)
                elapsed = time.monotonic() - start
                if (
                    chaos_kill_worker_after_s is not None
                    and not killed
                    and elapsed >= chaos_kill_worker_after_s
                ):
                    killed = True
                    try:
                        fabric.kill_worker(0)
                    except RuntimeError:
                        pass  # serial fallback: nothing to kill
                if duration_s is not None and elapsed >= duration_s:
                    break
        finally:
            await gateway.stop()

    asyncio.run(_main())
