"""Degradation policy: the iteration-budget controller.

Paper §2.2 measures that the zigzag (turbo-style) schedule reaches the
same communications performance as flooding while "saving about 10
iterations" — i.e. iteration count is the throughput lever (Eq. 7/8:
cycles per frame grow linearly with iterations).  The serve layer turns
that lever into a live controller: while the request queue is
comfortable every batch gets the full iteration budget, and as the
queue fills the budget is shed linearly down to a floor.  Fewer
iterations per frame raise frames/s immediately, which is what drains
the queue — a graceful-degradation loop in which overload costs a
little BER on the hardest frames (the easy ones converge early and are
frozen anyway) instead of unbounded queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IterationBudgetController:
    """Linear shed of the per-batch iteration budget under queue pressure.

    Parameters
    ----------
    max_iterations:
        Budget while the queue fill fraction is at or below
        ``shed_start``.
    min_iterations:
        Floor reached when the queue is full.
    shed_start:
        Queue fill fraction where shedding begins.
    """

    max_iterations: int
    min_iterations: int
    shed_start: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.min_iterations <= self.max_iterations:
            raise ValueError(
                "need 0 < min_iterations <= max_iterations"
            )
        if not 0.0 <= self.shed_start <= 1.0:
            raise ValueError("shed_start must be in [0, 1]")

    def budget(self, fill: float) -> int:
        """Iteration budget for a batch formed at queue fill ``fill``.

        Piecewise linear: ``max_iterations`` up to ``shed_start``,
        then a straight line down to ``min_iterations`` at ``fill = 1``
        (values above 1 clamp to the floor).
        """
        if fill <= self.shed_start:
            return self.max_iterations
        if fill >= 1.0:
            return self.min_iterations
        span = 1.0 - self.shed_start
        frac = (fill - self.shed_start) / span
        shed = frac * (self.max_iterations - self.min_iterations)
        return max(self.min_iterations, self.max_iterations - int(shed))
