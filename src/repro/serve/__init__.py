"""repro.serve — streaming decode service over the batched decoders.

The subsystem turns the offline Monte-Carlo decode stack into an
online service: requests enter a bounded queue, a fill-or-timeout
micro-batcher packs same-rate frames into ``(frames, n)`` batches for
the vectorized decoders, and a layered degradation policy (converged-
frame freezing → iteration shedding → deadline expiry → admission
rejection) keeps latency bounded under overload.  See
``docs/serving.md`` for the architecture tour.
"""

from .api import (
    REASON_BAD_FRAME,
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    REASON_SHUTDOWN,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    DecodeRequest,
    DecodeResult,
    ServeConfig,
)
from .batcher import MicroBatcher
from .bytestream import ByteStreamGateway, FrameOutcome
from .dispatch import (
    DISPATCH_POLICIES,
    ConsistentHashDispatch,
    DispatchPolicy,
    LeastLoadedDispatch,
    RoundRobinDispatch,
    make_dispatch,
)
from .engine import DecodeService
from .fabric import DecodeFabric, FabricConfig
from .gateway import (
    FabricClient,
    FabricGateway,
    pack_bits_hex,
    run_remote_loadgen,
    serve_fabric,
    unpack_bits_hex,
)
from .loadgen import (
    FramePool,
    LoadgenResult,
    make_frame_pool,
    run_loadgen,
    sweep_offered_rates,
)
from .policy import IterationBudgetController
from .queue import BoundedRequestQueue
from .report import ServiceReport, snapshot_percentile

__all__ = [
    "BoundedRequestQueue",
    "ByteStreamGateway",
    "ConsistentHashDispatch",
    "DISPATCH_POLICIES",
    "DecodeFabric",
    "DecodeRequest",
    "DecodeResult",
    "DecodeService",
    "DispatchPolicy",
    "FabricClient",
    "FabricConfig",
    "FabricGateway",
    "FrameOutcome",
    "FramePool",
    "IterationBudgetController",
    "LeastLoadedDispatch",
    "LoadgenResult",
    "MicroBatcher",
    "RoundRobinDispatch",
    "REASON_BAD_FRAME",
    "REASON_DEADLINE",
    "REASON_QUEUE_FULL",
    "REASON_SHUTDOWN",
    "STATUS_EXPIRED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ServeConfig",
    "ServiceReport",
    "make_dispatch",
    "make_frame_pool",
    "pack_bits_hex",
    "run_loadgen",
    "run_remote_loadgen",
    "serve_fabric",
    "snapshot_percentile",
    "sweep_offered_rates",
    "unpack_bits_hex",
]
