"""The distributed decode fabric: one front door, N decode workers.

:class:`DecodeFabric` scales the single-process
:class:`~repro.serve.engine.DecodeService` across CPU cores while
keeping its contract: same ``submit → pump → poll → flush`` API, same
typed results, same metric names, deterministic accounting.  The layout
mirrors the paper's hardware decomposition — one admission stage
feeding parallel functional units — lifted to processes:

* the **fabric** (this process) owns admission: a shared bounded lane
  plus one pinned lane per worker, the fill-or-timeout micro-batcher,
  deadline expiry while queued, and rejection at the door;
* each **worker** is a dedicated child process (a one-worker
  :class:`~repro.sim.pool.PersistentPool`) running its *own*
  :class:`DecodeService` over its own
  :class:`~repro.obs.registry.MetricsRegistry`;
* a ready micro-batch ("chunk") travels to a worker chosen by the
  dispatch policy (:mod:`repro.serve.dispatch`), is decoded there, and
  comes back as typed results **plus the worker's registry delta for
  exactly that chunk** — metrics travel with the work, so merged
  accounting stays exact even across worker crashes.

Failure semantics: a worker that dies mid-chunk (OOM-killed,
segfaulted) fails that chunk's future; the fabric respawns the worker
under the same configuration (``pool.worker_restart``) and **redrives**
the chunk to it (``fabric.chunks.redriven``).  The dead worker's
partial metrics never merged, and the redriven decode recounts them, so
``completed + rejected + expired == submitted`` holds through crashes.

Determinism: chunks complete in dispatch-sequence order (the engine's
strict-merge rule, lifted fabric-wide), the dispatch policies are pure
functions of the request schedule, and each chunk decodes as one batch
with the composition the fabric formed — so with shedding neutral the
decoded bits are identical to the single-service path for any worker
count.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..codes.construction import LdpcCode
from ..obs.publish import snapshot_delta
from ..obs.registry import MetricsRegistry, get_registry, merge_snapshots
from ..obs.trace import TraceRecorder
from ..sim.pool import PersistentPool
from .api import (
    REASON_QUEUE_FULL,
    REASON_DEADLINE,
    STATUS_EXPIRED,
    STATUS_REJECTED,
    DecodeRequest,
    DecodeResult,
    ServeConfig,
)
from .batcher import MicroBatcher
from .dispatch import DISPATCH_POLICIES, make_dispatch
from .engine import OCCUPANCY_BUCKETS
from .queue import BoundedRequestQueue
from .report import ServiceReport


@dataclass
class FabricConfig:
    """Shape of the fabric: worker count, dispatch, flow control.

    ``window`` bounds in-flight chunks per worker (1 = lockstep,
    2 = one decoding + one queued, the default — enough to hide the
    round-trip without letting any worker hoard the backlog).  When the
    embedded serve config asks for a deeper pipeline
    (``serve.pipeline_depth > window``) the fabric widens each worker's
    window to match, so every worker runs a pipelined service: the
    fabric preps and ships chunk ``k+1`` while the worker decodes
    chunk ``k``, exactly like the single-service pipelined pump.
    ``dispatch`` names a policy from
    :data:`~repro.serve.dispatch.DISPATCH_POLICIES`; ``hash_replicas``
    sizes the consistent-hash ring.  All batching/degradation/decoder
    knobs stay in the embedded :class:`~repro.serve.api.ServeConfig`
    (its ``workers`` field is ignored here — fabric workers each run a
    serial decode; parallelism comes from the fabric itself).
    """

    workers: int = 2
    dispatch: str = "least-loaded"
    window: int = 2
    hash_replicas: int = 64
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.window < 1:
            raise ValueError("window must be positive")
        if self.hash_replicas < 1:
            raise ValueError("hash_replicas must be positive")
        if self.dispatch not in DISPATCH_POLICIES:
            available = ", ".join(sorted(DISPATCH_POLICIES))
            raise ValueError(
                f"unknown dispatch policy {self.dispatch!r} "
                f"(available: {available})"
            )


# ----------------------------------------------------------------------
# Worker-side machinery.  Each child process hosts exactly one fabric
# worker; the dict is keyed by worker index anyway so the no-fork
# serial fallback (all "workers" inline in the fabric process) keeps
# per-worker state separate and stays functionally identical.
_FABRIC_WORKERS: dict = {}


def _init_fabric_worker(
    code: LdpcCode, config: ServeConfig, index: int
) -> None:
    """Pool initializer: build this worker's service + registry."""
    from .engine import DecodeService

    registry = MetricsRegistry()
    service = DecodeService(code, config, registry=registry)
    _FABRIC_WORKERS[index] = {
        "service": service,
        "registry": registry,
        "baseline": registry.snapshot(),
    }


def _fabric_worker_pid(index: int) -> int:
    """Pool entry point: the worker process id (for chaos testing)."""
    return os.getpid()


def _fabric_decode_chunk(
    index: int,
    llrs: np.ndarray,
    arrivals: np.ndarray,
    deadlines: list,
    fill_hint: float,
) -> Tuple[List[DecodeResult], dict, int]:
    """Pool entry point: decode one fabric chunk on worker ``index``.

    Frames are submitted with their fabric arrival timestamps (the
    monotonic clock is system-wide on the platforms the fork pool runs
    on, so latency spans fabric queueing) and absolute deadlines, then
    flushed as one batch.  Returns the per-frame results in submission
    order, the worker registry's **delta for this chunk** (the fabric
    merges it into that worker's accumulator — results and their
    metrics commit atomically), and the worker pid.
    """
    state = _FABRIC_WORKERS[index]
    service = state["service"]
    service.set_load_hint(fill_hint)
    ids = []
    for i in range(llrs.shape[0]):
        ids.append(
            service.submit(
                llrs[i],
                deadline_s=deadlines[i],
                now=float(arrivals[i]),
            )
        )
    service.flush()
    position = {rid: i for i, rid in enumerate(ids)}
    out: List[Optional[DecodeResult]] = [None] * len(ids)
    for result in service.poll():
        out[position[result.request_id]] = result
    snapshot = state["registry"].snapshot()
    delta = snapshot_delta(state["baseline"], snapshot)
    state["baseline"] = snapshot
    # The fabric counted these frames submitted at its door; dropping
    # the worker-side count keeps the merged total exact.
    delta.get("counters", {}).pop("serve.requests.submitted", None)
    return out, delta, os.getpid()


class DecodeFabric:
    """Sharded decode plane behind a :class:`DecodeService`-shaped API.

    Parameters
    ----------
    code:
        The code every submitted frame belongs to.
    config:
        Fabric shape; see :class:`FabricConfig`.
    registry:
        The fabric-side metrics sink (admission counters, chunk
        round-trips).  :meth:`merged_snapshot` folds the per-worker
        registries in on top.
    trace:
        Optional trace recorder; ``fabric_chunk`` / ``fabric_redrive`` /
        ``pool_worker_restart`` events plus the usual ``serve_drop``\\ s.
    clock:
        Monotonic-seconds callable; tests inject a manual clock.
    """

    def __init__(
        self,
        code: LdpcCode,
        config: Optional[FabricConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        clock=time.monotonic,
    ) -> None:
        self.code = code
        self.config = config if config is not None else FabricConfig()
        self.registry = registry if registry is not None else get_registry()
        self.trace = trace
        self.clock = clock
        serve = self.config.serve
        workers = self.config.workers
        kwargs = (
            {"replicas": self.config.hash_replicas}
            if self.config.dispatch == "hash" else {}
        )
        self.dispatch = make_dispatch(
            self.config.dispatch, workers, **kwargs
        )
        # Workers decode serially (fabric-level parallelism), own their
        # deadline-free config: deadlines arrive absolute per frame.
        # pipeline_depth is pinned to 1 so workers never nest pools of
        # their own — pipelining happens fabric-side via the window.
        self._worker_config = replace(
            serve,
            workers=1,
            pipeline_depth=1,
            deadline_ms=None,
            max_linger_ms=0.0,
            queue_capacity=max(serve.queue_capacity, serve.max_batch),
        )
        #: Effective per-worker in-flight chunk bound (see FabricConfig).
        self.window = max(self.config.window, serve.pipeline_depth or 0)
        self.batcher = MicroBatcher(serve.max_batch, serve.max_linger_s)
        self._shared = BoundedRequestQueue(serve.queue_capacity)
        self._pinned = [
            BoundedRequestQueue(serve.queue_capacity)
            for _ in range(workers)
        ]
        self._pools: List[PersistentPool] = []
        self._worker_registries = [MetricsRegistry() for _ in range(workers)]
        self._worker_pids: List[Optional[int]] = [None] * workers
        for index in range(workers):
            pool = PersistentPool(
                1,
                label=f"fabric worker {index}",
                dedicated=True,
                registry=self.registry,
                trace=self.trace,
            )
            pool.configure(
                _init_fabric_worker,
                (code, self._worker_config, index),
                key=("fabric", index, id(code), id(self._worker_config)),
            )
            self._pools.append(pool)
        #: Frames / chunks currently at each worker (dispatch inputs).
        self._outstanding = [0] * workers
        self._chunks_in_flight = [0] * workers
        self._next_id = 0
        self._chunk_seq = 0
        self._next_merge_seq = 0
        #: seq -> (worker, future, requests, meta) strict-order merge.
        self._pending: Dict[int, tuple] = {}
        self._completed: List[DecodeResult] = []
        self._closed = False
        self._warm_up()

    @property
    def serial(self) -> bool:
        """True on no-``fork`` platforms: workers run inline (degraded
        but functionally identical)."""
        return any(pool.serial for pool in self._pools)

    def _warm_up(self) -> None:
        """Fork the workers now and learn their pids (chaos targets)."""
        futures = [
            pool.submit(_fabric_worker_pid, index)
            for index, pool in enumerate(self._pools)
        ]
        for index, future in enumerate(futures):
            self._worker_pids[index] = future.result()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        llrs: np.ndarray,
        *,
        deadline_s: Optional[float] = None,
        now: Optional[float] = None,
        client: Optional[str] = None,
    ) -> int:
        """Admit one frame; returns its fabric-wide request id.

        ``client`` is the affinity key for the consistent-hash policy
        (pinned requests ride that worker's lane; requests without a
        client — or under other policies — use the shared lane).
        """
        if self._closed:
            raise RuntimeError("fabric is closed")
        llrs = np.asarray(llrs, dtype=np.float64)
        if llrs.shape != (self.code.n,):
            raise ValueError(f"expected shape ({self.code.n},) LLRs")
        now = self.clock() if now is None else now
        request_id = self._next_id
        self._next_id += 1
        serve = self.config.serve
        if deadline_s is None and serve.deadline_ms is not None:
            deadline_s = now + serve.deadline_ms / 1e3
        request = DecodeRequest(
            request_id=request_id,
            llrs=llrs,
            arrival_s=now,
            deadline_s=deadline_s,
            client=client,
        )
        self.registry.counter("serve.requests.submitted").inc()
        target = self.dispatch.route(request)
        lane = self._shared if target is None else self._pinned[target]
        if not lane.offer(request):
            self.registry.counter("serve.requests.rejected").inc()
            self._drop(request, STATUS_REJECTED, REASON_QUEUE_FULL, now)
            return request_id
        self.registry.gauge("serve.queue.depth").set(self._depth())
        return request_id

    # ------------------------------------------------------------------
    # Event pump
    # ------------------------------------------------------------------
    def pump(self, now: Optional[float] = None) -> int:
        """Expire, dispatch due chunks to workers, fold completions in.
        Returns the number of chunks dispatched."""
        now = self.clock() if now is None else now
        self.check_health()
        self._expire(now)
        dispatched = self._dispatch_due(now, force=False)
        self._collect(block=False)
        return dispatched

    def poll(self) -> List[DecodeResult]:
        """Drain results completed since the last poll."""
        out = self._completed
        self._completed = []
        return out

    def next_due(self, now: Optional[float] = None) -> Optional[float]:
        """When the pump next has work (None = idle until a submit)."""
        now = self.clock() if now is None else now
        if self._pending:
            return now
        dues = [self.batcher.next_due(self._shared, now)]
        dues += [
            self.batcher.next_due(lane, now) for lane in self._pinned
        ]
        dues = [d for d in dues if d is not None]
        return min(dues) if dues else None

    def flush(self, now: Optional[float] = None) -> None:
        """Decode everything queued (ignoring linger) and wait for it."""
        now = self.clock() if now is None else now
        while True:
            self._expire(now)
            self._dispatch_due(now, force=True)
            if not any(len(lane) for lane in self._lanes()):
                break
            # Every worker window is full: wait for chunks to land,
            # then place the remainder.
            self._collect(block=True)
        self._collect(block=True)

    def close(self) -> None:
        """Flush outstanding work and stop the workers (idempotent)."""
        if self._closed:
            return
        self.flush()
        for pool in self._pools:
            pool.shutdown()
        if self.trace is not None:
            self.trace.flush()
        self._closed = True

    def __enter__(self) -> "DecodeFabric":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Health / chaos
    # ------------------------------------------------------------------
    def check_health(self) -> List[bool]:
        """Per-worker liveness; respawns idle-and-broken workers.

        A worker that died *with a chunk in flight* is healed on the
        collect path (respawn + redrive); one that died idle would
        otherwise stay dead until its next chunk, so the pump-time
        check respawns it eagerly.
        """
        healthy = []
        for index, pool in enumerate(self._pools):
            if pool.broken and self._chunks_in_flight[index] == 0:
                pool.respawn()
                self._worker_pids[index] = pool.submit(
                    _fabric_worker_pid, index
                ).result()
            healthy.append(not pool.broken)
        return healthy

    def kill_worker(self, index: int) -> int:
        """SIGKILL worker ``index``'s process (chaos testing).

        Returns the pid that was killed.  The next pump (or collect)
        respawns the worker and redrives whatever it was holding.
        """
        if self.serial:
            raise RuntimeError(
                "serial fabric fallback has no worker processes to kill"
            )
        pid = self._worker_pids[index]
        if pid is None:
            raise RuntimeError(f"worker {index} pid unknown")
        os.kill(pid, signal.SIGKILL)
        return pid

    @property
    def restarts(self) -> int:
        """Total worker restarts across the fabric."""
        return sum(pool.restarts for pool in self._pools)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def merged_snapshot(self) -> dict:
        """One cross-worker snapshot: fabric admission metrics plus
        every worker's accumulated chunk deltas, with per-worker
        sub-views under ``"workers"``.  Deterministic for a given set
        of completed chunks, regardless of completion interleaving."""
        parts = {"fabric": self.registry.snapshot()}
        for index, reg in enumerate(self._worker_registries):
            parts[f"worker{index}"] = reg.snapshot()
        return merge_snapshots(parts)

    def snapshot(self) -> dict:
        """Alias for :meth:`merged_snapshot` — lets the fabric stand in
        for a registry anywhere only snapshots are read (the snapshot
        publisher, the ``/metrics`` HTTP server)."""
        return self.merged_snapshot()

    def report(self, wall_s: float) -> ServiceReport:
        """Cross-worker :class:`ServiceReport` over ``wall_s`` seconds."""
        return ServiceReport.from_snapshot(
            self.code,
            self.merged_snapshot(),
            wall_s,
            max_batch=self.config.serve.max_batch,
            workers=self.config.workers,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lanes(self) -> List[BoundedRequestQueue]:
        return [self._shared] + self._pinned

    def _depth(self) -> int:
        return sum(len(lane) for lane in self._lanes())

    def _fill(self) -> float:
        """Admission pressure: the fullest lane (the shed-hint input)."""
        return max(lane.fill for lane in self._lanes())

    def _drop(
        self,
        request: DecodeRequest,
        status: str,
        reason: str,
        now: float,
    ) -> None:
        self._completed.append(
            DecodeResult(
                request_id=request.request_id,
                status=status,
                reason=reason,
                latency_s=now - request.arrival_s,
            )
        )
        if self.trace is not None:
            self.trace.event(
                "serve_drop",
                request=request.request_id,
                status=status,
                reason=reason,
                waited_s=round(now - request.arrival_s, 6),
            )

    def _expire(self, now: float) -> None:
        for lane in self._lanes():
            for request in lane.expire(now):
                self.registry.counter("serve.requests.expired").inc()
                self._drop(request, STATUS_EXPIRED, REASON_DEADLINE, now)
        self.registry.gauge("serve.queue.depth").set(self._depth())

    def _has_room(self, index: int) -> bool:
        return self._chunks_in_flight[index] < self.window

    def _dispatch_due(self, now: float, *, force: bool) -> int:
        """Send every due chunk to a worker with window room.

        ``force`` ignores the linger timer (the flush path).  Pinned
        lanes drain to their own worker; the shared lane's worker comes
        from the dispatch policy.
        """
        dispatched = 0
        for index, lane in enumerate(self._pinned):
            while len(lane) and self._has_room(index) and (
                force or self.batcher.due(lane, now)
            ):
                self._dispatch_chunk(lane, index, now)
                dispatched += 1
        while len(self._shared) and (
            force or self.batcher.due(self._shared, now)
        ):
            eligible = [
                w for w in range(self.config.workers) if self._has_room(w)
            ]
            if not eligible:
                break
            index = self.dispatch.select(self._outstanding, eligible)
            self._dispatch_chunk(self._shared, index, now)
            dispatched += 1
        return dispatched

    def _dispatch_chunk(
        self, lane: BoundedRequestQueue, index: int, now: float
    ) -> None:
        fill = self._fill()
        requests = self.batcher.take(lane)
        self.registry.gauge("serve.queue.depth").set(self._depth())
        self.registry.histogram(
            "fabric.chunk.occupancy", OCCUPANCY_BUCKETS
        ).observe(len(requests))
        llrs = np.stack([r.llrs for r in requests])
        arrivals = np.array([r.arrival_s for r in requests])
        deadlines = [r.deadline_s for r in requests]
        seq = self._chunk_seq
        self._chunk_seq += 1
        meta = {
            "formed_s": now,
            "fill": fill,
            "chunk": (llrs, arrivals, deadlines, fill),
        }
        future = self._pools[index].submit(
            _fabric_decode_chunk, index, llrs, arrivals, deadlines, fill
        )
        self._pending[seq] = (index, future, requests, meta)
        self._outstanding[index] += len(requests)
        self._chunks_in_flight[index] += 1
        self.registry.counter("fabric.chunks.dispatched").inc()
        self.registry.gauge(f"fabric.worker{index}.outstanding").set(
            self._outstanding[index]
        )

    def _collect(self, block: bool) -> None:
        """Fold finished chunks in, strictly in dispatch order; broken
        futures trigger respawn-and-redrive without losing the slot."""
        while self._next_merge_seq in self._pending:
            seq = self._next_merge_seq
            index, future, requests, meta = self._pending[seq]
            if not block and not future.done():
                return
            try:
                results, delta, pid = future.result()
            except BrokenExecutor:
                self._redrive(seq)
                continue
            del self._pending[seq]
            self._next_merge_seq = seq + 1
            self._worker_pids[index] = pid
            self._worker_registries[index].merge(delta)
            self._outstanding[index] -= len(requests)
            self._chunks_in_flight[index] -= 1
            self.registry.gauge(f"fabric.worker{index}.outstanding").set(
                self._outstanding[index]
            )
            rtt_s = self.clock() - meta["formed_s"]
            self.registry.timer("fabric.chunk.rtt").record_ns(
                max(0, int(rtt_s * 1e9))
            )
            for request, result in zip(requests, results):
                result.request_id = request.request_id
                result.batch_seq = seq
                self._completed.append(result)
            if self.trace is not None:
                self.trace.event(
                    "fabric_chunk",
                    seq=seq,
                    worker=index,
                    occupancy=len(requests),
                    fill=round(meta["fill"], 4),
                    rtt_s=round(rtt_s, 6),
                )

    def _redrive(self, seq: int) -> None:
        """Respawn a dead worker and resubmit its chunk to it.

        The chunk's frames (and their metrics, which only commit with
        the results) are recounted by the fresh worker, so accounting
        balances exactly as if the crash never happened — only latency
        shows the scar.
        """
        index, _, requests, meta = self._pending[seq]
        pool = self._pools[index]
        # One death fails every in-flight future on the pool; respawn
        # once and redrive each as the merge cursor reaches it.
        if pool.broken:
            pool.respawn()
        self.registry.counter("fabric.chunks.redriven").inc()
        if self.trace is not None:
            self.trace.event(
                "fabric_redrive",
                seq=seq,
                worker=index,
                occupancy=len(requests),
            )
        meta["redrives"] = meta.get("redrives", 0) + 1
        if meta["redrives"] > 3:
            # A chunk that kills every worker it touches is poison, not
            # bad luck — surface it instead of redriving forever.
            raise RuntimeError(
                f"fabric chunk {seq} crashed worker {index} "
                f"{meta['redrives']} times; giving up"
            )
        llrs, arrivals, deadlines, fill = meta["chunk"]
        future = pool.submit(
            _fabric_decode_chunk, index, llrs, arrivals, deadlines, fill
        )
        self._pending[seq] = (index, future, requests, meta)
