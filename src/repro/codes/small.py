"""Structure-preserving scaled-down DVB-S2-like codes for fast tests.

Full DVB-S2 frames are 64800 bits; Monte-Carlo statistics on them are slow
in pure Python.  Because every count in a code-rate profile (``K``,
``n_high``, ``n_3``, ``N_parity``) is a multiple of 360, the whole
construction scales down by any divisor ``s`` of 360: the parallelism
becomes ``M = 360 / s``, the frame becomes ``64800 / s`` bits, and — the
crucial property — **q, the node degrees, and every structural identity are
unchanged**, so the hardware mapping, the shuffle network, and the conflict
analysis behave exactly as for the full code, just with fewer functional
units.

These scaled codes are this library's equivalent of an RTL testbench's
reduced configuration: same architecture, smaller instance.
"""

from __future__ import annotations

from typing import List, Tuple

from .construction import LdpcCode
from .standard import CodeRateProfile, FRAME_LENGTH, PARALLELISM, get_profile
from .tables import DEFAULT_TABLE_SEED, TableDiagnostics, generate_table

#: Divisors of 360 that make sensible test parallelisms.
SUPPORTED_PARALLELISMS: Tuple[int, ...] = (
    4, 6, 8, 9, 10, 12, 15, 18, 20, 24, 30, 36, 40, 45, 60, 72, 90, 120, 180, 360,
)


def scaled_profile(rate: str, parallelism: int) -> CodeRateProfile:
    """Scale a standard profile down to a smaller parallelism.

    Parameters
    ----------
    rate:
        Standard rate label, e.g. ``"1/2"``.
    parallelism:
        Target group width ``M``; must divide 360.

    Returns
    -------
    A validated :class:`~repro.codes.standard.CodeRateProfile` whose name is
    suffixed with ``@M`` (e.g. ``"1/2@36"``) so reports can tell scaled
    codes apart.
    """
    if parallelism <= 0 or PARALLELISM % parallelism != 0:
        raise ValueError(
            f"parallelism {parallelism} must be a positive divisor of 360"
        )
    base = get_profile(rate)
    scale = PARALLELISM // parallelism
    profile = CodeRateProfile(
        name=f"{rate}@{parallelism}" if parallelism != PARALLELISM else rate,
        n=FRAME_LENGTH // scale,
        k_info=base.k_info // scale,
        n_high=base.n_high // scale,
        j_high=base.j_high,
        n_3=base.n_3 // scale,
        check_degree=base.check_degree,
        parallelism=parallelism,
    )
    profile.validate()
    if profile.q != base.q:
        raise AssertionError("scaling must preserve q")  # pragma: no cover
    return profile


def build_small_code(
    rate: str,
    parallelism: int = 36,
    seed: int = DEFAULT_TABLE_SEED,
    validate: bool = True,
) -> LdpcCode:
    """Build a scaled code instance (default: 1/10 scale, 6480-bit frame)."""
    profile = scaled_profile(rate, parallelism)
    table, _ = generate_table(profile, seed=seed)
    code = LdpcCode.from_parts(profile, table)
    if validate:
        code.validate()
    return code


def build_small_code_with_diagnostics(
    rate: str,
    parallelism: int = 36,
    seed: int = DEFAULT_TABLE_SEED,
) -> Tuple[LdpcCode, TableDiagnostics]:
    """Like :func:`build_small_code` but also return girth diagnostics."""
    profile = scaled_profile(rate, parallelism)
    table, diag = generate_table(profile, seed=seed)
    code = LdpcCode.from_parts(profile, table)
    return code, diag


def available_scales(rate: str) -> List[int]:
    """Parallelisms for which the rate scales cleanly (all of them do)."""
    results = []
    for m in SUPPORTED_PARALLELISMS:
        try:
            scaled_profile(rate, m)
        except ValueError:
            continue
        results.append(m)
    return results
