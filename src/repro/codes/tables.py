"""Synthetic DVB-S2 address tables (the permutation ``Π`` of paper Fig. 1).

The DVB-S2 standard defines the random part of the parity-check matrix by
per-rate *address tables*: for every group of 360 information columns there is
one row of base addresses, and each base address ``x`` is expanded by the
encoding rule (paper Eq. 2)::

    j = (x + q * (m mod 360)) mod N_parity        for m = 0 .. 359

into one check-node connection per column of the group.

The genuine annex tables of EN 302 307 are not redistributable here, so this
module generates *structurally identical* synthetic tables (see DESIGN.md,
"Substitutions").  The construction enforces every property the paper's
architecture exploits:

* **Group structure** — one row per 360-wide group, row length equals the
  group's node degree, so the address/shuffle ROM needs exactly
  ``Addr = E_IN / 360`` words (paper Table 2).
* **Balanced check degrees** — each check node receives exactly ``k - 2``
  information edges.  Because the expansion of a base address ``x`` touches
  exactly the 360 checks congruent to ``x (mod q)``, this reduces to giving
  every residue class mod ``q`` exactly ``k - 2`` base addresses.
* **Cyclic-shift property** — writing ``x = r + q * t``, the edge of column
  ``m`` lands on check ``r + q * ((t + m) mod 360)``; with the paper's node
  mapping this is a cyclic shift by ``t`` between functional units, which is
  what makes a simple barrel shuffler sufficient (paper Section 3).
* **Girth conditioning** — no 4-cycles inside a group (distinct residues per
  row), no information/parity 4-cycles (no two addresses of a row differ by
  ±1), and cross-group 4-cycles are removed by an iterative repair pass, as
  the standard's designers did for the genuine tables.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .standard import CodeRateProfile, get_profile

#: Seed used for the shipped tables.  Fixed so that every build of this
#: library produces bit-identical codes (the tables play the role of the
#: standard's frozen annex tables).
DEFAULT_TABLE_SEED = 0x5B52  # "S2" homage

_MAX_REPAIR_PASSES = 60


@dataclass(frozen=True)
class AddressTable:
    """A per-rate address table defining the permutation ``Π``.

    Attributes
    ----------
    rate_name:
        Code-rate label, e.g. ``"1/2"``.
    parallelism:
        Group width ``M`` (360 for the standard codes).
    q:
        Accumulator spreading factor; checks indices live in
        ``[0, parallelism * q)``.
    rows:
        One tuple of base addresses per information-node group; group ``g``
        covers information nodes ``[g * M, (g + 1) * M)`` and its row length
        equals the degree of those nodes.
    """

    rate_name: str
    parallelism: int
    q: int
    rows: Tuple[Tuple[int, ...], ...]
    seed: int = DEFAULT_TABLE_SEED

    @property
    def n_checks(self) -> int:
        """Number of check nodes covered by the table."""
        return self.parallelism * self.q

    @property
    def n_address_words(self) -> int:
        """Total number of base addresses (= ``Addr`` of paper Table 2)."""
        return sum(len(row) for row in self.rows)

    @property
    def n_groups(self) -> int:
        """Number of information-node groups."""
        return len(self.rows)

    def iter_addresses(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(group_index, base_address)`` in table order."""
        for g, row in enumerate(self.rows):
            for x in row:
                yield g, x

    def expand_group(self, group: int) -> Tuple[np.ndarray, np.ndarray]:
        """Expand one group into its edges.

        Returns
        -------
        (vn, cn):
            Arrays of equal length ``M * degree(group)`` holding the
            information-node and check-node index of every edge, in
            address-major order (all 360 edges of the first base address
            first).  Information nodes are numbered globally from 0.
        """
        m_range = np.arange(self.parallelism, dtype=np.int64)
        vn_parts: List[np.ndarray] = []
        cn_parts: List[np.ndarray] = []
        base_vn = group * self.parallelism
        for x in self.rows[group]:
            vn_parts.append(base_vn + m_range)
            cn_parts.append((x + self.q * m_range) % self.n_checks)
        return np.concatenate(vn_parts), np.concatenate(cn_parts)

    def expand(self) -> Tuple[np.ndarray, np.ndarray]:
        """Expand the whole table into ``(vn, cn)`` edge arrays."""
        vn_parts: List[np.ndarray] = []
        cn_parts: List[np.ndarray] = []
        for g in range(self.n_groups):
            vn, cn = self.expand_group(g)
            vn_parts.append(vn)
            cn_parts.append(cn)
        return np.concatenate(vn_parts), np.concatenate(cn_parts)

    def check_degrees(self) -> np.ndarray:
        """Information-edge degree of every check node (should be ``k - 2``)."""
        _, cn = self.expand()
        return np.bincount(cn, minlength=self.n_checks)

    def shuffle_offsets(self) -> List[List[int]]:
        """Cyclic-shift amounts ``t = x // q`` per row (shuffle-ROM contents)."""
        return [[x // self.q for x in row] for row in self.rows]

    def ram_addresses(self) -> List[List[int]]:
        """Check-side base rows ``r = x mod q`` per row (address-ROM contents)."""
        return [[x % self.q for x in row] for row in self.rows]


@dataclass
class TableDiagnostics:
    """Girth-conditioning statistics collected while generating a table."""

    repair_passes: int = 0
    resampled_offsets: int = 0
    residual_cross_group_collisions: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def four_cycle_free(self) -> bool:
        """True when the repair pass removed every detectable 4-cycle."""
        return self.residual_cross_group_collisions == 0


class TableGenerationError(RuntimeError):
    """Raised when a structurally valid table cannot be constructed."""


def _group_degrees(profile) -> List[int]:
    """Per-group node degree: high-degree groups first, then degree-3 groups."""
    m = profile.parallelism if hasattr(profile, "parallelism") else 360
    degrees = [profile.j_high] * (profile.n_high // m)
    degrees += [3] * (profile.n_3 // m)
    return degrees


def _assign_residues(
    degrees: Sequence[int], q: int, capacity: int, rng: np.random.Generator
) -> List[List[int]]:
    """Assign each group ``d_g`` distinct residues mod ``q``.

    Every residue must be used exactly ``capacity`` (= ``k - 2``) times in
    total, which is what balances the check-node degrees.  A greedy
    most-remaining-capacity choice (ties shuffled) always succeeds because
    every group degree is at most ``q`` and capacities start uniform.
    """
    remaining = np.full(q, capacity, dtype=np.int64)
    assignment: List[List[int]] = []
    order = sorted(range(len(degrees)), key=lambda g: -degrees[g])
    rows: Dict[int, List[int]] = {}
    for g in order:
        d = degrees[g]
        if d > q:
            raise TableGenerationError(
                f"group degree {d} exceeds q={q}; cannot pick distinct residues"
            )
        # Most-constrained-first: take the residues with the largest
        # remaining capacity, breaking ties randomly for ensemble variety.
        tiebreak = rng.random(q)
        ranking = np.lexsort((tiebreak, -remaining))
        chosen = [int(r) for r in ranking[:d]]
        if remaining[chosen].min() <= 0:
            raise TableGenerationError(
                "residue capacities exhausted; profile identities violated"
            )
        remaining[chosen] -= 1
        rows[g] = chosen
    if remaining.any():
        raise TableGenerationError("unbalanced residue assignment")
    for g in range(len(degrees)):
        assignment.append(rows[g])
    return assignment


def _initial_offsets(
    residues: List[List[int]], q: int, m: int, rng: np.random.Generator
) -> List[List[int]]:
    """Pick a random offset ``t`` in ``[0, M)`` for every (group, residue)."""
    return [[int(rng.integers(0, m)) for _ in row] for row in residues]


def _row_addresses(residues: List[int], offsets: List[int], q: int) -> List[int]:
    return [r + q * t for r, t in zip(residues, offsets)]


def _within_group_ok(addresses: List[int], n_checks: int) -> bool:
    """Reject rows whose addresses differ by ±1 (would make IN/PN 4-cycles)."""
    seen = set(addresses)
    for x in addresses:
        if (x + 1) % n_checks in seen or (x - 1) % n_checks in seen:
            return False
    return True


def _cross_group_collisions(
    rows: List[List[int]], q: int, n_checks: int
) -> List[Tuple[int, int, int, int]]:
    """Find cross-group 4-cycles.

    Two groups ``g1 < g2`` produce a 4-cycle when two *distinct* pairs of
    same-residue addresses have the same difference modulo ``n_checks``.
    Returns a list of ``(g1, i1, g2, i2)`` witnesses: the address ``i2`` of
    group ``g2`` participating in a colliding pair (a good candidate for
    resampling).
    """
    # Bucket addresses by residue class: residue -> list of (group, idx, t)
    by_residue: Dict[int, List[Tuple[int, int, int]]] = {}
    for g, row in enumerate(rows):
        for i, x in enumerate(row):
            by_residue.setdefault(x % q, []).append((g, i, x // q))

    m = n_checks // q
    # For every unordered pair of groups, collect differences of shared
    # residues; a repeated difference is a 4-cycle.
    diffs: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}
    collisions: List[Tuple[int, int, int, int]] = []
    for members in by_residue.values():
        for a in range(len(members)):
            g1, i1, t1 = members[a]
            for b in range(a + 1, len(members)):
                g2, i2, t2 = members[b]
                if g1 == g2:
                    # distinct residues within a group make this impossible
                    continue
                if g1 < g2:
                    ga, ia, ta, gb, ib, tb = g1, i1, t1, g2, i2, t2
                else:
                    ga, ia, ta, gb, ib, tb = g2, i2, t2, g1, i1, t1
                d = (ta - tb) % m
                bucket = diffs.setdefault((ga, gb), {})
                if d in bucket:
                    collisions.append((ga, bucket[d][0], gb, ib))
                else:
                    bucket[d] = (ia, ib)
    return collisions


def generate_table(
    profile: CodeRateProfile,
    seed: int = DEFAULT_TABLE_SEED,
    max_repair_passes: int = _MAX_REPAIR_PASSES,
) -> Tuple[AddressTable, TableDiagnostics]:
    """Generate a synthetic address table for a code-rate profile.

    Parameters
    ----------
    profile:
        A :class:`~repro.codes.standard.CodeRateProfile` or any object with
        the same attributes (the scaled specs of :mod:`repro.codes.small`
        also qualify).
    seed:
        PRNG seed; the shipped codes use :data:`DEFAULT_TABLE_SEED`.
    max_repair_passes:
        Bound on the 4-cycle repair iterations; any residual collisions are
        reported in the returned diagnostics instead of raising.

    Returns
    -------
    (table, diagnostics):
        The frozen table plus girth-conditioning statistics.
    """
    m = getattr(profile, "parallelism", 360)
    q = profile.q
    n_checks = profile.n_checks
    capacity = profile.check_degree - 2
    # zlib.crc32 is stable across processes (str.__hash__ is salted).
    name_hash = zlib.crc32(profile.name.encode("ascii"))
    rng = np.random.default_rng((seed << 32) ^ name_hash ^ (m << 16))

    degrees = _group_degrees(profile)
    residues = _assign_residues(degrees, q, capacity, rng)
    offsets = _initial_offsets(residues, q, m, rng)
    diag = TableDiagnostics()

    rows = [
        _row_addresses(res, off, q) for res, off in zip(residues, offsets)
    ]

    # Enforce the within-group ±1 constraint by local resampling.
    for g, row in enumerate(rows):
        guard = 0
        while not _within_group_ok(row, n_checks):
            i = int(rng.integers(0, len(row)))
            offsets[g][i] = int(rng.integers(0, m))
            row = _row_addresses(residues[g], offsets[g], q)
            rows[g] = row
            diag.resampled_offsets += 1
            guard += 1
            if guard > 1000:
                raise TableGenerationError(
                    f"cannot satisfy within-group constraint for group {g}"
                )

    # Iteratively repair cross-group difference collisions (4-cycles).
    for _ in range(max_repair_passes):
        collisions = _cross_group_collisions(rows, q, n_checks)
        if not collisions:
            break
        diag.repair_passes += 1
        touched = set()
        for g1, i1, g2, i2 in collisions:
            if (g2, i2) in touched:
                continue
            touched.add((g2, i2))
            guard = 0
            while True:
                offsets[g2][i2] = int(rng.integers(0, m))
                candidate = _row_addresses(residues[g2], offsets[g2], q)
                if _within_group_ok(candidate, n_checks):
                    rows[g2] = candidate
                    diag.resampled_offsets += 1
                    break
                guard += 1
                if guard > 1000:
                    raise TableGenerationError(
                        f"cannot resample offset for group {g2}"
                    )
    else:
        collisions = _cross_group_collisions(rows, q, n_checks)

    diag.residual_cross_group_collisions = len(
        _cross_group_collisions(rows, q, n_checks)
    )
    if diag.residual_cross_group_collisions:
        diag.notes.append(
            "table retains short cycles; acceptable for scaled test codes"
        )

    table = AddressTable(
        rate_name=profile.name,
        parallelism=m,
        q=q,
        rows=tuple(tuple(row) for row in rows),
        seed=seed,
    )
    return table, diag


_TABLE_CACHE: Dict[Tuple[str, int, int], Tuple[AddressTable, TableDiagnostics]] = {}


def get_table(
    rate: str, seed: int = DEFAULT_TABLE_SEED
) -> AddressTable:
    """Return the (cached) shipped table for a standard rate label."""
    profile = get_profile(rate)
    key = (rate, profile.parallelism if hasattr(profile, "parallelism") else 360, seed)
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = generate_table(profile, seed=seed)
    return _TABLE_CACHE[key][0]


def get_table_diagnostics(
    rate: str, seed: int = DEFAULT_TABLE_SEED
) -> TableDiagnostics:
    """Return the diagnostics recorded while generating the shipped table."""
    get_table(rate, seed=seed)
    profile = get_profile(rate)
    key = (rate, profile.parallelism if hasattr(profile, "parallelism") else 360, seed)
    return _TABLE_CACHE[key][1]
