"""Short-FECFRAME (N = 16200) code profiles — a standard-completeness
extension beyond the paper.

The paper treats only the normal 64800-bit frame ("in this paper we only
focus on the codeword length of 64800 bits"); EN 302 307 also specifies a
short 16200-bit FECFRAME whose information lengths and accumulator
factors ``q`` are taken verbatim from the standard below.  The short
frames use *nominal* rate labels — e.g. short "1/2" actually carries
7200/16200 = 4/9 — exactly as the standard does.

The short-frame degree distributions of the standard are not constant-k
for every rate; to stay within the paper's architecture (constant check
degree, balanced FU load) this module *derives* the closest constant-k
degree profile that satisfies every structural identity (documented
substitution, see DESIGN.md).  Everything downstream — tables, mapping,
shuffling, the IP core — then works unchanged, demonstrating that the
paper's architecture covers the full standard.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .construction import LdpcCode
from .standard import CodeRateProfile, PARALLELISM
from .tables import DEFAULT_TABLE_SEED, generate_table

#: Short-frame length of EN 302 307.
SHORT_FRAME_LENGTH = 16200

#: Standard short-FECFRAME information lengths (K_ldpc) and the
#: high-degree class reused from the normal-frame profile of the same
#: nominal rate.  Rate 9/10 does not exist for short frames.
_SHORT_K: Dict[str, Tuple[int, int]] = {
    # rate: (K_ldpc, j_high)
    "1/4": (3240, 12),
    "1/3": (5400, 12),
    "2/5": (6480, 12),
    "1/2": (7200, 8),
    "3/5": (9720, 12),
    "2/3": (10800, 13),
    "3/4": (11880, 12),
    "4/5": (12600, 11),
    "5/6": (13320, 13),
    "8/9": (14400, 4),
}

SHORT_RATE_NAMES: Tuple[str, ...] = tuple(_SHORT_K)


def _solve_degree_split(
    k_info: int, n_parity: int, j_high: int
) -> Optional[Tuple[int, int, int]]:
    """Find ``(check_degree, n_high, n_3)`` satisfying all identities.

    Requires ``n_high`` to be a positive multiple of 360 and the check
    degree to exceed the two zigzag edges; returns the smallest feasible
    check degree (lowest decoding cost), or None.
    """
    for k in range(4, 41):
        e_in = (k - 2) * n_parity
        numerator = e_in - 3 * k_info
        if numerator <= 0:
            continue
        if numerator % (j_high - 3) != 0:
            continue
        n_high = numerator // (j_high - 3)
        if n_high % PARALLELISM != 0:
            continue
        if not 0 < n_high <= k_info:
            continue
        return k, n_high, k_info - n_high
    return None


def short_profile(rate: str) -> CodeRateProfile:
    """Short-frame profile for a nominal rate label.

    ``K`` and ``q`` are the standard's values; the degree split is the
    derived constant-k equivalent.  When the normal-frame high degree is
    arithmetically incompatible with a constant-k split (rate 4/5), the
    solver falls back to nearby degrees.  The profile name is suffixed
    with ``-short``.
    """
    if rate not in _SHORT_K:
        raise KeyError(
            f"no short-frame code for rate {rate!r}; "
            f"expected one of {SHORT_RATE_NAMES}"
        )
    k_info, preferred_j = _SHORT_K[rate]
    n_parity = SHORT_FRAME_LENGTH - k_info
    solution = None
    j_high = preferred_j
    for candidate_j in (preferred_j, 12, 13, 8, 4, 5, 6, 7, 9, 10):
        solution = _solve_degree_split(k_info, n_parity, candidate_j)
        if solution is not None:
            j_high = candidate_j
            break
    if solution is None:  # pragma: no cover - all shipped rates solve
        raise ValueError(f"no constant-k profile exists for {rate}")
    check_degree, n_high, n_3 = solution
    profile = CodeRateProfile(
        name=f"{rate}-short",
        n=SHORT_FRAME_LENGTH,
        k_info=k_info,
        n_high=n_high,
        j_high=j_high,
        n_3=n_3,
        check_degree=check_degree,
        parallelism=PARALLELISM,
    )
    profile.validate()
    return profile


def all_short_profiles() -> List[CodeRateProfile]:
    """All ten short-frame profiles in standard order."""
    return [short_profile(rate) for rate in SHORT_RATE_NAMES]


def effective_rate(rate: str) -> float:
    """The true code rate of a nominal short-frame label
    (e.g. "1/2" → 7200/16200 = 4/9)."""
    k_info, _ = _SHORT_K[rate]
    return k_info / SHORT_FRAME_LENGTH


def build_short_code(
    rate: str, seed: int = DEFAULT_TABLE_SEED, validate: bool = True
) -> LdpcCode:
    """Construct a complete short-frame code instance."""
    profile = short_profile(rate)
    table, _ = generate_table(profile, seed=seed)
    code = LdpcCode.from_parts(profile, table)
    if validate:
        code.validate()
    return code
