"""DVB-S2 LDPC code substrate: profiles, tables, construction, graphs.

Public entry points:

* :func:`~repro.codes.standard.get_profile` / ``all_profiles`` — Table 1/2
  parameters for the eleven standard rates,
* :func:`~repro.codes.construction.build_code` — full 64800-bit codes,
* :func:`~repro.codes.small.build_small_code` — structure-preserving scaled
  codes for fast simulation.
"""

from .construction import LdpcCode, build_code, zigzag_edges
from .design import DesignCandidate, design_code, enumerate_candidates
from .matrix import is_codeword, syndrome, syndrome_weight
from .short import build_short_code, short_profile
from .small import build_small_code, scaled_profile
from .standard import (
    FRAME_LENGTH,
    PARALLELISM,
    RATE_NAMES,
    CodeRateProfile,
    all_profiles,
    get_profile,
)
from .tables import AddressTable, DEFAULT_TABLE_SEED, generate_table, get_table
from .tanner import TannerGraph

__all__ = [
    "AddressTable",
    "CodeRateProfile",
    "DesignCandidate",
    "DEFAULT_TABLE_SEED",
    "FRAME_LENGTH",
    "LdpcCode",
    "PARALLELISM",
    "RATE_NAMES",
    "TannerGraph",
    "all_profiles",
    "build_code",
    "build_short_code",
    "build_small_code",
    "design_code",
    "enumerate_candidates",
    "generate_table",
    "get_profile",
    "get_table",
    "is_codeword",
    "scaled_profile",
    "short_profile",
    "syndrome",
    "syndrome_weight",
    "zigzag_edges",
]
