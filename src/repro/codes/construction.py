"""Construction of the full DVB-S2 LDPC code from a profile and a table.

The parity-check matrix of a DVB-S2 code has two parts (paper Section 2):

* a *random* part connecting the information nodes to the check nodes,
  defined by the address table through the encoding rule Eq. (2), and
* a *fixed* part connecting the degree-2 parity nodes in a zigzag to
  consecutive check nodes, defined by the accumulator Eq. (3)::

      p_j = p_j ^ p_{j-1}      j = 1 .. N_parity - 1

  so parity node ``j`` participates in check ``j`` and (except the last)
  in check ``j + 1``; check 0 sees only parity node 0.

:class:`LdpcCode` bundles the profile, the table, and the expanded
:class:`~repro.codes.tanner.TannerGraph`, and is the object every encoder,
decoder and hardware model in this library consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .standard import CodeRateProfile, get_profile
from .tables import AddressTable, DEFAULT_TABLE_SEED, get_table
from .tanner import TannerGraph


def zigzag_edges(n_parity: int) -> Tuple[np.ndarray, np.ndarray]:
    """Edges of the accumulator zigzag as (parity-node, check-node) arrays.

    Parity nodes are numbered locally ``0 .. n_parity - 1``; the *self*
    edges ``(j, j)`` come first, then the *forward* edges ``(j, j + 1)``,
    which is the order the zigzag-schedule decoder expects.
    """
    j = np.arange(n_parity, dtype=np.int64)
    self_pn, self_cn = j, j
    fwd_pn, fwd_cn = j[:-1], j[:-1] + 1
    return (
        np.concatenate([self_pn, fwd_pn]),
        np.concatenate([self_cn, fwd_cn]),
    )


@dataclass(frozen=True)
class LdpcCode:
    """A concrete DVB-S2 (or scaled DVB-S2-like) LDPC code.

    Attributes
    ----------
    profile:
        The code-rate profile (Table 1 parameters).
    table:
        The address table defining the permutation ``Π``.
    graph:
        The expanded Tanner graph.  Edge numbering: the ``E_IN``
        information edges in table order first, then the ``n_parity``
        zigzag self edges, then the ``n_parity - 1`` zigzag forward edges.
    """

    profile: CodeRateProfile
    table: AddressTable
    graph: TannerGraph

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rate(
        cls, rate: str, seed: int = DEFAULT_TABLE_SEED
    ) -> "LdpcCode":
        """Build the shipped full-size code for a standard rate label."""
        profile = get_profile(rate)
        table = get_table(rate, seed=seed)
        return cls.from_parts(profile, table)

    @classmethod
    def from_parts(
        cls, profile: CodeRateProfile, table: AddressTable
    ) -> "LdpcCode":
        """Build a code from an explicit profile/table pair."""
        if table.n_checks != profile.n_checks:
            raise ValueError(
                "table covers a different number of checks than the profile"
            )
        in_vn, in_cn = table.expand()
        pn_local, pn_cn = zigzag_edges(profile.n_parity)
        edge_vn = np.concatenate([in_vn, profile.k_info + pn_local])
        edge_cn = np.concatenate([in_cn, pn_cn])
        graph = TannerGraph(
            n_vns=profile.n,
            n_cns=profile.n_checks,
            edge_vn=edge_vn,
            edge_cn=edge_cn,
            n_info=profile.k_info,
        )
        return cls(profile=profile, table=table, graph=graph)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Codeword length."""
        return self.profile.n

    @property
    def k(self) -> int:
        """Number of information bits."""
        return self.profile.k_info

    @property
    def n_parity(self) -> int:
        """Number of parity bits (= number of checks)."""
        return self.profile.n_parity

    @property
    def e_in(self) -> int:
        """Number of information edges."""
        return self.profile.e_in

    @property
    def rate_name(self) -> str:
        """Rate label of the underlying profile."""
        return self.profile.name

    def information_edge_slice(self) -> slice:
        """Canonical edge indices of the information edges."""
        return slice(0, self.e_in)

    def zigzag_self_edge_slice(self) -> slice:
        """Canonical edge indices of the zigzag self edges ``(PN j, CN j)``."""
        return slice(self.e_in, self.e_in + self.n_parity)

    def zigzag_forward_edge_slice(self) -> slice:
        """Canonical edge indices of the zigzag forward edges
        ``(PN j, CN j+1)``."""
        start = self.e_in + self.n_parity
        return slice(start, start + self.n_parity - 1)

    # ------------------------------------------------------------------
    # Structural validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Verify the construction against every profile identity."""
        self.profile.validate()
        self.graph.validate()
        if self.graph.n_edges != self.profile.e_in + self.profile.e_pn:
            raise ValueError("edge count mismatch against Table 2")
        cn_deg = self.graph.cn_degrees
        expected = np.full(self.n_parity, self.profile.check_degree)
        expected[0] -= 1  # check 0 has a single zigzag edge
        if not np.array_equal(cn_deg, expected):
            raise ValueError("check-node degrees are not constant k")
        vn_deg = self.graph.vn_degrees
        info_deg = vn_deg[: self.k]
        high = int((info_deg == self.profile.j_high).sum())
        low = int((info_deg == 3).sum())
        if self.profile.j_high == 3:
            if high != self.k:
                raise ValueError("degree-3 information node count wrong")
        elif high != self.profile.n_high or low != self.profile.n_3:
            raise ValueError("information degree distribution violated")
        parity_deg = vn_deg[self.k :]
        if not (parity_deg[:-1] == 2).all() or parity_deg[-1] != 1:
            raise ValueError("parity nodes are not a degree-2 zigzag chain")


def build_code(
    rate: str, seed: int = DEFAULT_TABLE_SEED, validate: bool = False
) -> LdpcCode:
    """One-call constructor: rate label → validated :class:`LdpcCode`."""
    code = LdpcCode.from_rate(rate, seed=seed)
    if validate:
        code.validate()
    return code
