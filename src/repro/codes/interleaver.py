"""DVB-S2 block bit interleaver (EN 302 307 §5.3.3).

For 8PSK, 16APSK and 32APSK the standard interleaves each FECFRAME with
a column-write / row-read block interleaver (3, 4 or 5 columns — one
per constellation bit) so consecutive code bits land on different
reliability levels of the constellation.  QPSK/BPSK frames are not
interleaved.

The interleaver is a pure permutation; :func:`deinterleave` inverts both
bit streams and LLR streams, which is how the receiver feeds the
decoder.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Column count per modulation (bits per symbol for the APSK family).
COLUMNS: Dict[str, int] = {"8psk": 3, "16apsk": 4, "32apsk": 5}


def _columns_for(modulation: str, n: int) -> int:
    key = modulation.lower()
    if key in ("bpsk", "qpsk"):
        raise ValueError(
            f"{modulation} frames are not interleaved in DVB-S2"
        )
    if key not in COLUMNS:
        raise KeyError(
            f"unknown modulation {modulation!r}; expected one of "
            f"{sorted(COLUMNS)} (QPSK/BPSK are uninterleaved)"
        )
    cols = COLUMNS[key]
    if n % cols:
        raise ValueError(
            f"frame length {n} is not a multiple of {cols} columns"
        )
    return cols


def interleave(frame: np.ndarray, modulation: str) -> np.ndarray:
    """Serial-to-column write, row-wise read (transmitter side)."""
    frame = np.asarray(frame)
    cols = _columns_for(modulation, frame.size)
    rows = frame.size // cols
    # write column by column, read row by row
    return frame.reshape(cols, rows).T.reshape(-1)


def deinterleave(stream: np.ndarray, modulation: str) -> np.ndarray:
    """Inverse permutation (receiver side; works on bits or LLRs)."""
    stream = np.asarray(stream)
    cols = _columns_for(modulation, stream.size)
    rows = stream.size // cols
    return stream.reshape(rows, cols).T.reshape(-1)


def interleaver_permutation(n: int, modulation: str) -> np.ndarray:
    """The explicit permutation: output index of every input bit."""
    return interleave(np.arange(n), modulation)
