"""Decoder-first IRA code design (paper ref [7]: Kienle & Wehn, ASP-DAC'04).

The paper's architecture works because the *code was designed for the
decoder*: group structure fixed by the parallelism, constant check
degree for balanced FU load, two information-node degree classes.  Ref
[7] is the authors' methodology for picking the remaining freedom — the
degree pair ``(j_high, fraction of high-degree nodes)`` — to maximize
communications performance under those hardware constraints.

This module reproduces that methodology: enumerate every architecture-
legal degree split for a target rate (all Table-1-style identities must
hold), score each candidate with the GA-EXIT threshold of
:mod:`repro.analysis.exit`, and return the ranking.  Run on rate 1/2 it
rediscovers a profile of the same family as the standard's (j=8 class
plus degree-3 bulk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.exit import decoding_threshold_db
from .standard import CodeRateProfile, FRAME_LENGTH, PARALLELISM


@dataclass(frozen=True)
class DesignCandidate:
    """One architecture-legal degree split with its analytic score."""

    profile: CodeRateProfile
    threshold_db: float

    @property
    def j_high(self) -> int:
        """High degree class of the candidate."""
        return self.profile.j_high

    @property
    def high_fraction(self) -> float:
        """Fraction of information nodes in the high class."""
        return self.profile.n_high / self.profile.k_info


def enumerate_candidates(
    k_info: int,
    n: int = FRAME_LENGTH,
    j_values: Optional[List[int]] = None,
    parallelism: int = PARALLELISM,
    max_check_degree: int = 36,
) -> List[CodeRateProfile]:
    """All degree splits satisfying the architecture identities.

    For each high degree ``j`` and check degree ``k`` the split is
    forced: ``n_high = ((k-2)·N_parity − 3K) / (j − 3)`` must be a
    positive multiple of the parallelism.
    """
    if k_info % parallelism or n % parallelism:
        raise ValueError("K and N must be multiples of the parallelism")
    n_parity = n - k_info
    j_values = j_values or [4, 5, 6, 7, 8, 9, 10, 11, 12, 13]
    out: List[CodeRateProfile] = []
    for j in j_values:
        for k in range(4, max_check_degree + 1):
            numerator = (k - 2) * n_parity - 3 * k_info
            if numerator <= 0 or numerator % (j - 3):
                continue
            n_high = numerator // (j - 3)
            if n_high % parallelism or not 0 < n_high < k_info:
                continue
            profile = CodeRateProfile(
                name=f"design-j{j}-k{k}",
                n=n,
                k_info=k_info,
                n_high=n_high,
                j_high=j,
                n_3=k_info - n_high,
                check_degree=k,
                parallelism=parallelism,
            )
            try:
                profile.validate()
            except ValueError:  # pragma: no cover - filtered above
                continue
            out.append(profile)
    return out


def rank_candidates(
    candidates: List[CodeRateProfile],
    lo_db: float = -2.0,
    hi_db: float = 8.0,
) -> List[DesignCandidate]:
    """Score candidates by GA-EXIT threshold, best (lowest) first."""
    scored = []
    for profile in candidates:
        try:
            threshold = decoding_threshold_db(
                profile, lo_db=lo_db, hi_db=hi_db
            )
        except ValueError:
            continue  # never converges in the bracket: discard
        scored.append(
            DesignCandidate(profile=profile, threshold_db=threshold)
        )
    return sorted(scored, key=lambda c: c.threshold_db)


def design_code(
    k_info: int,
    n: int = FRAME_LENGTH,
    j_values: Optional[List[int]] = None,
    top: int = 5,
) -> List[DesignCandidate]:
    """The ref [7] flow in one call: enumerate, score, rank."""
    candidates = enumerate_candidates(k_info, n, j_values)
    if not candidates:
        raise ValueError("no architecture-legal degree split exists")
    return rank_candidates(candidates)[:top]
