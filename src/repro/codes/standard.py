"""Code-rate profiles of the DVB-S2 LDPC codes (normal frame, N = 64800).

This module regenerates the code-rate dependent parameters of the paper's
Table 1 (Tanner-graph parameters) and Table 2 (edge counts and connectivity
storage) for all eleven code rates specified in EN 302 307.

The DVB-S2 LDPC codes are irregular repeat-accumulate (IRA) codes.  For a
code of rate ``R`` with frame length ``N = 64800``:

* ``K = R * N`` information nodes (IN) split into two degree classes: ``n_high``
  nodes of degree ``j_high`` and ``n_3`` nodes of degree 3,
* ``N_parity = N - K`` parity nodes (PN), all of degree 2, chained in the
  accumulator zigzag,
* ``N_parity`` check nodes (CN) of constant degree ``k``: ``k - 2``
  information edges plus the two zigzag edges (one for the first check).

The structural identities tying these together (checked in
:func:`CodeRateProfile.validate`) are exactly the ones the paper's hardware
mapping exploits:

* ``E_IN = n_high * j_high + n_3 * 3 = (k - 2) * N_parity``  (paper Eq. 6),
* ``q = N_parity / 360``  (the accumulator step of paper Eq. 2),
* ``Addr = E_IN / 360``  (address/shuffle ROM entries, Table 2),
* ``E_PN = 2 * N_parity - 1``  (zigzag edges, paper Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

#: Frame length of the DVB-S2 *normal* FECFRAME, the only length the paper
#: considers (the 0.7 dB-to-Shannon performance stems from this block size).
FRAME_LENGTH = 64800

#: Hardware parallelism the standard's construction is built around: the
#: permutation tables address groups of 360 information nodes at once, which
#: is what allows 360 functional units to work in lock step.
PARALLELISM = 360

#: The eleven code rates of EN 302 307, in the order of the paper's Table 1.
RATE_NAMES: Tuple[str, ...] = (
    "1/4", "1/3", "2/5", "1/2", "3/5", "2/3", "3/4", "4/5", "5/6", "8/9", "9/10",
)


@dataclass(frozen=True)
class CodeRateProfile:
    """All rate-dependent parameters of one DVB-S2 LDPC code.

    Instances are immutable value objects; obtain them via :func:`get_profile`
    or :func:`all_profiles`.

    Attributes
    ----------
    name:
        Rate label as printed in the standard, e.g. ``"1/2"``.
    n:
        Codeword length (always :data:`FRAME_LENGTH` here).
    k_info:
        Number of information bits ``K`` (= number of information nodes).
    n_high:
        Number of information nodes of the high degree class.
    j_high:
        Degree of the high degree class (paper Table 1 column ``j``).
    n_3:
        Number of information nodes of degree 3.
    check_degree:
        Constant check node degree ``k`` (including the two zigzag edges).
    """

    name: str
    n: int
    k_info: int
    n_high: int
    j_high: int
    n_3: int
    check_degree: int
    parallelism: int = PARALLELISM

    # ------------------------------------------------------------------
    # Derived quantities (Table 1 / Table 2 columns)
    # ------------------------------------------------------------------
    @property
    def rate(self) -> Fraction:
        """Exact code rate ``K / N`` as a fraction."""
        return Fraction(self.k_info, self.n)

    @property
    def n_parity(self) -> int:
        """Number of parity nodes ``N_parity = N - K`` (= number of checks)."""
        return self.n - self.k_info

    @property
    def n_checks(self) -> int:
        """Number of check nodes (equal to :attr:`n_parity` for IRA codes)."""
        return self.n_parity

    @property
    def q(self) -> int:
        """Accumulator spreading factor ``q = N_parity / 360`` of paper Eq. 2."""
        return self.n_parity // self.parallelism

    @property
    def e_in(self) -> int:
        """Number of edges between information and check nodes (Table 2 E_IN)."""
        return self.n_high * self.j_high + self.n_3 * 3

    @property
    def e_pn(self) -> int:
        """Number of edges between parity and check nodes (Table 2 E_PN).

        Parity node ``j`` connects to checks ``j`` and ``j + 1`` (zigzag),
        except the last one which only closes check ``N_parity - 1``; hence
        ``2 * N_parity - 1`` edges.
        """
        return 2 * self.n_parity - 1

    @property
    def e_total(self) -> int:
        """Total Tanner-graph edge count processed per iteration."""
        return self.e_in + self.e_pn

    @property
    def addr_entries(self) -> int:
        """Connectivity storage: address/shuffle words (Table 2 ``Addr``).

        One word steers one clock cycle in which 360 messages move through
        the shuffling network, so ``Addr = E_IN / 360``.
        """
        return self.e_in // self.parallelism

    @property
    def in_groups(self) -> int:
        """Number of 360-wide information node groups (``K / 360``)."""
        return self.k_info // self.parallelism

    @property
    def high_degree_groups(self) -> int:
        """Number of 360-wide groups made of degree-``j_high`` nodes."""
        return self.n_high // self.parallelism

    @property
    def degree_sequence(self) -> List[Tuple[int, int]]:
        """Information node degree distribution as ``[(count, degree), ...]``."""
        return [(self.n_high, self.j_high), (self.n_3, 3)]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural identity the hardware mapping relies on.

        Raises
        ------
        ValueError
            If any invariant is violated (would indicate a corrupted
            profile table, never expected for the shipped profiles).
        """
        problems: List[str] = []
        if self.n_high + self.n_3 != self.k_info:
            problems.append("degree classes do not partition the information nodes")
        if self.n_parity % self.parallelism != 0:
            problems.append("N_parity is not a multiple of the parallelism")
        if self.k_info % self.parallelism != 0:
            problems.append("K is not a multiple of the parallelism")
        if self.n_high % self.parallelism != 0:
            problems.append("n_high is not a multiple of the parallelism")
        if self.e_in != (self.check_degree - 2) * self.n_checks:
            problems.append(
                "edge balance violated: E_IN != (k - 2) * N_checks (paper Eq. 6)"
            )
        if self.e_in % self.parallelism != 0:
            problems.append("E_IN is not a multiple of the parallelism")
        if problems:
            raise ValueError(f"profile {self.name}: " + "; ".join(problems))


def _build_profiles() -> Dict[str, CodeRateProfile]:
    """Construct the table of the eleven standard profiles.

    The raw numbers are the DVB-S2 normal-frame parameters (paper Table 1);
    each profile is validated on construction so a typo here cannot survive
    import.
    """
    raw = [
        # name,  K,     n_high, j_high, n_3,   k
        ("1/4", 16200, 5400, 12, 10800, 4),
        ("1/3", 21600, 7200, 12, 14400, 5),
        ("2/5", 25920, 8640, 12, 17280, 6),
        ("1/2", 32400, 12960, 8, 19440, 7),
        ("3/5", 38880, 12960, 12, 25920, 11),
        ("2/3", 43200, 4320, 13, 38880, 10),
        ("3/4", 48600, 5400, 12, 43200, 14),
        ("4/5", 51840, 6480, 11, 45360, 18),
        ("5/6", 54000, 5400, 13, 48600, 22),
        ("8/9", 57600, 7200, 4, 50400, 27),
        ("9/10", 58320, 6480, 4, 51840, 30),
    ]
    profiles: Dict[str, CodeRateProfile] = {}
    for name, k_info, n_high, j_high, n_3, k in raw:
        profile = CodeRateProfile(
            name=name,
            n=FRAME_LENGTH,
            k_info=k_info,
            n_high=n_high,
            j_high=j_high,
            n_3=n_3,
            check_degree=k,
        )
        profile.validate()
        profiles[name] = profile
    return profiles


_PROFILES: Dict[str, CodeRateProfile] = _build_profiles()


def get_profile(rate: str) -> CodeRateProfile:
    """Return the profile for a rate label such as ``"1/2"``.

    Parameters
    ----------
    rate:
        One of :data:`RATE_NAMES`.

    Raises
    ------
    KeyError
        If the rate is not one of the eleven DVB-S2 rates.
    """
    try:
        return _PROFILES[rate]
    except KeyError:
        raise KeyError(
            f"unknown DVB-S2 code rate {rate!r}; expected one of {RATE_NAMES}"
        ) from None


def all_profiles() -> List[CodeRateProfile]:
    """Return the eleven profiles in the paper's Table 1 order."""
    return [_PROFILES[name] for name in RATE_NAMES]
