"""Parity-check matrix utilities (sparse, GF(2)).

The decoders never materialize ``H``; they work on the Tanner graph edge
arrays.  This module provides the matrix view for validation, rank checks on
small codes, and interoperability (dense/`scipy.sparse` export).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tanner import TannerGraph


def syndrome(graph: "TannerGraph", bits: np.ndarray) -> np.ndarray:
    """Compute the GF(2) syndrome ``H x^T`` for hard bits.

    Parameters
    ----------
    graph:
        The Tanner graph defining ``H``.
    bits:
        Array of 0/1 codeword bits, length ``graph.n_vns``.

    Returns
    -------
    Array of length ``graph.n_cns``; all zeros iff ``bits`` is a codeword
    (paper Eq. 1).
    """
    bits = np.asarray(bits)
    if bits.shape != (graph.n_vns,):
        raise ValueError(
            f"expected {graph.n_vns} bits, got shape {bits.shape}"
        )
    edge_bits = bits[graph.edge_vn].astype(np.int64)
    sums = np.zeros(graph.n_cns, dtype=np.int64)
    np.add.at(sums, graph.edge_cn, edge_bits)
    return (sums & 1).astype(np.uint8)


def is_codeword(graph: "TannerGraph", bits: np.ndarray) -> bool:
    """True iff ``H x^T = 0`` (paper Eq. 1)."""
    return not syndrome(graph, bits).any()


def syndrome_weight(graph: "TannerGraph", bits: np.ndarray) -> int:
    """Number of unsatisfied parity checks."""
    return int(syndrome(graph, bits).sum())


def to_dense(graph: "TannerGraph") -> np.ndarray:
    """Materialize ``H`` as a dense uint8 array (small codes only).

    Raises
    ------
    ValueError
        If the dense matrix would exceed 64M entries, to protect against
        accidentally densifying a full 64800-bit frame.
    """
    if graph.n_cns * graph.n_vns > 64_000_000:
        raise ValueError(
            "refusing to densify a parity-check matrix this large; "
            "use to_scipy_sparse instead"
        )
    h = np.zeros((graph.n_cns, graph.n_vns), dtype=np.uint8)
    h[graph.edge_cn, graph.edge_vn] = 1
    return h


def to_scipy_sparse(graph: "TannerGraph"):
    """Export ``H`` as a ``scipy.sparse.csr_matrix`` (scipy required)."""
    from scipy.sparse import csr_matrix

    data = np.ones(graph.n_edges, dtype=np.uint8)
    return csr_matrix(
        (data, (graph.edge_cn, graph.edge_vn)),
        shape=(graph.n_cns, graph.n_vns),
    )


def gf2_rank(h: np.ndarray) -> int:
    """Rank of a dense binary matrix over GF(2) (Gaussian elimination).

    Intended for the scaled test codes; cost is O(rows * cols^2 / 64) using
    bit-packed rows.
    """
    rows, cols = h.shape
    packed_width = (cols + 63) // 64
    packed = np.zeros((rows, packed_width), dtype=np.uint64)
    for j in range(cols):
        col_bits = h[:, j].astype(np.uint64)
        packed[:, j // 64] |= col_bits << np.uint64(j % 64)
    rank = 0
    used = np.zeros(rows, dtype=bool)
    for j in range(cols):
        word, bit = j // 64, np.uint64(1) << np.uint64(j % 64)
        column_hits = (packed[:, word] & bit).astype(bool)
        candidates = np.nonzero(column_hits & ~used)[0]
        if candidates.size == 0:
            continue
        pivot = int(candidates[0])
        used[pivot] = True
        rank += 1
        mask = column_hits.copy()
        mask[pivot] = False
        packed[mask] ^= packed[pivot]
    return rank


def density(graph: "TannerGraph") -> float:
    """Fraction of nonzero entries of ``H`` (shows H is indeed sparse)."""
    return graph.n_edges / (graph.n_cns * graph.n_vns)


def structure_summary(graph: "TannerGraph") -> Tuple[int, int, int, float]:
    """Return ``(n_vns, n_cns, n_edges, density)`` for reports."""
    return graph.n_vns, graph.n_cns, graph.n_edges, density(graph)
