"""Tanner graph representation used by every decoder and hardware model.

A :class:`TannerGraph` stores the bipartite graph of paper Fig. 1 as flat
edge arrays plus two sorted views (by variable node and by check node) that
make the vectorized message-passing decoders O(E) per iteration:

* ``edge_vn[e]`` / ``edge_cn[e]`` — endpoints of edge ``e`` in *canonical*
  order (information edges in address-table order, then the zigzag edges),
* ``vn_order`` / ``cn_order`` — permutations sorting edges by VN / by CN,
* ``vn_ptr`` / ``cn_ptr`` — CSR-style segment pointers into those orders.

Variable nodes are numbered codeword-style: information nodes ``0 .. K-1``
followed by parity nodes ``K .. N-1`` (matching the systematic codeword
layout of the IRA encoder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class TannerGraph:
    """Immutable bipartite graph between variable and check nodes."""

    n_vns: int
    n_cns: int
    edge_vn: np.ndarray
    edge_cn: np.ndarray
    n_info: int

    def __post_init__(self) -> None:
        if self.edge_vn.shape != self.edge_cn.shape:
            raise ValueError("edge endpoint arrays must have equal length")
        if self.edge_vn.size and (
            self.edge_vn.min() < 0 or self.edge_vn.max() >= self.n_vns
        ):
            raise ValueError("variable-node index out of range")
        if self.edge_cn.size and (
            self.edge_cn.min() < 0 or self.edge_cn.max() >= self.n_cns
        ):
            raise ValueError("check-node index out of range")
        if not 0 <= self.n_info <= self.n_vns:
            raise ValueError("n_info out of range")
        # Sorted views are derived once; object.__setattr__ because frozen.
        vn_order = np.argsort(self.edge_vn, kind="stable")
        cn_order = np.argsort(self.edge_cn, kind="stable")
        vn_deg = np.bincount(self.edge_vn, minlength=self.n_vns)
        cn_deg = np.bincount(self.edge_cn, minlength=self.n_cns)
        object.__setattr__(self, "_vn_order", vn_order)
        object.__setattr__(self, "_cn_order", cn_order)
        object.__setattr__(self, "_vn_deg", vn_deg)
        object.__setattr__(self, "_cn_deg", cn_deg)
        object.__setattr__(
            self, "_vn_ptr", np.concatenate(([0], np.cumsum(vn_deg)))
        )
        object.__setattr__(
            self, "_cn_ptr", np.concatenate(([0], np.cumsum(cn_deg)))
        )

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Total number of edges."""
        return int(self.edge_vn.size)

    @property
    def n_parity(self) -> int:
        """Number of parity (non-information) variable nodes."""
        return self.n_vns - self.n_info

    @property
    def vn_degrees(self) -> np.ndarray:
        """Degree of every variable node."""
        return self._vn_deg

    @property
    def cn_degrees(self) -> np.ndarray:
        """Degree of every check node."""
        return self._cn_deg

    @property
    def vn_order(self) -> np.ndarray:
        """Permutation of edge indices sorted by variable node (stable)."""
        return self._vn_order

    @property
    def cn_order(self) -> np.ndarray:
        """Permutation of edge indices sorted by check node (stable)."""
        return self._cn_order

    @property
    def vn_ptr(self) -> np.ndarray:
        """Segment pointers: edges of VN ``v`` are
        ``vn_order[vn_ptr[v]:vn_ptr[v+1]]``."""
        return self._vn_ptr

    @property
    def cn_ptr(self) -> np.ndarray:
        """Segment pointers: edges of CN ``c`` are
        ``cn_order[cn_ptr[c]:cn_ptr[c+1]]``."""
        return self._cn_ptr

    # ------------------------------------------------------------------
    # Node-local views
    # ------------------------------------------------------------------
    def vn_edges(self, v: int) -> np.ndarray:
        """Edge indices incident to variable node ``v``."""
        return self._vn_order[self._vn_ptr[v] : self._vn_ptr[v + 1]]

    def cn_edges(self, c: int) -> np.ndarray:
        """Edge indices incident to check node ``c``."""
        return self._cn_order[self._cn_ptr[c] : self._cn_ptr[c + 1]]

    def neighbors_of_cn(self, c: int) -> np.ndarray:
        """Variable nodes adjacent to check node ``c``."""
        return self.edge_vn[self.cn_edges(c)]

    def neighbors_of_vn(self, v: int) -> np.ndarray:
        """Check nodes adjacent to variable node ``v``."""
        return self.edge_cn[self.vn_edges(v)]

    def is_information(self, v: int) -> bool:
        """True when variable node ``v`` is an information node."""
        return 0 <= v < self.n_info

    # ------------------------------------------------------------------
    # Validation and structural statistics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on violation."""
        if int(self._vn_deg.sum()) != self.n_edges:
            raise ValueError("variable degrees do not sum to edge count")
        if int(self._cn_deg.sum()) != self.n_edges:
            raise ValueError("check degrees do not sum to edge count")
        if (self._vn_deg == 0).any():
            raise ValueError("isolated variable node present")
        if (self._cn_deg == 0).any():
            raise ValueError("isolated check node present")
        # No parallel edges: endpoint pairs must be unique.
        pair_key = self.edge_vn.astype(np.int64) * self.n_cns + self.edge_cn
        if np.unique(pair_key).size != self.n_edges:
            raise ValueError("parallel edges present in Tanner graph")

    def count_4cycles(self, max_vn: int | None = None) -> int:
        """Count 4-cycles touching the first ``max_vn`` variable nodes.

        A 4-cycle is a pair of variable nodes sharing two check nodes.
        The count is exact when ``max_vn`` is ``None``; restricting it keeps
        the diagnostic affordable on full 64800-bit frames.
        """
        limit = self.n_vns if max_vn is None else min(max_vn, self.n_vns)
        count = 0
        for v in range(limit):
            checks = self.neighbors_of_vn(v)
            partners = np.concatenate(
                [self.neighbors_of_cn(c) for c in checks]
            )
            partners = partners[partners > v]
            if partners.size:
                _, occurrences = np.unique(partners, return_counts=True)
                count += int(((occurrences * (occurrences - 1)) // 2).sum())
        return count

    def degree_histogram(self) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of variable-node degrees ``(degrees, counts)``."""
        degrees, counts = np.unique(self._vn_deg, return_counts=True)
        return degrees, counts
