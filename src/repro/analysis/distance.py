"""Impulse-based minimum-distance estimation (error-floor analysis).

The error floor of an LDPC code is governed by its low-weight codewords
and near-codewords; the standard engineering estimate is Berrou's
*error impulse* method: start from the all-zero codeword under a
near-perfect channel, slam one (or two) strongly wrong LLR impulses in,
and let the decoder converge — if it locks onto a wrong codeword, that
codeword's Hamming weight upper-bounds the minimum distance through the
impulse position.

For the DVB-S2 IRA structure this probes exactly the known weak spots:
degree-3 information nodes and the degree-2 parity chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..codes.construction import LdpcCode
from ..codes.matrix import is_codeword
from ..decode.bp import BeliefPropagationDecoder


@dataclass
class DistanceEstimate:
    """Result of an impulse search."""

    min_weight_found: Optional[int]
    weights: List[int] = field(default_factory=list)
    probed_positions: int = 0
    wrong_codewords: int = 0

    @property
    def is_upper_bound(self) -> bool:
        """The estimate bounds d_min from above (found codewords are
        real); absence of findings proves nothing."""
        return self.min_weight_found is not None


def impulse_distance_estimate(
    code: LdpcCode,
    positions: Optional[Sequence[int]] = None,
    n_positions: int = 50,
    impulse_magnitude: float = 25.0,
    base_magnitudes: Sequence[float] = (1.2, 1.5, 2.0, 2.5),
    max_iterations: int = 60,
    seed: int = 0,
) -> DistanceEstimate:
    """Probe for low-weight codewords via single error impulses.

    Parameters
    ----------
    code:
        The code under test.
    positions:
        Bit positions to hit; default samples information and parity
        positions uniformly.
    impulse_magnitude / base_magnitudes:
        Wrong-LLR strength at the impulse vs correct-LLR strength
        elsewhere.  The method only "escapes" to a neighbouring
        codeword in a narrow base window, so several base strengths
        are scanned per position (the classic tuning of the method).
    """
    rng = np.random.default_rng(seed)
    if positions is None:
        positions = rng.choice(
            code.n, size=min(n_positions, code.n), replace=False
        )
    decoder = BeliefPropagationDecoder(code, "tanh")
    weights: List[int] = []
    wrong = 0
    for pos in positions:
        for base in base_magnitudes:
            llrs = np.full(code.n, base, dtype=np.float64)
            llrs[int(pos)] = -impulse_magnitude
            result = decoder.decode(
                llrs, max_iterations=max_iterations, early_stop=True
            )
            if result.converged and result.bits.any():
                if is_codeword(code.graph, result.bits):
                    wrong += 1
                    weights.append(int(result.bits.sum()))
    return DistanceEstimate(
        min_weight_found=min(weights) if weights else None,
        weights=sorted(weights),
        probed_positions=len(list(positions)),
        wrong_codewords=wrong,
    )


def pairwise_impulse_estimate(
    code: LdpcCode,
    n_pairs: int = 30,
    impulse_magnitude: float = 25.0,
    base_magnitudes: Sequence[float] = (1.2, 1.5, 2.0, 2.5),
    max_iterations: int = 60,
    seed: int = 0,
) -> DistanceEstimate:
    """Two-impulse variant: probes codewords no single impulse reaches
    (pairs of degree-3 / chain bits are the usual IRA floor culprits)."""
    rng = np.random.default_rng(seed)
    decoder = BeliefPropagationDecoder(code, "tanh")
    weights: List[int] = []
    wrong = 0
    for _ in range(n_pairs):
        a, b = rng.choice(code.n, size=2, replace=False)
        for base in base_magnitudes:
            llrs = np.full(code.n, base, dtype=np.float64)
            llrs[int(a)] = -impulse_magnitude
            llrs[int(b)] = -impulse_magnitude
            result = decoder.decode(
                llrs, max_iterations=max_iterations, early_stop=True
            )
            if result.converged and result.bits.any():
                if is_codeword(code.graph, result.bits):
                    wrong += 1
                    weights.append(int(result.bits.sum()))
    return DistanceEstimate(
        min_weight_found=min(weights) if weights else None,
        weights=sorted(weights),
        probed_positions=n_pairs,
        wrong_codewords=wrong,
    )
