"""Analytical tools: EXIT thresholds and distance estimation."""

from .distance import (
    DistanceEstimate,
    impulse_distance_estimate,
    pairwise_impulse_estimate,
)
from .exit import (
    cn_exit,
    converges,
    decoding_threshold_db,
    edge_degree_distribution,
    exit_trajectory,
    j_function,
    j_inverse,
    vn_exit,
)

__all__ = [
    "DistanceEstimate",
    "cn_exit",
    "converges",
    "decoding_threshold_db",
    "edge_degree_distribution",
    "exit_trajectory",
    "impulse_distance_estimate",
    "j_function",
    "j_inverse",
    "pairwise_impulse_estimate",
    "vn_exit",
]
