"""EXIT-chart threshold analysis of the DVB-S2 degree distributions.

The paper attributes the codes' 0.7 dB-to-Shannon performance to the
degree distributions of Table 1.  EXIT analysis (ten Brink's Gaussian
approximation of density evolution) predicts the asymptotic decoding
threshold of an ensemble directly from those distributions — no Monte
Carlo — and this module computes it for every DVB-S2 rate, giving the
theoretical side of the Shannon-gap experiment.

Machinery:

* ``J(sigma)`` — mutual information between a bit and its LLR when the
  LLR is consistent-Gaussian ``N(sigma^2/2, sigma^2)``; computed by
  Gauss–Hermite quadrature (no fitted constants) and inverted by
  bisection.
* Variable-node curve: ``I_E = Σ_d λ_d · J(sqrt((d-1)·s_a^2 + s_ch^2))``
  over the edge-perspective degree distribution λ.
* Check-node curve (duality approximation):
  ``I_E = 1 − J(sqrt(d_c − 1) · J_inv(1 − I_A))``.
* Threshold: the smallest channel quality whose iterated EXIT recursion
  reaches ``I → 1``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..channel.awgn import ebn0_db_to_sigma
from ..codes.standard import CodeRateProfile

_HERMITE_POINTS = 64
_NODES, _WEIGHTS = np.polynomial.hermite.hermgauss(_HERMITE_POINTS)


def j_function(sigma: float) -> float:
    """Mutual information of a consistent Gaussian LLR of std ``sigma``."""
    if sigma <= 0:
        return 0.0
    mean = sigma * sigma / 2.0
    llrs = mean + np.sqrt(2.0) * sigma * _NODES
    vals = np.logaddexp(0.0, -llrs) / np.log(2.0)
    out = 1.0 - float(np.sum(_WEIGHTS * vals) / np.sqrt(np.pi))
    return min(1.0, max(0.0, out))


def _build_j_table() -> Tuple[np.ndarray, np.ndarray]:
    sigmas = np.linspace(0.0, 40.0, 8001)
    values = np.array([j_function(float(s)) for s in sigmas])
    # enforce strict monotonicity for interpolation (J saturates at 1)
    values = np.maximum.accumulate(values)
    return sigmas, values


_J_SIGMAS, _J_VALUES = _build_j_table()


def j_inverse(i: float) -> float:
    """Inverse of :func:`j_function` via a monotone lookup table.

    Table resolution 0.005 in sigma; relative error < 1e-3 over the
    whole EXIT-relevant range, which is far below the Gaussian
    approximation's own error.
    """
    if not 0.0 <= i <= 1.0:
        raise ValueError("mutual information must be in [0, 1]")
    if i <= 0.0:
        return 0.0
    if i >= float(_J_VALUES[-1]):
        return float(_J_SIGMAS[-1])
    return float(np.interp(i, _J_VALUES, _J_SIGMAS))


def edge_degree_distribution(
    profile: CodeRateProfile,
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Edge-perspective degree distributions ``(lambda, rho)``.

    The variable side includes the parity chain: the zigzag contributes
    ``2(N_parity − 1) + 1`` degree-2-node edges (the terminator's single
    edge is folded in as degree 2 — asymptotically exact).
    """
    e_in = profile.e_in
    e_pn = profile.e_pn
    total = e_in + e_pn
    lam = {
        profile.j_high: profile.n_high * profile.j_high / total,
        3: profile.n_3 * 3 / total,
        2: e_pn / total,
    }
    if profile.j_high == 3:
        lam = {3: (profile.n_high * 3 + profile.n_3 * 3) / total,
               2: e_pn / total}
    rho = {profile.check_degree: 1.0}
    return lam, rho


def vn_exit(
    i_a: float, sigma_ch: float, lam: Dict[int, float]
) -> float:
    """Variable-node EXIT curve at a-priori information ``i_a``."""
    s_a = j_inverse(i_a)
    out = 0.0
    for d, frac in lam.items():
        out += frac * j_function(
            np.sqrt((d - 1) * s_a * s_a + sigma_ch * sigma_ch)
        )
    return out


def cn_exit(i_a: float, rho: Dict[int, float]) -> float:
    """Check-node EXIT curve (duality approximation)."""
    s = j_inverse(1.0 - i_a)
    out = 0.0
    for d, frac in rho.items():
        out += frac * (1.0 - j_function(np.sqrt(d - 1) * s))
    return out


def exit_trajectory(
    profile: CodeRateProfile,
    ebn0_db: float,
    max_steps: int = 2000,
) -> List[Tuple[float, float]]:
    """The staircase trajectory ``[(I_va, I_cv), ...]`` at one Eb/N0."""
    lam, rho = edge_degree_distribution(profile)
    sigma_noise = ebn0_db_to_sigma(ebn0_db, float(profile.rate))
    sigma_ch = 2.0 / sigma_noise
    trajectory = []
    i_cv = 0.0
    for _ in range(max_steps):
        i_vc = vn_exit(i_cv, sigma_ch, lam)
        i_cv_new = cn_exit(i_vc, rho)
        trajectory.append((i_vc, i_cv_new))
        if i_vc > 0.9999:
            break
        if i_cv_new - i_cv < 1e-7:
            break
        i_cv = i_cv_new
    return trajectory


def converges(profile: CodeRateProfile, ebn0_db: float) -> bool:
    """True when the EXIT recursion opens all the way to I = 1."""
    trajectory = exit_trajectory(profile, ebn0_db)
    return trajectory[-1][0] > 0.9999


def decoding_threshold_db(
    profile: CodeRateProfile,
    lo_db: float = -2.0,
    hi_db: float = 6.0,
    resolution_db: float = 0.01,
) -> float:
    """Asymptotic decoding threshold in Eb/N0 (dB) for the ensemble."""
    if not converges(profile, hi_db):
        raise ValueError("ensemble does not converge even at hi_db")
    if converges(profile, lo_db):
        return lo_db
    lo, hi = lo_db, hi_db
    while hi - lo > resolution_db:
        mid = 0.5 * (lo + hi)
        if converges(profile, mid):
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)
