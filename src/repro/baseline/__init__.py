"""Fully-parallel decoder baseline (paper ref [4])."""

from .parallel import (
    FullyParallelAreaModel,
    FullyParallelDecoder,
    RegularLdpcCode,
    blanksby_howland_reference,
    build_regular_code,
)

__all__ = [
    "FullyParallelAreaModel",
    "FullyParallelDecoder",
    "RegularLdpcCode",
    "blanksby_howland_reference",
    "build_regular_code",
]
