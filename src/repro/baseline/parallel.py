"""Fully-parallel decoder baseline (paper ref [4], Blanksby & Howland).

The paper motivates its partly-parallel architecture by the failure mode
of the fully-parallel alternative: instantiating every node and hardwiring
every edge worked for a 1024-bit code (a 52.5 mm² chip with "severe
routing congestion problems" already), but cannot scale to 64800 bits.

This module provides both halves of that argument:

* a 1024-bit regular (3,6) LDPC code with a flooding decoder (the
  algorithmic baseline), and
* a wiring-dominated area model for fully-parallel layouts, calibrated on
  the 1024-bit chip and extrapolated to the DVB-S2 frame — reproducing
  the "partly parallel becomes mandatory" conclusion quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Optional

import numpy as np

from ..codes.tanner import TannerGraph
from ..decode.bp import BeliefPropagationDecoder


@dataclass(frozen=True)
class RegularLdpcCode:
    """A regular (dv, dc) Gallager code for the fully-parallel baseline."""

    graph: TannerGraph
    dv: int
    dc: int

    @property
    def n(self) -> int:
        """Codeword length."""
        return self.graph.n_vns

    @property
    def k(self) -> int:
        """Nominal information bits (design rate)."""
        return self.graph.n_vns - self.graph.n_cns

    @property
    def rate(self) -> float:
        """Design rate ``1 - dv/dc``."""
        return 1.0 - self.dv / self.dc


def build_regular_code(
    n: int = 1024, dv: int = 3, dc: int = 6, seed: int = 7
) -> RegularLdpcCode:
    """Random regular (dv, dc) code via a permuted edge socket matching.

    Uses the configuration-model construction with resampling to remove
    parallel edges; adequate for a baseline decoder (ref [4]'s code was
    similarly computer-generated).
    """
    if (n * dv) % dc != 0:
        raise ValueError("n * dv must be divisible by dc")
    m = n * dv // dc
    rng = np.random.default_rng(seed)
    vn_sockets = np.repeat(np.arange(n), dv)
    for _ in range(200):
        perm = rng.permutation(n * dv)
        edge_vn = vn_sockets[perm]
        edge_cn = np.repeat(np.arange(m), dc)
        pairs = edge_vn.astype(np.int64) * m + edge_cn
        if np.unique(pairs).size == pairs.size:
            graph = TannerGraph(
                n_vns=n,
                n_cns=m,
                edge_vn=edge_vn,
                edge_cn=edge_cn,
                n_info=n - m,
            )
            return RegularLdpcCode(graph=graph, dv=dv, dc=dc)
        # Local repair: swap one endpoint of each duplicated edge.
    raise RuntimeError("could not draw a simple regular graph")


class FullyParallelDecoder(BeliefPropagationDecoder):
    """Flooding decoder as the fully-parallel chip executes it.

    Functionally identical to two-phase BP — every node has its own
    hardware, so one iteration takes a constant ~2 clock cycles
    regardless of block length.  The price is wiring, not cycles.
    """

    #: Cycles per iteration of the hardwired datapath.
    CYCLES_PER_ITERATION = 2

    def cycles_per_block(self, iterations: int) -> int:
        """Clock cycles to decode one frame."""
        return self.CYCLES_PER_ITERATION * iterations


@dataclass(frozen=True)
class FullyParallelAreaModel:
    """Wiring-dominated area estimate for a fully-parallel layout.

    The die must host the node logic *and* one dedicated route per edge.
    With nodes placed uniformly on a die of area ``A``, the expected
    Manhattan length of a random route is ``(2/3) sqrt(A)``, so the die
    area solves the fixed point::

        A = A_logic + E * (2/3) * sqrt(A) * wire_pitch_eff

    a quadratic in ``sqrt(A)``.  ``wire_pitch_eff`` (effective consumed
    width per route, including routing-utilization losses) is calibrated
    so the 1024-bit reference matches ref [4]'s 52.5 mm² die.
    """

    gate_um2: float = 7.0  # 0.16 um node of ref [4]
    gates_per_node: float = 300.0
    wire_pitch_eff_um: float = 3.3  # calibrated: 1024-bit die = ~52 mm²

    def logic_area_mm2(self, n_nodes: int) -> float:
        """Area of the instantiated node logic alone."""
        return n_nodes * self.gates_per_node * self.gate_um2 / 1e6

    def die_area_mm2(self, n_nodes: int, n_edges: int) -> float:
        """Fixed-point die area including edge wiring."""
        a_logic = self.logic_area_mm2(n_nodes)
        beta = n_edges * (2.0 / 3.0) * self.wire_pitch_eff_um / 1e3
        s = 0.5 * (beta + sqrt(beta * beta + 4.0 * a_logic))
        return s * s

    def wiring_fraction(self, n_nodes: int, n_edges: int) -> float:
        """Fraction of the die consumed by wiring — the congestion
        indicator that makes fully-parallel infeasible at 64800 bits."""
        a = self.die_area_mm2(n_nodes, n_edges)
        return 1.0 - self.logic_area_mm2(n_nodes) / a


def blanksby_howland_reference() -> dict:
    """Published figures of the ref [4] chip for calibration checks."""
    return {
        "block_length": 1024,
        "rate": 0.5,
        "area_mm2": 52.5,
        "technology_um": 0.16,
        "power_mw": 690,
        "throughput_gbps": 1.0,
    }
