"""Fixed-point number formats and saturating arithmetic."""

from .fixed_point import MESSAGE_5BIT, MESSAGE_6BIT, FixedPointFormat

__all__ = ["FixedPointFormat", "MESSAGE_5BIT", "MESSAGE_6BIT"]
