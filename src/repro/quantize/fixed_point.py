"""Saturating fixed-point arithmetic for message quantization.

The paper cites [9]: a 6-bit message quantization costs only ~0.1 dB
versus infinite precision, and [6]: ~0.15–0.2 dB for 5 bits.  Messages are
stored as symmetric two's-complement integers with a configurable number of
fractional bits; all arithmetic saturates (wrapping would destroy BP's
monotonicity and is never done in decoder hardware).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """A symmetric saturating fixed-point number format.

    Attributes
    ----------
    total_bits:
        Word width including sign.  A 6-bit format represents integers in
        ``[-31, +31]`` (symmetric: −32 is excluded so magnitude networks
        and sign-magnitude RAM layouts behave identically).
    frac_bits:
        Binary point position: real value = integer / 2**frac_bits.
    """

    total_bits: int
    frac_bits: int = 2

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("need at least a sign and one magnitude bit")
        if self.frac_bits < 0 or self.frac_bits >= self.total_bits:
            raise ValueError("fractional bits must fit inside the word")

    # ------------------------------------------------------------------
    @property
    def max_int(self) -> int:
        """Largest representable integer (symmetric clipping bound)."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_int(self) -> int:
        """Smallest representable integer (= −max_int, symmetric)."""
        return -self.max_int

    @property
    def scale(self) -> float:
        """Real value of one LSB."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_real(self) -> float:
        """Largest representable real value."""
        return self.max_int * self.scale

    @property
    def n_levels(self) -> int:
        """Number of representable levels."""
        return 2 * self.max_int + 1

    # ------------------------------------------------------------------
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values → saturated integer representation (int32).

        Vectorized over any input shape (single frames and
        ``(frames, n)`` batches alike).  NaN/infinite inputs raise: a
        NaN would otherwise survive ``clip`` and wrap to an arbitrary
        integer in the ``astype``, silently corrupting the decode.
        """
        values = np.asarray(values, dtype=np.float64)
        if not np.isfinite(values).all():
            raise ValueError(
                "channel LLRs must be finite; got NaN or infinity "
                "(int conversion would silently wrap)"
            )
        scaled = np.round(values / self.scale)
        return np.clip(scaled, self.min_int, self.max_int).astype(np.int32)

    def dequantize(self, ints: np.ndarray) -> np.ndarray:
        """Integer representation → real values."""
        return np.asarray(ints, dtype=np.float64) * self.scale

    def saturate(self, ints: np.ndarray) -> np.ndarray:
        """Clip integer values into the representable range."""
        return np.clip(ints, self.min_int, self.max_int).astype(np.int32)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Saturating addition on integer representations."""
        return self.saturate(
            np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
        )

    def sum(self, values: np.ndarray, axis=None) -> np.ndarray:
        """Saturating sum (wide accumulate, single final saturation).

        Decoder hardware accumulates variable-node sums in a wider adder
        and saturates once at the output, which this mirrors.
        """
        total = np.sum(np.asarray(values, dtype=np.int64), axis=axis)
        return self.saturate(total)

    def representable_values(self) -> np.ndarray:
        """All representable real values, ascending (for tests/plots)."""
        return (
            np.arange(self.min_int, self.max_int + 1, dtype=np.int64)
            * self.scale
        )


#: The paper's reference formats: 6-bit messages (synthesis results of
#: Table 3) and the 5-bit variant whose extra loss [6] quantifies.
MESSAGE_6BIT = FixedPointFormat(total_bits=6, frac_bits=2)
MESSAGE_5BIT = FixedPointFormat(total_bits=5, frac_bits=1)
