"""Public IP-core facade and datasheet reports."""

from .config import IpCoreConfig
from .ip_core import DvbS2LdpcDecoderIp
from .multirate import MultiRateDecoderIp
from .vectors import generate_vectors, load_vectors, replay_vectors
from .report import (
    exit_threshold_report,
    format_table,
    full_datasheet,
    power_report,
    table1_report,
    table2_report,
    table3_report,
    throughput_report,
)

__all__ = [
    "DvbS2LdpcDecoderIp",
    "IpCoreConfig",
    "MultiRateDecoderIp",
    "exit_threshold_report",
    "format_table",
    "full_datasheet",
    "generate_vectors",
    "load_vectors",
    "power_report",
    "replay_vectors",
    "table1_report",
    "table2_report",
    "table3_report",
    "throughput_report",
]
