"""Top-level configuration of the DVB-S2 LDPC decoder IP."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codes.standard import RATE_NAMES
from ..quantize.fixed_point import MESSAGE_6BIT, FixedPointFormat


@dataclass(frozen=True)
class IpCoreConfig:
    """Everything a user chooses when instantiating the IP core.

    Defaults mirror the synthesized configuration of the paper: 64800-bit
    frames, 6-bit messages, 30 iterations, 270 MHz, 360 functional units,
    annealed addressing.
    """

    rate: str = "1/2"
    iterations: int = 30
    fmt: FixedPointFormat = MESSAGE_6BIT
    normalization: float = 0.75
    channel_scale: float = 1.0
    clock_hz: float = 270e6
    parallelism: int = 360
    anneal_addressing: bool = True
    annealing_iterations: int = 800
    early_stop: bool = False
    seed: int = 0

    def validate(self) -> None:
        """Reject configurations the architecture cannot realize."""
        problems = []
        if self.rate not in RATE_NAMES:
            problems.append(f"unknown rate {self.rate!r}")
        if self.iterations < 1:
            problems.append("need at least one iteration")
        if not 0.0 < self.normalization <= 1.0:
            problems.append("normalization must be in (0, 1]")
        if self.channel_scale <= 0:
            problems.append("channel_scale must be positive")
        if self.clock_hz <= 0:
            problems.append("clock must be positive")
        if self.parallelism < 1 or 360 % self.parallelism != 0:
            problems.append("parallelism must divide 360")
        if problems:
            raise ValueError("; ".join(problems))
