"""Datasheet-style text reports regenerating the paper's tables."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..codes.standard import all_profiles
from ..hw.area import PAPER_TABLE3_MM2, AreaModel
from ..hw.throughput import throughput_table


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a fixed-width text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append(
            "  ".join(c.rjust(w) for c, w in zip(row, widths))
        )
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def ber_report(result, telemetry=None) -> str:
    """Human-readable summary of one Monte-Carlo measurement.

    Surfaces the converged/total frame split explicitly: the mean
    iteration count includes non-converged frames at their full budget,
    so it is labelled as such whenever any frame failed to converge.
    """
    lines = [
        f"Eb/N0           : {result.ebn0_db:.2f} dB",
        f"frames          : {result.frames}",
        f"converged       : {result.converged_frames}/{result.frames}"
        f" ({100.0 * result.convergence_rate:.1f}%)",
        f"bit errors      : {result.bit_errors}",
        f"frame errors    : {result.frame_errors}",
        f"BER             : {result.ber:.3e}",
        f"FER             : {result.fer:.3e}",
    ]
    if result.non_converged_frames:
        lines.append(
            f"avg iterations  : {result.avg_iterations:.2f}"
            f" (includes {result.non_converged_frames} non-converged"
            " frames at full budget)"
        )
    else:
        lines.append(
            f"avg iterations  : {result.avg_iterations:.2f}"
        )
    if telemetry is not None:
        lines.extend(
            [
                f"workers         : {telemetry.workers}",
                f"throughput      : {telemetry.frames_per_sec:.1f}"
                f" frames/s, {telemetry.info_mbps:.3f} info Mbit/s",
                f"shards          : {telemetry.shards_merged} merged,"
                f" {telemetry.shards_discarded} discarded",
            ]
        )
    return "\n".join(lines)


def table1_report() -> str:
    """Regenerate paper Table 1 (Tanner-graph parameters per rate)."""
    rows = []
    for p in all_profiles():
        rows.append(
            (p.name, p.n_high, p.j_high, p.n_3, p.check_degree,
             p.n_parity, p.k_info)
        )
    return format_table(
        ("Rate", "N_j", "j", "N_3", "k", "N_parity", "K"), rows
    )


def table2_report() -> str:
    """Regenerate paper Table 2 (edge counts and connectivity storage)."""
    rows = []
    for p in all_profiles():
        rows.append((p.name, p.q, p.e_pn, p.e_in, p.addr_entries))
    return format_table(("Rate", "q", "E_PN", "E_IN", "Addr"), rows)


def table3_report(width_bits: int = 6) -> str:
    """Regenerate paper Table 3 (area breakdown) next to the paper."""
    report = AreaModel(width_bits=width_bits).report()
    rows = []
    for row in report.as_rows():
        paper = PAPER_TABLE3_MM2.get(row["component"], float("nan"))
        rows.append(
            (
                row["component"],
                f"{row['area_mm2']:.3f}",
                f"{paper:.3f}",
            )
        )
    return format_table(("Component", "model mm^2", "paper mm^2"), rows)


def throughput_report(iterations: int = 30) -> str:
    """Per-rate throughput table for paper Eq. (8)."""
    rows = []
    for r in throughput_table(iterations=iterations):
        rows.append(
            (
                r["rate"],
                r["cycles"],
                f"{r['info_throughput_mbps']:.1f}",
                f"{r['coded_throughput_mbps']:.1f}",
                "yes" if r["meets_255"] else "NO",
            )
        )
    return format_table(
        ("Rate", "cycles/block", "info Mb/s", "coded Mb/s", ">=255"), rows
    )


def power_report(iterations: int = 30) -> str:
    """Per-rate energy table (extension; see repro.hw.power)."""
    from ..hw.power import power_table

    rows = []
    for r in power_table(iterations=iterations):
        rows.append(
            (
                r["rate"],
                f"{r['energy_per_frame_uj']:.1f}",
                f"{r['power_mw']:.0f}",
                f"{r['pj_per_bit_per_iter']:.1f}",
            )
        )
    return format_table(
        ("Rate", "uJ/frame", "mW", "pJ/bit/iter"), rows
    )


def exit_threshold_report() -> str:
    """Analytic decoding thresholds per rate (extension;
    see repro.analysis.exit)."""
    from ..analysis.exit import decoding_threshold_db
    from ..channel.capacity import shannon_limit_ebn0_db

    rows = []
    for p in all_profiles():
        threshold = decoding_threshold_db(p)
        shannon = shannon_limit_ebn0_db(float(p.rate))
        rows.append(
            (
                p.name,
                f"{threshold:.2f}",
                f"{shannon:.2f}",
                f"{threshold - shannon:.2f}",
            )
        )
    return format_table(
        ("Rate", "EXIT thr dB", "Shannon dB", "gap dB"), rows
    )


def full_datasheet(iterations: int = 30) -> str:
    """All regenerated tables in one document."""
    sections: List[str] = [
        "DVB-S2 LDPC decoder IP — regenerated datasheet",
        "",
        "Table 1 — Tanner graph parameters",
        table1_report(),
        "",
        "Table 2 — edge counts and connectivity storage",
        table2_report(),
        "",
        "Table 3 — synthesis area (ST 0.13 um class model)",
        table3_report(),
        "",
        f"Throughput at 270 MHz, {iterations} iterations (paper Eq. 8)",
        throughput_report(iterations),
        "",
        "Energy model (extension)",
        power_report(iterations),
    ]
    return "\n".join(sections)
