"""Golden test-vector generation and replay (an IP-delivery artifact).

Real IP cores ship with test-vector sets: stimulus files plus expected
responses that the licensee replays against their integration.  This
module generates exactly that for the decoder core — quantized channel
words in, decoded frames and cycle counts out — in a self-describing
text format, and replays a vector file against any core instance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..channel.awgn import AwgnChannel
from ..codes.small import build_small_code
from ..codes.standard import PARALLELISM
from ..codes.construction import build_code
from ..encode.encoder import IraEncoder
from ..hw.decoder_core import CoreConfig, DecoderIpCore

FORMAT_VERSION = 1


@dataclass
class VectorSet:
    """A parsed golden-vector file."""

    header: dict
    stimuli: List[np.ndarray]     # quantized channel LLRs per frame
    expected: List[np.ndarray]    # decoded bits per frame

    @property
    def n_frames(self) -> int:
        """Number of frames in the set."""
        return len(self.stimuli)


def _bits_to_hex(bits: np.ndarray) -> str:
    return np.packbits(bits.astype(np.uint8)).tobytes().hex()

def _hex_to_bits(text: str, n: int) -> np.ndarray:
    raw = np.frombuffer(bytes.fromhex(text), dtype=np.uint8)
    return np.unpackbits(raw)[:n].astype(np.uint8)


def generate_vectors(
    path: Union[str, Path],
    rate: str = "1/2",
    parallelism: int = 36,
    n_frames: int = 4,
    ebn0_db: float = 2.5,
    iterations: int = 12,
    normalization: float = 0.75,
    channel_scale: float = 0.5,
    seed: int = 0,
) -> VectorSet:
    """Create a golden-vector file for a core configuration.

    The expected responses are produced by the cycle-faithful core
    itself (which the test suite proves equal to the algorithmic golden
    model), so a replay failure indicates an integration defect.
    """
    if parallelism == PARALLELISM:
        code = build_code(rate)
    else:
        code = build_small_code(rate, parallelism=parallelism)
    core = DecoderIpCore(
        code,
        config=CoreConfig(
            normalization=normalization,
            channel_scale=channel_scale,
            iterations=iterations,
        ),
    )
    encoder = IraEncoder(code)
    rng = np.random.default_rng(seed)
    channel = AwgnChannel(
        ebn0_db=ebn0_db, rate=float(code.profile.rate), seed=seed
    )
    header = {
        "format_version": FORMAT_VERSION,
        "rate": rate,
        "parallelism": parallelism,
        "frame_bits": code.n,
        "iterations": iterations,
        "normalization": normalization,
        "channel_scale": channel_scale,
        "message_bits": core.config.fmt.total_bits,
        "frac_bits": core.config.fmt.frac_bits,
        "ebn0_db": ebn0_db,
        "seed": seed,
    }
    stimuli, expected = [], []
    lines = [json.dumps(header)]
    for _ in range(n_frames):
        frame = encoder.encode(
            rng.integers(0, 2, code.k, dtype=np.uint8)
        )
        llrs = channel.llrs(frame)
        quantized = core.config.fmt.quantize(llrs * channel_scale)
        result = core.decode(llrs)
        stimuli.append(quantized.astype(np.int64))
        expected.append(result.bits)
        lines.append(
            json.dumps(
                {
                    "stimulus": quantized.astype(int).tolist(),
                    "expected_hex": _bits_to_hex(result.bits),
                    "cycles": result.extra["cycles"],
                }
            )
        )
    Path(path).write_text("\n".join(lines) + "\n")
    return VectorSet(header=header, stimuli=stimuli, expected=expected)


def load_vectors(path: Union[str, Path]) -> VectorSet:
    """Parse a golden-vector file."""
    lines = Path(path).read_text().strip().splitlines()
    if not lines:
        raise ValueError("empty vector file")
    header = json.loads(lines[0])
    if header.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported vector format {header.get('format_version')}"
        )
    stimuli, expected = [], []
    n = header["frame_bits"]
    for line in lines[1:]:
        record = json.loads(line)
        stimuli.append(np.array(record["stimulus"], dtype=np.int64))
        expected.append(_hex_to_bits(record["expected_hex"], n))
    return VectorSet(header=header, stimuli=stimuli, expected=expected)


def replay_vectors(
    path: Union[str, Path], core: Optional[DecoderIpCore] = None
) -> int:
    """Replay a vector file; returns the number of matching frames.

    Raises
    ------
    AssertionError
        On the first mismatching frame (with its index).
    """
    vectors = load_vectors(path)
    h = vectors.header
    if core is None:
        if h["parallelism"] == PARALLELISM:
            code = build_code(h["rate"])
        else:
            code = build_small_code(
                h["rate"], parallelism=h["parallelism"]
            )
        from ..quantize.fixed_point import FixedPointFormat

        core = DecoderIpCore(
            code,
            config=CoreConfig(
                fmt=FixedPointFormat(h["message_bits"], h["frac_bits"]),
                normalization=h["normalization"],
                channel_scale=1.0,  # stimuli are already quantized
                iterations=h["iterations"],
            ),
        )
    fmt = core.config.fmt
    for index, (stimulus, expected) in enumerate(
        zip(vectors.stimuli, vectors.expected)
    ):
        # feed the quantized words directly (scale 1, integer-exact)
        llrs = stimulus.astype(np.float64) * fmt.scale
        result = core.decode(llrs)
        if not np.array_equal(result.bits, expected):
            raise AssertionError(
                f"vector {index}: decoded frame differs from the "
                "golden response"
            )
    return vectors.n_frames
