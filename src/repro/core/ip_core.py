"""The IP-core facade: one object = the paper's synthesizable decoder.

:class:`DvbS2LdpcDecoderIp` wires the whole stack together the way the
silicon would be instantiated: pick a code rate, optionally anneal the RAM
addressing, then stream frames through the cycle-faithful core.  It also
exposes the datasheet numbers (throughput per Eq. 8, area per Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..codes.construction import LdpcCode, build_code
from ..codes.small import build_small_code
from ..codes.standard import PARALLELISM
from ..decode.result import DecodeResult
from ..encode.encoder import IraEncoder
from ..hw.annealing import AnnealingConfig, optimize_rate
from ..hw.area import AreaModel, AreaReport
from ..hw.conflicts import simulate_cn_phase
from ..hw.decoder_core import CoreConfig, DecoderIpCore
from ..hw.mapping import IpMapping
from ..hw.schedule import DecoderSchedule
from ..hw.throughput import ThroughputModel
from .config import IpCoreConfig


class DvbS2LdpcDecoderIp:
    """The complete decoder IP for one configured code rate.

    Examples
    --------
    >>> from repro.core import DvbS2LdpcDecoderIp, IpCoreConfig
    >>> ip = DvbS2LdpcDecoderIp(IpCoreConfig(rate="1/2", parallelism=36,
    ...                                      anneal_addressing=False))
    >>> frame = ip.encode_random()
    >>> llrs = 8.0 * (1.0 - 2.0 * frame)          # a noiseless channel
    >>> result = ip.decode(llrs)
    >>> bool((result.bits == frame).all())
    True
    """

    def __init__(self, config: Optional[IpCoreConfig] = None) -> None:
        self.config = config or IpCoreConfig()
        self.config.validate()
        cfg = self.config
        if cfg.parallelism == PARALLELISM:
            self.code: LdpcCode = build_code(cfg.rate)
        else:
            self.code = build_small_code(cfg.rate, parallelism=cfg.parallelism)
        self.mapping = IpMapping(self.code)
        if cfg.anneal_addressing:
            self._annealing = optimize_rate(
                self.mapping,
                AnnealingConfig(
                    iterations=cfg.annealing_iterations, seed=cfg.seed
                ),
            )
            self.schedule: DecoderSchedule = self._annealing.schedule
        else:
            self._annealing = None
            self.schedule = DecoderSchedule.canonical(self.mapping)
        self._core = DecoderIpCore(
            self.code,
            schedule=self.schedule,
            config=CoreConfig(
                fmt=cfg.fmt,
                normalization=cfg.normalization,
                channel_scale=cfg.channel_scale,
                iterations=cfg.iterations,
                early_stop=cfg.early_stop,
            ),
        )
        self._encoder = IraEncoder(self.code)
        self._rng = np.random.default_rng(cfg.seed)

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    def encode(self, info_bits: np.ndarray) -> np.ndarray:
        """Systematically encode ``K`` information bits."""
        return self._encoder.encode(info_bits)

    def encode_random(self) -> np.ndarray:
        """Encode a random frame (reproducible from the config seed)."""
        return self._encoder.random_codeword(self._rng)

    def decode(
        self,
        channel_llrs: np.ndarray,
        iterations: Optional[int] = None,
        early_stop: Optional[bool] = None,
    ) -> DecodeResult:
        """Decode one frame through the cycle-faithful core."""
        return self._core.decode(
            channel_llrs, iterations=iterations, early_stop=early_stop
        )

    # ------------------------------------------------------------------
    # Datasheet
    # ------------------------------------------------------------------
    def throughput_model(self) -> ThroughputModel:
        """Eq. (8) calculator for the configured rate."""
        return ThroughputModel(
            self.code.profile, clock_hz=self.config.clock_hz
        )

    def area_report(self) -> AreaReport:
        """Table 3 breakdown (full-size multi-rate core)."""
        return AreaModel(width_bits=self.config.fmt.total_bits).report()

    def buffer_requirement(self) -> int:
        """Write-buffer depth the configured addressing needs."""
        return simulate_cn_phase(self.schedule).peak_buffer

    def datasheet(self) -> Dict[str, object]:
        """Headline numbers a licensee would read first."""
        cfg = self.config
        tp = self.throughput_model()
        area = self.area_report()
        return {
            "rate": cfg.rate,
            "frame_bits": self.code.n,
            "info_bits": self.code.k,
            "iterations": cfg.iterations,
            "message_bits": cfg.fmt.total_bits,
            "parallelism": cfg.parallelism,
            "clock_mhz": cfg.clock_hz / 1e6,
            "cycles_per_block": tp.cycles_per_block(cfg.iterations),
            "info_throughput_mbps": tp.throughput_bps(cfg.iterations) / 1e6,
            "coded_throughput_mbps": tp.coded_throughput_bps(cfg.iterations)
            / 1e6,
            "meets_255_mbps": tp.meets_requirement(cfg.iterations),
            "total_area_mm2": area.total,
            "write_buffer_depth": self.buffer_requirement(),
        }
