"""The multi-rate IP — "capable to process all specified code rates".

The paper's headline is not eleven decoders but **one**: a single set of
360 functional units, one shuffling network, memories sized by the worst
rate per component, and per-rate address/shuffle ROM contents loaded on
a rate switch.  This module models exactly that object: codes and
schedules are built (and optionally annealed) lazily per rate, while the
datapath configuration — message format, normalization, parallelism —
is fixed at construction like silicon.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..codes.construction import LdpcCode, build_code
from ..codes.small import build_small_code
from ..codes.standard import PARALLELISM, RATE_NAMES
from ..decode.result import DecodeResult
from ..encode.encoder import IraEncoder
from ..hw.annealing import AnnealingConfig, optimize_rate
from ..hw.area import AreaModel, AreaReport
from ..hw.conflicts import simulate_cn_phase
from ..hw.decoder_core import CoreConfig, DecoderIpCore
from ..hw.mapping import IpMapping
from ..hw.schedule import DecoderSchedule
from .config import IpCoreConfig


class MultiRateDecoderIp:
    """One decoder instance serving every DVB-S2 code rate.

    Parameters
    ----------
    config:
        Datapath configuration; its ``rate`` field is ignored (all rates
        are served) but parallelism, format, normalization, iteration
        budget and annealing policy apply to every rate.
    rates:
        Rates to support; defaults to all eleven.
    """

    def __init__(
        self,
        config: Optional[IpCoreConfig] = None,
        rates: Optional[Iterable[str]] = None,
    ) -> None:
        self.config = config or IpCoreConfig()
        self.config.validate()
        self.rates = tuple(rates) if rates is not None else RATE_NAMES
        unknown = set(self.rates) - set(RATE_NAMES)
        if unknown:
            raise ValueError(f"unknown rates: {sorted(unknown)}")
        self._codes: Dict[str, LdpcCode] = {}
        self._schedules: Dict[str, DecoderSchedule] = {}
        self._cores: Dict[str, DecoderIpCore] = {}
        self._encoders: Dict[str, IraEncoder] = {}
        self._active: Optional[str] = None

    # ------------------------------------------------------------------
    # Rate switching (the ROM reload of a real IP)
    # ------------------------------------------------------------------
    def _materialize(self, rate: str) -> None:
        if rate in self._cores:
            return
        if rate not in self.rates:
            raise KeyError(
                f"rate {rate!r} not supported by this instance"
            )
        cfg = self.config
        if cfg.parallelism == PARALLELISM:
            code = build_code(rate)
        else:
            code = build_small_code(rate, parallelism=cfg.parallelism)
        mapping = IpMapping(code)
        if cfg.anneal_addressing:
            schedule = optimize_rate(
                mapping,
                AnnealingConfig(
                    iterations=cfg.annealing_iterations, seed=cfg.seed
                ),
            ).schedule
        else:
            schedule = DecoderSchedule.canonical(mapping)
        self._codes[rate] = code
        self._schedules[rate] = schedule
        self._cores[rate] = DecoderIpCore(
            code,
            schedule=schedule,
            config=CoreConfig(
                fmt=cfg.fmt,
                normalization=cfg.normalization,
                channel_scale=cfg.channel_scale,
                iterations=cfg.iterations,
                early_stop=cfg.early_stop,
            ),
        )
        self._encoders[rate] = IraEncoder(code)

    def select_rate(self, rate: str) -> None:
        """Load a rate's ROMs (lazy build + anneal on first use)."""
        self._materialize(rate)
        self._active = rate

    @property
    def active_rate(self) -> Optional[str]:
        """Currently selected rate, or ``None``."""
        return self._active

    def code(self, rate: Optional[str] = None) -> LdpcCode:
        """The code object of a (or the active) rate."""
        rate = self._require(rate)
        return self._codes[rate]

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    def encode(
        self, info_bits: np.ndarray, rate: Optional[str] = None
    ) -> np.ndarray:
        """Encode with the selected (or given) rate."""
        rate = self._require(rate)
        return self._encoders[rate].encode(info_bits)

    def decode(
        self, channel_llrs: np.ndarray, rate: Optional[str] = None
    ) -> DecodeResult:
        """Decode with the selected (or given) rate."""
        rate = self._require(rate)
        return self._cores[rate].decode(channel_llrs)

    def _require(self, rate: Optional[str]) -> str:
        if rate is not None:
            self._materialize(rate)
            return rate
        if self._active is None:
            raise RuntimeError(
                "no rate selected; call select_rate() first"
            )
        return self._active

    # ------------------------------------------------------------------
    # Shared-silicon accounting
    # ------------------------------------------------------------------
    def shared_area_report(self) -> AreaReport:
        """The single multi-rate die (Table 3), NOT a sum over rates."""
        return AreaModel(width_bits=self.config.fmt.total_bits).report()

    def worst_case_buffer(self) -> int:
        """Write-buffer depth covering every materialized rate —
        the paper's 'one buffer ... for all code rates'."""
        if not self._schedules:
            raise RuntimeError("no rates materialized yet")
        return max(
            simulate_cn_phase(s).peak_buffer
            for s in self._schedules.values()
        )

    def materialized_rates(self) -> tuple:
        """Rates whose ROMs have been built so far."""
        return tuple(sorted(self._codes, key=RATE_NAMES.index))
