"""Linear-time IRA encoding for DVB-S2 LDPC codes."""

from .encoder import IraEncoder

__all__ = ["IraEncoder"]
