"""Linear-time systematic IRA encoder (paper Eq. 2 and Eq. 3).

The paper stresses that DVB-S2 chose IRA codes precisely because their
encoder is trivial: scatter each information bit into the parity checks its
Tanner-graph edges point at (Eq. 2), then run the accumulator (Eq. 3)::

    p_0 = s_0,      p_j = p_{j-1} ^ s_j

where ``s_j`` is the XOR of the information bits checked by parity check
``j``.  Both steps are O(E) — no matrix inversion, unlike generic LDPC
encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..codes.construction import LdpcCode
from ..codes.matrix import is_codeword


@dataclass(frozen=True)
class IraEncoder:
    """Systematic encoder for a DVB-S2 (IRA) LDPC code.

    The encoder precomputes the information-edge endpoints once so each
    frame costs two vectorized passes (scatter + cumulative XOR).
    """

    code: LdpcCode

    def __post_init__(self) -> None:
        sl = self.code.information_edge_slice()
        object.__setattr__(self, "_in_vn", self.code.graph.edge_vn[sl])
        object.__setattr__(self, "_in_cn", self.code.graph.edge_cn[sl])

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of information bits per frame."""
        return self.code.k

    @property
    def n(self) -> int:
        """Codeword length."""
        return self.code.n

    def check_sums(self, info_bits: np.ndarray) -> np.ndarray:
        """XOR of information bits feeding each parity check (``s`` above)."""
        info_bits = self._validated(info_bits)
        sums = np.zeros(self.code.n_parity, dtype=np.int64)
        np.add.at(sums, self._in_cn, info_bits[self._in_vn].astype(np.int64))
        return (sums & 1).astype(np.uint8)

    def encode(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode one frame.

        Parameters
        ----------
        info_bits:
            Array of ``K`` bits (0/1).

        Returns
        -------
        Systematic codeword of length ``N``: information bits followed by
        the accumulator parity bits.
        """
        info_bits = self._validated(info_bits)
        sums = self.check_sums(info_bits)
        # Accumulator: cumulative XOR equals cumulative sum mod 2.
        parity = (np.cumsum(sums.astype(np.int64)) & 1).astype(np.uint8)
        return np.concatenate([info_bits.astype(np.uint8), parity])

    def encode_batch(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode a ``(frames, K)`` batch in one vectorized pass."""
        info_bits = np.asarray(info_bits, dtype=np.uint8)
        if info_bits.ndim != 2 or info_bits.shape[1] != self.k:
            raise ValueError(f"expected shape (frames, {self.k})")
        frames = info_bits.shape[0]
        sums = np.zeros((frames, self.code.n_parity), dtype=np.int64)
        np.add.at(
            sums,
            (slice(None), self._in_cn),
            info_bits[:, self._in_vn].astype(np.int64),
        )
        parity = (np.cumsum(sums & 1, axis=1) & 1).astype(np.uint8)
        return np.concatenate([info_bits, parity], axis=1)

    def random_codeword(
        self, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Encode uniformly random information bits (for simulations)."""
        rng = rng or np.random.default_rng()
        return self.encode(rng.integers(0, 2, size=self.k, dtype=np.uint8))

    def self_check(self, rng: Optional[np.random.Generator] = None) -> None:
        """Encode a random frame and verify ``H x^T = 0``.

        Raises
        ------
        AssertionError
            If the encoder and the Tanner graph disagree (never expected;
            this guards against hand-edited tables).
        """
        word = self.random_codeword(rng)
        if not is_codeword(self.code.graph, word):
            raise AssertionError(
                "encoder produced a word that violates the parity checks"
            )

    # ------------------------------------------------------------------
    def _validated(self, info_bits: np.ndarray) -> np.ndarray:
        info_bits = np.asarray(info_bits)
        if info_bits.shape != (self.k,):
            raise ValueError(
                f"expected {self.k} information bits, got {info_bits.shape}"
            )
        if info_bits.dtype == np.bool_:
            info_bits = info_bits.astype(np.uint8)
        if ((info_bits != 0) & (info_bits != 1)).any():
            raise ValueError("information bits must be 0/1")
        return info_bits
