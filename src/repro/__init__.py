"""repro — reproduction of the DATE 2005 DVB-S2 LDPC decoder IP core paper.

The package is layered bottom-up (see DESIGN.md):

* :mod:`repro.codes` — DVB-S2 LDPC code construction (profiles, address
  tables, Tanner graphs),
* :mod:`repro.encode` — linear-time IRA encoder,
* :mod:`repro.channel` — BPSK modulation, AWGN, LLRs, Shannon limits,
* :mod:`repro.quantize` — saturating fixed-point arithmetic,
* :mod:`repro.decode` — belief-propagation / min-sum / zigzag-scheduled /
  quantized decoders,
* :mod:`repro.hw` — the paper's contribution: the partly-parallel decoder
  architecture (node mapping, shuffle network, RAM conflicts + simulated
  annealing, cycle-accurate core, throughput and area models),
* :mod:`repro.baseline` — the fully-parallel decoder baseline (ref [4]),
* :mod:`repro.sim` — Monte-Carlo BER/FER harness,
* :mod:`repro.obs` — metrics registry, iteration tracing, JSONL telemetry
  (see docs/observability.md),
* :mod:`repro.core` — the IP-core facade and datasheet reports.
"""

__version__ = "1.0.0"

from .codes import LdpcCode, build_code, build_small_code, get_profile

__all__ = [
    "LdpcCode",
    "__version__",
    "build_code",
    "build_small_code",
    "get_profile",
]
