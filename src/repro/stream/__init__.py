"""Baseband framing (BBFRAME) above the FEC chain."""

from .bbframe import (
    HEADER_BITS,
    BbCrcError,
    BbFrameError,
    BbFramer,
    BbHeader,
    DeframeResult,
    crc8,
)

__all__ = [
    "BbCrcError",
    "BbFrameError",
    "BbFramer",
    "BbHeader",
    "DeframeResult",
    "HEADER_BITS",
    "crc8",
]
