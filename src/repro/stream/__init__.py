"""Baseband framing (BBFRAME) above the FEC chain."""

from .bbframe import HEADER_BITS, BbFramer, BbHeader, crc8

__all__ = ["BbFramer", "BbHeader", "HEADER_BITS", "crc8"]
