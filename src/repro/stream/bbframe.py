"""BBFRAME mode adaptation (EN 302 307 §5.1) — the layer above the FEC.

DVB-S2 carries user data in *baseband frames*: an 80-bit BBHEADER
(stream type, user-packet length, data-field length, sync fields, CRC-8)
followed by the data field and padding up to the FEC payload size.  The
paper's decoder sits below this layer; implementing it closes the stack
from user bytes to channel bits.

The CRC-8 uses the standard's generator
``x^8 + x^7 + x^6 + x^4 + x^2 + 1`` (0xD5 without the leading term).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: BBHEADER length in bits.
HEADER_BITS = 80


class BbFrameError(ValueError):
    """A baseband frame violated the framing contract.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the old untyped errors keep working; new callers (the serve path)
    can catch the framing layer specifically.
    """


class BbCrcError(BbFrameError):
    """The BBHEADER CRC-8 did not match its fields."""

#: CRC-8 generator (x^8+x^7+x^6+x^4+x^2+1), leading term implicit.
CRC8_POLY = 0xD5


def crc8(data: bytes, poly: int = CRC8_POLY) -> int:
    """Bitwise CRC-8 of a byte string (MSB-first, zero initial value)."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ poly) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


@dataclass(frozen=True)
class BbHeader:
    """The 80-bit baseband header (simplified field set).

    Attributes
    ----------
    matype:
        Stream-type / roll-off descriptor (2 bytes).
    upl:
        User-packet length in bits (0 for continuous streams).
    dfl:
        Data-field length in bits.
    sync:
        User-packet sync byte.
    syncd:
        Distance (bits) to the first packet start in the data field.
    """

    matype: int
    upl: int
    dfl: int
    sync: int = 0x47
    syncd: int = 0

    def to_bytes(self) -> bytes:
        """Pack header fields plus CRC-8 into 10 bytes."""
        for name, value, width in (
            ("matype", self.matype, 16),
            ("upl", self.upl, 16),
            ("dfl", self.dfl, 16),
            ("sync", self.sync, 8),
            ("syncd", self.syncd, 16),
        ):
            if not 0 <= value < (1 << width):
                raise ValueError(f"{name} out of range")
        body = (
            self.matype.to_bytes(2, "big")
            + self.upl.to_bytes(2, "big")
            + self.dfl.to_bytes(2, "big")
            + bytes([self.sync])
            + self.syncd.to_bytes(2, "big")
        )
        return body + bytes([crc8(body)])

    def to_bits(self) -> np.ndarray:
        """Header as an 80-bit array (MSB-first)."""
        return np.unpackbits(
            np.frombuffer(self.to_bytes(), dtype=np.uint8)
        ).astype(np.uint8)

    @classmethod
    def _from_bytes_unchecked(cls, raw: bytes) -> "BbHeader":
        """Decode header fields from packed bytes, ignoring the CRC."""
        return cls(
            matype=int.from_bytes(raw[0:2], "big"),
            upl=int.from_bytes(raw[2:4], "big"),
            dfl=int.from_bytes(raw[4:6], "big"),
            sync=raw[6],
            syncd=int.from_bytes(raw[7:9], "big"),
        )

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "BbHeader":
        """Parse and CRC-check an 80-bit header.

        Raises
        ------
        BbFrameError
            On a length mismatch.
        BbCrcError
            On a CRC mismatch.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size != HEADER_BITS:
            raise BbFrameError(f"header must be {HEADER_BITS} bits")
        raw = np.packbits(bits).tobytes()
        if crc8(raw[:9]) != raw[9]:
            raise BbCrcError("BBHEADER CRC-8 mismatch")
        return cls._from_bytes_unchecked(raw)


@dataclass(frozen=True)
class DeframeResult:
    """Outcome of parsing one decoded payload — errors as data.

    The serve path must keep streaming when a decode error corrupts a
    payload, so CRC-8 and framing violations are reported here instead
    of raised: ``ok`` is True only for a clean frame, ``error`` carries
    the reason otherwise, and ``data_bits`` holds a best-effort data
    field (clamped to the frame) so downstream byte accounting stays
    aligned.
    """

    header: Optional[BbHeader]
    data_bits: np.ndarray
    ok: bool
    error: Optional[str] = None


class BbFramer:
    """Slice a byte stream into BBFRAMEs of a given FEC payload size.

    Parameters
    ----------
    payload_bits:
        The FEC chain's payload size per frame (``K_bch``, or ``K_ldpc``
        when no outer code is used).
    matype:
        MATYPE field copied into every header.
    """

    def __init__(self, payload_bits: int, matype: int = 0x7200) -> None:
        if payload_bits <= HEADER_BITS:
            raise ValueError("payload too small for a BBHEADER")
        self.payload_bits = payload_bits
        self.data_field_bits = payload_bits - HEADER_BITS
        self.matype = matype

    # ------------------------------------------------------------------
    def frame_stream(self, data: bytes) -> List[np.ndarray]:
        """Split bytes into padded BBFRAMEs (header + data + padding)."""
        bits = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8)
        ).astype(np.uint8)
        frames: List[np.ndarray] = []
        for start in range(0, max(1, bits.size), self.data_field_bits):
            chunk = bits[start : start + self.data_field_bits]
            if chunk.size == 0 and frames:
                break
            header = BbHeader(
                matype=self.matype,
                upl=0,
                dfl=int(chunk.size),
            )
            padding = np.zeros(
                self.data_field_bits - chunk.size, dtype=np.uint8
            )
            frames.append(
                np.concatenate([header.to_bits(), chunk, padding])
            )
        return frames

    def deframe(self, payload: np.ndarray) -> Tuple[BbHeader, np.ndarray]:
        """Parse one decoded payload back to header plus data-field bits.

        Raises
        ------
        BbFrameError
            On a payload-length or data-field-length violation.
        BbCrcError
            When the BBHEADER CRC-8 does not match.
        """
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.size != self.payload_bits:
            raise BbFrameError(
                f"expected {self.payload_bits} payload bits, "
                f"got {payload.size}"
            )
        header = BbHeader.from_bits(payload[:HEADER_BITS])
        if header.dfl > self.data_field_bits:
            raise BbFrameError(
                f"data-field length {header.dfl} exceeds the "
                f"{self.data_field_bits}-bit data field"
            )
        data_bits = payload[HEADER_BITS : HEADER_BITS + header.dfl]
        return header, data_bits

    def try_deframe(self, payload: np.ndarray) -> DeframeResult:
        """Parse one payload, reporting corruption as data (serve path).

        A CRC-8 mismatch still yields the (untrusted) header fields and
        a data field clamped to the frame, so a stream with one
        corrupted frame degrades to one bad chunk instead of an
        exception; a malformed payload yields an empty data field.
        """
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.size != self.payload_bits:
            return DeframeResult(
                header=None,
                data_bits=np.zeros(0, dtype=np.uint8),
                ok=False,
                error=(
                    f"expected {self.payload_bits} payload bits, "
                    f"got {payload.size}"
                ),
            )
        raw = np.packbits(payload[:HEADER_BITS]).tobytes()
        header = BbHeader._from_bytes_unchecked(raw)
        dfl = min(header.dfl, self.data_field_bits)
        data_bits = payload[HEADER_BITS : HEADER_BITS + dfl]
        if crc8(raw[:9]) != raw[9]:
            return DeframeResult(
                header=header,
                data_bits=data_bits,
                ok=False,
                error="BBHEADER CRC-8 mismatch",
            )
        if header.dfl > self.data_field_bits:
            return DeframeResult(
                header=header,
                data_bits=data_bits,
                ok=False,
                error=(
                    f"data-field length {header.dfl} exceeds the "
                    f"{self.data_field_bits}-bit data field"
                ),
            )
        return DeframeResult(header=header, data_bits=data_bits, ok=True)

    def recover_stream(self, payloads: List[np.ndarray]) -> bytes:
        """Concatenate the data fields of consecutive frames into bytes.

        Data fields may cross byte boundaries (when the data-field size
        is not a byte multiple), so bits are joined before packing;
        trailing bits that do not fill a byte are dropped.  Corrupted
        payloads raise :class:`BbFrameError` / :class:`BbCrcError`; use
        :meth:`try_deframe` per payload to degrade instead of raising.
        """
        parts = [self.deframe(p)[1] for p in payloads]
        bits = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint8)
        )
        usable = (bits.size // 8) * 8
        return np.packbits(bits[:usable]).tobytes()
