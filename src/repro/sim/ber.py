"""Monte-Carlo BER/FER measurement harness.

Standard LDPC evaluation methodology (the paper's refs [6]/[9]):
BPSK over AWGN, either the all-zero-codeword shortcut (valid because the
code is linear and every decoder here is symmetric) or fully encoded
random frames, early termination on zero syndrome, and Wilson confidence
intervals on the counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..channel.awgn import AwgnChannel
from ..codes.construction import LdpcCode
from ..encode.encoder import IraEncoder
from .stats import ErrorRateEstimate

#: A decoder is anything with ``decode(llrs, max_iterations, early_stop)``.
DecoderLike = object


@dataclass
class BerResult:
    """Aggregated Monte-Carlo outcome at one operating point."""

    ebn0_db: float
    frames: int
    bit_errors: int
    frame_errors: int
    total_bits: int
    total_iterations: int
    converged_frames: int

    @property
    def ber(self) -> float:
        """Bit error rate (NaN when no bits were measured)."""
        if self.total_bits <= 0:
            return float("nan")
        return self.bit_errors / self.total_bits

    @property
    def fer(self) -> float:
        """Frame error rate (NaN when no frames were measured)."""
        if self.frames <= 0:
            return float("nan")
        return self.frame_errors / self.frames

    @property
    def avg_iterations(self) -> float:
        """Mean iterations per frame (early termination included).

        Non-converged frames contribute their full iteration budget;
        check :attr:`non_converged_frames` before quoting this as a
        convergence speed.
        """
        if self.frames <= 0:
            return float("nan")
        return self.total_iterations / self.frames

    @property
    def convergence_rate(self) -> float:
        """Fraction of frames that reached a zero syndrome."""
        if self.frames <= 0:
            return float("nan")
        return self.converged_frames / self.frames

    @property
    def non_converged_frames(self) -> int:
        """Frames that exhausted the iteration budget."""
        return self.frames - self.converged_frames

    @property
    def ber_estimate(self) -> ErrorRateEstimate:
        """BER with confidence interval."""
        return ErrorRateEstimate(self.bit_errors, self.total_bits)

    @property
    def fer_estimate(self) -> ErrorRateEstimate:
        """FER with confidence interval."""
        return ErrorRateEstimate(self.frame_errors, self.frames)

    def merged(self, other: "BerResult") -> "BerResult":
        """Pool two independent measurements of the same operating point."""
        if self.ebn0_db != other.ebn0_db:
            raise ValueError(
                "cannot merge results from different Eb/N0 points "
                f"({self.ebn0_db} vs {other.ebn0_db})"
            )
        return BerResult(
            ebn0_db=self.ebn0_db,
            frames=self.frames + other.frames,
            bit_errors=self.bit_errors + other.bit_errors,
            frame_errors=self.frame_errors + other.frame_errors,
            total_bits=self.total_bits + other.total_bits,
            total_iterations=self.total_iterations + other.total_iterations,
            converged_frames=self.converged_frames + other.converged_frames,
        )


def merge_ber_results(results) -> BerResult:
    """Merge an iterable of partial :class:`BerResult`\\ s into one.

    Raises
    ------
    ValueError
        If the iterable is empty — an empty merge has no Eb/N0 point to
        report and usually means every shard was discarded upstream.
    """
    results = list(results)
    if not results:
        raise ValueError(
            "merge_ber_results() received an empty iterable: nothing to "
            "merge (no shards/points were produced)"
        )
    merged = results[0]
    for result in results[1:]:
        merged = merged.merged(result)
    return merged


@dataclass
class BerSimulator:
    """Reusable Monte-Carlo loop for one code/decoder pair.

    Parameters
    ----------
    code:
        The LDPC code under test.
    decoder:
        Any object with a ``decode(llrs, max_iterations, early_stop)``
        method returning a :class:`~repro.decode.result.DecodeResult`.
    all_zero:
        Use the all-zero-codeword shortcut (default); set ``False`` to
        encode random information bits through the IRA encoder, which
        also exercises the encoder path.
    seed:
        Base seed; each frame derives its own stream.
    """

    code: LdpcCode
    decoder: DecoderLike
    all_zero: bool = True
    seed: int = 0
    _encoder: Optional[IraEncoder] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.all_zero:
            self._encoder = IraEncoder(self.code)

    def run(
        self,
        ebn0_db: float,
        max_frames: int = 100,
        max_iterations: int = 30,
        target_frame_errors: Optional[int] = None,
        early_stop: bool = True,
        count_info_bits_only: bool = True,
    ) -> BerResult:
        """Measure error rates at one Eb/N0 point.

        Stops after ``max_frames`` frames or once ``target_frame_errors``
        frame errors have been observed, whichever comes first.
        """
        rate = float(self.code.profile.rate)
        channel = AwgnChannel(ebn0_db=ebn0_db, rate=rate, seed=self.seed)
        bit_rng = np.random.default_rng(self.seed ^ 0xA5A5_A5A5)
        k = self.code.k
        n = self.code.n
        bits_per_frame = k if count_info_bits_only else n

        frames = bit_errors = frame_errors = 0
        total_iterations = converged = 0
        for _ in range(max_frames):
            if self.all_zero:
                reference = np.zeros(n, dtype=np.uint8)
                llrs = channel.llrs_all_zero(n)
            else:
                info = bit_rng.integers(0, 2, size=k, dtype=np.uint8)
                reference = self._encoder.encode(info)
                llrs = channel.llrs(reference)
            result = self.decoder.decode(
                llrs, max_iterations=max_iterations, early_stop=early_stop
            )
            decided = result.bits[:k] if count_info_bits_only else result.bits
            wanted = (
                reference[:k] if count_info_bits_only else reference
            )
            errs = int(np.count_nonzero(decided != wanted))
            frames += 1
            bit_errors += errs
            frame_errors += errs > 0
            total_iterations += result.iterations
            converged += result.converged
            if (
                target_frame_errors is not None
                and frame_errors >= target_frame_errors
            ):
                break
        return BerResult(
            ebn0_db=ebn0_db,
            frames=frames,
            bit_errors=bit_errors,
            frame_errors=frame_errors,
            total_bits=frames * bits_per_frame,
            total_iterations=total_iterations,
            converged_frames=converged,
        )


def measure_ber(
    code: LdpcCode,
    decoder: DecoderLike,
    ebn0_db: float,
    max_frames: int = 100,
    max_iterations: int = 30,
    seed: int = 0,
    all_zero: bool = True,
    early_stop: bool = True,
) -> BerResult:
    """One-call BER measurement."""
    sim = BerSimulator(
        code=code, decoder=decoder, all_zero=all_zero, seed=seed
    )
    return sim.run(
        ebn0_db,
        max_frames=max_frames,
        max_iterations=max_iterations,
        early_stop=early_stop,
    )
