"""Parameter sweeps: SNR curves, iteration curves, threshold search."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..codes.construction import LdpcCode
from .ber import BerResult, BerSimulator, DecoderLike


@dataclass
class SweepPoint:
    """One point of a sweep: the varied value and its measurement.

    ``telemetry`` is populated by :func:`parallel_snr_sweep` (engine
    throughput at that point) and ``None`` for the serial sweeps.
    """

    value: float
    result: BerResult
    telemetry: Optional[object] = None


def snr_sweep(
    code: LdpcCode,
    decoder: DecoderLike,
    ebn0_points_db: Sequence[float],
    max_frames: int = 100,
    max_iterations: int = 30,
    seed: int = 0,
    all_zero: bool = True,
    target_frame_errors: Optional[int] = None,
) -> List[SweepPoint]:
    """BER/FER versus Eb/N0 (the waterfall curve)."""
    sim = BerSimulator(code=code, decoder=decoder, all_zero=all_zero, seed=seed)
    points = []
    for ebn0 in ebn0_points_db:
        result = sim.run(
            ebn0,
            max_frames=max_frames,
            max_iterations=max_iterations,
            target_frame_errors=target_frame_errors,
        )
        points.append(SweepPoint(value=float(ebn0), result=result))
    return points


def parallel_snr_sweep(
    code: LdpcCode,
    ebn0_points_db: Sequence[float],
    max_frames: int = 256,
    max_iterations: int = 30,
    seed: int = 0,
    workers: Optional[int] = None,
    shard_frames: Optional[int] = None,
    target_frame_errors: Optional[int] = None,
    ci_halfwidth: Optional[float] = None,
    schedule: str = "zigzag",
    normalization: float = 0.75,
    fmt=None,
    channel_scale: float = 1.0,
    channel: Optional[dict] = None,
    registry=None,
    trace=None,
) -> List[SweepPoint]:
    """Waterfall curve measured with the parallel Monte-Carlo engine.

    Each Eb/N0 point runs through :func:`repro.sim.parallel.parallel_ber`
    with a point-specific base seed derived from ``(seed, point index)``
    via ``SeedSequence``, so the whole sweep is reproducible for any
    worker count and each point's noise is independent.  Engine
    telemetry is attached to each :class:`SweepPoint`.  ``fmt`` and
    ``channel_scale`` configure the ``quantized-*`` schedules (see
    :func:`~repro.sim.parallel.parallel_ber`).  ``registry`` and
    ``trace`` are forwarded to every point's engine run (one shared
    recorder: each point contributes its frames' iteration records and a
    ``ber_result`` event).  ``channel`` is a
    :func:`repro.channel.build_channel` spec dict forwarded to every
    point, which is how fading / higher-order scenario cells sweep
    (``None`` keeps the exact legacy AWGN stream).
    """
    from .parallel import DEFAULT_SHARD_FRAMES, parallel_ber

    if shard_frames is None:
        shard_frames = DEFAULT_SHARD_FRAMES
    points = []
    for index, ebn0 in enumerate(ebn0_points_db):
        run = parallel_ber(
            code,
            float(ebn0),
            max_frames=max_frames,
            shard_frames=shard_frames,
            workers=workers,
            target_frame_errors=target_frame_errors,
            ci_halfwidth=ci_halfwidth,
            max_iterations=max_iterations,
            schedule=schedule,
            normalization=normalization,
            fmt=fmt,
            channel_scale=channel_scale,
            channel=channel,
            seed=np.random.SeedSequence(entropy=(seed, index)),
            registry=registry,
            trace=trace,
        )
        points.append(
            SweepPoint(
                value=float(ebn0),
                result=run.result,
                telemetry=run.telemetry,
            )
        )
    return points


def iteration_sweep(
    code: LdpcCode,
    decoder: DecoderLike,
    ebn0_db: float,
    iteration_points: Sequence[int],
    max_frames: int = 100,
    seed: int = 0,
    all_zero: bool = True,
) -> List[SweepPoint]:
    """BER versus iteration budget at a fixed Eb/N0.

    The Fig. 2 experiment: run with ``early_stop`` disabled so every
    frame uses exactly the budgeted iterations — isolating the schedule's
    convergence speed.
    """
    sim = BerSimulator(code=code, decoder=decoder, all_zero=all_zero, seed=seed)
    points = []
    for iters in iteration_points:
        result = sim.run(
            ebn0_db,
            max_frames=max_frames,
            max_iterations=int(iters),
            early_stop=False,
        )
        points.append(SweepPoint(value=float(iters), result=result))
    return points


def iterations_to_reach_ber(
    points: Sequence[SweepPoint], target_ber: float
) -> Optional[int]:
    """Smallest swept iteration budget whose BER is at or below target."""
    for point in sorted(points, key=lambda p: p.value):
        if point.result.ber <= target_ber:
            return int(point.value)
    return None


def find_waterfall_ebn0(
    code: LdpcCode,
    decoder: DecoderLike,
    target_fer: float = 0.5,
    lo_db: float = 0.0,
    hi_db: float = 4.0,
    max_frames: int = 40,
    max_iterations: int = 30,
    seed: int = 0,
    resolution_db: float = 0.1,
) -> float:
    """Bisect the Eb/N0 at which the FER crosses ``target_fer``.

    A cheap threshold locator used by the Shannon-gap experiment; the
    FER-vs-SNR curve is steep for long LDPC codes, so the 50% crossing is
    a stable proxy for the waterfall position.
    """
    sim = BerSimulator(code=code, decoder=decoder, all_zero=True, seed=seed)

    def fer_at(ebn0: float) -> float:
        return sim.run(
            ebn0, max_frames=max_frames, max_iterations=max_iterations
        ).fer

    lo, hi = lo_db, hi_db
    if fer_at(hi) > target_fer:
        return hi
    if fer_at(lo) <= target_fer:
        return lo
    while hi - lo > resolution_db:
        mid = 0.5 * (lo + hi)
        if fer_at(mid) > target_fer:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
