"""Monte-Carlo BER/FER harness, sweeps, and statistics."""

from .ber import BerResult, BerSimulator, measure_ber
from .fast import fast_ber
from .stats import ErrorRateEstimate, wilson_interval
from .sweep import (
    SweepPoint,
    find_waterfall_ebn0,
    iteration_sweep,
    iterations_to_reach_ber,
    snr_sweep,
)

__all__ = [
    "BerResult",
    "BerSimulator",
    "ErrorRateEstimate",
    "fast_ber",
    "SweepPoint",
    "find_waterfall_ebn0",
    "iteration_sweep",
    "iterations_to_reach_ber",
    "measure_ber",
    "snr_sweep",
    "wilson_interval",
]
