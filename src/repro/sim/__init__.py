"""Monte-Carlo BER/FER harness, sweeps, parallel engine, and statistics."""

from .ber import BerResult, BerSimulator, measure_ber, merge_ber_results
from .fast import fast_ber
from .parallel import (
    ParallelBerRun,
    ShardResult,
    SimTelemetry,
    parallel_ber,
)
from .pool import PersistentPool
from .stats import ErrorRateEstimate, wilson_interval
from .sweep import (
    SweepPoint,
    find_waterfall_ebn0,
    iteration_sweep,
    iterations_to_reach_ber,
    parallel_snr_sweep,
    snr_sweep,
)

__all__ = [
    "BerResult",
    "BerSimulator",
    "ErrorRateEstimate",
    "ParallelBerRun",
    "PersistentPool",
    "ShardResult",
    "SimTelemetry",
    "fast_ber",
    "merge_ber_results",
    "parallel_ber",
    "parallel_snr_sweep",
    "SweepPoint",
    "find_waterfall_ebn0",
    "iteration_sweep",
    "iterations_to_reach_ber",
    "measure_ber",
    "snr_sweep",
    "wilson_interval",
]
