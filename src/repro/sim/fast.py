"""Fast Monte-Carlo path using the batched decoder.

For BER curves the generic :class:`~repro.sim.ber.BerSimulator` accepts
any decoder; when plain normalized min-sum statistics are wanted, this
module's batched path decodes whole frame blocks as one matrix and is
typically 5-10x faster — full 64800-bit waterfalls become practical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..channel.awgn import AwgnChannel
from ..codes.construction import LdpcCode
from ..decode.batch import BatchMinSumDecoder, make_batch_decoder
from ..obs.iteration import IterationTraceRecorder
from .ber import BerResult


def fast_ber(
    code: LdpcCode,
    ebn0_db: float,
    frames: int = 100,
    max_iterations: int = 30,
    normalization: float = 0.75,
    seed: int = 0,
    batch_size: int = 32,
    decoder: Optional[BatchMinSumDecoder] = None,
    schedule: str = "flooding",
    fmt=None,
    channel_scale: float = 1.0,
    backend=None,
    iteration_trace: Optional[IterationTraceRecorder] = None,
    channel=None,
) -> BerResult:
    """All-zero-codeword BER measurement with batched decoding.

    Parameters mirror :func:`repro.sim.ber.measure_ber`; information-bit
    errors are counted (systematic prefix).  ``schedule="zigzag"``
    switches to the batched zigzag decoder (paper §2.2 serial schedule),
    which converges in roughly half the iterations per frame;
    ``"quantized-zigzag"`` / ``"quantized-minsum"`` run the fixed-point
    decoders (``fmt`` selects the word format, 6-bit by default,
    ``channel_scale`` the input conditioning, and ``backend`` the array
    backend executing the hot path — see :mod:`repro.decode.backend`;
    all three quantized-only).  Results are bit-identical across
    backends.
    When an ``iteration_trace`` recorder is given, each batch's
    per-iteration convergence records are emitted with globally numbered
    frames (the recorder's ``frame_offset`` is advanced per batch);
    tracing does not change decoder outputs.
    ``channel`` overrides the default seeded AWGN channel with any
    object exposing ``llrs_all_zero(n, size=...)`` (e.g. a
    :func:`repro.channel.build_channel` fading or higher-order-
    modulation cell); when given, ``ebn0_db`` only labels the result
    and ``seed`` is ignored — the channel carries its own stream.
    """
    if frames < 1:
        raise ValueError("need at least one frame")
    dec = decoder or make_batch_decoder(
        code,
        schedule=schedule,
        normalization=normalization,
        fmt=fmt,
        channel_scale=channel_scale,
        backend=backend,
    )
    if channel is None:
        channel = AwgnChannel(
            ebn0_db=ebn0_db, rate=float(code.profile.rate), seed=seed
        )
    k, n = code.k, code.n
    bit_errors = frame_errors = 0
    total_iterations = converged_frames = 0
    done = 0
    while done < frames:
        size = min(batch_size, frames - done)
        llrs = channel.llrs_all_zero(n, size=size)
        if iteration_trace is not None:
            iteration_trace.frame_offset = done
        result = dec.decode_batch(
            llrs,
            max_iterations=max_iterations,
            early_stop=True,
            iteration_trace=iteration_trace,
        )
        info = result.bits[:, :k]
        errs = np.count_nonzero(info, axis=1)
        bit_errors += int(errs.sum())
        frame_errors += int((errs > 0).sum())
        total_iterations += int(result.iterations.sum())
        converged_frames += int(result.converged.sum())
        done += size
    return BerResult(
        ebn0_db=ebn0_db,
        frames=frames,
        bit_errors=bit_errors,
        frame_errors=frame_errors,
        total_bits=frames * k,
        total_iterations=total_iterations,
        converged_frames=converged_frames,
    )
