"""Parallel Monte-Carlo simulation engine: sharded multi-process BER runs.

Monte-Carlo BER/FER measurement dominates the cost of reproducing the
paper's communications-performance claims; this engine makes it scale:

* **sharding** — the frame budget is cut into fixed-size shards, each
  decoded as one batch by a worker process from a
  :class:`~concurrent.futures.ProcessPoolExecutor`;
* **deterministic seeding** — shard ``i`` draws its noise from the
  ``i``-th child of ``np.random.SeedSequence(base_seed)``, so the noise
  a shard sees depends only on ``(base_seed, shard_index)`` and the
  merged result is bit-reproducible for *any* worker count;
* **adaptive stopping** — shards are merged strictly in index order and
  the stopping rule (target frame-error count and/or Wilson-CI
  half-width on the FER) is evaluated after every merge, so the stopping
  decision is also independent of the worker count.  Workers may decode
  shards speculatively past the stopping point; those results are
  discarded, never merged;
* **telemetry** — frames/sec, decoded Mbit/s (comparable to the paper's
  Eq. 8 hardware throughput) and per-shard wall times come back in a
  :class:`SimTelemetry`.

``workers=1`` runs the identical shard loop serially in-process — the
serial paths are the special case, not a separate implementation.  On
platforms without the ``fork`` start method the engine falls back to the
serial loop with a warning (results are identical either way).
"""

from __future__ import annotations

import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..channel.awgn import AwgnChannel
from ..channel.factory import build_channel
from ..codes.construction import LdpcCode
from ..decode.batch import make_batch_decoder
from ..obs.iteration import IterationTraceRecorder
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.trace import TraceRecorder
from .ber import BerResult, merge_ber_results
from .pool import PersistentPool, ensure_seed_sequence, resolve_workers
from .pool import fork_context as _fork_context
from .stats import wilson_interval

#: Default shard size: the measured sweet spot where the batched check
#: phase stays cache-resident while amortizing per-call overheads.
DEFAULT_SHARD_FRAMES = 32


@dataclass
class SimTelemetry:
    """Throughput telemetry of one engine run.

    ``info_mbps`` is directly comparable to the paper's Eq. 8 hardware
    throughput numbers (information bits decoded per wall-clock second).
    """

    workers: int
    frames: int
    info_bits_per_frame: int
    coded_bits_per_frame: int
    elapsed_s: float
    shard_wall_s: List[float] = field(default_factory=list)
    shards_merged: int = 0
    shards_discarded: int = 0

    @property
    def frames_per_sec(self) -> float:
        """Merged frames per wall-clock second."""
        if self.elapsed_s <= 0:
            return float("nan")
        return self.frames / self.elapsed_s

    @property
    def info_mbps(self) -> float:
        """Decoded information throughput in Mbit/s (Eq. 8 comparable)."""
        if self.elapsed_s <= 0:
            return float("nan")
        return self.frames * self.info_bits_per_frame / self.elapsed_s / 1e6

    @property
    def coded_mbps(self) -> float:
        """Decoded coded throughput in Mbit/s."""
        if self.elapsed_s <= 0:
            return float("nan")
        return self.frames * self.coded_bits_per_frame / self.elapsed_s / 1e6

    @property
    def parallel_efficiency(self) -> float:
        """Aggregate shard compute time over ``workers × wall`` time."""
        if self.elapsed_s <= 0 or self.workers <= 0:
            return float("nan")
        return sum(self.shard_wall_s) / (self.workers * self.elapsed_s)

    @classmethod
    def from_registry(
        cls,
        registry,
        *,
        workers: int,
        info_bits_per_frame: int,
        coded_bits_per_frame: int,
        shard_wall_s: Sequence[float] = (),
    ) -> "SimTelemetry":
        """Build telemetry from a run registry (or its snapshot).

        Reads the engine's canonical metric names: ``sim.frames`` /
        ``sim.shards.merged`` / ``sim.shards.discarded`` counters and the
        ``sim.parallel.wall`` timer.
        """
        snap = registry.snapshot() if hasattr(registry, "snapshot") else registry
        counters = snap.get("counters", {})
        timers = snap.get("timers", {})
        wall = timers.get("sim.parallel.wall", {})
        return cls(
            workers=workers,
            frames=int(counters.get("sim.frames", 0)),
            info_bits_per_frame=info_bits_per_frame,
            coded_bits_per_frame=coded_bits_per_frame,
            elapsed_s=wall.get("last_ns", 0) / 1e9,
            shard_wall_s=list(shard_wall_s),
            shards_merged=int(counters.get("sim.shards.merged", 0)),
            shards_discarded=int(counters.get("sim.shards.discarded", 0)),
        )


@dataclass
class ShardResult:
    """Counts from one decoded shard (picklable worker return value)."""

    shard: int
    frames: int
    bit_errors: int
    frame_errors: int
    total_iterations: int
    converged_frames: int
    wall_s: float
    #: Registry snapshot of the worker-local metrics for this shard.
    metrics: Optional[dict] = None
    #: Buffered ``decode_iteration`` events (shard-local frame indices).
    trace_events: Optional[list] = None


@dataclass
class ParallelBerRun:
    """Merged measurement plus the telemetry of producing it."""

    result: BerResult
    telemetry: SimTelemetry
    #: Merged metrics snapshot of the whole run (always populated).
    metrics: Optional[dict] = None


# ----------------------------------------------------------------------
# Worker-side machinery.  With the fork start method the initializer
# arguments are inherited for free; with spawn they are pickled once per
# worker — either way each worker builds its decoder exactly once.
_WORKER_STATE: dict = {}


def _build_decoder(code: LdpcCode, params: dict):
    """Construct the shard decoder from the engine's params dict."""
    return make_batch_decoder(
        code,
        schedule=params["schedule"],
        normalization=params["normalization"],
        segments=params["segments"],
        fmt=params.get("fmt"),
        channel_scale=params.get("channel_scale", 1.0),
        backend=params.get("backend"),
    )


def _init_worker(code: LdpcCode, params: dict) -> None:
    """Build the worker's decoder once.

    ``params`` holds the *decoder* configuration only (schedule,
    normalization, segments, format, channel scale) — per-run knobs like
    the Eb/N0 point or the iteration budget travel with each shard task,
    so one initialized worker (e.g. in a :class:`PersistentPool`) serves
    every point of a sweep.
    """
    _WORKER_STATE["code"] = code
    _WORKER_STATE["params"] = params
    _WORKER_STATE["decoder"] = _build_decoder(code, params)


def _decode_shard(
    code: LdpcCode,
    decoder,
    run_params: dict,
    shard: int,
    n_frames: int,
    seed_seq: np.random.SeedSequence,
) -> ShardResult:
    """Decode one shard of all-zero-codeword frames and count errors.

    Metrics are collected in a worker-local :class:`MetricsRegistry`
    whose snapshot travels back in the (picklable) :class:`ShardResult`;
    the parent merges the snapshots in shard order.
    """
    reg = MetricsRegistry()
    wall = reg.timer("sim.shard.wall")
    hook = (
        IterationTraceRecorder()
        if run_params.get("trace_iterations")
        else None
    )
    with wall:
        spec = run_params.get("channel")
        if spec is None:
            # Legacy path stays the literal AwgnChannel construction so
            # every committed seeded result is reproduced bit for bit.
            channel = AwgnChannel(
                ebn0_db=run_params["ebn0_db"],
                rate=float(code.profile.rate),
                seed=seed_seq,
            )
        else:
            channel = build_channel(
                ebn0_db=run_params["ebn0_db"],
                rate=float(code.profile.rate),
                seed=seed_seq,
                **spec,
            )
        llrs = channel.llrs_all_zero(code.n, size=n_frames)
        result = decoder.decode_batch(
            llrs,
            max_iterations=run_params["max_iterations"],
            early_stop=True,
            iteration_trace=hook,
        )
    errs = np.count_nonzero(result.bits[:, : code.k], axis=1)
    bit_errors = int(errs.sum())
    frame_errors = int((errs > 0).sum())
    total_iterations = int(result.iterations.sum())
    converged_frames = int(result.converged.sum())
    reg.counter("sim.frames").inc(n_frames)
    reg.counter("sim.bit_errors").inc(bit_errors)
    reg.counter("sim.frame_errors").inc(frame_errors)
    reg.counter("sim.iterations").inc(total_iterations)
    reg.counter("sim.converged_frames").inc(converged_frames)
    return ShardResult(
        shard=shard,
        frames=n_frames,
        bit_errors=bit_errors,
        frame_errors=frame_errors,
        total_iterations=total_iterations,
        converged_frames=converged_frames,
        wall_s=wall.last_s,
        metrics=reg.snapshot(),
        trace_events=hook.drain() if hook is not None else None,
    )


def _run_shard(task) -> ShardResult:
    """Pool entry point: decode one shard using the worker's decoder."""
    shard, n_frames, seed_seq, run_params = task
    return _decode_shard(
        _WORKER_STATE["code"],
        _WORKER_STATE["decoder"],
        run_params,
        shard,
        n_frames,
        seed_seq,
    )


def _should_stop(
    frames: int,
    frame_errors: int,
    target_frame_errors: Optional[int],
    ci_halfwidth: Optional[float],
) -> bool:
    """Adaptive stopping rule, evaluated on the merged in-order prefix."""
    if target_frame_errors is not None and frame_errors >= target_frame_errors:
        return True
    if ci_halfwidth is not None and frames > 0:
        lo, hi = wilson_interval(frame_errors, frames)
        if 0.5 * (hi - lo) <= ci_halfwidth:
            return True
    return False


def _shard_sizes(max_frames: int, shard_frames: int) -> List[int]:
    sizes = [shard_frames] * (max_frames // shard_frames)
    if max_frames % shard_frames:
        sizes.append(max_frames % shard_frames)
    return sizes


def _shard_to_result(shard: ShardResult, ebn0_db: float, k: int) -> BerResult:
    return BerResult(
        ebn0_db=ebn0_db,
        frames=shard.frames,
        bit_errors=shard.bit_errors,
        frame_errors=shard.frame_errors,
        total_bits=shard.frames * k,
        total_iterations=shard.total_iterations,
        converged_frames=shard.converged_frames,
    )


# ----------------------------------------------------------------------
def parallel_ber(
    code: LdpcCode,
    ebn0_db: float,
    *,
    max_frames: int = 1024,
    shard_frames: int = DEFAULT_SHARD_FRAMES,
    workers: Optional[int] = None,
    target_frame_errors: Optional[int] = None,
    ci_halfwidth: Optional[float] = None,
    max_iterations: int = 30,
    schedule: str = "zigzag",
    normalization: float = 0.75,
    segments: Optional[int] = None,
    fmt=None,
    channel_scale: float = 1.0,
    backend=None,
    seed=0,
    channel: Optional[dict] = None,
    registry: Optional[MetricsRegistry] = None,
    trace: Optional[TraceRecorder] = None,
    pool: Optional[PersistentPool] = None,
) -> ParallelBerRun:
    """Sharded, optionally multi-process BER measurement at one point.

    Parameters
    ----------
    max_frames:
        Upper bound on simulated frames (the full shard budget).
    shard_frames:
        Frames per shard; one shard is one batched decode in one task.
    workers:
        Process count; ``None`` uses the machine's CPU count, ``1``
        runs the identical shard loop serially in-process.
    target_frame_errors, ci_halfwidth:
        Adaptive stopping: stop dispatching once the merged in-order
        prefix has this many frame errors, or once the Wilson 95%
        interval on the FER has at most this half-width.  Either, both,
        or neither may be given.
    schedule:
        ``"zigzag"`` (default, fastest), ``"flooding"``, or the
        fixed-point paths ``"quantized-zigzag"`` / ``"quantized-minsum"``
        (paper Table 3 arithmetic; bit-identical to the single-frame
        golden models for every frame).
    fmt, channel_scale, backend:
        Fixed-point word format (6-bit messages by default), channel
        input conditioning, and the array backend name executing the
        decoder hot path (see :mod:`repro.decode.backend`) — all three
        forwarded to the quantized schedules only.  Results are
        bit-identical across backends.
    seed:
        Base seed; shard ``i`` uses child ``i`` of
        ``np.random.SeedSequence(seed)`` regardless of worker count.
    channel:
        Optional channel spec dict — keyword arguments for
        :func:`repro.channel.build_channel` minus ``ebn0_db`` /
        ``rate`` / ``seed`` (e.g. ``{"modulation": "8psk",
        "channel": "rayleigh"}``).  Each shard builds its channel from
        the spec with its own seed sequence, so the spec is what makes
        fading / higher-order cells picklable across worker processes.
        ``None`` keeps the literal legacy AWGN construction (existing
        seeded results stay bit-identical).
    registry:
        Metrics registry the merged run metrics are folded into; defaults
        to the process-wide registry.  The run itself always meters into
        a private, always-enabled registry (telemetry must work even when
        global metrics are off); the merge is skipped only if the target
        is disabled.
    trace:
        Trace recorder.  When given, every decoded frame's per-iteration
        convergence record is written (workers buffer events; the parent
        rewrites frame indices to global frame numbers and writes them in
        deterministic shard-merge order), followed by one ``ber_result``
        event.  Tracing does not change decoder outputs.
    pool:
        A :class:`~repro.sim.pool.PersistentPool` to run shards on.  The
        pool's worker count overrides ``workers``, and its processes
        (with their already-built decoders) are reused across calls that
        share the decoder configuration — a sweep over Eb/N0 points pays
        process spin-up once.  Results are bit-identical with or without
        a pool for any worker count.
    """
    if max_frames < 1:
        raise ValueError("need at least one frame")
    if shard_frames < 1:
        raise ValueError("shard_frames must be positive")
    workers = pool.workers if pool is not None else resolve_workers(workers)

    decoder_params = {
        "schedule": schedule,
        "normalization": float(normalization),
        "segments": segments,
        "fmt": fmt,
        "channel_scale": float(channel_scale),
        "backend": backend,
    }
    run_params = {
        "ebn0_db": float(ebn0_db),
        "max_iterations": int(max_iterations),
        "trace_iterations": trace is not None,
        "channel": dict(channel) if channel is not None else None,
    }
    # Validate the schedule/segments/format combination up front,
    # in-process.
    _build_decoder(code, decoder_params)
    if channel is not None:
        # Same for the channel spec: fail fast on bad axes here rather
        # than inside a worker process.
        build_channel(
            ebn0_db=float(ebn0_db), rate=float(code.profile.rate),
            seed=0, **channel,
        )
    sizes = _shard_sizes(max_frames, shard_frames)
    children = ensure_seed_sequence(seed).spawn(len(sizes))

    mp_context = None
    if pool is None and workers > 1:
        mp_context = _fork_context()
        if mp_context is None:
            warnings.warn(
                "fork start method unavailable on this platform; "
                "running the Monte-Carlo engine serially",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1

    run_reg = MetricsRegistry()
    with run_reg.timer("sim.parallel.wall"):
        if workers == 1:
            merged, discarded = _serial_loop(
                code, decoder_params, run_params, sizes, children,
                target_frame_errors, ci_halfwidth,
            )
        else:
            if pool is not None:
                pool.configure(
                    _init_worker,
                    (code, decoder_params),
                    key=_pool_key(code, decoder_params),
                )
                executor = pool._require_executor()
                merged, discarded = _parallel_loop(
                    executor, run_params, sizes, children,
                    target_frame_errors, ci_halfwidth, workers,
                )
            else:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=mp_context,
                    initializer=_init_worker,
                    initargs=(code, decoder_params),
                ) as executor:
                    merged, discarded = _parallel_loop(
                        executor, run_params, sizes, children,
                        target_frame_errors, ci_halfwidth, workers,
                    )

    k = code.k
    result = merge_ber_results(
        [_shard_to_result(s, float(ebn0_db), k) for s in merged]
    )
    # Fold the worker-local registries in strict shard-merge order; the
    # merge is associative, so any grouping yields the same totals.
    for shard_result in merged:
        if shard_result.metrics is not None:
            run_reg.merge(shard_result.metrics)
    run_reg.counter("sim.shards.merged").inc(len(merged))
    run_reg.counter("sim.shards.discarded").inc(discarded)
    telemetry = SimTelemetry.from_registry(
        run_reg,
        workers=workers,
        info_bits_per_frame=k,
        coded_bits_per_frame=code.n,
        shard_wall_s=[s.wall_s for s in merged],
    )
    if trace is not None:
        _write_trace(trace, merged, result, telemetry)
    target = registry if registry is not None else get_registry()
    if target.enabled:
        target.merge(run_reg)
    return ParallelBerRun(
        result=result, telemetry=telemetry, metrics=run_reg.snapshot()
    )


def _write_trace(
    trace: TraceRecorder,
    merged: Sequence[ShardResult],
    result: BerResult,
    telemetry: SimTelemetry,
) -> None:
    """Write buffered shard trace events with globalized frame indices."""
    offset = 0
    for shard_result in merged:
        for event in shard_result.trace_events or ():
            event = dict(event)
            event["frame"] = int(event["frame"]) + offset
            event["shard"] = shard_result.shard
            trace.emit(event)
        offset += shard_result.frames
    trace.event(
        "ber_result",
        ebn0_db=result.ebn0_db,
        frames=result.frames,
        ber=result.ber,
        fer=result.fer,
        bit_errors=result.bit_errors,
        frame_errors=result.frame_errors,
        shards_merged=telemetry.shards_merged,
        shards_discarded=telemetry.shards_discarded,
        elapsed_s=telemetry.elapsed_s,
        frames_per_sec=telemetry.frames_per_sec,
    )


def _pool_key(code: LdpcCode, decoder_params: dict):
    """Configuration key for :class:`PersistentPool` reuse.

    Identity of the code object plus the (hashable) decoder knobs; the
    pool keeps ``initargs`` alive, so the ``id`` stays unambiguous.
    """
    backend = decoder_params.get("backend")
    if not isinstance(backend, (str, type(None))):
        backend = id(backend)  # instance backends key by identity
    return (
        "sim.parallel",
        id(code),
        decoder_params["schedule"],
        decoder_params["normalization"],
        decoder_params["segments"],
        id(decoder_params["fmt"]),
        decoder_params["channel_scale"],
        backend,
    )


def _serial_loop(
    code: LdpcCode,
    decoder_params: dict,
    run_params: dict,
    sizes: Sequence[int],
    children: Sequence[np.random.SeedSequence],
    target_frame_errors: Optional[int],
    ci_halfwidth: Optional[float],
):
    """The ``workers=1`` special case: same shards, same order, no pool."""
    decoder = _build_decoder(code, decoder_params)
    merged: List[ShardResult] = []
    frames = frame_errors = 0
    for shard, (n_frames, seed_seq) in enumerate(zip(sizes, children)):
        result = _decode_shard(
            code, decoder, run_params, shard, n_frames, seed_seq
        )
        merged.append(result)
        frames += result.frames
        frame_errors += result.frame_errors
        if _should_stop(
            frames, frame_errors, target_frame_errors, ci_halfwidth
        ):
            break
    return merged, 0


def _parallel_loop(
    executor,
    run_params: dict,
    sizes: Sequence[int],
    children: Sequence[np.random.SeedSequence],
    target_frame_errors: Optional[int],
    ci_halfwidth: Optional[float],
    workers: int,
):
    """Dispatch shards to a process pool, merging strictly in order.

    Workers run ahead speculatively; once the in-order stopping rule
    fires, unmerged results are discarded so the merged prefix is the
    one the serial loop would have produced.  ``executor`` is either a
    run-scoped :class:`ProcessPoolExecutor` or a warm
    :class:`PersistentPool` executor — the caller owns its lifetime.
    """
    n_shards = len(sizes)
    merged: List[ShardResult] = []
    completed: Dict[int, ShardResult] = {}
    pending: Dict[object, int] = {}
    next_submit = 0
    next_merge = 0
    frames = frame_errors = 0
    stop = False
    while True:
        while (
            not stop
            and next_submit < n_shards
            and len(pending) < workers
        ):
            future = executor.submit(
                _run_shard,
                (
                    next_submit,
                    sizes[next_submit],
                    children[next_submit],
                    run_params,
                ),
            )
            pending[future] = next_submit
            next_submit += 1
        if not pending:
            break
        done, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            shard = pending.pop(future)
            completed[shard] = future.result()
        while not stop and next_merge in completed:
            result = completed.pop(next_merge)
            merged.append(result)
            next_merge += 1
            frames += result.frames
            frame_errors += result.frame_errors
            if _should_stop(
                frames, frame_errors,
                target_frame_errors, ci_halfwidth,
            ):
                stop = True
        if stop:
            for future in pending:
                future.cancel()
            pending = {
                f: s for f, s in pending.items() if not f.cancelled()
            }
            if not pending:
                # Speculative in-flight shards were either cancelled or
                # already done; completed-but-unmerged ones are counted
                # as discarded below.
                break
    discarded = len(completed)
    return merged, discarded
