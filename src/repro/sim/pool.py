"""Reusable worker-pool and seed-spawning helpers.

The sharded Monte-Carlo engine (:mod:`repro.sim.parallel`) and the
multi-chain annealing engine (:mod:`repro.hw.parallel_anneal`) share the
same process-level fan-out pattern:

* deterministic task seeding — task ``i`` draws from the ``i``-th child
  of one root :class:`numpy.random.SeedSequence`, so results depend only
  on ``(base_seed, task_index)`` and never on the worker count;
* a ``fork``-context :class:`~concurrent.futures.ProcessPoolExecutor`
  with a one-time per-worker initializer, degrading to the identical
  serial loop (with a :class:`RuntimeWarning`) where ``fork`` is
  unavailable;
* ``workers=1`` *is* the serial loop — one code path, not two.

This module holds that shared machinery so both engines stay thin.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np


def fork_context():
    """The fork multiprocessing context, or ``None`` where unavailable."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker count (``None`` means the machine's CPUs)."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be positive")
    return workers


def ensure_seed_sequence(seed) -> np.random.SeedSequence:
    """Coerce an entropy-like value into a :class:`SeedSequence`."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_seeds(seed, n: int) -> List[np.random.SeedSequence]:
    """The first ``n`` children of ``seed`` — one per task, index-stable."""
    return ensure_seed_sequence(seed).spawn(n)


def map_ordered(
    fn: Callable,
    tasks: Sequence,
    *,
    workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    label: str = "parallel engine",
) -> list:
    """Run ``fn`` over ``tasks``, returning results in task order.

    With ``workers == 1`` (or when ``fork`` is unavailable — warned) the
    initializer and tasks run inline in this process, which is exactly
    what one pool worker would have done.  ``fn``, the tasks, and the
    results must be picklable for the multi-process path.
    """
    workers = resolve_workers(workers)
    mp_context = fork_context() if workers > 1 else None
    if workers > 1 and mp_context is None:
        warnings.warn(
            f"fork start method unavailable on this platform; "
            f"running the {label} serially",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    if workers == 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=mp_context,
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(fn, tasks))
