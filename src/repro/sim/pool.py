"""Reusable worker-pool and seed-spawning helpers.

The sharded Monte-Carlo engine (:mod:`repro.sim.parallel`) and the
multi-chain annealing engine (:mod:`repro.hw.parallel_anneal`) share the
same process-level fan-out pattern:

* deterministic task seeding — task ``i`` draws from the ``i``-th child
  of one root :class:`numpy.random.SeedSequence`, so results depend only
  on ``(base_seed, task_index)`` and never on the worker count;
* a ``fork``-context :class:`~concurrent.futures.ProcessPoolExecutor`
  with a one-time per-worker initializer, degrading to the identical
  serial loop (with a :class:`RuntimeWarning`) where ``fork`` is
  unavailable;
* ``workers=1`` *is* the serial loop — one code path, not two.

This module holds that shared machinery so both engines stay thin.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np


def fork_context():
    """The fork multiprocessing context, or ``None`` where unavailable."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker count (``None`` means the machine's CPUs)."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be positive")
    return workers


def ensure_seed_sequence(seed) -> np.random.SeedSequence:
    """Coerce an entropy-like value into a :class:`SeedSequence`."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_seeds(seed, n: int) -> List[np.random.SeedSequence]:
    """The first ``n`` children of ``seed`` — one per task, index-stable."""
    return ensure_seed_sequence(seed).spawn(n)


def map_ordered(
    fn: Callable,
    tasks: Sequence,
    *,
    workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    label: str = "parallel engine",
) -> list:
    """Run ``fn`` over ``tasks``, returning results in task order.

    With ``workers == 1`` (or when ``fork`` is unavailable — warned) the
    initializer and tasks run inline in this process, which is exactly
    what one pool worker would have done.  ``fn``, the tasks, and the
    results must be picklable for the multi-process path.
    """
    workers = resolve_workers(workers)
    mp_context = fork_context() if workers > 1 else None
    if workers > 1 and mp_context is None:
        warnings.warn(
            f"fork start method unavailable on this platform; "
            f"running the {label} serially",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    if workers == 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=mp_context,
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(fn, tasks))


class PersistentPool:
    """A create-once, submit-many worker pool.

    :func:`map_ordered` (and the engines built on it) pay process
    spin-up and per-worker initialization on *every* call.  For callers
    that fan out repeatedly with the same worker configuration — the
    serve engine decoding a stream of micro-batches, or a BER sweep
    whose points share one decoder — this wrapper keeps the executor
    (and its initialized workers) alive across calls:

    * :meth:`configure` is keyed: re-calling with the same ``key`` is a
      no-op that reuses the warm pool, while a new key respins the
      workers with the new initializer (the pool holds a strong
      reference to ``initargs``, so identity-based keys stay valid);
    * ``workers=1`` — or a platform without ``fork`` (warned) — runs
      everything inline in this process, exactly like
      :func:`map_ordered`'s serial path, so callers keep one code path;
    * the pool is a context manager; :meth:`shutdown` is idempotent.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        label: str = "parallel engine",
    ) -> None:
        workers = resolve_workers(workers)
        self._ctx = fork_context() if workers > 1 else None
        if workers > 1 and self._ctx is None:
            warnings.warn(
                f"fork start method unavailable on this platform; "
                f"running the {label} serially",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
        self.workers = workers
        self.label = label
        self._executor: Optional[ProcessPoolExecutor] = None
        self._config_key = None
        self._config = (None, ())

    # ------------------------------------------------------------------
    @property
    def serial(self) -> bool:
        """True when tasks run inline in this process."""
        return self.workers == 1

    def configure(
        self,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        *,
        key=None,
    ) -> None:
        """Install the per-worker initializer for subsequent submits.

        ``key`` identifies the configuration: configuring twice with the
        same key keeps the warm executor (and the already-initialized
        workers); a different key shuts the old executor down and the
        next submit forks freshly initialized workers.  ``key=None``
        derives one from the initializer and the identities of
        ``initargs``.
        """
        if key is None:
            key = (initializer, tuple(id(arg) for arg in initargs))
        if key == self._config_key and (
            self._executor is not None or self.serial
        ):
            return
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        self._config_key = key
        self._config = (initializer, initargs)
        if self.serial:
            if initializer is not None:
                initializer(*initargs)
        else:
            initializer_, initargs_ = self._config
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._ctx,
                initializer=initializer_,
                initargs=initargs_,
            )

    def _require_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            initializer, initargs = self._config
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._ctx,
                initializer=initializer,
                initargs=initargs,
            )
        return self._executor

    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args) -> Future:
        """Submit one task; inline (already-done future) when serial."""
        if self.serial:
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                future.set_exception(exc)
            return future
        return self._require_executor().submit(fn, *args)

    def map_ordered(self, fn: Callable, tasks: Sequence) -> list:
        """Run ``fn`` over ``tasks``, results in task order."""
        if self.serial:
            return [fn(task) for task in tasks]
        return list(self._require_executor().map(fn, tasks))

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the workers (idempotent; the pool can be reconfigured)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False
