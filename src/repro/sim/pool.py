"""Reusable worker-pool and seed-spawning helpers.

The sharded Monte-Carlo engine (:mod:`repro.sim.parallel`) and the
multi-chain annealing engine (:mod:`repro.hw.parallel_anneal`) share the
same process-level fan-out pattern:

* deterministic task seeding — task ``i`` draws from the ``i``-th child
  of one root :class:`numpy.random.SeedSequence`, so results depend only
  on ``(base_seed, task_index)`` and never on the worker count;
* a ``fork``-context :class:`~concurrent.futures.ProcessPoolExecutor`
  with a one-time per-worker initializer, degrading to the identical
  serial loop (with a :class:`RuntimeWarning`) where ``fork`` is
  unavailable;
* ``workers=1`` *is* the serial loop — one code path, not two.

This module holds that shared machinery so both engines stay thin.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np


def _dup_call_queue_reader(executor: ProcessPoolExecutor) -> Optional[int]:
    """Duplicate the executor call queue's read-end file descriptor.

    Insurance taken out at executor creation, cashed in by
    :func:`_unstick_call_queue` after a worker crash — by then the
    queue's own reader has been closed by the executor's teardown, so
    only a descriptor duplicated *now* can still drain the pipe.
    """
    queue = getattr(executor, "_call_queue", None)
    reader = getattr(queue, "_reader", None)
    if reader is None:
        return None
    try:
        return os.dup(reader.fileno())
    except OSError:
        return None


def _unstick_call_queue(
    executor: ProcessPoolExecutor, drain_fd: Optional[int]
) -> None:
    """Unblock a dead executor's call-queue feeder thread.

    When every worker of an executor dies with a large task still
    queued, the feeder thread can block forever inside ``write()``: the
    payload exceeds the pipe buffer, the dead workers can't read it,
    and fork-inherited copies of the read end in *sibling* worker
    processes keep the pipe from breaking.  The executor's management
    thread then hangs joining the feeder, and ``shutdown(wait=True)``
    hangs joining the management thread.  Draining our duplicated read
    end lets the feeder finish and the whole teardown chain complete.
    Runs as a daemon thread until the feeder exits; the thread owns
    (and closes) ``drain_fd``.
    """
    import select

    feeder = getattr(
        getattr(executor, "_call_queue", None), "_thread", None
    )
    if drain_fd is None:
        return
    if feeder is None:
        os.close(drain_fd)
        return

    def drain() -> None:
        try:
            while feeder.is_alive():
                ready, _, _ = select.select([drain_fd], [], [], 0.02)
                if ready and not os.read(drain_fd, 1 << 16):
                    break
                feeder.join(0.02)
        except OSError:
            pass
        finally:
            os.close(drain_fd)

    threading.Thread(
        target=drain, name="pool-call-queue-drain", daemon=True
    ).start()


def fork_context():
    """The fork multiprocessing context, or ``None`` where unavailable."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker count (``None`` means the machine's CPUs)."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be positive")
    return workers


def ensure_seed_sequence(seed) -> np.random.SeedSequence:
    """Coerce an entropy-like value into a :class:`SeedSequence`."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_seeds(seed, n: int) -> List[np.random.SeedSequence]:
    """The first ``n`` children of ``seed`` — one per task, index-stable."""
    return ensure_seed_sequence(seed).spawn(n)


def map_ordered(
    fn: Callable,
    tasks: Sequence,
    *,
    workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    label: str = "parallel engine",
) -> list:
    """Run ``fn`` over ``tasks``, returning results in task order.

    With ``workers == 1`` (or when ``fork`` is unavailable — warned) the
    initializer and tasks run inline in this process, which is exactly
    what one pool worker would have done.  ``fn``, the tasks, and the
    results must be picklable for the multi-process path.
    """
    workers = resolve_workers(workers)
    mp_context = fork_context() if workers > 1 else None
    if workers > 1 and mp_context is None:
        warnings.warn(
            f"fork start method unavailable on this platform; "
            f"running the {label} serially",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    if workers == 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=mp_context,
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(fn, tasks))


class PersistentPool:
    """A create-once, submit-many worker pool.

    :func:`map_ordered` (and the engines built on it) pay process
    spin-up and per-worker initialization on *every* call.  For callers
    that fan out repeatedly with the same worker configuration — the
    serve engine decoding a stream of micro-batches, or a BER sweep
    whose points share one decoder — this wrapper keeps the executor
    (and its initialized workers) alive across calls:

    * :meth:`configure` is keyed: re-calling with the same ``key`` is a
      no-op that reuses the warm pool, while a new key respins the
      workers with the new initializer (the pool holds a strong
      reference to ``initargs``, so identity-based keys stay valid);
    * ``workers=1`` — or a platform without ``fork`` (warned) — runs
      everything inline in this process, exactly like
      :func:`map_ordered`'s serial path, so callers keep one code path
      (``dedicated=True`` opts a single worker out of the inline path:
      the distributed decode fabric needs each of its workers to be a
      real, individually-targetable child process);
    * a worker process that dies (OOM-killed, segfaulted) does not end
      the run: :meth:`respawn` replaces the broken executor with
      freshly initialized workers under the *same* configuration key,
      records a ``pool.worker_restart`` counter plus a
      ``pool_worker_restart`` trace event, and :meth:`submit` /
      :meth:`map_ordered` respawn automatically when they find the
      executor broken (callers holding failed futures redrive those
      tasks themselves — the pool cannot know which results were lost);
    * the pool is a context manager; :meth:`shutdown` is idempotent.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        label: str = "parallel engine",
        dedicated: bool = False,
        registry=None,
        trace=None,
    ) -> None:
        workers = resolve_workers(workers)
        needs_processes = workers > 1 or dedicated
        self._ctx = fork_context() if needs_processes else None
        if needs_processes and self._ctx is None:
            warnings.warn(
                f"fork start method unavailable on this platform; "
                f"running the {label} serially",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
            dedicated = False
        self.workers = workers
        self.label = label
        self.dedicated = dedicated
        self.registry = registry
        self.trace = trace
        self.restarts = 0
        #: Futures submitted but not yet finished (see :attr:`inflight`).
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Dup of the call queue's read end (crash-teardown insurance).
        self._drain_fd: Optional[int] = None
        self._config_key = None
        self._config = (None, ())

    # ------------------------------------------------------------------
    @property
    def serial(self) -> bool:
        """True when tasks run inline in this process."""
        return self.workers == 1 and not self.dedicated

    def configure(
        self,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        *,
        key=None,
    ) -> None:
        """Install the per-worker initializer for subsequent submits.

        ``key`` identifies the configuration: configuring twice with the
        same key keeps the warm executor (and the already-initialized
        workers); a different key shuts the old executor down and the
        next submit forks freshly initialized workers.  ``key=None``
        derives one from the initializer and the identities of
        ``initargs``.
        """
        if key is None:
            key = (initializer, tuple(id(arg) for arg in initargs))
        if key == self._config_key and (
            self._executor is not None or self.serial
        ):
            return
        self._teardown_executor()
        self._config_key = key
        self._config = (initializer, initargs)
        if self.serial:
            if initializer is not None:
                initializer(*initargs)
        else:
            self._require_executor()

    def _require_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            initializer, initargs = self._config
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._ctx,
                initializer=initializer,
                initargs=initargs,
            )
            self._drain_fd = _dup_call_queue_reader(self._executor)
        return self._executor

    def _teardown_executor(self) -> None:
        """Shut the executor down, unsticking it first if it died."""
        executor, self._executor = self._executor, None
        drain_fd, self._drain_fd = self._drain_fd, None
        if executor is None:
            if drain_fd is not None:
                os.close(drain_fd)
            return
        if getattr(executor, "_broken", False):
            _unstick_call_queue(executor, drain_fd)
        elif drain_fd is not None:
            os.close(drain_fd)
        executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    @property
    def broken(self) -> bool:
        """True when a worker died and the executor refuses new work."""
        return self._executor is not None and bool(
            getattr(self._executor, "_broken", False)
        )

    def respawn(self) -> None:
        """Replace a dead executor with freshly initialized workers.

        The configuration key is kept, so the pool comes back exactly
        as :meth:`configure` left it (same initializer, same initargs)
        — "re-keyed" rather than degraded to serial for the rest of
        the run.  Emits a ``pool.worker_restart`` counter and a
        ``pool_worker_restart`` trace event so restarts are visible in
        merged telemetry.  In-flight futures of the dead executor have
        already failed; redriving them is the caller's job.
        """
        if self.serial:
            return
        self._teardown_executor()
        self.restarts += 1
        registry = self.registry
        if registry is None:
            from ..obs.registry import get_registry

            registry = get_registry()
        registry.counter("pool.worker_restart").inc()
        if self.trace is not None:
            self.trace.event(
                "pool_worker_restart",
                label=self.label,
                workers=self.workers,
                restarts=self.restarts,
            )
        self._require_executor()

    def _submit_executor(self) -> ProcessPoolExecutor:
        """The executor to submit to, respawning a broken one first."""
        if self.broken:
            self.respawn()
        return self._require_executor()

    @property
    def inflight(self) -> int:
        """Tasks submitted via :meth:`submit` and not yet done.

        The pipelined serve pump reads this non-blocking occupancy
        signal to tell a busy pool from an idle one without touching
        any future.  Serial submits resolve inside :meth:`submit`, so
        the count is 0 between calls on the inline path; tasks routed
        through :meth:`map_ordered` are not tracked.
        """
        with self._inflight_lock:
            return self._inflight

    def _task_done(self, _future: Future) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def _track(self, future: Future) -> Future:
        with self._inflight_lock:
            self._inflight += 1
        # A future that is already done runs the callback immediately,
        # keeping the serial path's count balanced at zero.
        future.add_done_callback(self._task_done)
        return future

    def submit(self, fn: Callable, *args) -> Future:
        """Submit one task; inline (already-done future) when serial."""
        if self.serial:
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                future.set_exception(exc)
            return self._track(future)
        try:
            return self._track(self._submit_executor().submit(fn, *args))
        except BrokenExecutor:
            # Broke between the check and the submit: one more respawn.
            self.respawn()
            return self._track(
                self._require_executor().submit(fn, *args)
            )

    def map_ordered(self, fn: Callable, tasks: Sequence) -> list:
        """Run ``fn`` over ``tasks``, results in task order."""
        if self.serial:
            return [fn(task) for task in tasks]
        return list(self._submit_executor().map(fn, tasks))

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the workers (idempotent; the pool can be reconfigured)."""
        self._teardown_executor()

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False
