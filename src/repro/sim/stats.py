"""Statistics helpers for Monte-Carlo error-rate estimation."""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Tuple


def wilson_interval(
    errors: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at zero observed errors (unlike the normal
    approximation), which matters for low-BER points.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= errors <= trials:
        raise ValueError("errors must be within [0, trials]")
    p = errors / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (
        z
        * sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)


@dataclass
class ErrorRateEstimate:
    """A BER or FER estimate with its confidence interval."""

    errors: int
    trials: int
    z: float = 1.96

    @property
    def rate(self) -> float:
        """Point estimate."""
        if self.trials == 0:
            return float("nan")
        return self.errors / self.trials

    @property
    def interval(self) -> Tuple[float, float]:
        """Wilson confidence interval."""
        return wilson_interval(self.errors, self.trials, self.z)

    @property
    def reliable(self) -> bool:
        """Rule of thumb: ≥ 20 observed errors for a stable estimate."""
        return self.errors >= 20

    def merged(self, other: "ErrorRateEstimate") -> "ErrorRateEstimate":
        """Pool two independent estimates of the same quantity."""
        return ErrorRateEstimate(
            errors=self.errors + other.errors,
            trials=self.trials + other.trials,
            z=self.z,
        )
