"""ASCII plotting for BER curves (no plotting library required).

The benches and examples run in terminals; this renders log-scale
waterfall curves as text so results are visible without matplotlib.
"""

from __future__ import annotations

from math import floor, log10
from typing import Dict, List, Sequence, Tuple

#: Characters assigned to successive series.
SERIES_MARKS = "ox+*#@"


def ascii_ber_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 20,
    floor_ber: float = 1e-7,
    title: str = "",
) -> str:
    """Render BER-vs-Eb/N0 curves on a log-y ASCII grid.

    Parameters
    ----------
    series:
        Mapping label -> list of (ebn0_db, ber) points.  Zero-BER points
        are clamped to ``floor_ber`` (they sit on the bottom axis).
    width, height:
        Character grid size.
    """
    if not series:
        raise ValueError("need at least one series")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    y_lo = log10(floor_ber)
    y_hi = max(
        log10(max(p[1], floor_ber)) for p in points
    )
    y_hi = max(y_hi, y_lo + 1.0)

    grid = [[" "] * width for _ in range(height)]
    for (label, pts), mark in zip(series.items(), SERIES_MARKS):
        for ebn0, ber in pts:
            x = int(round((ebn0 - x_lo) / (x_hi - x_lo) * (width - 1)))
            y_val = log10(max(ber, floor_ber))
            y = int(
                round((y_hi - y_val) / (y_hi - y_lo) * (height - 1))
            )
            grid[min(max(y, 0), height - 1)][
                min(max(x, 0), width - 1)
            ] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_idx, row in enumerate(grid):
        frac = row_idx / (height - 1)
        y_val = y_hi - frac * (y_hi - y_lo)
        label = f"1e{int(floor(y_val)):+03d}" if row_idx % 4 == 0 else "    "
        lines.append(f"{label:>6} |" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(
        f"{'':7}{x_lo:<8.2f}{'Eb/N0 (dB)':^{width - 16}}{x_hi:>8.2f}"
    )
    legend = "   ".join(
        f"{mark}={label}"
        for (label, _), mark in zip(series.items(), SERIES_MARKS)
    )
    lines.append(" " * 8 + legend)
    return "\n".join(lines)
