"""Outer BCH code and the concatenated DVB-S2 FEC chain."""

from .chain import Dvbs2FecChain, FecDecodeResult
from .code import BchCode, BchDecodeResult
from .galois import GF2m, PRIMITIVE_POLYS

__all__ = [
    "BchCode",
    "BchDecodeResult",
    "Dvbs2FecChain",
    "FecDecodeResult",
    "GF2m",
    "PRIMITIVE_POLYS",
]
