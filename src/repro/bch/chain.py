"""The concatenated DVB-S2 FEC chain: outer BCH + inner LDPC.

The DVB-S2 FEC encodes a BBFRAME with the outer BCH code, whose output
exactly fills the inner LDPC code's information field; at the receiver
the iterative LDPC decoder removes almost all channel errors and the
algebraic BCH decoder cleans up the residual floor.  The paper's IP is
the inner stage; this module closes the loop.

Sizing: the inner code's ``K`` rarely matches ``2^m - 1 - deg(g)``
exactly, so the BCH code is *shortened* to ``k = K_ldpc - n_parity_bch``
message bits — precisely how EN 302 307 dimensions its BBFRAMEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..codes.construction import LdpcCode
from ..decode.result import DecodeResult
from .code import BchCode


@dataclass
class FecDecodeResult:
    """Outcome of the concatenated decode."""

    info_bits: np.ndarray
    ldpc_result: DecodeResult
    bch_corrected: int
    bch_success: bool


class Dvbs2FecChain:
    """Outer BCH + inner LDPC encoder/decoder pair.

    Parameters
    ----------
    ldpc_code:
        The inner code (full-size or scaled).
    ldpc_decoder:
        Any decoder with ``decode(llrs, max_iterations, early_stop)``.
    bch_m, bch_t:
        Outer-code field degree and correction capability.  The field
        must be large enough that ``2^m - 1 >= K_ldpc``.
    """

    def __init__(
        self,
        ldpc_code: LdpcCode,
        ldpc_decoder,
        bch_m: int = 16,
        bch_t: int = 12,
    ) -> None:
        from ..encode.encoder import IraEncoder

        self.ldpc_code = ldpc_code
        self.ldpc_decoder = ldpc_decoder
        self._ldpc_encoder = IraEncoder(ldpc_code)
        probe = BchCode(bch_m, bch_t)
        if probe.n_parity >= ldpc_code.k:
            raise ValueError(
                "BCH parity does not fit into the LDPC information field"
            )
        if (1 << bch_m) - 1 < ldpc_code.k:
            raise ValueError(
                f"GF(2^{bch_m}) too small for K_ldpc={ldpc_code.k}"
            )
        self.bch = BchCode(bch_m, bch_t, k=ldpc_code.k - probe.n_parity)

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Payload bits per frame (BBFRAME data field)."""
        return self.bch.k

    @property
    def n(self) -> int:
        """Channel bits per frame."""
        return self.ldpc_code.n

    @property
    def rate(self) -> float:
        """Overall FEC rate including the outer code."""
        return self.k / self.n

    def encode(self, payload: np.ndarray) -> np.ndarray:
        """payload → BCH codeword → LDPC codeword."""
        outer = self.bch.encode(payload)
        if outer.size != self.ldpc_code.k:
            raise AssertionError(
                "outer codeword does not fill the inner information field"
            )  # pragma: no cover - sized in __init__
        return self._ldpc_encoder.encode(outer)

    def decode(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
    ) -> FecDecodeResult:
        """LDPC decode, then BCH cleanup of the information field."""
        inner = self.ldpc_decoder.decode(
            channel_llrs,
            max_iterations=max_iterations,
            early_stop=early_stop,
        )
        outer_word = inner.bits[: self.ldpc_code.k]
        outer = self.bch.decode(outer_word)
        return FecDecodeResult(
            info_bits=self.bch.extract_message(outer.bits),
            ldpc_result=inner,
            bch_corrected=outer.corrected,
            bch_success=outer.success,
        )
