"""Binary BCH codes — the outer code of the DVB-S2 FEC chain.

DVB-S2 protects every LDPC frame with a shortened binary BCH outer code
(t = 8, 10 or 12 correctable errors depending on rate) that removes the
residual error floor of the iterative inner decoder.  The paper's IP
covers the LDPC part; this module supplies the outer substrate so the
repository reproduces the standard's complete FEC chain.

Implementation: classic hard-decision decoding — syndromes over
GF(2^m), Berlekamp–Massey for the error locator, Chien search for the
roots — all table-driven and numpy-vectorized where it matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .galois import GF2m


def _gf2_poly_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of two GF(2)[x] polynomials (coefficient arrays)."""
    out = np.zeros(len(a) + len(b) - 1, dtype=np.uint8)
    for i, ai in enumerate(a):
        if ai:
            out[i : i + len(b)] ^= b.astype(np.uint8)
    return out


def _gf2_poly_mod(dividend: np.ndarray, divisor: np.ndarray) -> np.ndarray:
    """Remainder of GF(2)[x] division (divisor must be monic)."""
    rem = dividend.astype(np.uint8).copy()
    d = len(divisor) - 1
    for i in range(len(rem) - 1, d - 1, -1):
        if rem[i]:
            rem[i - d : i + 1] ^= divisor.astype(np.uint8)
    return rem[:d]


@dataclass
class BchDecodeResult:
    """Outcome of decoding one BCH word."""

    bits: np.ndarray
    corrected: int
    success: bool


class BchCode:
    """A binary primitive (shortened) BCH code.

    Parameters
    ----------
    m:
        Field degree; the mother code has length ``2^m - 1``.
    t:
        Designed error-correction capability.
    k:
        Message length after shortening.  Defaults to the maximum
        ``2^m - 1 - deg(g)``.

    Notes
    -----
    DVB-S2 normal frames use ``m=16`` with ``t`` in {8, 10, 12} and k
    equal to the inner LDPC code's information length; the scaled test
    configurations in this library use smaller fields with the same
    machinery.
    """

    def __init__(self, m: int, t: int, k: Optional[int] = None) -> None:
        if t < 1:
            raise ValueError("t must be at least 1")
        self.field = GF2m(m)
        self.t = t
        self.generator = self._build_generator()
        self.n_parity = len(self.generator) - 1
        max_k = self.field.order - self.n_parity
        if max_k <= 0:
            raise ValueError(f"t={t} too large for m={m}")
        self.k = max_k if k is None else k
        if not 0 < self.k <= max_k:
            raise ValueError(
                f"k={k} out of range (1..{max_k}) for BCH(m={m}, t={t})"
            )
        self.n = self.k + self.n_parity

    # ------------------------------------------------------------------
    def _build_generator(self) -> np.ndarray:
        """g(x) = lcm of the minimal polynomials of alpha^1..alpha^2t."""
        g = np.array([1], dtype=np.uint8)
        seen = set()
        for i in range(1, 2 * self.t + 1):
            coset = tuple(self.field.cyclotomic_coset(i))
            if coset in seen:
                continue
            seen.add(coset)
            mp = self.field.minimal_polynomial(i).astype(np.uint8)
            g = _gf2_poly_mul(g, mp)
        return g

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, message: np.ndarray) -> np.ndarray:
        """Systematic encoding: ``[message, parity]``.

        Codeword polynomial convention: bit ``i`` is the coefficient of
        ``x^(n-1-i)`` — message first, like the DVB-S2 BBFRAME layout.
        """
        message = np.asarray(message)
        if message.shape != (self.k,):
            raise ValueError(f"expected {self.k} message bits")
        if ((message != 0) & (message != 1)).any():
            raise ValueError("message bits must be 0/1")
        # dividend = m(x) * x^(n-k); coefficient array is little-endian
        dividend = np.zeros(self.n, dtype=np.uint8)
        dividend[self.n_parity :] = message[::-1]
        parity = _gf2_poly_mod(dividend, self.generator)
        return np.concatenate(
            [message.astype(np.uint8), parity[::-1].astype(np.uint8)]
        )

    def is_codeword(self, bits: np.ndarray) -> bool:
        """True when every syndrome vanishes."""
        return not self._syndromes(np.asarray(bits, dtype=np.uint8)).any()

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _syndromes(self, bits: np.ndarray) -> np.ndarray:
        """S_j = r(alpha^j) for j = 1..2t, from the set-bit positions."""
        # bit i corresponds to x^(n-1-i); shortening prepends zeros, so
        # the mother-code exponent of bit i is (n-1-i).
        positions = np.nonzero(bits)[0]
        exponents = self.n - 1 - positions
        synd = np.zeros(2 * self.t, dtype=np.int64)
        if exponents.size == 0:
            return synd
        for j in range(1, 2 * self.t + 1):
            terms = self.field.pow_alpha(j * exponents)
            synd[j - 1] = int(np.bitwise_xor.reduce(terms))
        return synd

    def _berlekamp_massey(self, synd: np.ndarray) -> np.ndarray:
        """Error-locator polynomial from the syndrome sequence."""
        f = self.field
        c = np.zeros(2 * self.t + 2, dtype=np.int64)
        b = np.zeros(2 * self.t + 2, dtype=np.int64)
        c[0] = b[0] = 1
        length, shift = 0, 1
        bb = 1  # last nonzero discrepancy
        for i in range(2 * self.t):
            # discrepancy
            d = int(synd[i])
            for j in range(1, length + 1):
                d ^= int(f.mul(c[j], synd[i - j]))
            if d == 0:
                shift += 1
            elif 2 * length <= i:
                t_poly = c.copy()
                coef = f.div(d, bb)
                c[shift:] ^= f.mul(coef, b[: len(b) - shift])
                length = i + 1 - length
                b = t_poly
                bb = d
                shift = 1
            else:
                coef = f.div(d, bb)
                c[shift:] ^= f.mul(coef, b[: len(b) - shift])
                shift += 1
        return c[: length + 1]

    def _chien_search(self, locator: np.ndarray) -> np.ndarray:
        """Bit positions whose locations are roots of the locator."""
        f = self.field
        # error at mother-code exponent e  <=>  locator(alpha^-e) == 0
        exponents = self.n - 1 - np.arange(self.n)
        points = f.pow_alpha(-exponents)
        values = f.poly_eval(locator.astype(np.int64), points)
        return np.nonzero(values == 0)[0]

    def decode(self, bits: np.ndarray) -> BchDecodeResult:
        """Correct up to ``t`` bit errors in a received word.

        Returns the corrected word, the number of corrections applied,
        and whether decoding succeeded (a failure means more than ``t``
        errors were detected — the word is returned uncorrected).
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.n,):
            raise ValueError(f"expected {self.n} bits")
        synd = self._syndromes(bits)
        if not synd.any():
            return BchDecodeResult(bits=bits.copy(), corrected=0,
                                   success=True)
        locator = self._berlekamp_massey(synd)
        n_errors = len(locator) - 1
        positions = self._chien_search(locator)
        if n_errors > self.t or positions.size != n_errors:
            return BchDecodeResult(
                bits=bits.copy(), corrected=0, success=False
            )
        corrected = bits.copy()
        corrected[positions] ^= 1
        if self._syndromes(corrected).any():  # pragma: no cover - guard
            return BchDecodeResult(
                bits=bits.copy(), corrected=0, success=False
            )
        return BchDecodeResult(
            bits=corrected, corrected=int(positions.size), success=True
        )

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Systematic message part of a codeword."""
        return np.asarray(codeword, dtype=np.uint8)[: self.k]
