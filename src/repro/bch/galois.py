"""GF(2^m) arithmetic for the BCH outer code of the DVB-S2 FEC chain.

The DVB-S2 standard concatenates an outer BCH code (over GF(2^16) for
normal frames) with the inner LDPC code the paper's IP decodes; this
module provides the field arithmetic for that substrate.  Elements are
represented as integers (polynomial basis); multiplication runs through
exp/log tables, vectorized with numpy.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

#: Primitive polynomials (as bit masks including the x^m term) for the
#: field sizes used by BCH codes in this library.  The m=16 entry is the
#: DVB-S2 normal-frame polynomial x^16 + x^5 + x^3 + x^2 + 1... the
#: standard actually uses g1(x) = x^16+x^5+x^3+x^2+1 as its first factor;
#: any primitive polynomial yields an equivalent field.
PRIMITIVE_POLYS: Dict[int, int] = {
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010001000011,
    15: 0b1000000000000011,
    16: 0b10000000000101101,
}


class GF2m:
    """The finite field GF(2^m) with table-based arithmetic.

    Elements are Python ints / numpy integer arrays in ``[0, 2^m)``.
    ``alpha`` (the primitive element) is ``2``; ``exp`` and ``log``
    tables drive multiplication.
    """

    def __init__(self, m: int, primitive_poly: int = 0) -> None:
        if m not in PRIMITIVE_POLYS and not primitive_poly:
            raise ValueError(f"no primitive polynomial known for m={m}")
        self.m = m
        self.poly = primitive_poly or PRIMITIVE_POLYS[m]
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        self._build_tables()

    def _build_tables(self) -> None:
        exp = np.zeros(2 * self.order, dtype=np.int64)
        log = np.zeros(self.size, dtype=np.int64)
        x = 1
        for i in range(self.order):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.size:
                x ^= self.poly
        if x != 1:
            raise ValueError(
                f"polynomial {self.poly:#x} is not primitive for m={self.m}"
            )
        exp[self.order :] = exp[: self.order]  # wraparound for index sums
        self.exp = exp
        self.log = log

    # ------------------------------------------------------------------
    def mul(self, a, b):
        """Element-wise product (0 absorbs)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = self.exp[(self.log[a] + self.log[b]) % self.order]
        return np.where((a == 0) | (b == 0), 0, out)

    def inv(self, a):
        """Element-wise multiplicative inverse.

        Raises
        ------
        ZeroDivisionError
            If any element is 0.
        """
        a = np.asarray(a, dtype=np.int64)
        if (a == 0).any():
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        return self.exp[(self.order - self.log[a]) % self.order]

    def div(self, a, b):
        """Element-wise quotient ``a / b``."""
        return self.mul(a, self.inv(b))

    def pow_alpha(self, k):
        """``alpha ** k`` for integer (array) exponents of any sign."""
        k = np.asarray(k, dtype=np.int64) % self.order
        return self.exp[k]

    def pow(self, a, k: int):
        """Element-wise ``a ** k`` for a scalar integer exponent."""
        a = np.asarray(a, dtype=np.int64)
        if k == 0:
            return np.ones_like(a)
        out = self.exp[(self.log[a] * (k % self.order)) % self.order]
        return np.where(a == 0, 0, out)

    # ------------------------------------------------------------------
    def poly_eval(self, coeffs: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Evaluate a polynomial (coeffs[i] = coefficient of x^i) at many
        points, Horner's rule vectorized over the points."""
        points = np.asarray(points, dtype=np.int64)
        result = np.zeros_like(points)
        for c in coeffs[::-1]:
            result = self.mul(result, points) ^ int(c)
        return result

    def poly_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Product of two polynomials over GF(2^m)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.zeros(len(a) + len(b) - 1, dtype=np.int64)
        for i, ai in enumerate(a):
            if ai:
                out[i : i + len(b)] ^= self.mul(ai, b)
        return out

    # ------------------------------------------------------------------
    def cyclotomic_coset(self, i: int) -> List[int]:
        """The 2-cyclotomic coset of ``i`` modulo ``2^m - 1``."""
        coset = []
        x = i % self.order
        while x not in coset:
            coset.append(x)
            x = (2 * x) % self.order
        return sorted(coset)

    def minimal_polynomial(self, i: int) -> np.ndarray:
        """Minimal polynomial of ``alpha^i`` over GF(2).

        Returns the coefficient array (index = power of x); all
        coefficients are 0/1 by construction.
        """
        poly = np.array([1], dtype=np.int64)
        for j in self.cyclotomic_coset(i):
            # multiply by (x + alpha^j)
            root = int(self.pow_alpha(j))
            poly = self.poly_mul(poly, np.array([root, 1], dtype=np.int64))
        if not np.isin(poly, (0, 1)).all():
            raise AssertionError(
                "minimal polynomial has non-binary coefficients"
            )  # pragma: no cover - mathematical impossibility
        return poly
