"""Typed event/span recording with a JSONL sink.

A :class:`TraceRecorder` turns instrumentation points into one JSON
object per line, either written straight to a sink (file path, ``"-"``
for stdout, or any file-like object) or buffered in memory (``sink=None``
— the mode worker processes use so the parent can merge shard event
streams in deterministic order).

Every sink-backed trace starts with a ``header`` record carrying the
resolved package version and the numpy version, so a trace file is
self-describing for reproducibility.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import contextmanager
from typing import IO, List, Optional, Union


def package_versions() -> dict:
    """Resolved ``repro`` and ``numpy`` versions.

    Prefers the installed distribution metadata and falls back to the
    package's ``__version__`` for in-tree (``PYTHONPATH=src``) runs.
    """
    import numpy

    try:
        from importlib.metadata import version

        repro_version = version("repro")
    except Exception:
        from .. import __version__ as repro_version
    return {
        "repro_version": repro_version,
        "numpy_version": numpy.__version__,
    }


def version_string() -> str:
    """One-line version banner (used by ``repro --version``)."""
    versions = package_versions()
    return (
        f"repro {versions['repro_version']} "
        f"(numpy {versions['numpy_version']})"
    )


def _json_default(value):
    """Serialize numpy scalars/arrays that leak into event fields."""
    if hasattr(value, "tolist"):  # numpy scalars and arrays alike
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(
        f"not JSON serializable: {type(value).__name__}"
    )  # pragma: no cover - guards programming errors


class TraceRecorder:
    """Append-only recorder of typed events.

    Parameters
    ----------
    sink:
        ``None`` buffers events in :attr:`events` (workers use this);
        ``"-"`` streams to stdout; a path string/``os.PathLike`` opens
        (and owns) that file; any object with ``write`` is used as-is.
    meta:
        Extra fields merged into the header record.
    """

    def __init__(self, sink: Union[None, str, IO] = None, *,
                 meta: Optional[dict] = None) -> None:
        self.events: List[dict] = []
        self.n_written = 0
        self._file: Optional[IO] = None
        self._owns_file = False
        if sink is None:
            pass
        elif sink == "-":
            self._file = sys.stdout
        elif hasattr(sink, "write"):
            self._file = sink
        else:
            self._file = open(sink, "w")
            self._owns_file = True
        if self._file is not None:
            header = {
                "type": "header",
                "created_unix": round(time.time(), 3),
                **package_versions(),
            }
            if meta:
                header.update(meta)
            self.emit(header)

    # ------------------------------------------------------------------
    def emit(self, record: dict) -> None:
        """Record one pre-built event dict."""
        if self._file is not None:
            self._file.write(
                json.dumps(record, default=_json_default) + "\n"
            )
        else:
            self.events.append(record)
        self.n_written += 1

    def event(self, etype: str, **fields) -> None:
        """Record a typed event; ``fields`` become the JSON payload."""
        self.emit({"type": etype, **fields})

    @contextmanager
    def span(self, name: str, **fields):
        """Time a block and record it as one ``span`` event on exit."""
        start = time.perf_counter_ns()
        try:
            yield self
        finally:
            self.event(
                "span",
                name=name,
                dur_ns=time.perf_counter_ns() - start,
                **fields,
            )

    def drain(self) -> List[dict]:
        """Return and clear the in-memory event buffer."""
        events, self.events = self.events, []
        return events

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush the sink, if any."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Flush and close an owned file sink."""
        if self._file is not None:
            self._file.flush()
            if self._owns_file:
                self._file.close()
            self._file = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
