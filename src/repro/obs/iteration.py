"""Per-iteration decoder tracing: the ``IterationTrace`` hook protocol.

Every decoder in :mod:`repro.decode` accepts an ``iteration_trace``
object and, when one is given, calls it once per decoding iteration with
three convergence observables per frame:

* **unsatisfied** — number of parity checks still violated,
* **mean_abs_llr** — mean a-posteriori ``|LLR|`` (decision confidence),
* **sign_flips** — hard-decision bits that changed this iteration.

Iteration 0 records the channel-only starting state, so every decoded
frame appears in the trace even when it converges without iterating.
The hook is strictly read-only: decoder outputs are bit-identical with
tracing on or off (asserted in the test suite), and with
``iteration_trace=None`` the only cost is one predicate per iteration.
"""

from __future__ import annotations

from typing import List, Optional

try:  # Protocol is typing-only; keep a runtime fallback for old Pythons
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object


class IterationTrace(Protocol):
    """What decoders require of an ``iteration_trace`` argument."""

    def record(self, decoder: str, iteration: int, unsatisfied: int,
               mean_abs_llr: float, sign_flips: int,
               frame: int = 0) -> None:
        """Record one frame's iteration observables."""

    def record_batch(self, decoder: str, iteration: int, frames,
                     unsatisfied, mean_abs_llr, sign_flips) -> None:
        """Record one iteration for a batch (parallel arrays)."""


class IterationTraceRecorder:
    """Standard hook: turns iteration callbacks into trace events.

    Events are forwarded to a :class:`~repro.obs.trace.TraceRecorder`
    when one is given, otherwise buffered in :attr:`events` (the mode
    the parallel engine's workers use).  :attr:`frame_offset` is added
    to every frame index, letting batched callers (``fast_ber``, the
    shard loop) globalize per-batch indices.
    """

    def __init__(self, recorder=None, frame_offset: int = 0) -> None:
        self.recorder = recorder
        self.frame_offset = frame_offset
        self.events: List[dict] = []

    # ------------------------------------------------------------------
    def _emit(self, event: dict) -> None:
        if self.recorder is not None:
            self.recorder.emit(event)
        else:
            self.events.append(event)

    def record(self, decoder: str, iteration: int, unsatisfied: int,
               mean_abs_llr: float, sign_flips: int,
               frame: int = 0) -> None:
        """Record one frame's iteration observables."""
        self._emit({
            "type": "decode_iteration",
            "decoder": decoder,
            "frame": int(frame) + self.frame_offset,
            "iteration": int(iteration),
            "unsatisfied": int(unsatisfied),
            "mean_abs_llr": float(mean_abs_llr),
            "sign_flips": int(sign_flips),
        })

    def record_batch(self, decoder: str, iteration: int, frames,
                     unsatisfied, mean_abs_llr, sign_flips) -> None:
        """Record one iteration of a frame batch (parallel arrays)."""
        offset = self.frame_offset
        for i in range(len(frames)):
            self._emit({
                "type": "decode_iteration",
                "decoder": decoder,
                "frame": int(frames[i]) + offset,
                "iteration": int(iteration),
                "unsatisfied": int(unsatisfied[i]),
                "mean_abs_llr": float(mean_abs_llr[i]),
                "sign_flips": int(sign_flips[i]),
            })

    def drain(self) -> List[dict]:
        """Return and clear the buffered events."""
        events, self.events = self.events, []
        return events
