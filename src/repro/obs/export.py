"""Reading, summarizing and exporting JSONL telemetry.

The ``repro obs`` CLI family is a thin shell over these functions:
``read_events`` parses a JSONL trace back into dicts,
``summarize_events`` renders the run-level digest, ``events_to_csv``
flattens events for spreadsheet tooling, and ``format_snapshot``
pretty-prints a :meth:`~repro.obs.registry.MetricsRegistry.snapshot`.
"""

from __future__ import annotations

import csv
import json
from collections import Counter as _TallyCounter
from typing import Dict, IO, Iterable, List, Optional


class TraceReadError(Exception):
    """A trace file could not be read as JSONL telemetry.

    Raised with a human-oriented message (missing file, empty file,
    truncated/corrupt line with its line number) so the CLI can print
    it and exit instead of dumping a traceback at the operator.
    """


def read_events(path, *, allow_empty: bool = False) -> List[dict]:
    """Parse a JSONL trace file (skipping blank lines).

    Raises :class:`TraceReadError` — not a bare ``OSError`` or
    ``JSONDecodeError`` — when the file is missing, empty (unless
    ``allow_empty``), or contains a line that is not valid JSON (the
    usual signature of a truncated write); the message names the file
    and the offending line so ``repro obs`` commands can surface it
    directly.
    """
    events: List[dict] = []
    try:
        handle = open(path)
    except OSError as exc:
        raise TraceReadError(
            f"cannot read trace file {path!r}: {exc.strerror or exc}"
        ) from exc
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceReadError(
                    f"{path}: line {lineno} is not valid JSON "
                    f"({exc.msg}) — the file looks truncated or "
                    "corrupt; if a run is still writing it, wait for "
                    "the recorder to close/flush"
                ) from exc
            if not isinstance(event, dict):
                raise TraceReadError(
                    f"{path}: line {lineno} is JSON but not an object "
                    "— not a repro telemetry stream"
                )
            events.append(event)
    if not events and not allow_empty:
        raise TraceReadError(
            f"{path}: file contains no events — the run may have "
            "produced no telemetry or been cut off before the header"
        )
    return events


def iteration_rows(
    events: Iterable[dict], frame: Optional[int] = None
) -> List[dict]:
    """The ``decode_iteration`` events, optionally for one frame,
    ordered by (frame, iteration)."""
    rows = [
        e for e in events
        if e.get("type") == "decode_iteration"
        and (frame is None or e.get("frame") == frame)
    ]
    rows.sort(key=lambda e: (e.get("frame", 0), e.get("iteration", 0)))
    return rows


def summarize_events(events: Iterable[dict]) -> str:
    """Human-readable digest of a trace: header, event mix, convergence."""
    events = list(events)
    lines: List[str] = []
    headers = [e for e in events if e.get("type") == "header"]
    if headers:
        h = headers[0]
        lines.append(
            f"trace header     : repro {h.get('repro_version', '?')}, "
            f"numpy {h.get('numpy_version', '?')}"
        )
    tally = _TallyCounter(e.get("type", "?") for e in events)
    lines.append(f"events           : {len(events)} total")
    for etype, count in sorted(tally.items()):
        lines.append(f"  {etype:<22} : {count}")

    # Convergence digest over the iteration trace, if present.
    per_frame: Dict[int, dict] = {}
    for e in iteration_rows(events):
        fr = e["frame"]
        cur = per_frame.get(fr)
        if cur is None or e["iteration"] >= cur["iteration"]:
            per_frame[fr] = e
    if per_frame:
        finals = list(per_frame.values())
        n = len(finals)
        converged = sum(1 for e in finals if e["unsatisfied"] == 0)
        iters = [e["iteration"] for e in finals]
        lines.append(f"frames traced    : {n}")
        lines.append(
            f"  converged        : {converged}/{n} "
            f"(final unsatisfied == 0)"
        )
        lines.append(
            f"  iterations       : mean {sum(iters) / n:.1f}, "
            f"max {max(iters)}"
        )
        residual = [e["unsatisfied"] for e in finals if e["unsatisfied"]]
        if residual:
            lines.append(
                f"  residual checks  : mean "
                f"{sum(residual) / len(residual):.1f} over "
                f"{len(residual)} non-converged frame(s)"
            )

    # Serving digest over serve_batch / serve_drop events, if present.
    batches = [e for e in events if e.get("type") == "serve_batch"]
    drops = [e for e in events if e.get("type") == "serve_drop"]
    if batches:
        n = len(batches)
        occ = [e.get("occupancy", 0) for e in batches]
        budgets = [e.get("budget", 0) for e in batches]
        frames = sum(occ)
        decode_s = sum(e.get("decode_s", 0.0) for e in batches)
        lines.append(f"serve batches    : {n} ({frames} frames)")
        lines.append(
            f"  occupancy        : mean {sum(occ) / n:.2f}, "
            f"max {max(occ)}"
        )
        lines.append(
            f"  budget           : min {min(budgets)}, "
            f"max {max(budgets)}"
        )
        if decode_s > 0:
            lines.append(
                f"  decode service   : {frames / decode_s:.1f} frames/s "
                f"busy-rate across {decode_s:.3f}s"
            )
    if drops:
        reasons = _TallyCounter(
            f"{e.get('status', '?')}/{e.get('reason', '?')}" for e in drops
        )
        lines.append(f"serve drops      : {len(drops)}")
        for reason, count in sorted(reasons.items()):
            lines.append(f"  {reason:<22} : {count}")
    return "\n".join(lines)


def events_to_csv(events: Iterable[dict], stream: IO) -> int:
    """Write events as CSV (union of keys as columns); returns row count."""
    events = list(events)
    columns: List[str] = []
    for e in events:
        for key in e:
            if key not in columns:
                columns.append(key)
    writer = csv.DictWriter(stream, fieldnames=columns, restval="")
    writer.writeheader()
    for e in events:
        writer.writerow(
            {k: _csv_cell(v) for k, v in e.items()}
        )
    return len(events)


def _csv_cell(value):
    """Flatten nested values so they survive a CSV cell."""
    if isinstance(value, (dict, list)):
        return json.dumps(value)
    return value


def format_snapshot(snapshot: dict) -> str:
    """Pretty-print a registry snapshot for terminal output."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<34} {value}")
    gauges = {
        n: g for n, g in snapshot.get("gauges", {}).items() if g["is_set"]
    }
    if gauges:
        lines.append("gauges:")
        for name, g in gauges.items():
            lines.append(f"  {name:<34} {g['value']}")
    timers = snapshot.get("timers", {})
    if timers:
        lines.append("timers:")
        for name, t in timers.items():
            total_ms = t["total_ns"] / 1e6
            mean_ms = total_ms / t["count"] if t["count"] else float("nan")
            lines.append(
                f"  {name:<34} n={t['count']} total={total_ms:.3f} ms "
                f"mean={mean_ms:.3f} ms"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, h in histograms.items():
            mean = h["sum"] / h["count"] if h["count"] else float("nan")
            lines.append(
                f"  {name:<34} n={h['count']} mean={mean:.3f} "
                f"buckets={h['counts']}"
            )
    return "\n".join(lines) if lines else "(empty registry)"
