"""Capacity planning from serve telemetry: fitted knees and SLO rates.

The paper's Eq. 7/8 predicts what the silicon sustains; the serve layer
measures what the software path sustains.  Between the two sits
queueing: as the offered rate approaches the service capacity, latency
explodes long before throughput saturates.  This module closes the
loop — it fits the measured ``sweep_offered_rates`` curves (one
``(offered_fps, served_fps, p99_ms)`` point per rate) against

* a **capacity term** ``mu`` (frames/s): the service rate, taken from
  the measured saturation throughput (what the service actually
  sustained when offered more than it could serve), and
* an **M/G/1-style queueing term**: Pollaczek–Khinchine says the mean
  wait grows as ``rho / (1 - rho)`` with utilization
  ``rho = offered / mu``; we fit the measured p99 latencies to
  ``p99(rho) = base + K * rho / (1 - rho)`` by least squares, where
  ``base`` absorbs the zero-load service time (batch linger + decode)
  and ``K`` the service-time variability that P-K folds into
  ``E[S^2]``.

Inverting the fit answers the capacity-planning question: **the knee**
— the maximum sustainable offered rate at ``p99 <= SLO`` —

    rho* = (slo - base) / (slo - base + K),    knee = mu * rho*

The Eq. 7/8 model at the measured mean iteration count is carried
alongside, so every report states what fraction of the modeled silicon
the software capacity represents (the MPI-LDPC sharding precedent:
per-node capacity numbers are what fan-out decisions consume).

Inputs come either from live :func:`~repro.serve.loadgen.sweep_offered_rates`
results (:func:`points_from_loadgen`) or from a committed
``BENCH_serve_latency.json`` (:func:`capacity_from_bench`), so the CI
gate can replay the committed trajectory without re-measuring.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

#: Points with ``offered > SATURATION_RHO * mu`` are excluded from the
#: latency fit — past saturation the queue grows for the whole run, so
#: the measured p99 reflects run duration, not steady state.
SATURATION_RHO = 1.05

#: Utilization cap when mapping near/over-saturated points into the
#: ``rho / (1 - rho)`` regressor (keeps the term finite).
RHO_CAP = 0.98


@dataclass(frozen=True)
class CapacityPoint:
    """One measured operating point of the service."""

    offered_fps: float
    served_fps: float
    p99_ms: float
    p50_ms: float = float("nan")
    mean_iterations: float = float("nan")

    def to_dict(self) -> dict:
        return {
            "offered_fps": self.offered_fps,
            "served_fps": self.served_fps,
            "p99_ms": self.p99_ms,
            "p50_ms": self.p50_ms,
            "mean_iterations": self.mean_iterations,
        }


@dataclass(frozen=True)
class CapacityReport:
    """Fitted capacity model plus the planning answer.

    ``knee_fps`` is the planner's headline: the largest offered rate
    whose predicted p99 stays within ``slo_p99_ms``.  ``mu_fps`` is the
    fitted service capacity; when no sweep point actually saturated the
    service (``mu_is_lower_bound``), it is only a lower bound and the
    knee is conservative.
    """

    mu_fps: float
    mu_is_lower_bound: bool
    base_ms: float
    queue_coeff_ms: float
    slo_p99_ms: float
    knee_fps: float
    knee_rho: float
    #: Measured points with the model's predicted p99 next to each.
    points: List[dict] = field(default_factory=list)
    #: Eq. 7/8 hardware model at the measured mean iterations (NaN
    #: without a code to model).
    model_frames_per_s: float = float("nan")
    hardware_fraction: float = float("nan")
    mean_iterations: float = float("nan")

    def predict_p99_ms(self, offered_fps: float) -> float:
        """Model p99 at an offered rate (inf at/val beyond capacity)."""
        if offered_fps >= self.mu_fps:
            return float("inf")
        rho = offered_fps / self.mu_fps
        return self.base_ms + self.queue_coeff_ms * rho / (1.0 - rho)

    def to_dict(self) -> dict:
        def clean(v):
            if isinstance(v, float) and (
                math.isnan(v) or math.isinf(v)
            ):
                return None
            return v

        out = {
            "mu_fps": self.mu_fps,
            "mu_is_lower_bound": self.mu_is_lower_bound,
            "base_ms": self.base_ms,
            "queue_coeff_ms": self.queue_coeff_ms,
            "slo_p99_ms": self.slo_p99_ms,
            "knee_fps": self.knee_fps,
            "knee_rho": self.knee_rho,
            "model_frames_per_s": self.model_frames_per_s,
            "hardware_fraction": self.hardware_fraction,
            "mean_iterations": self.mean_iterations,
            "points": [
                {k: clean(v) for k, v in p.items()} for p in self.points
            ],
        }
        return {
            k: clean(v) if not isinstance(v, list) else v
            for k, v in out.items()
        }

    def format(self) -> str:
        """Human-readable capacity report for the CLI."""
        bound = " (lower bound: no sweep point saturated)" \
            if self.mu_is_lower_bound else ""
        lines = [
            "capacity report",
            f"  fitted capacity mu      : {self.mu_fps:.1f} frames/s"
            f"{bound}",
            (
                f"  latency fit             : p99 ~ {self.base_ms:.1f} ms"
                f" + {self.queue_coeff_ms:.1f} ms * rho/(1-rho)"
            ),
            (
                f"  knee @ p99 <= {self.slo_p99_ms:.0f} ms   : "
                f"{self.knee_fps:.1f} frames/s "
                f"(utilization {self.knee_rho * 100:.1f}%)"
            ),
        ]
        if self.model_frames_per_s == self.model_frames_per_s:
            lines.append(
                f"  eq7/8 hw model          : "
                f"{self.model_frames_per_s:.1f} frames/s at "
                f"{self.mean_iterations:.1f} iterations -> software "
                f"capacity is {self.hardware_fraction * 100:.4f}% of "
                "modeled silicon"
            )
        lines.append(
            f"  {'offered/s':>10} {'served/s':>9} {'p99 ms':>9} "
            f"{'fit p99':>9} {'rho':>6}"
        )
        for p in self.points:
            fit = p.get("predicted_p99_ms")
            fit_str = (
                "      sat" if fit is None or fit != fit or math.isinf(fit)
                else f"{fit:9.1f}"
            )
            lines.append(
                f"  {p['offered_fps']:>10.1f} {p['served_fps']:>9.1f} "
                f"{p['p99_ms']:>9.1f} {fit_str} "
                f"{p['offered_fps'] / self.mu_fps:>6.2f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def points_from_loadgen(results: Sequence) -> List[CapacityPoint]:
    """Capacity points from ``sweep_offered_rates`` results."""
    return [
        CapacityPoint(
            offered_fps=r.offered_fps,
            served_fps=r.report.frames_per_s,
            p99_ms=r.report.latency_p99_ms,
            p50_ms=r.report.latency_p50_ms,
            mean_iterations=r.report.mean_iterations,
        )
        for r in results
    ]


def points_from_bench(payload: dict) -> List[CapacityPoint]:
    """Capacity points from a ``BENCH_serve_latency.json`` payload."""
    sweep = payload.get("sweep")
    if not sweep:
        raise ValueError(
            "payload has no 'sweep' entries — expected the "
            "BENCH_serve_latency.json layout"
        )
    return [
        CapacityPoint(
            offered_fps=row["offered_fps"],
            served_fps=row["served_fps"],
            p99_ms=row["latency_p99_ms"],
            p50_ms=row.get("latency_p50_ms", float("nan")),
            mean_iterations=row.get("mean_iterations", float("nan")),
        )
        for row in sweep
    ]


def _linear_fit(xs: List[float], ys: List[float]) -> tuple:
    """Least-squares ``y = base + k * x`` (k = 0 for a single point)."""
    n = len(xs)
    if n == 1:
        return ys[0], 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return mean_y, 0.0
    sxy = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    )
    k = sxy / sxx
    return mean_y - k * mean_x, k


def fit_capacity(
    points: Sequence[CapacityPoint],
    *,
    slo_p99_ms: float = 500.0,
    code=None,
    model=None,
) -> CapacityReport:
    """Fit the capacity + queueing model and locate the SLO knee.

    ``code`` (or an explicit ``model``) enables the Eq. 7/8 hardware
    comparison, evaluated at the sweep's measured mean iteration count.
    """
    points = [p for p in points if p.offered_fps > 0]
    if not points:
        raise ValueError("need at least one measured capacity point")
    if slo_p99_ms <= 0:
        raise ValueError("slo_p99_ms must be positive")

    # Capacity: the most the service was measured to sustain.
    mu = max(p.served_fps for p in points)
    if mu <= 0 or mu != mu:
        raise ValueError("no positive served_fps in the sweep points")
    mu_is_lower_bound = not any(
        p.offered_fps > SATURATION_RHO * mu for p in points
    )

    # Latency fit on the non-overloaded points (see SATURATION_RHO).
    fit_points = [
        p for p in points
        if p.offered_fps <= SATURATION_RHO * mu and p.p99_ms == p.p99_ms
    ]
    if not fit_points:  # every point overloaded: fall back to all
        fit_points = [p for p in points if p.p99_ms == p.p99_ms]
    xs = []
    ys = []
    for p in fit_points:
        rho = min(p.offered_fps / mu, RHO_CAP)
        xs.append(rho / (1.0 - rho))
        ys.append(p.p99_ms)
    if xs:
        base_ms, queue_coeff_ms = _linear_fit(xs, ys)
        base_ms = max(0.0, base_ms)
        queue_coeff_ms = max(0.0, queue_coeff_ms)
    else:
        base_ms, queue_coeff_ms = 0.0, 0.0

    # Invert for the knee: rho* with predicted p99 == the SLO.
    headroom = slo_p99_ms - base_ms
    if headroom <= 0:
        knee_rho = 0.0
    elif queue_coeff_ms <= 0:
        knee_rho = RHO_CAP  # flat fit: latency never grows in-model
    else:
        knee_rho = min(RHO_CAP, headroom / (headroom + queue_coeff_ms))
    knee_fps = mu * knee_rho

    mean_iters = [
        p.mean_iterations for p in points
        if p.mean_iterations == p.mean_iterations
    ]
    mean_iterations = (
        sum(mean_iters) / len(mean_iters) if mean_iters else float("nan")
    )
    model_fps = float("nan")
    hardware_fraction = float("nan")
    if model is None and code is not None:
        from ..hw.throughput import ThroughputModel

        model = ThroughputModel(code.profile)
    if model is not None:
        model_iters = (
            max(1, int(round(mean_iterations)))
            if mean_iterations == mean_iterations else 30
        )
        model_fps = model.clock_hz / model.cycles_per_block(model_iters)
        hardware_fraction = mu / model_fps

    report = CapacityReport(
        mu_fps=mu,
        mu_is_lower_bound=mu_is_lower_bound,
        base_ms=base_ms,
        queue_coeff_ms=queue_coeff_ms,
        slo_p99_ms=slo_p99_ms,
        knee_fps=knee_fps,
        knee_rho=knee_rho,
        model_frames_per_s=model_fps,
        hardware_fraction=hardware_fraction,
        mean_iterations=mean_iterations,
    )
    rows = []
    for p in points:
        row = p.to_dict()
        row["predicted_p99_ms"] = report.predict_p99_ms(p.offered_fps)
        rows.append(row)
    object.__setattr__(report, "points", rows)
    return report


def capacity_from_bench(
    source,
    *,
    slo_p99_ms: float = 500.0,
    code=None,
    model=None,
) -> CapacityReport:
    """Capacity report from a ``BENCH_serve_latency.json`` file or dict.

    This is the CI replay path: the committed benchmark trajectory is
    the measured sweep, so the planner's knee can be regression-gated
    without re-running the load generator.
    """
    if isinstance(source, dict):
        payload = source
    else:
        with open(source) as handle:
            payload = json.load(handle)
    return fit_capacity(
        points_from_bench(payload),
        slo_p99_ms=slo_p99_ms,
        code=code,
        model=model,
    )
