"""Live publication of registry snapshots while a service runs.

Two exporters over one idea — the registry snapshot is the unit of
telemetry, and everything downstream is derived from it:

* :class:`SnapshotPublisher` periodically serializes the registry to a
  JSONL sink: one ``metrics_snapshot`` record per tick carrying both
  the **delta since the previous tick** (what streaming consumers want
  — rates fall straight out) and the cumulative totals.  When given a
  ``prom_path`` it also rewrites a Prometheus text file each tick, so a
  node-exporter-style textfile collector can scrape a running loadgen.
* :class:`MetricsHttpServer` is a stdlib ``http.server`` thread
  answering ``GET /metrics`` with the live registry rendered as
  Prometheus text (and ``GET /metrics.json`` with the raw snapshot) —
  enough for `prometheus` to scrape a long-running ``repro serve``
  without any dependency.

Both take their timing from the caller's clock: the publisher's
``publish(now)`` is a cheap no-op until ``interval_s`` has elapsed, so
the serve pump can call it every loop iteration.  Cross-process merge
is preserved for free — publish an aggregate registry after folding
worker snapshots in and the delta records reflect the merged totals.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Optional, Union

from .prom import render_prometheus
from .registry import MetricsRegistry
from .trace import package_versions
from . import trace as _trace_mod


def snapshot_delta(old: Optional[dict], new: dict) -> dict:
    """Difference of two registry snapshots (``new`` minus ``old``).

    Counters and histogram bucket counts/sums subtract; timers subtract
    ``count``/``total_ns`` and report the window's ``last_ns``; gauges
    report the new value (a level, not an accumulation).  Metrics
    absent from ``old`` are treated as zero, so the first delta equals
    the first snapshot.
    """
    if old is None:
        old = {}
    delta: dict = {"counters": {}, "gauges": {}, "timers": {},
                   "histograms": {}}
    old_counters = old.get("counters", {})
    for name, value in new.get("counters", {}).items():
        delta["counters"][name] = value - old_counters.get(name, 0)
    for name, gauge in new.get("gauges", {}).items():
        if gauge.get("is_set"):
            delta["gauges"][name] = gauge["value"]
    old_timers = old.get("timers", {})
    for name, timer in new.get("timers", {}).items():
        prev = old_timers.get(name, {"count": 0, "total_ns": 0})
        delta["timers"][name] = {
            "count": timer["count"] - prev["count"],
            "total_ns": timer["total_ns"] - prev["total_ns"],
            "last_ns": timer["last_ns"],
        }
    old_hists = old.get("histograms", {})
    for name, hist in new.get("histograms", {}).items():
        prev = old_hists.get(name)
        if prev is None or prev.get("bounds") != hist["bounds"]:
            prev = {"counts": [0] * len(hist["counts"]), "count": 0,
                    "sum": 0.0}
        delta["histograms"][name] = {
            "bounds": hist["bounds"],
            "counts": [
                c - p for c, p in zip(hist["counts"], prev["counts"])
            ],
            "count": hist["count"] - prev["count"],
            "sum": hist["sum"] - prev["sum"],
        }
    return delta


class SnapshotPublisher:
    """Periodic registry-snapshot stream with delta records.

    Parameters
    ----------
    registry:
        The registry to snapshot each tick; ``None`` builds the
        publisher detached (the load generator and sweep attach their
        per-run registries via :meth:`attach` before publishing).
    sink:
        JSONL destination: a path string/``os.PathLike`` (opened and
        owned), any object with ``write``, or ``None`` to buffer the
        records in :attr:`records` (tests and in-process consumers).
    prom_path:
        Optional path rewritten with the cumulative snapshot rendered
        as Prometheus text on every tick (textfile-collector style).
    interval_s:
        Minimum seconds between published ticks; ``publish`` calls
        inside the window are free.
    clock:
        Monotonic-seconds callable (tests inject a manual clock).
    namespace / labels:
        Forwarded to :func:`~repro.obs.prom.render_prometheus`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sink: Union[None, str, IO] = None,
        *,
        prom_path: Optional[str] = None,
        interval_s: float = 0.5,
        clock=time.monotonic,
        namespace: str = "repro",
        labels: Optional[dict] = None,
        meta: Optional[dict] = None,
    ) -> None:
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self.registry = registry
        self.prom_path = prom_path
        self.interval_s = interval_s
        self.clock = clock
        self.namespace = namespace
        self.labels = labels
        self.records: list = []
        self.n_published = 0
        self._last_publish_s: Optional[float] = None
        self._last_snapshot: Optional[dict] = None
        self._file: Optional[IO] = None
        self._owns_file = False
        if sink is None:
            pass
        elif hasattr(sink, "write"):
            self._file = sink
        else:
            self._file = open(sink, "w")
            self._owns_file = True
        if self._file is not None:
            header = {
                "type": "header",
                "stream": "metrics_snapshots",
                "interval_s": interval_s,
                "created_unix": round(time.time(), 3),
                **package_versions(),
            }
            if meta:
                header.update(meta)
            self._emit(header)

    # ------------------------------------------------------------------
    def _emit(self, record: dict) -> None:
        line = json.dumps(record, default=_trace_mod._json_default)
        if self._file is not None:
            self._file.write(line + "\n")
        else:
            self.records.append(record)

    def attach(self, registry: MetricsRegistry) -> None:
        """Point the publisher at a new registry and reset the delta
        baseline (the next tick's delta is the new registry's totals).

        The load generator uses this between sweep points: each run
        gets a fresh registry for isolated reporting, while one
        publisher streams the whole sweep.
        """
        self.registry = registry
        self._last_snapshot = None

    def snapshot(self) -> dict:
        """Snapshot whatever registry is currently attached.

        Mirrors the :class:`MetricsRegistry` method so a publisher can
        stand in for a registry anywhere only snapshots are read —
        e.g. handing one to :class:`MetricsHttpServer` keeps scrapes
        pointed at the live registry across :meth:`attach` swaps.
        Detached (no registry yet) it reports an empty registry.
        """
        if self.registry is None:
            return MetricsRegistry().snapshot()
        return self.registry.snapshot()

    def due(self, now: Optional[float] = None) -> bool:
        """True when the next tick's interval has elapsed."""
        now = self.clock() if now is None else now
        return (
            self._last_publish_s is None
            or now - self._last_publish_s >= self.interval_s
        )

    def publish(
        self, now: Optional[float] = None, *, force: bool = False
    ) -> bool:
        """Publish one tick if due (or ``force``); returns whether it
        published."""
        now = self.clock() if now is None else now
        if self.registry is None:
            return False  # detached: nothing to snapshot yet
        if not force and not self.due(now):
            return False
        snapshot = self.registry.snapshot()
        self._emit({
            "type": "metrics_snapshot",
            "seq": self.n_published,
            "t_s": round(now, 6),
            "delta": snapshot_delta(self._last_snapshot, snapshot),
            "cumulative": snapshot,
        })
        if self.prom_path is not None:
            text = render_prometheus(
                snapshot, namespace=self.namespace, labels=self.labels
            )
            with open(self.prom_path, "w") as handle:
                handle.write(text)
        self._last_snapshot = snapshot
        self._last_publish_s = now
        self.n_published += 1
        if self._file is not None:
            self._file.flush()
        return True

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush the JSONL sink, if any."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Publish a final tick, then flush/close an owned sink."""
        self.publish(force=True)
        if self._file is not None:
            self._file.flush()
            if self._owns_file:
                self._file.close()
            self._file = None

    def __enter__(self) -> "SnapshotPublisher":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class MetricsHttpServer:
    """Minimal stdlib ``/metrics`` endpoint over a live registry.

    Serves Prometheus text at ``/metrics`` and the raw JSON snapshot at
    ``/metrics.json`` from a daemon thread.  ``port=0`` picks a free
    port (read it back from :attr:`port`).  ``registry`` is anything
    with a ``snapshot()`` — a :class:`MetricsRegistry`, or a
    :class:`SnapshotPublisher` when scrapes should follow its
    :meth:`~SnapshotPublisher.attach` swaps.  Intended for the
    long-lived serve/loadgen processes; scraping only ever reads
    snapshots, never live metric objects.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "repro",
        labels: Optional[dict] = None,
    ) -> None:
        from http.server import BaseHTTPRequestHandler, HTTPServer

        publisher = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                if self.path.split("?")[0] == "/metrics":
                    body = render_prometheus(
                        publisher.registry.snapshot(),
                        namespace=publisher.namespace,
                        labels=publisher.labels,
                    ).encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path.split("?")[0] == "/metrics.json":
                    body = (
                        json.dumps(
                            publisher.registry.snapshot(),
                            default=_trace_mod._json_default,
                            sort_keys=True,
                        )
                        + "\n"
                    ).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404, "try /metrics or /metrics.json")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes must not spam the serving console

        self.registry = registry
        self.namespace = namespace
        self.labels = labels
        self._server = HTTPServer((host, port), _Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        """The scrape URL of the ``/metrics`` endpoint."""
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and join the scrape thread."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsHttpServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
