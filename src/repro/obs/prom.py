"""Prometheus text-format rendering of a registry snapshot.

``render_prometheus`` turns a
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` dict into the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so a
running service (or a saved ``--metrics-out`` file) can be scraped by
any off-the-shelf metrics stack.  Zero dependencies, pure string
building — the renderer never touches live metric objects, only
snapshots, so it is safe to call from a scrape thread while the serving
pump mutates the registry (snapshotting is the only synchronization
point).

Mapping (dots in metric names become underscores):

========== =====================================================
registry   Prometheus
========== =====================================================
counter    ``<name>_total`` (``counter``)
gauge      ``<name>`` (``gauge``; only numeric, *set* gauges)
timer      ``<name>_seconds`` summary-style ``_count``/``_sum``,
           plus ``_seconds_min``/``_seconds_max`` gauges
histogram  cumulative ``<name>_bucket{le="..."}`` series with a
           ``+Inf`` bucket, ``_count`` and ``_sum`` (``histogram``)
========== =====================================================
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_VALUE_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def sanitize_metric_name(name: str) -> str:
    """Make a registry metric name legal for Prometheus."""
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label_value(value: str) -> str:
    for raw, escaped in _LABEL_VALUE_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def _render_labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    snapshot: dict,
    *,
    namespace: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a registry snapshot as Prometheus exposition text.

    ``namespace`` prefixes every metric (empty string for none);
    ``labels`` are attached to every sample (e.g. ``{"worker": "3"}``
    for the multi-worker fabric).  Non-numeric gauges are skipped —
    Prometheus samples are floats.
    """
    prefix = f"{sanitize_metric_name(namespace)}_" if namespace else ""
    label_str = _render_labels(labels)
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        metric = f"{prefix}{sanitize_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{label_str} {_format_value(value)}")

    for name, gauge in snapshot.get("gauges", {}).items():
        if not gauge.get("is_set"):
            continue
        value = gauge.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        metric = f"{prefix}{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_str} {_format_value(value)}")

    for name, timer in snapshot.get("timers", {}).items():
        metric = f"{prefix}{sanitize_metric_name(name)}_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count{label_str} {timer['count']}")
        lines.append(
            f"{metric}_sum{label_str} "
            f"{_format_value(timer['total_ns'] / 1e9)}"
        )
        for bound_key in ("min", "max"):
            bound_ns = timer.get(f"{bound_key}_ns")
            if bound_ns is None:
                continue
            lines.append(f"# TYPE {metric}_{bound_key} gauge")
            lines.append(
                f"{metric}_{bound_key}{label_str} "
                f"{_format_value(bound_ns / 1e9)}"
            )

    for name, hist in snapshot.get("histograms", {}).items():
        metric = f"{prefix}{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            bucket_labels = dict(labels or {})
            bucket_labels["le"] = _format_value(float(bound))
            lines.append(
                f"{metric}_bucket{_render_labels(bucket_labels)} "
                f"{cumulative}"
            )
        inf_labels = dict(labels or {})
        inf_labels["le"] = "+Inf"
        lines.append(
            f"{metric}_bucket{_render_labels(inf_labels)} {hist['count']}"
        )
        lines.append(f"{metric}_count{label_str} {hist['count']}")
        lines.append(
            f"{metric}_sum{label_str} {_format_value(hist['sum'])}"
        )

    return "\n".join(lines) + ("\n" if lines else "")
