"""Process-wide metrics registry: counters, gauges, timers, histograms.

Zero-dependency instrumentation designed to stay enabled in production
paths:

* metric acquisition is a dict lookup; recording is attribute
  arithmetic (no locks, no allocation on the hot path),
* :class:`Timer` is a context manager over ``time.perf_counter_ns``
  with a start *stack*, so the same timer object nests and re-enters
  correctly,
* a disabled registry hands out shared no-op metric singletons, making
  the cost of instrumentation a single ``if`` per acquisition,
* :meth:`MetricsRegistry.snapshot` returns a plain (picklable,
  JSON-able) dict and :meth:`MetricsRegistry.merge` folds another
  registry or snapshot back in — this is how the parallel Monte-Carlo
  engine aggregates per-shard worker registries into one view.

Merge semantics (associative, so shards can be folded in any grouping):
counters and histogram buckets sum, timers pool their count/total and
extremes, gauges take the most recently merged *set* value.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple, Union

#: Default histogram bucket upper bounds (last bucket is the overflow).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
)


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n


class Gauge:
    """Last-written value (e.g. a configuration or a level)."""

    __slots__ = ("name", "value", "is_set")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = None
        self.is_set = False

    def set(self, value) -> None:
        """Record the current value."""
        self.value = value
        self.is_set = True


class Timer:
    """Accumulating wall-clock timer (``perf_counter_ns`` based).

    Use as a context manager::

        with registry.timer("sim.shard.wall"):
            decode(...)

    ``__enter__`` pushes onto a start stack, so one timer object can be
    nested or re-entered; every exit records its own span.
    """

    __slots__ = ("name", "count", "total_ns", "min_ns", "max_ns",
                 "last_ns", "_starts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None
        self.last_ns = 0
        self._starts = []

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter_ns())
        return self

    def __exit__(self, *exc) -> bool:
        self.record_ns(time.perf_counter_ns() - self._starts.pop())
        return False

    def record_ns(self, dur_ns: int) -> None:
        """Record one span of ``dur_ns`` nanoseconds."""
        self.count += 1
        self.total_ns += dur_ns
        self.last_ns = dur_ns
        if self.min_ns is None or dur_ns < self.min_ns:
            self.min_ns = dur_ns
        if self.max_ns is None or dur_ns > self.max_ns:
            self.max_ns = dur_ns

    @property
    def total_s(self) -> float:
        """Accumulated seconds across all recorded spans."""
        return self.total_ns / 1e9

    @property
    def last_s(self) -> float:
        """Duration of the most recent span, in seconds."""
        return self.last_ns / 1e9

    @property
    def mean_ns(self) -> float:
        """Mean span duration (NaN before the first record)."""
        if self.count == 0:
            return float("nan")
        return self.total_ns / self.count


class Histogram:
    """Fixed-bucket histogram.

    ``bounds`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last bound, so ``counts`` has
    ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(sorted(float(b) for b in bounds))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        if self.count == 0:
            return float("nan")
        return self.sum / self.count

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0–100) from the buckets.

        Linear interpolation inside the bucket containing the target
        rank; the overflow bucket reports the last bound.  NaN when
        empty.  Accuracy is bounded by the bucket layout — pick bounds
        to bracket the latencies you care about.
        """
        if self.count == 0:
            return float("nan")
        target = q / 100.0 * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= target:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                return lo + (hi - lo) * (target - seen) / c
            seen += c
        return self.bounds[-1]


class _NullMetric:
    """Shared no-op standing in for every metric type when disabled."""

    __slots__ = ()
    value = 0
    count = 0
    total_ns = 0
    last_ns = 0
    total_s = 0.0
    last_s = 0.0
    sum = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return float("nan")

    def record_ns(self, dur_ns: int) -> None:
        pass

    def __enter__(self) -> "_NullMetric":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The shared no-op metric handed out by disabled registries.
NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named metrics with get-or-create acquisition and dict snapshots.

    Not thread-safe by design (the decoders are single-threaded and the
    Monte-Carlo engine is process-parallel); cross-process aggregation
    goes through :meth:`snapshot` / :meth:`merge`.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- acquisition ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return NULL_METRIC
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name`` (no-op when disabled)."""
        if not self.enabled:
            return NULL_METRIC
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def timer(self, name: str) -> Timer:
        """Get or create the timer ``name`` (no-op when disabled)."""
        if not self.enabled:
            return NULL_METRIC
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = Timer(name)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram ``name`` (no-op when disabled).

        A second acquisition with different ``bounds`` is an error —
        bucket layouts must agree for merges to be well defined.
        """
        if not self.enabled:
            return NULL_METRIC
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        elif metric.bounds != tuple(sorted(float(b) for b in bounds)):
            raise ValueError(
                f"histogram {name!r} already exists with different buckets"
            )
        return metric

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        """Hand out live metrics from now on."""
        self.enabled = True

    def disable(self) -> None:
        """Hand out no-op metrics from now on (existing objects still
        record; disabling gates *acquisition*, the cheap common case)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._histograms.clear()

    # -- aggregation ---------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view of every metric (picklable, JSON-able)."""
        return {
            "counters": {
                n: c.value for n, c in sorted(self._counters.items())
            },
            "gauges": {
                n: {"value": g.value, "is_set": g.is_set}
                for n, g in sorted(self._gauges.items())
            },
            "timers": {
                n: {
                    "count": t.count,
                    "total_ns": t.total_ns,
                    "min_ns": t.min_ns,
                    "max_ns": t.max_ns,
                    "last_ns": t.last_ns,
                }
                for n, t in sorted(self._timers.items())
            },
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge(
        self, other: Union["MetricsRegistry", dict]
    ) -> "MetricsRegistry":
        """Fold another registry (or a snapshot dict) into this one.

        Accepts both full :meth:`snapshot` dicts and the delta shape of
        :func:`~repro.obs.publish.snapshot_delta` (plain gauge values,
        timers without extremes) — the decode fabric merges per-chunk
        worker deltas straight into its accumulators.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, g in snap.get("gauges", {}).items():
            if isinstance(g, dict):
                if g["is_set"]:
                    self.gauge(name).set(g["value"])
            else:
                self.gauge(name).set(g)
        for name, t in snap.get("timers", {}).items():
            if t["count"] == 0:
                self.timer(name)  # materialize the name
                continue
            mine = self.timer(name)
            if isinstance(mine, _NullMetric):
                continue
            mine.count += t["count"]
            mine.total_ns += t["total_ns"]
            mine.last_ns = t["last_ns"]
            t_min = t.get("min_ns")
            t_max = t.get("max_ns")
            if t_min is not None and (
                mine.min_ns is None or t_min < mine.min_ns
            ):
                mine.min_ns = t_min
            if t_max is not None and (
                mine.max_ns is None or t_max > mine.max_ns
            ):
                mine.max_ns = t_max
        for name, h in snap.get("histograms", {}).items():
            mine = self.histogram(name, h["bounds"])
            if isinstance(mine, _NullMetric):
                continue
            if list(mine.bounds) != [float(b) for b in h["bounds"]]:
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket mismatch"
                )
            for i, c in enumerate(h["counts"]):
                mine.counts[i] += c
            mine.count += h["count"]
            mine.sum += h["sum"]
        return self


def merge_snapshots(parts, *, labels: bool = True) -> dict:
    """Fold several snapshots into one, keeping per-shard sub-views.

    ``parts`` is a mapping of shard label to snapshot dict (e.g.
    ``{"fabric": ..., "w0": ..., "w1": ...}``) or a plain sequence of
    snapshots.  The returned dict is a normal merged snapshot — counters
    and histogram buckets sum, so everything that consumes snapshots
    (:class:`~repro.serve.report.ServiceReport`, ``repro obs capacity``,
    the Prometheus renderer) accepts it unchanged — plus, when ``parts``
    is labeled and ``labels`` is true, a ``"workers"`` key mapping each
    label to its own untouched sub-snapshot, so per-worker breakdowns
    survive the merge.  The top-level merge is order-invariant for
    counters, histograms, and timer count/total (the fields reports are
    built from).
    """
    if hasattr(parts, "items"):
        labeled = dict(parts)
        sequence = list(labeled.values())
    else:
        labeled = None
        sequence = list(parts)
    merged = MetricsRegistry()
    for part in sequence:
        merged.merge(part)
    snapshot = merged.snapshot()
    if labeled is not None and labels:
        snapshot["workers"] = labeled
    return snapshot


# ----------------------------------------------------------------------
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (enabled at import)."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous
