"""Per-stage pipeline profiles derived from registry snapshots.

The serve engine times every stage of its hot path under
``serve.stage.*`` timers (``enqueue`` → ``batch_form`` → ``llr_prep``
→ ``dispatch`` → ``decode`` → ``collect`` → ``complete``, with ``pump``
as the enclosing span — see ``docs/observability.md``), and the
instrumented array backends time their kernel primitives under
``decode.kernel.*``.  This module turns those timers back into the
analysis artifacts:

* :func:`stage_breakdown` — per-stage busy totals plus each stage's
  share of the enclosing pump wall time.  On a sequential pump the
  stages are disjoint slices of the pump, so a synthetic ``other``
  entry carries the residual and the shares sum to 100%.  A *pipelined*
  pump (``pipeline_depth > 1``) overlaps stages — the decode stage's
  busy time runs concurrently with prep/completion of later batches —
  so summed busy time legitimately exceeds the pump wall; the
  breakdown then drops the (meaningless) residual and reports the
  overlap factor ``busy / wall`` on the ``pump`` row instead,
* :func:`overlap_potential` — the pipelining headroom a breakdown
  implies (serial busy sum vs the bottleneck stage),
* :func:`kernel_breakdown` — per-kernel totals as a share of the
  decode stage,
* :func:`format_profile` — the ASCII time/flame rendering behind
  ``repro obs profile``.

The QC-LDPCC pipeline paper (PAPERS.md) finds its 2 Gb/s by locating
the slowest pipeline stage; this is the software-serve analogue.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Timer-name prefix of the serve pipeline stage spans.
STAGE_PREFIX = "serve.stage."
#: Timer-name prefix of the instrumented backend kernel spans.
KERNEL_PREFIX = "decode.kernel."
#: The enclosing pump span every in-pump stage is a fraction of.
PUMP_STAGE = "pump"
#: Stages recorded outside the pump (shares are vs pump but unbounded).
NON_PUMP_STAGES = ("enqueue",)
#: Canonical hot-path order for display.
STAGE_ORDER = (
    "enqueue", "expire", "batch_form", "llr_prep", "dispatch",
    "decode", "collect", "complete",
)
#: Stages a pipelined pump can overlap with the pooled decode (the
#: inputs to :func:`overlap_potential`'s serial-time estimate).
OVERLAPPABLE_STAGES = (
    "batch_form", "llr_prep", "dispatch", "decode", "collect",
    "complete",
)


def _prefixed_timers(snapshot: dict, prefix: str) -> Dict[str, dict]:
    return {
        name[len(prefix):]: timer
        for name, timer in snapshot.get("timers", {}).items()
        if name.startswith(prefix)
    }


def _stage_sort_key(name: str):
    try:
        return (0, STAGE_ORDER.index(name))
    except ValueError:
        return (1, name)


def stage_breakdown(snapshot: dict) -> Dict[str, dict]:
    """Per-stage ``{total_s, count, mean_us, of_pump}`` from a snapshot.

    Each row's ``total_s`` is the stage's *busy* time (sum of its
    spans); ``of_pump`` is that busy time as a fraction of the total
    pump *wall* time (NaN without a pump span).

    Sequential pump (in-pump busy ≤ pump wall — always true at
    ``pipeline_depth=1``): in-pump stages that do not cover the whole
    pump leave a synthetic ``other`` entry carrying the residual, so
    the in-pump fractions sum to 1.0 exactly — byte-identical to what
    this function has always produced.

    Pipelined pump (in-pump busy > pump wall): the stages overlap, so
    a disjoint-slice residual is meaningless (it would be negative).
    No ``other`` row is emitted; instead the ``pump`` row carries an
    ``overlap`` key — in-pump busy over pump wall, ≥ 1.0, the measured
    stage-concurrency factor — and the per-stage ``of_pump`` values
    are occupancies that may legitimately sum past 1.0.

    ``enqueue`` happens on the submit path outside the pump and is
    excluded from both accountings.  Empty dict when the snapshot has
    no stage spans.
    """
    timers = _prefixed_timers(snapshot, STAGE_PREFIX)
    if not timers:
        return {}
    pump_ns = timers.get(PUMP_STAGE, {}).get("total_ns", 0)
    out: Dict[str, dict] = {}
    in_pump_ns = 0
    for name in sorted(timers, key=_stage_sort_key):
        if name == PUMP_STAGE:
            continue
        timer = timers[name]
        total_ns = timer["total_ns"]
        if name not in NON_PUMP_STAGES:
            in_pump_ns += total_ns
        out[name] = {
            "total_s": total_ns / 1e9,
            "count": timer["count"],
            "mean_us": (
                total_ns / timer["count"] / 1e3
                if timer["count"] else float("nan")
            ),
            "of_pump": (
                total_ns / pump_ns if pump_ns > 0 else float("nan")
            ),
        }
    if pump_ns > 0:
        if in_pump_ns <= pump_ns:
            residual_ns = pump_ns - in_pump_ns
            out["other"] = {
                "total_s": residual_ns / 1e9,
                "count": timers[PUMP_STAGE]["count"],
                "mean_us": float("nan"),
                "of_pump": residual_ns / pump_ns,
            }
        pump_row = {
            "total_s": pump_ns / 1e9,
            "count": timers[PUMP_STAGE]["count"],
            "mean_us": (
                pump_ns / timers[PUMP_STAGE]["count"] / 1e3
                if timers[PUMP_STAGE]["count"] else float("nan")
            ),
            "of_pump": 1.0,
        }
        if in_pump_ns > pump_ns:
            pump_row["overlap"] = in_pump_ns / pump_ns
        out["pump"] = pump_row
    return out


def overlap_potential(stages: Dict[str, dict]) -> Optional[dict]:
    """Pipelining headroom implied by a :func:`stage_breakdown`.

    An ideal pipeline runs at the pace of its slowest stage, so the
    speedup ceiling over a strictly sequential pump is the serial busy
    sum of the overlappable stages divided by the bottleneck stage's
    busy time — the software analogue of reading a hardware pipeline's
    initiation interval off its slowest stage.  Returns ``{serial_s,
    bottleneck, bottleneck_s, ideal_speedup, measured_overlap}``
    (``measured_overlap`` is the pump row's factor when present, else
    1.0), or ``None`` when no overlappable stage was recorded.
    """
    rows = [
        (name, stages[name]["total_s"])
        for name in OVERLAPPABLE_STAGES
        if name in stages and stages[name]["total_s"] > 0
    ]
    if not rows:
        return None
    serial_s = sum(busy for _, busy in rows)
    bottleneck, bottleneck_s = max(rows, key=lambda item: item[1])
    return {
        "serial_s": serial_s,
        "bottleneck": bottleneck,
        "bottleneck_s": bottleneck_s,
        "ideal_speedup": serial_s / bottleneck_s,
        "measured_overlap": stages.get("pump", {}).get("overlap", 1.0),
    }


def kernel_breakdown(snapshot: dict) -> Dict[str, dict]:
    """Per-kernel ``{total_s, count, mean_us, of_decode}`` totals.

    ``of_decode`` is the kernel's share of the ``serve.stage.decode``
    span when present (NaN otherwise) — how much of the decode stage
    the measured backend primitives account for.
    """
    timers = _prefixed_timers(snapshot, KERNEL_PREFIX)
    decode_ns = (
        snapshot.get("timers", {})
        .get(STAGE_PREFIX + "decode", {})
        .get("total_ns", 0)
    )
    out: Dict[str, dict] = {}
    for name in sorted(timers):
        timer = timers[name]
        out[name] = {
            "total_s": timer["total_ns"] / 1e9,
            "count": timer["count"],
            "mean_us": (
                timer["total_ns"] / timer["count"] / 1e3
                if timer["count"] else float("nan")
            ),
            "of_decode": (
                timer["total_ns"] / decode_ns
                if decode_ns > 0 else float("nan")
            ),
        }
    return out


def _bar(fraction: float, width: int = 28) -> str:
    if not (fraction >= 0):  # NaN-safe
        return ""
    return "#" * max(0, min(width, round(fraction * width)))


def format_profile(snapshot: dict) -> str:
    """ASCII per-stage (and per-kernel) time breakdown of a snapshot."""
    stages = stage_breakdown(snapshot)
    if not stages:
        return (
            "no serve.stage.* spans in this snapshot — run the service "
            "with a metrics registry (e.g. repro loadgen --metrics-out)"
        )
    lines: List[str] = []
    pump = stages.get("pump")
    if pump is not None:
        lines.append(
            f"pipeline profile  pump={pump['total_s']:.3f}s "
            f"across {pump['count']} pump calls"
        )
        if "overlap" in pump:
            lines.append(
                f"  stages overlap (pipelined pump): busy/wall = "
                f"{pump['overlap']:.2f}x — per-stage % pump are "
                f"occupancies and may sum past 100%"
            )
    else:
        lines.append("pipeline profile (no pump span recorded)")
    lines.append(
        f"  {'stage':<12} {'total s':>9} {'calls':>8} "
        f"{'mean us':>10} {'% pump':>7}"
    )
    for name, row in stages.items():
        if name == "pump":
            continue
        pct = row["of_pump"] * 100
        pct_str = f"{pct:6.1f}%" if pct == pct else "      -"
        mean_str = (
            f"{row['mean_us']:10.1f}" if row["mean_us"] == row["mean_us"]
            else " " * 10
        )
        lines.append(
            f"  {name:<12} {row['total_s']:>9.4f} {row['count']:>8}"
            f" {mean_str} {pct_str} {_bar(row['of_pump'])}"
        )
    kernels = kernel_breakdown(snapshot)
    if kernels:
        lines.append("")
        lines.append("backend kernel time (share of decode stage):")
        lines.append(
            f"  {'kernel':<22} {'total s':>9} {'calls':>8} "
            f"{'mean us':>10} {'% dec':>7}"
        )
        for name, row in kernels.items():
            pct = row["of_decode"] * 100
            pct_str = f"{pct:6.1f}%" if pct == pct else "      -"
            mean_str = (
                f"{row['mean_us']:10.1f}"
                if row["mean_us"] == row["mean_us"] else " " * 10
            )
            lines.append(
                f"  {name:<22} {row['total_s']:>9.4f} "
                f"{row['count']:>8} {mean_str} {pct_str} "
                f"{_bar(row['of_decode'])}"
            )
    return "\n".join(lines)
