"""Per-stage pipeline profiles derived from registry snapshots.

The serve engine times every stage of its hot path under
``serve.stage.*`` timers (``enqueue`` → ``batch_form`` → ``llr_prep``
→ ``decode`` → ``complete``, with ``pump`` as the enclosing span — see
``docs/observability.md``), and the instrumented array backends time
their kernel primitives under ``decode.kernel.*``.  This module turns
those timers back into the analysis artifacts:

* :func:`stage_breakdown` — per-stage totals plus each stage's share
  of the enclosing pump time (the residual appears as ``other``, so
  the shares always sum to 100% of pump time),
* :func:`kernel_breakdown` — per-kernel totals as a share of the
  decode stage,
* :func:`format_profile` — the ASCII time/flame rendering behind
  ``repro obs profile``.

The QC-LDPCC pipeline paper (PAPERS.md) finds its 2 Gb/s by locating
the slowest pipeline stage; this is the software-serve analogue.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Timer-name prefix of the serve pipeline stage spans.
STAGE_PREFIX = "serve.stage."
#: Timer-name prefix of the instrumented backend kernel spans.
KERNEL_PREFIX = "decode.kernel."
#: The enclosing pump span every in-pump stage is a fraction of.
PUMP_STAGE = "pump"
#: Stages recorded outside the pump (shares are vs pump but unbounded).
NON_PUMP_STAGES = ("enqueue",)
#: Canonical hot-path order for display.
STAGE_ORDER = (
    "enqueue", "expire", "batch_form", "llr_prep", "decode",
    "collect", "complete",
)


def _prefixed_timers(snapshot: dict, prefix: str) -> Dict[str, dict]:
    return {
        name[len(prefix):]: timer
        for name, timer in snapshot.get("timers", {}).items()
        if name.startswith(prefix)
    }


def _stage_sort_key(name: str):
    try:
        return (0, STAGE_ORDER.index(name))
    except ValueError:
        return (1, name)


def stage_breakdown(snapshot: dict) -> Dict[str, dict]:
    """Per-stage ``{total_s, count, mean_us, of_pump}`` from a snapshot.

    ``of_pump`` is the stage's fraction of total pump wall time (NaN
    without a pump span).  In-pump stages that do not cover the whole
    pump leave a synthetic ``other`` entry carrying the residual, so
    the in-pump fractions sum to 1.0 exactly; ``enqueue`` happens on
    the submit path outside the pump and is excluded from the residual.
    Empty dict when the snapshot has no stage spans.
    """
    timers = _prefixed_timers(snapshot, STAGE_PREFIX)
    if not timers:
        return {}
    pump_ns = timers.get(PUMP_STAGE, {}).get("total_ns", 0)
    out: Dict[str, dict] = {}
    in_pump_ns = 0
    for name in sorted(timers, key=_stage_sort_key):
        if name == PUMP_STAGE:
            continue
        timer = timers[name]
        total_ns = timer["total_ns"]
        if name not in NON_PUMP_STAGES:
            in_pump_ns += total_ns
        out[name] = {
            "total_s": total_ns / 1e9,
            "count": timer["count"],
            "mean_us": (
                total_ns / timer["count"] / 1e3
                if timer["count"] else float("nan")
            ),
            "of_pump": (
                total_ns / pump_ns if pump_ns > 0 else float("nan")
            ),
        }
    if pump_ns > 0:
        residual_ns = max(0, pump_ns - in_pump_ns)
        out["other"] = {
            "total_s": residual_ns / 1e9,
            "count": timers[PUMP_STAGE]["count"],
            "mean_us": float("nan"),
            "of_pump": residual_ns / pump_ns,
        }
        out["pump"] = {
            "total_s": pump_ns / 1e9,
            "count": timers[PUMP_STAGE]["count"],
            "mean_us": (
                pump_ns / timers[PUMP_STAGE]["count"] / 1e3
                if timers[PUMP_STAGE]["count"] else float("nan")
            ),
            "of_pump": 1.0,
        }
    return out


def kernel_breakdown(snapshot: dict) -> Dict[str, dict]:
    """Per-kernel ``{total_s, count, mean_us, of_decode}`` totals.

    ``of_decode`` is the kernel's share of the ``serve.stage.decode``
    span when present (NaN otherwise) — how much of the decode stage
    the measured backend primitives account for.
    """
    timers = _prefixed_timers(snapshot, KERNEL_PREFIX)
    decode_ns = (
        snapshot.get("timers", {})
        .get(STAGE_PREFIX + "decode", {})
        .get("total_ns", 0)
    )
    out: Dict[str, dict] = {}
    for name in sorted(timers):
        timer = timers[name]
        out[name] = {
            "total_s": timer["total_ns"] / 1e9,
            "count": timer["count"],
            "mean_us": (
                timer["total_ns"] / timer["count"] / 1e3
                if timer["count"] else float("nan")
            ),
            "of_decode": (
                timer["total_ns"] / decode_ns
                if decode_ns > 0 else float("nan")
            ),
        }
    return out


def _bar(fraction: float, width: int = 28) -> str:
    if not (fraction >= 0):  # NaN-safe
        return ""
    return "#" * max(0, min(width, round(fraction * width)))


def format_profile(snapshot: dict) -> str:
    """ASCII per-stage (and per-kernel) time breakdown of a snapshot."""
    stages = stage_breakdown(snapshot)
    if not stages:
        return (
            "no serve.stage.* spans in this snapshot — run the service "
            "with a metrics registry (e.g. repro loadgen --metrics-out)"
        )
    lines: List[str] = []
    pump = stages.get("pump")
    if pump is not None:
        lines.append(
            f"pipeline profile  pump={pump['total_s']:.3f}s "
            f"across {pump['count']} pump calls"
        )
    else:
        lines.append("pipeline profile (no pump span recorded)")
    lines.append(
        f"  {'stage':<12} {'total s':>9} {'calls':>8} "
        f"{'mean us':>10} {'% pump':>7}"
    )
    for name, row in stages.items():
        if name == "pump":
            continue
        pct = row["of_pump"] * 100
        pct_str = f"{pct:6.1f}%" if pct == pct else "      -"
        mean_str = (
            f"{row['mean_us']:10.1f}" if row["mean_us"] == row["mean_us"]
            else " " * 10
        )
        lines.append(
            f"  {name:<12} {row['total_s']:>9.4f} {row['count']:>8}"
            f" {mean_str} {pct_str} {_bar(row['of_pump'])}"
        )
    kernels = kernel_breakdown(snapshot)
    if kernels:
        lines.append("")
        lines.append("backend kernel time (share of decode stage):")
        lines.append(
            f"  {'kernel':<22} {'total s':>9} {'calls':>8} "
            f"{'mean us':>10} {'% dec':>7}"
        )
        for name, row in kernels.items():
            pct = row["of_decode"] * 100
            pct_str = f"{pct:6.1f}%" if pct == pct else "      -"
            mean_str = (
                f"{row['mean_us']:10.1f}"
                if row["mean_us"] == row["mean_us"] else " " * 10
            )
            lines.append(
                f"  {name:<22} {row['total_s']:>9.4f} "
                f"{row['count']:>8} {mean_str} {pct_str} "
                f"{_bar(row['of_decode'])}"
            )
    return "\n".join(lines)
