"""repro.obs — zero-dependency observability for the whole stack.

Three layers (see ``docs/observability.md``):

* :mod:`repro.obs.registry` — process-wide counters/gauges/timers/
  histograms, mergeable across worker processes,
* :mod:`repro.obs.trace` — typed event records with a JSONL sink and a
  version-stamped header,
* :mod:`repro.obs.iteration` — the per-iteration decoder hook protocol
  that makes convergence trajectories (and the paper's zigzag
  iteration saving) directly observable.

:mod:`repro.obs.export` reads the emitted JSONL back for the
``repro obs`` CLI commands.
"""

from .iteration import IterationTrace, IterationTraceRecorder
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    Timer,
    get_registry,
    set_registry,
)
from .trace import TraceRecorder, package_versions, version_string

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "IterationTrace",
    "IterationTraceRecorder",
    "MetricsRegistry",
    "NULL_METRIC",
    "Timer",
    "TraceRecorder",
    "get_registry",
    "package_versions",
    "set_registry",
    "version_string",
]
