"""repro.obs — zero-dependency observability for the whole stack.

Layers (see ``docs/observability.md``):

* :mod:`repro.obs.registry` — process-wide counters/gauges/timers/
  histograms, mergeable across worker processes,
* :mod:`repro.obs.trace` — typed event records with a JSONL sink and a
  version-stamped header,
* :mod:`repro.obs.iteration` — the per-iteration decoder hook protocol
  that makes convergence trajectories (and the paper's zigzag
  iteration saving) directly observable,
* :mod:`repro.obs.prom` / :mod:`repro.obs.publish` — exporters: the
  Prometheus text renderer, the periodic JSONL snapshot publisher, and
  the stdlib ``/metrics`` HTTP endpoint,
* :mod:`repro.obs.profile` — serve-pipeline stage and decode-kernel
  breakdowns from the ``serve.stage.*`` / ``decode.kernel.*`` spans,
* :mod:`repro.obs.capacity` — the capacity planner fitting measured
  offered-rate sweeps to a queueing model next to Eq. 7/8.

:mod:`repro.obs.export` reads the emitted JSONL back for the
``repro obs`` CLI commands.
"""

from .capacity import (
    CapacityPoint,
    CapacityReport,
    capacity_from_bench,
    fit_capacity,
    points_from_bench,
    points_from_loadgen,
)
from .iteration import IterationTrace, IterationTraceRecorder
from .profile import kernel_breakdown, format_profile, stage_breakdown
from .prom import render_prometheus, sanitize_metric_name
from .publish import MetricsHttpServer, SnapshotPublisher, snapshot_delta
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    Timer,
    get_registry,
    merge_snapshots,
    set_registry,
)
from .trace import TraceRecorder, package_versions, version_string

__all__ = [
    "CapacityPoint",
    "CapacityReport",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "IterationTrace",
    "IterationTraceRecorder",
    "MetricsHttpServer",
    "MetricsRegistry",
    "NULL_METRIC",
    "SnapshotPublisher",
    "Timer",
    "TraceRecorder",
    "capacity_from_bench",
    "fit_capacity",
    "format_profile",
    "get_registry",
    "kernel_breakdown",
    "merge_snapshots",
    "package_versions",
    "points_from_bench",
    "points_from_loadgen",
    "render_prometheus",
    "sanitize_metric_name",
    "set_registry",
    "snapshot_delta",
    "stage_breakdown",
    "version_string",
]
