"""Command-line interface: ``python -m repro <command>``.

Gives shell access to the reproduction's main entry points — the
regenerated datasheet tables, BER measurements, addressing annealing,
and the RTL bundle — so the repository is usable without writing Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_datasheet(args: argparse.Namespace) -> int:
    from .core.report import full_datasheet

    print(full_datasheet(iterations=args.iterations))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .core.report import table1_report, table2_report, table3_report

    which = args.table
    if which in ("1", "all"):
        print("Table 1 — Tanner graph parameters")
        print(table1_report())
    if which in ("2", "all"):
        print("\nTable 2 — edge counts and connectivity storage")
        print(table2_report())
    if which in ("3", "all"):
        print("\nTable 3 — area breakdown (model vs paper)")
        print(table3_report())
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    from .core.report import throughput_report

    print(throughput_report(iterations=args.iterations))
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from .core.report import power_report

    print(power_report(iterations=args.iterations))
    return 0


def _cmd_thresholds(args: argparse.Namespace) -> int:
    from .core.report import exit_threshold_report

    print(exit_threshold_report())
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from .decode.backend import backend_status

    print("array backends for the quantized batch decoders:")
    for name, (kind, reason) in backend_status().items():
        status = "available" if reason is None else f"unavailable ({reason})"
        print(f"  {name:<12} {kind:<7} {status}")
    print("(alias 'compiled' resolves to the first available of "
          "numba, cnative)")
    return 0


def _open_trace(path):
    """Build a :class:`TraceRecorder` for a ``--trace`` argument."""
    from .obs.trace import TraceRecorder

    return TraceRecorder(path)


def _write_metrics(path: str, snapshot: dict) -> None:
    import json

    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _resolve_fmt(args: argparse.Namespace):
    """Fixed-point format for the quantized schedules (else ``None``).

    ``--wordlength`` picks the word width; ``--frac-bits`` the binary
    point, defaulting to the paper's reference formats (6-bit: 2
    fractional bits, 5-bit: 1) and to 2 elsewhere.
    """
    if not args.schedule.startswith("quantized"):
        return None
    from .quantize import FixedPointFormat

    frac = args.frac_bits
    if frac is None:
        frac = {6: 2, 5: 1}.get(args.wordlength, 2)
    return FixedPointFormat(total_bits=args.wordlength, frac_bits=frac)


def _channel_spec_from_args(args: argparse.Namespace):
    """The :func:`repro.channel.build_channel` spec for the scenario
    flags, or ``None`` for the default BPSK/AWGN cell (which keeps the
    legacy bit-identical LLR stream)."""
    modulation = getattr(args, "modulation", "bpsk")
    channel = getattr(args, "channel", "awgn")
    if modulation == "bpsk" and channel == "awgn":
        return None
    spec = {
        "modulation": modulation,
        "channel": channel,
        "rate_label": args.rate,
    }
    if channel in ("rician", "rayleigh"):
        spec["k_factor_db"] = args.k_factor_db
        spec["block_length"] = args.block_length
    return spec


def _channel_from_args(args: argparse.Namespace, code, ebn0_db, seed):
    """A prebuilt channel for the scenario flags (``None`` = default)."""
    spec = _channel_spec_from_args(args)
    if spec is None:
        return None
    from .channel import build_channel

    return build_channel(
        ebn0_db=ebn0_db, rate=code.k / code.n, seed=seed, **spec
    )


def _build_sim_code(args: argparse.Namespace):
    """Code for the ``--rate``/``--parallelism``/``--frame`` triple."""
    from .codes import build_code, build_small_code

    if getattr(args, "frame", "normal") == "short":
        if args.parallelism != 360:
            print(
                "error: short frames are defined at parallelism 360 "
                "only",
                file=sys.stderr,
            )
            raise SystemExit(2)
        from .codes.short import build_short_code

        return build_short_code(args.rate)
    if args.parallelism == 360:
        return build_code(args.rate)
    return build_small_code(args.rate, parallelism=args.parallelism)


def _cmd_ber(args: argparse.Namespace) -> int:
    from .sim import fast_ber, parallel_ber

    code = _build_sim_code(args)
    fmt = _resolve_fmt(args)
    if fmt is None and args.channel_scale != 1.0:
        print(
            "error: --channel-scale applies only to the quantized-* "
            "schedules",
            file=sys.stderr,
        )
        return 2
    if args.backend is not None and not args.schedule.startswith(
        "quantized"
    ):
        print(
            "error: --backend applies only to the quantized-* schedules",
            file=sys.stderr,
        )
        return 2
    adaptive = (
        args.target_frame_errors is not None
        or args.ci_halfwidth is not None
    )
    observed = args.trace is not None or args.metrics_out is not None
    spec = _channel_spec_from_args(args)
    telemetry = None
    metrics = None
    if (
        args.workers != 1
        or adaptive
        or args.schedule != "flooding"
        or observed
    ):
        trace = _open_trace(args.trace) if args.trace is not None else None
        try:
            run = parallel_ber(
                code,
                args.ebn0,
                max_frames=args.frames,
                workers=args.workers,
                target_frame_errors=args.target_frame_errors,
                ci_halfwidth=args.ci_halfwidth,
                max_iterations=args.iterations,
                schedule=args.schedule,
                fmt=fmt,
                channel_scale=args.channel_scale,
                backend=args.backend,
                seed=args.seed,
                channel=spec,
                trace=trace,
            )
        finally:
            if trace is not None:
                trace.close()
        result, telemetry = run.result, run.telemetry
        metrics = run.metrics
    else:
        result = fast_ber(
            code,
            ebn0_db=args.ebn0,
            frames=args.frames,
            max_iterations=args.iterations,
            seed=args.seed,
            channel=_channel_from_args(
                args, code, args.ebn0, args.seed
            ),
        )
    if args.metrics_out is not None and metrics is not None:
        _write_metrics(args.metrics_out, metrics)
    lo, hi = result.ber_estimate.interval
    scenario = (
        f", {args.modulation}/{args.channel}"
        if spec is not None else ""
    )
    frame = (
        ", short frame"
        if getattr(args, "frame", "normal") == "short" else ""
    )
    print(f"rate {args.rate} (P={args.parallelism}, n={code.n}) "
          f"at Eb/N0 = {args.ebn0} dB{scenario}{frame}:")
    if fmt is not None:
        print(f"  fixed point     : {fmt.total_bits}-bit "
              f"({fmt.frac_bits} fractional), "
              f"channel scale {args.channel_scale}")
    print(f"  frames          : {result.frames}")
    print(f"  BER             : {result.ber:.3e} "
          f"[{lo:.2e}, {hi:.2e}] (95% Wilson)")
    print(f"  FER             : {result.fer:.3e}")
    print(f"  avg iterations  : {result.avg_iterations:.1f}")
    if result.non_converged_frames:
        print(f"  non-converged   : {result.non_converged_frames}"
              f"/{result.frames} (at full iteration budget)")
    if telemetry is not None:
        print(f"  workers         : {telemetry.workers}")
        print(f"  throughput      : {telemetry.frames_per_sec:.1f} "
              f"frames/s ({telemetry.info_mbps:.3f} info Mbit/s)")
    if args.trace is not None and args.trace != "-":
        print(f"  trace           : {args.trace}")
    if args.metrics_out is not None and metrics is not None:
        print(f"  metrics         : {args.metrics_out}")
    return 0


def _print_anneal_result(label: str, moves: int, result, extra: str = "") -> None:
    print(f"rate {label}: annealed addressing over {moves} moves{extra}")
    print(f"  peak write buffer : {result.initial_stats.peak_buffer} -> "
          f"{result.final_stats.peak_buffer}")
    print(f"  buffer pressure   : {result.initial_stats.total_deferred} "
          f"-> {result.final_stats.total_deferred}")
    print(f"  accepted moves    : {result.accepted_moves}"
          f"/{result.proposed_moves}")


def _cmd_anneal(args: argparse.Namespace) -> int:
    from .codes import build_code, build_small_code
    from .hw.annealing import AnnealingConfig, optimize_rate
    from .hw.mapping import IpMapping
    from .hw.parallel_anneal import anneal_chains, optimize_all_rates
    from .obs.registry import MetricsRegistry

    config = AnnealingConfig(
        iterations=args.moves, seed=args.seed, kernel=args.kernel
    )
    registry = MetricsRegistry() if args.metrics_out is not None else None
    trace = _open_trace(args.trace) if args.trace is not None else None
    try:
        if args.all_rates:
            sweep = optimize_all_rates(
                parallelism=args.parallelism,
                config=config,
                chains=args.chains,
                workers=args.workers,
                registry=registry,
                trace=trace,
            )
            print(f"all-rates annealing sweep (P={args.parallelism}, "
                  f"{args.chains} chains/rate, {args.moves} moves/chain, "
                  f"kernel={args.kernel}):")
            print(f"  {'rate':>5} {'peak':>9} {'deferred':>8} "
                  f"{'drain':>5} {'best cost':>10} {'chain':>5}")
            for row in sweep.table():
                peaks = f"{row['initial_peak']} -> {row['final_peak']}"
                print(f"  {row['rate']:>5} {peaks:>9} "
                      f"{row['total_deferred']:>8} "
                      f"{row['drain_cycles']:>5} {row['best_cost']:>10.1f} "
                      f"{row['best_chain']:>5}")
            print(f"  worst annealed peak across rates: "
                  f"{sweep.max_final_peak} "
                  f"(one write buffer of that depth serves every rate)")
        else:
            if args.parallelism == 360:
                code = build_code(args.rate)
            else:
                code = build_small_code(
                    args.rate, parallelism=args.parallelism
                )
            mapping = IpMapping(code)
            if args.chains > 1:
                multi = anneal_chains(
                    mapping,
                    config,
                    chains=args.chains,
                    workers=args.workers,
                    registry=registry,
                    trace=trace,
                    rate=args.rate,
                )
                result = multi.best
                _print_anneal_result(
                    args.rate, args.moves, result,
                    extra=(f" x {args.chains} chains "
                           f"(best: chain {multi.best_chain})"),
                )
            else:
                result = optimize_rate(
                    mapping, config, trace=trace, registry=registry
                )
                _print_anneal_result(args.rate, args.moves, result)
    finally:
        if trace is not None:
            trace.close()
    if args.metrics_out is not None and registry is not None:
        _write_metrics(args.metrics_out, registry.snapshot())
    if args.trace is not None and args.trace != "-":
        print(f"  trace             : {args.trace}")
    if args.metrics_out is not None:
        print(f"  metrics           : {args.metrics_out}")
    return 0


def _build_serve_code(args: argparse.Namespace):
    return _build_sim_code(args)


def _serve_config(args: argparse.Namespace):
    from .serve import ServeConfig

    return ServeConfig(
        max_batch=args.max_batch,
        max_linger_ms=args.max_linger_ms,
        queue_capacity=args.queue_capacity,
        deadline_ms=args.deadline_ms,
        max_iterations=args.iterations,
        min_iterations=args.min_iterations,
        shed_start=args.shed_start,
        schedule=args.schedule,
        fmt=_resolve_fmt(args),
        channel_scale=args.channel_scale,
        backend=args.backend,
        workers=args.workers,
        pipeline_depth=getattr(args, "pipeline_depth", None),
        instrument_kernels=getattr(args, "profile_kernels", False),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs.registry import MetricsRegistry
    from .serve import ByteStreamGateway, DecodeService, ServiceReport

    code = _build_serve_code(args)
    config = _serve_config(args)
    if args.input == "-":
        data = sys.stdin.buffer.read()
    else:
        with open(args.input, "rb") as handle:
            data = handle.read()
    if not data:
        print("error: empty input stream", file=sys.stderr)
        return 2
    gateway = ByteStreamGateway(
        code,
        ebn0_db=args.ebn0,
        seed=args.seed,
        bch_t=args.bch_t,
        channel=_channel_from_args(args, code, args.ebn0, args.seed),
    )
    llrs = gateway.llr_frames(data)
    registry = MetricsRegistry()
    trace = _open_trace(args.trace) if args.trace is not None else None
    import time as _time

    start = _time.monotonic()
    try:
        with DecodeService(
            code, config, registry=registry, trace=trace
        ) as service:
            results = []
            for frame in llrs:
                # File mode: the queue paces us instead of rejecting.
                while service.queue.full:
                    if not service.pump():
                        service.flush()
                    results.extend(service.poll())
                service.submit(frame)
                service.pump()
                results.extend(service.poll())
            service.flush()
            results.extend(service.poll())
        wall = _time.monotonic() - start
    finally:
        if trace is not None:
            trace.close()
    results.sort(key=lambda r: r.request_id)
    decoded, outcomes = gateway.reassemble(results)
    if args.output == "-":
        sys.stdout.buffer.write(decoded)
        sys.stdout.buffer.flush()
    else:
        with open(args.output, "wb") as handle:
            handle.write(decoded)
    crc_bad = sum(1 for o in outcomes if o.status == "ok" and not o.crc_ok)
    dropped = sum(1 for o in outcomes if o.status != "ok")
    report = ServiceReport.from_snapshot(
        code, registry.snapshot(), wall, max_batch=config.max_batch
    )
    print(f"served {len(outcomes)} BBFRAMEs "
          f"({len(data)} bytes in, {len(decoded)} bytes out) "
          f"at Eb/N0 = {args.ebn0} dB", file=sys.stderr)
    if dropped or crc_bad:
        print(f"  degraded frames : {dropped} dropped, "
              f"{crc_bad} CRC-damaged", file=sys.stderr)
    if args.bch_t is not None:
        corrected = sum(
            o.bch_corrected for o in outcomes if o.status == "ok"
        )
        uncorrectable = sum(
            1 for o in outcomes if o.status == "ok" and not o.bch_ok
        )
        print(f"  outer BCH       : t={args.bch_t}, "
              f"{corrected} bits corrected, "
              f"{uncorrectable} frames uncorrectable", file=sys.stderr)
    print(report.format(), file=sys.stderr)
    if args.metrics_out is not None:
        _write_metrics(args.metrics_out, registry.snapshot())
        print(f"  metrics   : {args.metrics_out}", file=sys.stderr)
    return 0


def _parse_listen(text: str):
    """Split ``HOST:PORT`` (or bare ``PORT``) into its parts."""
    if ":" in text:
        host, _, port = text.rpartition(":")
        return host or "127.0.0.1", int(port)
    return "127.0.0.1", int(text)


def _fabric_config(args: argparse.Namespace, serve_config):
    from .serve import FabricConfig

    return FabricConfig(
        workers=args.fabric_workers,
        dispatch=args.dispatch,
        window=args.fabric_window,
        hash_replicas=args.hash_replicas,
        serve=serve_config,
    )


def _cmd_fabric(args: argparse.Namespace) -> int:
    import time as _time

    from .obs.registry import MetricsRegistry
    from .serve import DecodeFabric, ServiceReport, serve_fabric

    code = _build_serve_code(args)
    config = _serve_config(args)
    host, port = _parse_listen(args.listen)
    registry = MetricsRegistry()
    trace = _open_trace(args.trace) if args.trace is not None else None
    fabric = DecodeFabric(
        code, _fabric_config(args, config),
        registry=registry, trace=trace,
    )

    def ready(gateway) -> None:
        print(f"fabric listening on {gateway.host}:{gateway.port} "
              f"(workers={args.fabric_workers}, "
              f"dispatch={args.dispatch})", flush=True)
        if args.port_file is not None:
            with open(args.port_file, "w") as handle:
                handle.write(str(gateway.port))

    start = _time.monotonic()
    try:
        serve_fabric(
            fabric,
            host=host,
            port=port,
            window=args.conn_window,
            duration_s=args.duration,
            ready=ready,
            chaos_kill_worker_after_s=args.chaos_kill_worker_after,
        )
    except KeyboardInterrupt:
        pass
    finally:
        if trace is not None:
            trace.close()
    wall = _time.monotonic() - start
    report = ServiceReport.from_snapshot(
        code, fabric.merged_snapshot(), wall,
        max_batch=config.max_batch, workers=args.fabric_workers,
    )
    print(report.format())
    if fabric.restarts:
        print(f"  restarts   {fabric.restarts} worker restart(s), "
              f"redriven chunks recounted")
    if args.metrics_out is not None:
        _write_metrics(args.metrics_out, fabric.merged_snapshot())
        print(f"  metrics: {args.metrics_out}")
    return 0


def _cmd_loadgen_connect(args: argparse.Namespace) -> int:
    from .serve import make_frame_pool, run_remote_loadgen

    code = _build_serve_code(args)
    frame_pool = make_frame_pool(
        code,
        ebn0_db=args.ebn0,
        seed=args.seed,
        channel=_channel_from_args(args, code, args.ebn0, args.seed + 1),
    )
    host, port = _parse_listen(args.connect)
    print(f"loadgen rate {args.rate} (P={args.parallelism}, n={code.n}) "
          f"against fabric at {host}:{port}, "
          f"{args.duration}s per point:")
    print(f"  {'offered':>9} {'served':>9} {'p50 ms':>8} "
          f"{'p99 ms':>8} {'rej':>5} {'exp':>5} {'FER':>9}")
    rows = []
    for rate in args.offered_fps:
        row = run_remote_loadgen(
            host, port,
            frame_pool=frame_pool,
            offered_fps=rate,
            duration_s=args.duration,
            window=args.window,
            deadline_ms=args.deadline_ms,
            clients=args.clients,
        )
        rows.append(row)
        fer = (
            row["frame_errors"] / row["completed"]
            if row["completed"] else float("nan")
        )
        print(f"  {rate:>9.1f} {row['served_fps']:>9.1f} "
              f"{row['latency_p50_ms']:>8.2f} "
              f"{row['latency_p99_ms']:>8.2f} "
              f"{row['rejected']:>5} {row['expired']:>5} {fer:>9.3e}")
    if args.metrics_out is not None:
        _write_metrics(args.metrics_out, rows[-1]["server_snapshot"])
        print(f"  metrics: {args.metrics_out} "
              f"(server-side merged snapshot)")
    bad = sum(r["protocol_errors"] for r in rows)
    if bad:
        print(f"error: {bad} protocol error(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .obs.registry import MetricsRegistry
    from .serve import sweep_offered_rates

    if args.connect is not None:
        return _cmd_loadgen_connect(args)
    code = _build_serve_code(args)
    config = _serve_config(args)
    fabric = (
        _fabric_config(args, config)
        if args.fabric_workers is not None else None
    )
    trace = _open_trace(args.trace) if args.trace is not None else None
    publisher = None
    http_server = None
    if args.publish is not None:
        from .obs.publish import SnapshotPublisher

        publisher = SnapshotPublisher(
            sink=args.publish,
            prom_path=args.publish + ".prom",
            interval_s=args.publish_interval_s,
            meta={"command": "loadgen", "rate": args.rate},
        )
    try:
        if args.publish_http is not None:
            from .obs.publish import MetricsHttpServer
            from .obs.registry import get_registry

            # The sweep swaps registries per point; scrape the live one
            # through a publisher-tracked indirection when publishing,
            # else the process registry.
            http_server = MetricsHttpServer(
                publisher if publisher is not None else get_registry(),
                port=args.publish_http,
            )
            # Port 0 binds an ephemeral port; say which one we got so
            # scrapers (and scripts parsing this output) can find it.
            print(f"  serving metrics at {http_server.url} "
                  f"(bound port {http_server.port})")
        results = sweep_offered_rates(
            code,
            config,
            rates_fps=args.offered_fps,
            duration_s=args.duration,
            ebn0_db=args.ebn0,
            seed=args.seed,
            channel=_channel_from_args(
                args, code, args.ebn0, args.seed + 1
            ),
            trace=trace,
            publisher=publisher,
            fabric=fabric,
            clients=args.clients,
        )
    finally:
        if http_server is not None:
            http_server.close()
        if publisher is not None:
            publisher.close()
        if trace is not None:
            trace.close()
    plane = (
        f", fabric workers={args.fabric_workers} "
        f"dispatch={args.dispatch}" if fabric is not None else ""
    )
    scenario = (
        f" ({args.modulation}/{args.channel})"
        if _channel_spec_from_args(args) is not None else ""
    )
    print(f"loadgen rate {args.rate} (P={args.parallelism}, "
          f"n={code.n}) at Eb/N0 = {args.ebn0} dB{scenario}, "
          f"{args.duration}s per point{plane}:")
    print(f"  {'offered':>9} {'served':>9} {'p50 ms':>8} "
          f"{'p99 ms':>8} {'occup':>6} {'it/frame':>8} "
          f"{'shed':>6} {'rej%':>6} {'FER':>9}")
    for r in results:
        rep = r.report
        rej = (
            rep.rejected / rep.submitted * 100 if rep.submitted else 0.0
        )
        fer = r.frame_errors / r.checked if r.checked else float("nan")
        print(f"  {r.offered_fps:>9.1f} {rep.frames_per_s:>9.1f} "
              f"{rep.latency_p50_ms:>8.2f} {rep.latency_p99_ms:>8.2f} "
              f"{rep.mean_occupancy:>6.2f} {rep.mean_iterations:>8.2f} "
              f"{rep.iterations_shed:>6} {rej:>6.1f} {fer:>9.3e}")
    last = results[-1].report
    print(f"  eq7/8 hw model at measured iterations: "
          f"{last.model_frames_per_s:.1f} frames/s "
          f"({last.model_info_bps / 1e6:.1f} info Mbit/s)")
    if args.metrics_out is not None:
        if fabric is not None:
            # Fold the sweep per worker label first so the merged file
            # keeps the cross-worker sub-views under "workers".
            from .obs.registry import merge_snapshots

            shards: dict = {}
            for r in results:
                for label, part in r.snapshot.get("workers", {}).items():
                    shards.setdefault(label, MetricsRegistry()).merge(
                        part
                    )
            payload = merge_snapshots(
                {label: reg.snapshot() for label, reg in shards.items()}
            )
        else:
            merged = MetricsRegistry()
            for r in results:
                merged.merge(r.snapshot)
            payload = merged.snapshot()
        _write_metrics(args.metrics_out, payload)
        print(f"  metrics: {args.metrics_out}")
    if args.publish is not None:
        print(f"  publish: {args.publish} (snapshot stream), "
              f"{args.publish}.prom (Prometheus text)")
    if args.trace is not None and args.trace != "-":
        print(f"  trace  : {args.trace}")
    return 0


def _cmd_acm(args: argparse.Namespace) -> int:
    import json

    from .acm import (
        ModCod,
        default_scaled_table,
        derive_threshold_table,
        run_acm_trace,
    )
    from .serve import ServeConfig

    if args.derive:
        table = derive_threshold_table(
            [ModCod(rate) for rate in args.rates],
            parallelism=args.parallelism,
            channel=args.channel,
            target_fer=args.target_fer,
            margin_db=args.margin_db,
            seed=args.seed,
        )
        print(f"derived threshold table (P={args.parallelism}, "
              f"{args.channel}, FER {args.target_fer} crossing "
              f"+ {args.margin_db} dB margin):")
    else:
        table = default_scaled_table()
        print("committed scaled-code threshold table "
              "(re-derive with --derive):")
    for row in table.to_rows():
        print(f"  {row['modcod']:<22} Es/N0 >= "
              f"{row['esn0_db']:>6.2f} dB   "
              f"(SE {row['spectral_efficiency']:.3f})")
    if args.table_only:
        return 0

    config = ServeConfig(max_linger_ms=0.0)
    result = run_acm_trace(
        table,
        frames=args.frames,
        esn0_start_db=args.esn0_start,
        esn0_stop_db=args.esn0_stop,
        parallelism=args.parallelism,
        channel=args.channel,
        hysteresis_db=args.hysteresis_db,
        dwell_frames=args.dwell_frames,
        ewma_alpha=args.alpha,
        serve_config=config,
        seed=args.seed,
    )
    span = (
        f"{result.true_esn0_db[0]:.2f} .. {result.true_esn0_db[-1]:.2f}"
    )
    print(f"\nACM ramp trace: {result.frames} frames, "
          f"true Es/N0 {span} dB, estimator vs oracle:")
    print(f"  within one step : {result.within_one_rate:.1%}")
    print(f"  estimate RMSE   : {result.est_rmse_db:.3f} dB "
          f"(after EWMA warm-up)")
    print(f"  switches        : estimator {result.est_switches_up} up / "
          f"{result.est_switches_down} down, "
          f"oracle {result.oracle_switches_up} up / "
          f"{result.oracle_switches_down} down")
    print(f"  serve plane     : {result.checked} frames decoded, "
          f"{result.frame_errors} frame errors")
    if args.json_out is not None:
        payload = result.to_dict()
        payload["table"] = table.to_rows()
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  json            : {args.json_out}")
    return 0


def _parse_cell(spec: str):
    """``rate[:modulation[:frame[:channel]]]`` → a ScenarioCell."""
    from .acm import ModCod, ScenarioCell

    parts = spec.split(":")
    if len(parts) > 4:
        raise ValueError(f"bad cell spec {spec!r}")
    rate = parts[0]
    modulation = parts[1] if len(parts) > 1 else "bpsk"
    frame = parts[2] if len(parts) > 2 else "normal"
    channel = parts[3] if len(parts) > 3 else "awgn"
    return ScenarioCell(
        modcod=ModCod(rate=rate, modulation=modulation, frame=frame),
        channel=channel,
    )


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from .acm import run_matrix

    try:
        cells = [_parse_cell(spec) for spec in args.cells]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    grids = {}
    for entry in args.grid or ():
        label, _, points = entry.partition("=")
        if not points:
            print(f"error: bad --grid entry {entry!r} "
                  f"(want CELL=db,db,...)", file=sys.stderr)
            return 2
        grids[label] = [float(p) for p in points.split(",")]
    matrix = run_matrix(
        cells,
        ebn0_points_db=args.ebn0,
        grids=grids or None,
        parallelism=args.parallelism,
        mc_frames=args.frames,
        max_iterations=args.iterations,
        workers=args.workers,
        serve=not args.no_serve,
        serve_margin_db=args.serve_margin_db,
        offered_fps=args.offered_fps,
        duration_s=args.duration,
        seed=args.seed,
    )
    print(f"scenario matrix: {len(cells)} cells, "
          f"{args.frames} MC frames/point (P={args.parallelism})")
    print(matrix.to_markdown())
    if args.markdown_out is not None:
        with open(args.markdown_out, "w") as handle:
            handle.write(matrix.to_markdown() + "\n")
        print(f"markdown: {args.markdown_out}")
    if args.json_out is not None:
        with open(args.json_out, "w") as handle:
            json.dump(matrix.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"json    : {args.json_out}")
    return 0


def _read_json_file(path, *, expect: str):
    """Load a JSON document, translating failures into clean messages."""
    import json

    from .obs.export import TraceReadError

    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise TraceReadError(
            f"cannot read {path!r}: {exc.strerror or exc}"
        ) from exc
    if not text.strip():
        raise TraceReadError(f"{path}: file is empty — expected {expect}")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceReadError(
            f"{path}: not valid JSON ({exc.msg}) — expected {expect}"
        ) from exc
    if not isinstance(payload, dict):
        raise TraceReadError(
            f"{path}: JSON is not an object — expected {expect}"
        )
    return payload


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    from .obs.profile import format_profile

    snapshot = _read_json_file(
        args.file,
        expect="a metrics snapshot (written by --metrics-out)",
    )
    print(format_profile(snapshot))
    return 0


def _cmd_obs_capacity(args: argparse.Namespace) -> int:
    import json

    from .obs.capacity import capacity_from_bench
    from .obs.export import TraceReadError

    payload = _read_json_file(
        args.file,
        expect="a loadgen/bench sweep payload "
               "(BENCH_serve_latency.json layout)",
    )
    code = None
    if not args.no_model:
        code = _build_serve_code(args)
    try:
        report = capacity_from_bench(
            payload, slo_p99_ms=args.slo_p99_ms, code=code
        )
    except ValueError as exc:
        raise TraceReadError(f"{args.file}: {exc}") from exc
    print(report.format())
    if args.output is not None:
        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  report : {args.output}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from .obs.export import (
        events_to_csv,
        iteration_rows,
        read_events,
        summarize_events,
    )

    events = read_events(args.file)
    if args.obs_command == "summary":
        print(summarize_events(events))
        return 0
    if args.obs_command == "trace":
        rows = iteration_rows(events, frame=args.frame)
        if not rows:
            print("no decode_iteration events")
            return 0
        print(f"{'frame':>6} {'iter':>5} {'unsat':>6} "
              f"{'mean|LLR|':>10} {'flips':>6}")
        for row in rows:
            print(f"{row['frame']:>6} {row['iteration']:>5} "
                  f"{row['unsatisfied']:>6} "
                  f"{row['mean_abs_llr']:>10.3f} {row['sign_flips']:>6}")
        return 0
    # export
    stream = (
        sys.stdout if args.output is None else open(args.output, "w")
    )
    try:
        if args.format == "csv":
            n = events_to_csv(events, stream)
        else:
            n = 0
            for event in events:
                stream.write(json.dumps(event) + "\n")
                n += 1
    finally:
        if args.output is not None:
            stream.close()
    if args.output is not None:
        print(f"wrote {n} records to {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .codes import build_code, build_small_code
    from .hw.verification import verify_core

    if args.parallelism == 360:
        code = build_code(args.rate)
    else:
        code = build_small_code(args.rate, parallelism=args.parallelism)
    report = verify_core(
        code, n_frames=args.frames, ebn0_db=args.ebn0, seed=args.seed
    )
    print(f"rate {args.rate} (P={args.parallelism}): "
          f"{report.frames} frames verified")
    print(f"  bit mismatches      : {report.mismatches}")
    print(f"  max posterior delta : {report.max_posterior_delta:.3g}")
    print(f"  verdict             : "
          f"{'PASS' if report.passed else 'FAIL'}")
    return 0 if report.passed else 1


def _cmd_vectors(args: argparse.Namespace) -> int:
    from .core.vectors import generate_vectors, replay_vectors

    if args.action == "generate":
        result = generate_vectors(
            args.file,
            rate=args.rate,
            parallelism=args.parallelism,
            n_frames=args.frames,
            seed=args.seed,
        )
        print(f"wrote {result.n_frames} golden vectors to {args.file}")
    else:
        matched = replay_vectors(args.file)
        print(f"replayed {matched} vectors: all match")
    return 0


def _cmd_rtl(args: argparse.Namespace) -> int:
    from .hw.rtl import emit_ip_core_rtl

    text = emit_ip_core_rtl(
        lanes=args.lanes, width=args.width, ram_depth=args.ram_depth
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(text.splitlines())} lines to {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    from .obs.trace import version_string

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "DVB-S2 LDPC decoder IP reproduction (Kienle/Brack/Wehn, "
            "DATE 2005)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=version_string()
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_channel_flags(p: argparse.ArgumentParser) -> None:
        """Receiver-scenario flags shared by ber / serve / loadgen."""
        p.add_argument("--modulation",
                       choices=("bpsk", "qpsk", "8psk", "16apsk",
                                "32apsk"),
                       default="bpsk",
                       help="constellation (default keeps the legacy "
                            "bit-identical BPSK stream)")
        p.add_argument("--channel",
                       choices=("awgn", "rician", "rayleigh"),
                       default="awgn",
                       help="channel model (fading is block-coherent "
                            "with perfect CSI)")
        p.add_argument("--frame", choices=("normal", "short"),
                       default="normal",
                       help="FECFRAME length: normal 64800 or short "
                            "16200 (short requires --parallelism 360)")
        p.add_argument("--k-factor-db", type=float, default=10.0,
                       help="Rician K factor (ignored for awgn; "
                            "rayleigh is the no-LOS limit)")
        p.add_argument("--block-length", type=int, default=0,
                       help="fading coherence block in symbols "
                            "(0 = one gain per frame)")

    p = sub.add_parser("datasheet", help="print the full datasheet")
    p.add_argument("--iterations", type=int, default=30)
    p.set_defaults(func=_cmd_datasheet)

    p = sub.add_parser("tables", help="regenerate paper tables 1-3")
    p.add_argument("--table", choices=("1", "2", "3", "all"),
                   default="all")
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("throughput", help="Eq. 8 throughput table")
    p.add_argument("--iterations", type=int, default=30)
    p.set_defaults(func=_cmd_throughput)

    p = sub.add_parser("power", help="energy model table (extension)")
    p.add_argument("--iterations", type=int, default=30)
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser(
        "exit-thresholds", help="analytic decoding thresholds"
    )
    p.set_defaults(func=_cmd_thresholds)

    p = sub.add_parser(
        "backends",
        help="list array backends and their availability",
    )
    p.set_defaults(func=_cmd_backends)

    p = sub.add_parser("ber", help="Monte-Carlo BER measurement")
    p.add_argument("--rate", default="1/2")
    p.add_argument("--ebn0", type=float, default=2.0)
    p.add_argument("--frames", type=int, default=50,
                   help="frame budget (upper bound with adaptive stops)")
    p.add_argument("--iterations", type=int, default=30)
    p.add_argument("--parallelism", type=int, default=36)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the parallel engine "
                        "(results are identical for any count)")
    p.add_argument("--target-frame-errors", type=int, default=None,
                   help="stop once this many frame errors are merged")
    p.add_argument("--ci-halfwidth", type=float, default=None,
                   help="stop once the 95%% Wilson FER interval "
                        "half-width drops below this")
    p.add_argument("--schedule",
                   choices=("flooding", "zigzag", "quantized-zigzag",
                            "quantized-minsum"),
                   default="flooding",
                   help="batched decoder schedule (quantized-* run the "
                        "paper's fixed-point arithmetic)")
    p.add_argument("--wordlength", type=int, default=6,
                   help="fixed-point word width incl. sign for the "
                        "quantized-* schedules (paper: 6)")
    p.add_argument("--frac-bits", type=int, default=None,
                   help="fractional bits of the fixed-point format "
                        "(default: the paper's 2 for 6-bit, 1 for 5-bit)")
    p.add_argument("--channel-scale", type=float, default=1.0,
                   help="LLR input scaling before quantization "
                        "(hardware input conditioning; 0.5 keeps 2 dB "
                        "LLRs inside the 6-bit range)")
    p.add_argument("--backend", default=None,
                   help="array backend for the quantized-* schedules "
                        "(numpy, compiled, cnative, numba, ...; "
                        "see 'repro backends'; results are "
                        "bit-identical across backends)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a JSONL trace with per-iteration "
                        "convergence records ('-' for stdout)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's metrics snapshot as JSON")
    add_channel_flags(p)
    p.set_defaults(func=_cmd_ber)

    p = sub.add_parser("anneal", help="optimize the RAM addressing")
    p.add_argument("--rate", default="1/2")
    p.add_argument("--moves", type=int, default=500)
    p.add_argument("--parallelism", type=int, default=360)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--kernel", choices=("fast", "reference"),
                   default="fast",
                   help="conflict-simulation kernel driving proposals")
    p.add_argument("--chains", type=int, default=1,
                   help="independent annealing chains (best one kept; "
                        "deterministic for any worker count)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for multi-chain/all-rates "
                        "runs (default: CPU count)")
    p.add_argument("--all-rates", action="store_true",
                   help="anneal every DVB-S2 rate and print the "
                        "peak-buffer table (ignores --rate)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a JSONL trace with windowed acceptance "
                        "events ('-' for stdout)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write annealing metrics snapshot as JSON")
    p.set_defaults(func=_cmd_anneal)

    def add_serve_flags(p: argparse.ArgumentParser) -> None:
        """Flags shared by ``serve`` and ``loadgen``."""
        p.add_argument("--rate", default="1/2")
        p.add_argument("--parallelism", type=int, default=36)
        p.add_argument("--ebn0", type=float, default=2.0,
                       help="AWGN operating point of the simulated "
                            "channel feeding the service")
        p.add_argument("--seed", type=int, default=2005)
        p.add_argument("--max-batch", type=int, default=32,
                       help="frames packed per decode call")
        p.add_argument("--max-linger-ms", type=float, default=5.0,
                       help="longest a partial batch may wait to fill")
        p.add_argument("--queue-capacity", type=int, default=128,
                       help="bounded request queue size (backpressure)")
        p.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline; expired requests "
                            "are dropped, not decoded")
        p.add_argument("--iterations", type=int, default=30,
                       help="iteration budget while the queue is calm")
        p.add_argument("--min-iterations", type=int, default=10,
                       help="budget floor under full queue pressure "
                            "(paper Sec. 2.2's saved iterations)")
        p.add_argument("--shed-start", type=float, default=0.5,
                       help="queue fill fraction where shedding begins")
        p.add_argument("--schedule",
                       choices=("flooding", "zigzag", "quantized-zigzag",
                                "quantized-minsum"),
                       default="quantized-zigzag")
        p.add_argument("--wordlength", type=int, default=6)
        p.add_argument("--frac-bits", type=int, default=None)
        p.add_argument("--channel-scale", type=float, default=1.0)
        p.add_argument("--backend", default=None,
                       help="array backend for the quantized-* "
                            "schedules (see 'repro backends')")
        p.add_argument("--workers", type=int, default=1,
                       help="decode batches on a persistent process "
                            "pool (order stays deterministic)")
        p.add_argument("--pipeline-depth", type=int, default=None,
                       help="micro-batches kept in flight on the "
                            "pooled path (default: 2x workers; 1 = "
                            "strictly sequential pump; results are "
                            "bit-identical at any depth)")
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="write serve_batch/serve_drop JSONL events")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the serving metrics snapshot as JSON")
        p.add_argument("--profile-kernels", action="store_true",
                       help="time backend kernel primitives into "
                            "decode.kernel.* (quantized-* schedules, "
                            "in-process decode only; see "
                            "'repro obs profile')")

    p = sub.add_parser(
        "serve",
        help="decode a byte stream through the batching service",
        description=(
            "Slice bytes into BBFRAMEs, encode, pass through AWGN, "
            "decode through the micro-batching service, and emit the "
            "recovered bytes (report on stderr)."
        ),
    )
    p.add_argument("input", help="input byte stream ('-' for stdin)")
    p.add_argument("--output", default="-",
                   help="recovered byte stream ('-' for stdout)")
    add_serve_flags(p)
    add_channel_flags(p)
    p.add_argument("--bch-t", type=int, default=None,
                   help="concatenate an outer BCH code correcting this "
                        "many bit errors per frame (DVB-S2's outer "
                        "code; payload shrinks by the parity bits)")
    p.set_defaults(func=_cmd_serve)

    def add_dispatch_flags(
        p: argparse.ArgumentParser, *, default_workers
    ) -> None:
        """Fabric-shape flags shared by ``fabric`` and ``loadgen``."""
        p.add_argument("--fabric-workers", type=int,
                       default=default_workers,
                       help="decode worker processes behind the "
                            "fabric" + (
                                "" if default_workers else
                                " (default: single in-process service)"
                            ))
        p.add_argument("--dispatch",
                       choices=("least-loaded", "round-robin", "hash"),
                       default="least-loaded",
                       help="chunk dispatch policy (hash pins clients "
                            "to workers via a consistent-hash ring)")
        p.add_argument("--fabric-window", type=int, default=2,
                       help="in-flight chunks allowed per worker")
        p.add_argument("--hash-replicas", type=int, default=64,
                       help="virtual nodes per worker on the hash ring")
        p.add_argument("--clients", type=int, default=0,
                       help="rotate this many synthetic client "
                            "identities (exercises hash affinity)")

    p = sub.add_parser(
        "fabric",
        help="serve the distributed decode fabric over TCP",
        description=(
            "Start N decode worker processes behind an asyncio "
            "gateway speaking newline-delimited JSON (ops: decode, "
            "stats, ping).  Drive it with 'repro loadgen --connect "
            "HOST:PORT'.  Worker crashes are healed by respawn-and-"
            "redrive; accounting stays balanced."
        ),
    )
    p.add_argument("--listen", default="127.0.0.1:0",
                   metavar="HOST:PORT",
                   help="bind address (port 0 picks a free port, "
                        "printed on start)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port to PATH once listening")
    p.add_argument("--duration", type=float, default=None,
                   help="stop after this many seconds "
                        "(default: run until interrupted)")
    p.add_argument("--conn-window", type=int, default=64,
                   help="max in-flight decodes per connection "
                        "(per-client backpressure)")
    p.add_argument("--chaos-kill-worker-after", type=float,
                   default=None, metavar="SECONDS",
                   help="SIGKILL worker 0 once after this long "
                        "(crash-recovery soak probe)")
    add_dispatch_flags(p, default_workers=2)
    add_serve_flags(p)
    p.set_defaults(func=_cmd_fabric)

    p = sub.add_parser(
        "loadgen",
        help="closed-loop load generator against the serve engine",
        description=(
            "Offer synthetic frames at fixed rates and report "
            "latency percentiles, shedding, rejects, and the Eq. 7/8 "
            "hardware comparison per offered rate.  With "
            "--fabric-workers the load runs against an in-process "
            "multi-worker fabric; with --connect it drives a running "
            "'repro fabric' gateway over TCP."
        ),
    )
    p.add_argument("--offered-fps", type=float, nargs="+",
                   default=[200.0],
                   help="offered rates to sweep (frames per second)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="seconds of offered load per sweep point")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="drive a running 'repro fabric' gateway "
                        "instead of an in-process service")
    p.add_argument("--window", type=int, default=64,
                   help="pipelined in-flight requests (--connect mode)")
    p.add_argument("--publish", default=None, metavar="PATH",
                   help="stream periodic registry snapshots to "
                        "PATH (JSONL deltas) and PATH.prom "
                        "(Prometheus text, rewritten per tick)")
    p.add_argument("--publish-interval-s", type=float, default=0.5,
                   help="seconds between published snapshot ticks")
    p.add_argument("--publish-http", type=int, default=None,
                   metavar="PORT",
                   help="also serve live /metrics on this port "
                        "(0 picks a free port; the bound port is "
                        "printed)")
    add_dispatch_flags(p, default_workers=None)
    add_serve_flags(p)
    add_channel_flags(p)
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "acm",
        help="ACM threshold table + closed-loop ramp trace",
        description=(
            "Print the MODCOD threshold table (committed constants or "
            "freshly derived from the Monte-Carlo engines) and run the "
            "estimator-vs-oracle ramp trace through the multi-MODCOD "
            "serve plane."
        ),
    )
    p.add_argument("--frames", type=int, default=120,
                   help="ramp length in frames")
    p.add_argument("--esn0-start", type=float, default=None,
                   help="ramp start (default: below the table floor)")
    p.add_argument("--esn0-stop", type=float, default=None,
                   help="ramp end (default: above the top threshold)")
    p.add_argument("--parallelism", type=int, default=36)
    p.add_argument("--channel",
                   choices=("awgn", "rician", "rayleigh"),
                   default="awgn")
    p.add_argument("--hysteresis-db", type=float, default=0.3,
                   help="extra dB required to switch up")
    p.add_argument("--dwell-frames", type=int, default=4,
                   help="frames between consecutive up-switches")
    p.add_argument("--alpha", type=float, default=0.25,
                   help="EWMA weight of the newest SNR sample")
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--derive", action="store_true",
                   help="re-derive the threshold table instead of "
                        "using the committed constants")
    p.add_argument("--rates", nargs="+",
                   default=["1/4", "1/2", "3/4"],
                   help="rates for --derive")
    p.add_argument("--target-fer", type=float, default=0.5,
                   help="FER crossing located by --derive")
    p.add_argument("--margin-db", type=float, default=0.5,
                   help="link margin added by --derive")
    p.add_argument("--table-only", action="store_true",
                   help="print the table and skip the ramp trace")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write the trace summary + table as JSON")
    p.set_defaults(func=_cmd_acm)

    p = sub.add_parser(
        "scenarios",
        help="scenario matrix: waterfall + serve leg per cell",
        description=(
            "Run MODCOD x channel cells through the Monte-Carlo "
            "engines (waterfall row) and the live serve/loadgen path "
            "(capacity row).  Cells are rate[:modulation[:frame"
            "[:channel]]], e.g. 1/2:8psk:normal:rayleigh."
        ),
    )
    p.add_argument("--cells", nargs="+",
                   default=["1/2", "3/4",
                            "1/2:bpsk:normal:rayleigh"],
                   help="matrix cells")
    p.add_argument("--ebn0", type=float, nargs="+",
                   default=[0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
                   help="Eb/N0 grid shared by cells without --grid")
    p.add_argument("--grid", action="append", metavar="CELL=DB,DB,...",
                   help="per-cell Eb/N0 grid override (label is the "
                        "full cell spec incl. channel); repeatable")
    p.add_argument("--parallelism", type=int, default=36)
    p.add_argument("--frames", type=int, default=64,
                   help="Monte-Carlo frames per grid point")
    p.add_argument("--iterations", type=int, default=30)
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for the waterfall leg")
    p.add_argument("--no-serve", action="store_true",
                   help="skip the serve/loadgen leg")
    p.add_argument("--serve-margin-db", type=float, default=1.0,
                   help="serve operating point above the waterfall")
    p.add_argument("--offered-fps", type=float, default=200.0)
    p.add_argument("--duration", type=float, default=0.25,
                   help="loadgen seconds per cell")
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--markdown-out", default=None, metavar="PATH",
                   help="write the matrix as a markdown table")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write the matrix as JSON")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser(
        "obs", help="inspect JSONL traces written by --trace"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser("summary", help="digest a trace file")
    q.add_argument("file")
    q.set_defaults(func=_cmd_obs)

    q = obs_sub.add_parser(
        "trace", help="print per-iteration convergence rows"
    )
    q.add_argument("file")
    q.add_argument("--frame", type=int, default=None,
                   help="restrict to one frame")
    q.set_defaults(func=_cmd_obs)

    q = obs_sub.add_parser(
        "export", help="re-export a trace as jsonl or csv"
    )
    q.add_argument("file")
    q.add_argument("--format", choices=("jsonl", "csv"),
                   default="jsonl")
    q.add_argument("--output", default=None,
                   help="output path (default: stdout)")
    q.set_defaults(func=_cmd_obs)

    q = obs_sub.add_parser(
        "profile",
        help="serve-pipeline stage/kernel breakdown from a metrics "
             "snapshot",
        description=(
            "Render the serve.stage.* spans (and decode.kernel.* "
            "timers when --profile-kernels was on) from a metrics "
            "snapshot JSON written by --metrics-out."
        ),
    )
    q.add_argument("file", help="metrics snapshot JSON")
    q.set_defaults(func=_cmd_obs_profile)

    q = obs_sub.add_parser(
        "capacity",
        help="fit a capacity/queueing model to an offered-rate sweep",
        description=(
            "Fit measured served-fps/p99 curves (a "
            "BENCH_serve_latency.json-style payload) against the "
            "Eq. 7/8 hardware model plus an M/G/1-style queueing "
            "term and report the max sustainable offered rate at the "
            "p99 SLO."
        ),
    )
    q.add_argument("file", help="sweep payload JSON")
    q.add_argument("--slo-p99-ms", type=float, default=500.0,
                   help="latency objective defining the knee")
    q.add_argument("--rate", default="1/2",
                   help="code rate for the Eq. 7/8 comparison")
    q.add_argument("--parallelism", type=int, default=36)
    q.add_argument("--no-model", action="store_true",
                   help="skip the Eq. 7/8 hardware comparison")
    q.add_argument("--output", default=None, metavar="PATH",
                   help="also write the capacity report as JSON")
    q.set_defaults(func=_cmd_obs_capacity)

    p = sub.add_parser(
        "verify", help="core-vs-golden bit-exactness check"
    )
    p.add_argument("--rate", default="1/2")
    p.add_argument("--parallelism", type=int, default=36)
    p.add_argument("--frames", type=int, default=5)
    p.add_argument("--ebn0", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "vectors", help="generate or replay golden test vectors"
    )
    p.add_argument("action", choices=("generate", "replay"))
    p.add_argument("file")
    p.add_argument("--rate", default="1/2")
    p.add_argument("--parallelism", type=int, default=36)
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_vectors)

    p = sub.add_parser("rtl", help="emit the Verilog bundle")
    p.add_argument("--lanes", type=int, default=360)
    p.add_argument("--width", type=int, default=6)
    p.add_argument("--ram-depth", type=int, default=648)
    p.add_argument("--output", default=None)
    p.set_defaults(func=_cmd_rtl)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Operator-input problems (missing/empty/corrupt telemetry files)
    surface as one-line errors with exit code 2, not tracebacks.
    """
    from .obs.export import TraceReadError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TraceReadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
