"""Single-port SRAM models (paper Fig. 5 hierarchical RAM structure).

The IP core uses single-port SRAMs "due to area and power efficiency",
which makes simultaneous read/write impossible on one macro.  The paper's
remedy: partition each FU's information-message memory into 4 RAMs selected
by the two address LSBs, allow one read plus up to two writes (to distinct
other partitions) per cycle, and buffer writes that cannot proceed.

This module models the banks and the partition arbiter; the cycle-by-cycle
conflict statistics live in :mod:`repro.hw.conflicts`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

#: The paper's partition count: "the two least significant bits of the
#: addresses determine the assignment to a partition".
DEFAULT_PARTITIONS = 4

#: Writes accepted per cycle: "write at most 2 data back to two distinct
#: RAMs, coming from the buffers or the shuffling network".
DEFAULT_WRITE_PORTS = 2


class SramBank:
    """A single-port RAM: at most one access (read or write) per cycle.

    Used by the functional decoder core; the per-cycle accounting raises
    if the schedule ever demands two accesses in the same cycle, proving
    the conflict-avoidance logic correct by construction.
    """

    def __init__(self, depth: int, name: str = "ram") -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self.name = name
        self.data = np.zeros(depth, dtype=np.int64)
        self.reads = 0
        self.writes = 0
        self._busy_cycle: Optional[int] = None

    def _claim(self, cycle: Optional[int]) -> None:
        if cycle is None:
            return
        if self._busy_cycle == cycle:
            raise RuntimeError(
                f"{self.name}: second access in cycle {cycle} "
                "(single-port violation)"
            )
        self._busy_cycle = cycle

    def read(self, addr: int, cycle: Optional[int] = None) -> int:
        """Read one word; optionally enforce the single-port constraint."""
        if not 0 <= addr < self.depth:
            raise IndexError(f"{self.name}: address {addr} out of range")
        self._claim(cycle)
        self.reads += 1
        return int(self.data[addr])

    def write(self, addr: int, value: int, cycle: Optional[int] = None) -> None:
        """Write one word; optionally enforce the single-port constraint."""
        if not 0 <= addr < self.depth:
            raise IndexError(f"{self.name}: address {addr} out of range")
        self._claim(cycle)
        self.writes += 1
        self.data[addr] = value


@dataclass
class PartitionedMemory:
    """The 4-RAM partition of Fig. 5 for one FU's message memory.

    Addresses are global; partition = ``addr % n_partitions`` ("the two
    least significant bits"), the word within a partition is
    ``addr // n_partitions``.
    """

    depth: int
    n_partitions: int = DEFAULT_PARTITIONS
    banks: List[SramBank] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError("need at least one partition")
        per = (self.depth + self.n_partitions - 1) // self.n_partitions
        self.banks = [
            SramBank(per, name=f"part{b}") for b in range(self.n_partitions)
        ]

    def partition_of(self, addr: int) -> int:
        """Partition index holding a global address."""
        return addr % self.n_partitions

    def read(self, addr: int, cycle: Optional[int] = None) -> int:
        """Read through the partition arbiter."""
        return self.banks[self.partition_of(addr)].read(
            addr // self.n_partitions, cycle
        )

    def write(self, addr: int, value: int, cycle: Optional[int] = None) -> None:
        """Write through the partition arbiter."""
        self.banks[self.partition_of(addr)].write(
            addr // self.n_partitions, value, cycle
        )


def ram_bits(words: int, width_bits: int) -> int:
    """Storage bits of a RAM macro (helper for the area model)."""
    if words < 0 or width_bits <= 0:
        raise ValueError("invalid RAM shape")
    return words * width_bits
