"""Frame-pipelined multi-core throughput model (beyond Eq. 7/8).

The paper's core interleaves I/O with decoding only at the frame edges:
Eq. 8 charges ``C / P_IO`` serial input cycles per frame because the
double-buffered I/O RAM overlaps *output* of frame ``k-1`` with *input*
of frame ``k+1`` while frame ``k`` decodes.  Its successors in
PAPERS.md go further — the 2.0 Gb/s QC-LDPCC decoder of Sham et al.
pipelines whole frames across decoder cores, and Condo & Masera's
NoC-interconnect decoder streams frames through independent processing
stages.  This module models that *frame pipeline* on top of
:class:`~repro.hw.throughput.ThroughputModel`:

* **deframe** — channel LLRs stream into the (double-buffered) I/O RAM
  at ``P_IO`` values per cycle: ``ceil(C / P_IO)`` cycles per frame;
* **decode** — ``It`` iterations on a core:
  ``It * (2 * E_IN / P + T_latency)`` cycles, replicated over
  ``decode_cores`` round-robin cores so the stage's initiation
  interval shrinks as ``ceil(cycles / cores)``;
* **bch** — the outer BCH decoder consumes the hard-decision codeword
  at ``bch_parallelism`` symbols per cycle: ``ceil(C / P_BCH)`` cycles.

With every stage double-buffered, frames stream at the pace of the
*slowest* stage (the pipeline's initiation interval) instead of the sum
Eq. 8 charges; one frame's latency is the *fill* — the sum of all stage
occupancies it traverses.  The serve engine's pipelined pump
(``ServeConfig.pipeline_depth``) mirrors exactly this structure in
software: LLR prep ≙ deframe, pooled decode ≙ the decode core, and
completion/CRC ≙ the BCH stage; :func:`repro.obs.profile.stage_breakdown`
measures the software stages' busy times, and the same bottleneck law
predicts the pipelined throughput in both worlds
(``bench_pipeline_overlap.py`` cross-checks it).

Area comes from :class:`~repro.hw.area.AreaModel`: each decode core
pays the full Table 3 core, the deframe stage adds the second channel
RAM of the double buffer, and the BCH stage adds a small
syndrome/Chien datapath — so :func:`pipeline_tradeoff_table` can put
throughput *per mm²* next to the paper's single-core Table 3 point and
:func:`technology_from_sweep` feeds the annealer's all-rates write
buffer result into the control-area term.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..codes.standard import CodeRateProfile, all_profiles, get_profile
from .area import PAPER_TABLE3_MM2, AreaModel, Technology
from .throughput import (
    DEFAULT_CLOCK_HZ,
    DEFAULT_IO_PARALLELISM,
    DEFAULT_ITERATIONS,
    DEFAULT_LATENCY_CYCLES,
    REQUIRED_THROUGHPUT_BPS,
    ThroughputModel,
)

#: Gate estimate for the outer BCH stage's datapath (syndrome network
#: plus serial Chien search for the t<=12 DVB-S2 outer code) — small
#: next to the LDPC core's FU array, like the paper's control logic.
BCH_STAGE_GATES = 30000.0


@dataclass(frozen=True)
class PipelineStage:
    """One stage of the frame pipeline.

    ``cycles`` is the stage's occupancy for one frame; ``replicas``
    round-robin frames across identical units (multi-core decode), so
    the stage admits a new frame every :attr:`interval_cycles` while a
    single frame still occupies one unit for the full ``cycles``.
    """

    name: str
    cycles: int
    replicas: int = 1

    @property
    def interval_cycles(self) -> int:
        """Cycles between frames this stage can admit (its II)."""
        return -(-self.cycles // self.replicas)  # ceil division


@dataclass(frozen=True)
class FramePipelineModel:
    """Bottleneck-stage throughput / fill latency of the frame pipeline.

    ``decode_cores`` replicates the LDPC core (the Sham et al. recipe
    for multi-gigabit rates); the I/O and BCH stages stay single — they
    are streaming datapaths, not iterative loops, and stay far from the
    bottleneck at practical iteration counts.
    """

    profile: CodeRateProfile
    clock_hz: float = DEFAULT_CLOCK_HZ
    io_parallelism: int = DEFAULT_IO_PARALLELISM
    latency_cycles: int = DEFAULT_LATENCY_CYCLES
    decode_cores: int = 1
    #: Hard-decision symbols the BCH stage consumes per cycle.
    bch_parallelism: int = DEFAULT_IO_PARALLELISM

    def __post_init__(self) -> None:
        if self.decode_cores < 1:
            raise ValueError("decode_cores must be positive")
        if self.bch_parallelism < 1:
            raise ValueError("bch_parallelism must be positive")

    # ------------------------------------------------------------------
    @property
    def core(self) -> ThroughputModel:
        """The single-core Eq. 7/8 model the pipeline builds on."""
        return ThroughputModel(
            self.profile,
            clock_hz=self.clock_hz,
            io_parallelism=self.io_parallelism,
            latency_cycles=self.latency_cycles,
        )

    def stages(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> Tuple[PipelineStage, ...]:
        """The deframe → decode → bch stage occupancies for one frame."""
        core = self.core
        bch_cycles = -(-self.profile.n // self.bch_parallelism)
        return (
            PipelineStage("deframe", core.io_cycles()),
            PipelineStage(
                "decode", core.decode_cycles(iterations), self.decode_cores
            ),
            PipelineStage("bch", bch_cycles),
        )

    def bottleneck(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> PipelineStage:
        """The stage setting the pipeline's pace at ``iterations``."""
        return max(
            self.stages(iterations), key=lambda s: s.interval_cycles
        )

    def initiation_interval_cycles(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> int:
        """Cycles between finished frames in steady state."""
        return self.bottleneck(iterations).interval_cycles

    def fill_latency_cycles(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> int:
        """Cycles for one frame to traverse the whole (empty) pipeline.

        Replication does not shorten a single frame's decode — the sum
        runs over per-frame occupancies, not initiation intervals — so
        adding cores buys throughput, never latency.
        """
        return sum(s.cycles for s in self.stages(iterations))

    # ------------------------------------------------------------------
    def frames_per_s(self, iterations: int = DEFAULT_ITERATIONS) -> float:
        """Steady-state frames per second (bottleneck law)."""
        return self.clock_hz / self.initiation_interval_cycles(iterations)

    def throughput_bps(self, iterations: int = DEFAULT_ITERATIONS) -> float:
        """Information throughput in bit/s at the configured clock."""
        return self.profile.k_info * self.frames_per_s(iterations)

    def coded_throughput_bps(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> float:
        """Channel-bit throughput (codeword bits per second)."""
        return self.profile.n * self.frames_per_s(iterations)

    def fill_latency_s(self, iterations: int = DEFAULT_ITERATIONS) -> float:
        """Seconds for the first frame to emerge from an empty pipeline."""
        return self.fill_latency_cycles(iterations) / self.clock_hz

    def latency_s(
        self,
        iterations: int = DEFAULT_ITERATIONS,
        queued_frames: int = 0,
    ) -> float:
        """One frame's latency: pipeline fill plus the backlog ahead of
        it draining at the bottleneck's initiation interval."""
        fill = self.fill_latency_cycles(iterations)
        drain = queued_frames * self.initiation_interval_cycles(iterations)
        return (fill + drain) / self.clock_hz

    def speedup_vs_eq8(self, iterations: int = DEFAULT_ITERATIONS) -> float:
        """Throughput gain over the paper's non-pipelined Eq. 8 core."""
        eq8_fps = self.clock_hz / self.core.cycles_per_block(iterations)
        return self.frames_per_s(iterations) / eq8_fps

    def meets_requirement(
        self,
        iterations: int = DEFAULT_ITERATIONS,
        requirement_bps: float = REQUIRED_THROUGHPUT_BPS,
        coded: bool = True,
    ) -> bool:
        """The 255 Mbit/s DVB-S2 requirement against the pipeline."""
        rate = (
            self.coded_throughput_bps(iterations)
            if coded else self.throughput_bps(iterations)
        )
        return rate >= requirement_bps

    # ------------------------------------------------------------------
    def area_mm2(self, area_model: Optional[AreaModel] = None) -> float:
        """Total silicon of the pipeline (see :func:`pipeline_area_rows`)."""
        return sum(
            row["area_mm2"]
            for row in pipeline_area_rows(self.decode_cores, area_model)
            if row["component"] == "total"
        )


def pipeline_area_rows(
    decode_cores: int,
    area_model: Optional[AreaModel] = None,
) -> List[Dict[str, float]]:
    """Area breakdown of a ``decode_cores``-way frame pipeline (mm²).

    Each decode core pays the full Table 3 core (its channel RAM *is*
    one half of the double buffer); the deframe stage adds the second
    channel RAM so input streaming never blocks a core, and the BCH
    stage adds :data:`BCH_STAGE_GATES` of outer-decoder logic.
    """
    if decode_cores < 1:
        raise ValueError("decode_cores must be positive")
    model = area_model if area_model is not None else AreaModel()
    report = model.report()
    gate_mm2 = model.technology.gate_um2 / 1e6
    rows = [
        {
            "component": "decode cores",
            "area_mm2": decode_cores * report.total,
        },
        {
            "component": "deframe double buffer",
            "area_mm2": report.channel_ram,
        },
        {
            "component": "bch stage",
            "area_mm2": BCH_STAGE_GATES * gate_mm2,
        },
    ]
    rows.append(
        {
            "component": "total",
            "area_mm2": sum(r["area_mm2"] for r in rows),
        }
    )
    return rows


def technology_from_sweep(
    sweep, base: Optional[Technology] = None
) -> Technology:
    """Size the control write buffer from an annealed all-rates sweep.

    ``sweep`` is an :class:`~repro.hw.parallel_anneal.AllRatesResult`
    (duck-typed: anything with ``max_final_peak``) — the worst
    remaining write-buffer occupancy over all eleven rates after
    addressing optimization.  The buffer must hold that many deferred
    write words, so the annealer's result directly shrinks (or grows)
    the control-area term every :func:`pipeline_tradeoff_table` row
    pays per decode core.
    """
    peak = max(1, int(getattr(sweep, "max_final_peak")))
    base = base if base is not None else Technology()
    return replace(base, buffer_words=peak)


def pipeline_tradeoff_table(
    core_counts: Sequence[int] = (1, 2, 4, 8),
    iterations: int = DEFAULT_ITERATIONS,
    rate: str = "1/2",
    clock_hz: float = DEFAULT_CLOCK_HZ,
    technology: Optional[Technology] = None,
    sweep=None,
) -> List[Dict[str, object]]:
    """Stage-count trade-off rows: throughput vs area vs Table 3.

    One row per ``decode_cores`` value for ``rate``'s profile —
    initiation interval, bottleneck stage, info/coded throughput, fill
    latency, pipeline area (vs the paper's 22.74 mm² single core), and
    the figure of merit Mbit/s per mm².  ``sweep`` (an annealed
    all-rates result) feeds :func:`technology_from_sweep`; the area
    model always spans all eleven profiles, as the paper's does.
    """
    if sweep is not None:
        technology = technology_from_sweep(sweep, technology)
    area_model = AreaModel(all_profiles(), technology=technology)
    profile = get_profile(rate)
    rows: List[Dict[str, object]] = []
    for cores in core_counts:
        model = FramePipelineModel(
            profile, clock_hz=clock_hz, decode_cores=cores
        )
        area = model.area_mm2(area_model)
        info_mbps = model.throughput_bps(iterations) / 1e6
        rows.append(
            {
                "decode_cores": cores,
                "ii_cycles": model.initiation_interval_cycles(iterations),
                "bottleneck": model.bottleneck(iterations).name,
                "frames_per_s": model.frames_per_s(iterations),
                "info_mbps": info_mbps,
                "coded_mbps": model.coded_throughput_bps(iterations) / 1e6,
                "fill_latency_us": model.fill_latency_s(iterations) * 1e6,
                "speedup_vs_eq8": model.speedup_vs_eq8(iterations),
                "area_mm2": area,
                "area_vs_table3": area / PAPER_TABLE3_MM2["total"],
                "mbps_per_mm2": info_mbps / area,
                "meets_255": model.meets_requirement(iterations),
            }
        )
    return rows
