"""The paper's contribution: the partly-parallel DVB-S2 LDPC decoder
architecture — node mapping, shuffle network, schedules, RAM conflicts,
simulated-annealing addressing, the cycle-faithful IP core, and the
throughput/area models."""

from .annealing import (
    AddressingAnnealer,
    AnnealingConfig,
    AnnealingResult,
    optimize_rate,
)
from .area import PAPER_TABLE3_MM2, AreaModel, AreaReport, Technology
from .control import ControlUnit, PhaseProgram
from .conflicts import (
    ConflictStats,
    simulate_cn_phase,
    simulate_iteration,
    simulate_vn_phase,
)
from .datapath import SerialFunctionalUnit, fu_gate_count
from .decoder_core import CoreConfig, DecoderIpCore
from .floorplan import (
    FuArrayFloorplan,
    RoutingTechnology,
    fully_parallel_congestion,
)
from .mapping import AddressWord, IpMapping
from .memory import PartitionedMemory, SramBank
from .pipeline import (
    BCH_STAGE_GATES,
    FramePipelineModel,
    PipelineStage,
    pipeline_area_rows,
    pipeline_tradeoff_table,
    technology_from_sweep,
)
from .power import EnergyConstants, PowerModel, power_table
from .rtl import (
    barrel_shuffler_verilog,
    emit_ip_core_rtl,
    functional_unit_verilog,
    partitioned_ram_verilog,
)
from .schedule import CnPhaseSchedule, DecoderSchedule, MemoryLayout
from .shuffle import ShuffleNetwork
from .verification import VerificationReport, verify_core
from .throughput import (
    REQUIRED_THROUGHPUT_BPS,
    ThroughputModel,
    throughput_table,
)

__all__ = [
    "AddressWord",
    "AddressingAnnealer",
    "AnnealingConfig",
    "AnnealingResult",
    "AreaModel",
    "AreaReport",
    "CnPhaseSchedule",
    "ConflictStats",
    "ControlUnit",
    "CoreConfig",
    "DecoderIpCore",
    "DecoderSchedule",
    "BCH_STAGE_GATES",
    "EnergyConstants",
    "FramePipelineModel",
    "FuArrayFloorplan",
    "IpMapping",
    "MemoryLayout",
    "PAPER_TABLE3_MM2",
    "PartitionedMemory",
    "PhaseProgram",
    "PipelineStage",
    "PowerModel",
    "power_table",
    "REQUIRED_THROUGHPUT_BPS",
    "RoutingTechnology",
    "SerialFunctionalUnit",
    "ShuffleNetwork",
    "SramBank",
    "Technology",
    "VerificationReport",
    "ThroughputModel",
    "fu_gate_count",
    "optimize_rate",
    "pipeline_area_rows",
    "pipeline_tradeoff_table",
    "technology_from_sweep",
    "verify_core",
    "simulate_cn_phase",
    "simulate_iteration",
    "simulate_vn_phase",
    "throughput_table",
    "barrel_shuffler_verilog",
    "emit_ip_core_rtl",
    "functional_unit_verilog",
    "fully_parallel_congestion",
    "partitioned_ram_verilog",
]
