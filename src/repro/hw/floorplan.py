"""Floorplan and routing-congestion model (paper Section 5's P&R check).

The paper reports: "We also placed and routed the shuffling network to
test routing congestions.  Due to its regularity no congestions
resulted, its area is dominated by the logic cells."  This module
reproduces that experiment analytically: place the 360 FU tiles on a
grid, wire every barrel-shifter stage (lane ``i`` → lane
``(i + 2^s) mod P``), and compare the demanded routing tracks against
the available ones — then do the same for the fully-parallel
alternative's random edge wiring, which is exactly what congested
ref [4]'s die.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt
from typing import Dict, List, Tuple

import numpy as np

from .area import AreaModel


@dataclass(frozen=True)
class RoutingTechnology:
    """Routing resources of a 0.13 um-class metal stack."""

    wire_pitch_um: float = 0.56      # signal pitch, intermediate metal
    routing_layers: int = 4          # layers available to the network
    utilization: float = 0.6         # achievable track utilization


class FuArrayFloorplan:
    """Square-ish placement of the FU tiles plus their memories."""

    def __init__(
        self,
        lanes: int = 360,
        width_bits: int = 6,
        area_model: AreaModel = None,
    ) -> None:
        if lanes < 1:
            raise ValueError("need at least one lane")
        self.lanes = lanes
        self.width_bits = width_bits
        model = area_model or AreaModel(width_bits=width_bits)
        report = model.report()
        # Each tile carries one FU plus its slice of every RAM.
        tile_mm2 = (
            report.functional_nodes
            + report.message_ram
            + report.channel_ram
        ) / lanes
        self.tile_mm = sqrt(tile_mm2)
        self.cols = ceil(sqrt(lanes))
        self.rows = ceil(lanes / self.cols)

    # ------------------------------------------------------------------
    def position(self, lane: int) -> Tuple[float, float]:
        """Tile-center coordinates (mm) of a lane (row-major placement)."""
        if not 0 <= lane < self.lanes:
            raise ValueError("lane out of range")
        r, c = divmod(lane, self.cols)
        return ((c + 0.5) * self.tile_mm, (r + 0.5) * self.tile_mm)

    def distance_mm(self, a: int, b: int) -> float:
        """Manhattan distance between two lanes' tiles."""
        xa, ya = self.position(a)
        xb, yb = self.position(b)
        return abs(xa - xb) + abs(ya - yb)

    @property
    def die_width_mm(self) -> float:
        """Width of the placed array."""
        return self.cols * self.tile_mm

    # ------------------------------------------------------------------
    # Barrel-shifter wiring
    # ------------------------------------------------------------------
    def shuffle_stage_wirelength_mm(self, stage: int) -> float:
        """Total wirelength of one barrel stage (all lanes, all bits)."""
        offset = (1 << stage) % self.lanes
        total = sum(
            self.distance_mm(i, (i + offset) % self.lanes)
            for i in range(self.lanes)
        )
        return total * self.width_bits

    def shuffle_wirelength_mm(self) -> float:
        """Total wirelength of the whole shuffling network."""
        stages = max(1, ceil(np.log2(self.lanes)))
        return sum(
            self.shuffle_stage_wirelength_mm(s) for s in range(stages)
        )

    def bisection_demand_tracks(self) -> int:
        """Wires crossing the vertical mid-line of the array.

        A stage-``s`` wire from lane ``i`` crosses the cut when the two
        tiles sit on opposite halves; each carries ``width_bits`` bits.
        """
        stages = max(1, ceil(np.log2(self.lanes)))
        mid = self.die_width_mm / 2.0
        crossings = 0
        for s in range(stages):
            offset = (1 << s) % self.lanes
            for i in range(self.lanes):
                xa, _ = self.position(i)
                xb, _ = self.position((i + offset) % self.lanes)
                if (xa - mid) * (xb - mid) < 0:
                    crossings += 1
        return crossings * self.width_bits

    def bisection_capacity_tracks(
        self, tech: RoutingTechnology = RoutingTechnology()
    ) -> int:
        """Routing tracks available across the same cut."""
        die_height_um = self.rows * self.tile_mm * 1000.0
        per_layer = die_height_um / tech.wire_pitch_um
        return int(per_layer * tech.routing_layers * tech.utilization)

    def congestion_ratio(
        self, tech: RoutingTechnology = RoutingTechnology()
    ) -> float:
        """Demanded / available tracks; < 1 means routable ("no
        congestion" — the paper's finding for the shuffler)."""
        return self.bisection_demand_tracks() / max(
            1, self.bisection_capacity_tracks(tech)
        )


def fully_parallel_congestion(
    n_vns: int,
    n_edges: int,
    tile_mm: float = 0.035,
    tech: RoutingTechnology = RoutingTechnology(),
    seed: int = 0,
) -> Dict[str, float]:
    """Bisection analysis of a fully-parallel layout's random wiring.

    Every Tanner edge is a dedicated route between a random VN tile and
    a random CN tile (the graph is random, so placement cannot localize
    it); about half of all edges cross any bisection.
    """
    n_nodes = n_vns + n_vns // 2
    cols = ceil(sqrt(n_nodes))
    die_width_mm = cols * tile_mm
    rng = np.random.default_rng(seed)
    # Random edge endpoints: x-positions uniform over the die.
    xa = rng.uniform(0.0, die_width_mm, n_edges)
    xb = rng.uniform(0.0, die_width_mm, n_edges)
    mid = die_width_mm / 2.0
    crossing = int(np.count_nonzero((xa - mid) * (xb - mid) < 0))
    die_height_um = ceil(n_nodes / cols) * tile_mm * 1000.0
    capacity = int(
        die_height_um / tech.wire_pitch_um
        * tech.routing_layers
        * tech.utilization
    )
    return {
        "demand_tracks": float(crossing),
        "capacity_tracks": float(capacity),
        "congestion_ratio": crossing / max(1, capacity),
    }
