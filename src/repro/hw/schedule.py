"""Memory layout and phase schedules (the address/shuffle ROM contents).

The decoder's two half-iterations access the FU message RAMs in different
orders (paper Section 4):

* **VN phase** — "we just increment the reading address": the physical
  layout therefore fixes the VN-phase schedule.  A node's messages must be
  contiguous so the serial FU can detect the last-message flag; beyond
  that, the *order of groups* and the *order of words inside a group* are
  free (the VN update is commutative).
* **CN phase** — reads "from dedicated addresses, provided by the address
  RAM": local checks must be processed in chain order 0..q-1 (the zigzag
  forward update is sequential), but the order of the ``k-2`` words
  *within* a check is free ("the commutativity of the message processing
  within a check node is exploited").

Those free orders are exactly the degrees of freedom the simulated
annealing of :mod:`repro.hw.annealing` optimizes to avoid RAM write
conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .mapping import IpMapping


@dataclass
class MemoryLayout:
    """Physical placement of address words in the FU message RAMs.

    ``word_at[a]`` is the table word stored at physical address ``a``;
    ``phys[w]`` is its inverse.  Construction guarantees that words of one
    group stay contiguous (the VN-phase requirement).
    """

    mapping: IpMapping
    group_order: np.ndarray
    slot_orders: List[np.ndarray]

    @classmethod
    def canonical(cls, mapping: IpMapping) -> "MemoryLayout":
        """Table order: groups ascending, slots ascending."""
        n_groups = mapping.code.table.n_groups
        rows = mapping.code.table.rows
        return cls(
            mapping=mapping,
            group_order=np.arange(n_groups),
            slot_orders=[np.arange(len(rows[g])) for g in range(n_groups)],
        )

    def __post_init__(self) -> None:
        self._rebuild()

    def _rebuild(self) -> None:
        mapping = self.mapping
        # words grouped by group in canonical order
        groups = mapping.groups
        n_words = mapping.n_words
        words_of_group: List[np.ndarray] = []
        n_groups = len(self.slot_orders)
        for g in range(n_groups):
            words_of_group.append(np.nonzero(groups == g)[0])
        order: List[int] = []
        bases = np.zeros(n_groups, dtype=np.int64)
        for g in self.group_order:
            base = words_of_group[g]
            bases[g] = len(order)
            order.extend(int(base[s]) for s in self.slot_orders[g])
        self.word_at = np.array(order, dtype=np.int64)
        if self.word_at.size != n_words:
            raise ValueError("layout does not place every word exactly once")
        self.phys = np.empty(n_words, dtype=np.int64)
        self.phys[self.word_at] = np.arange(n_words)
        # Caches for the in-place annealing moves below.
        self._words_of_group = words_of_group
        self._group_base = bases

    def clone(self) -> "MemoryLayout":
        """Deep copy (for annealing moves)."""
        return MemoryLayout(
            mapping=self.mapping,
            group_order=self.group_order.copy(),
            slot_orders=[s.copy() for s in self.slot_orders],
        )

    # ------------------------------------------------------------------
    # In-place annealing moves.  Each is an involutive swap (undo =
    # re-apply) that keeps ``word_at``/``phys`` and the caches consistent
    # while touching only the affected physical slice — the incremental
    # alternative to ``clone()`` + full ``_rebuild()`` per proposal.
    # ------------------------------------------------------------------
    def swap_slots(self, g: int, i: int, j: int) -> tuple:
        """Swap two words inside group ``g``; returns the words moved."""
        order = self.slot_orders[g]
        order[i], order[j] = order[j], order[i]
        base = int(self._group_base[g])
        a, b = base + i, base + j
        w1, w2 = int(self.word_at[a]), int(self.word_at[b])
        self.word_at[a], self.word_at[b] = w2, w1
        self.phys[w1], self.phys[w2] = b, a
        return w1, w2

    def swap_groups(self, pi: int, pj: int) -> List[tuple]:
        """Swap the groups at placement positions ``pi``/``pj``.

        Rebuilds only the physical spans of the two groups — plus, when
        their sizes differ, everything placed between them (whose bases
        shift).  Returns the rebuilt ``(start, end)`` spans.
        """
        if pi > pj:
            pi, pj = pj, pi
        go = self.group_order
        gi, gj = int(go[pi]), int(go[pj])
        go[pi], go[pj] = gj, gi
        start = int(self._group_base[gi])
        if len(self.slot_orders[gi]) == len(self.slot_orders[gj]):
            # Equal sizes: the two spans trade content, bases between
            # are untouched.
            spans = []
            for g, base in ((gj, start), (gi, int(self._group_base[gj]))):
                words = self._words_of_group[g][self.slot_orders[g]]
                end = base + len(words)
                self.word_at[base:end] = words
                self.phys[words] = np.arange(base, end)
                self._group_base[g] = base
                spans.append((base, end))
            return spans
        pos = start
        for p in range(pi, pj + 1):
            g = int(go[p])
            words = self._words_of_group[g][self.slot_orders[g]]
            size = len(words)
            self.word_at[pos:pos + size] = words
            self._group_base[g] = pos
            pos += size
        end = pos
        self.phys[self.word_at[start:end]] = np.arange(start, end)
        return [(start, end)]

    def partition_of_word(self, w: int, n_partitions: int) -> int:
        """RAM partition (Fig. 5) holding word ``w``: address LSBs."""
        return int(self.phys[w]) % n_partitions


@dataclass
class CnPhaseSchedule:
    """Read order of the check-node phase.

    ``read_order`` lists table words cycle by cycle; cycle ``r*(k-2)+i``
    reads the ``i``-th word of local check ``r``.  Checks appear in chain
    order; only the within-check order varies.
    """

    mapping: IpMapping
    within_check_orders: List[np.ndarray]

    @classmethod
    def canonical(cls, mapping: IpMapping) -> "CnPhaseSchedule":
        """Within-check order = canonical word order."""
        q = mapping.q
        orders = []
        for r in range(q):
            words = mapping.words_of_check_residue(r)
            orders.append(np.arange(len(words)))
        return cls(mapping=mapping, within_check_orders=orders)

    def __post_init__(self) -> None:
        self._words_of_residue = [
            self.mapping.words_of_check_residue(r)
            for r in range(self.mapping.q)
        ]
        self._rebuild()

    def _rebuild(self) -> None:
        reads: List[int] = []
        bounds: List[int] = [0]
        for r, order in enumerate(self.within_check_orders):
            base = self._words_of_residue[r]
            reads.extend(int(base[i]) for i in order)
            bounds.append(len(reads))
        self.read_order = np.array(reads, dtype=np.int64)
        self.check_bounds = np.array(bounds, dtype=np.int64)
        if self.read_order.size != self.mapping.n_words:
            raise ValueError("schedule does not read every word exactly once")

    def clone(self) -> "CnPhaseSchedule":
        """Deep copy (for annealing moves)."""
        return CnPhaseSchedule(
            mapping=self.mapping,
            within_check_orders=[o.copy() for o in self.within_check_orders],
        )

    def swap_within_check(self, r: int, i: int, j: int) -> tuple:
        """In-place involutive swap of check ``r``'s read positions.

        Updates ``read_order`` directly (check spans are fixed, so two
        entries change) instead of a full ``_rebuild``.  Returns the two
        affected read positions.
        """
        order = self.within_check_orders[r]
        order[i], order[j] = order[j], order[i]
        s = int(self.check_bounds[r])
        a, b = s + i, s + j
        self.read_order[a], self.read_order[b] = (
            self.read_order[b], self.read_order[a],
        )
        return a, b


@dataclass
class DecoderSchedule:
    """Complete access program: layout plus CN-phase read order.

    Provides the ROM images of paper Fig. 4: the address RAM (physical
    address per CN-phase cycle) and the shuffle RAM (cyclic shift per
    cycle, used in both phases).
    """

    layout: MemoryLayout
    cn_schedule: CnPhaseSchedule

    @classmethod
    def canonical(cls, mapping: IpMapping) -> "DecoderSchedule":
        """The unoptimized schedule straight from the table."""
        return cls(
            layout=MemoryLayout.canonical(mapping),
            cn_schedule=CnPhaseSchedule.canonical(mapping),
        )

    @property
    def mapping(self) -> IpMapping:
        """The node mapping both components refer to."""
        return self.layout.mapping

    # ------------------------------------------------------------------
    # ROM images
    # ------------------------------------------------------------------
    def address_rom(self) -> np.ndarray:
        """Physical RAM address read at each CN-phase cycle."""
        return self.layout.phys[self.cn_schedule.read_order]

    def shuffle_rom_cn(self) -> np.ndarray:
        """Cyclic shift applied at each CN-phase cycle (write-back uses
        the inverse shift)."""
        return self.mapping.shifts[self.cn_schedule.read_order]

    def shuffle_rom_vn(self) -> np.ndarray:
        """Cyclic shift applied at each VN-phase cycle (= layout order)."""
        return self.mapping.shifts[self.layout.word_at]

    def rom_bits(self) -> int:
        """Total connectivity-storage bits (the 0.075 mm² of Table 3).

        One word per cycle: a physical address plus a shift amount.
        """
        n = self.mapping.n_words
        addr_bits = max(1, int(np.ceil(np.log2(max(2, n)))))
        shift_bits = max(
            1, int(np.ceil(np.log2(self.mapping.parallelism)))
        )
        return n * (addr_bits + shift_bits)

    # ------------------------------------------------------------------
    def vn_phase_words(self) -> np.ndarray:
        """Table word read at each VN-phase cycle (incrementing address)."""
        return self.layout.word_at

    def vn_node_bounds(self) -> np.ndarray:
        """VN-phase cycle indices at which a node's messages end.

        Entry ``g`` is the cycle after the last word of the ``g``-th
        *placed* group (layout order) — where the serial FU's "last
        message" control flag fires.
        """
        sizes = [
            len(self.layout.slot_orders[g]) for g in self.layout.group_order
        ]
        return np.concatenate(([0], np.cumsum(sizes)))

    def validate(self) -> None:
        """Cross-check layout and schedule cover every word once."""
        n = self.mapping.n_words
        if sorted(self.layout.word_at.tolist()) != list(range(n)):
            raise AssertionError("layout is not a permutation of words")
        if sorted(self.cn_schedule.read_order.tolist()) != list(range(n)):
            raise AssertionError("CN schedule is not a permutation of words")
        # chain order: residues must be non-decreasing block-wise
        residues = self.mapping.residues[self.cn_schedule.read_order]
        width = self.mapping.code.profile.check_degree - 2
        expected = np.repeat(np.arange(self.mapping.q), width)
        if not np.array_equal(residues, expected):
            raise AssertionError(
                "CN schedule violates the sequential chain order"
            )
