"""Simulated-annealing optimization of the RAM addressing scheme.

Paper Section 4: "We use simulated annealing to find the best addressing
scheme to reduce RAM access conflicts and hence to minimize the buffer
overhead.  This optimization step ensures that only one buffer is
required".

The search space is exactly the freedom the architecture leaves open
(see :mod:`repro.hw.schedule`):

* the order of information-node groups in the physical layout,
* the order of words inside each group,
* the read order of the ``k-2`` words inside each check.

The objective is lexicographic: first the peak write-buffer depth of the
critical check-node phase, then total buffer pressure, then drain cycles —
encoded as a weighted scalar.

Two proposal engines drive the same annealing loop (identical RNG
stream, identical trajectory — enforced by tests):

* ``kernel="reference"`` — the seed implementation: every proposal
  clones the schedule, runs the full ``_rebuild``, and simulates with
  the reference deque walk of :mod:`repro.hw.conflicts`.
* ``kernel="fast"`` (default) — incremental moves: proposals are
  applied in place as involutive swaps (undo = re-apply), only the
  affected address-ROM entries are patched, degenerate no-op proposals
  skip evaluation entirely, and the cost comes from the vectorized
  :meth:`repro.hw.fast_conflicts.CnKernelContext.cost_components` pass
  (scalar fast kernel as fallback when the write-port limit binds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceRecorder
from .conflicts import (
    DEFAULT_LATENCY,
    ConflictStats,
    _check_kernel,
    simulate_cn_phase,
    simulate_vn_phase,
)
from .mapping import IpMapping
from .memory import DEFAULT_PARTITIONS, DEFAULT_WRITE_PORTS
from .schedule import CnPhaseSchedule, DecoderSchedule, MemoryLayout


@dataclass
class AnnealingConfig:
    """Hyper-parameters of the annealing run."""

    iterations: int = 1500
    initial_temperature: float = 4.0
    cooling: float = 0.995
    #: Seed for the proposal RNG; accepts anything
    #: :func:`numpy.random.default_rng` does (ints, ``SeedSequence`` —
    #: the multi-chain engine passes spawned sequences).
    seed: object = 1
    latency: int = DEFAULT_LATENCY
    n_partitions: int = DEFAULT_PARTITIONS
    write_ports: int = DEFAULT_WRITE_PORTS
    include_vn_phase: bool = False
    #: Emit one ``anneal_window`` trace event every this many proposals.
    trace_every: int = 100
    #: Proposal engine: ``"fast"`` (incremental, default) or
    #: ``"reference"`` (clone + rebuild + deque simulation).
    kernel: str = "fast"


@dataclass
class AnnealingResult:
    """Outcome of one annealing run."""

    schedule: DecoderSchedule
    initial_stats: ConflictStats
    final_stats: ConflictStats
    cost_trace: List[float] = field(default_factory=list)
    accepted_moves: int = 0
    proposed_moves: int = 0
    #: Cost of :attr:`schedule` (the best visited state).
    best_cost: float = float("nan")

    @property
    def buffer_reduction(self) -> int:
        """Peak-buffer depth saved versus the canonical schedule."""
        return self.initial_stats.peak_buffer - self.final_stats.peak_buffer


def _cn_phase_cost(peak: int, total_deferred: int, drain: int) -> float:
    """CN-phase share of the lexicographic objective."""
    return 1000.0 * peak + 1.0 * total_deferred + 10.0 * drain


def _vn_phase_cost(peak: int, total_deferred: int) -> float:
    """VN-phase share (only with ``include_vn_phase``)."""
    return 100.0 * peak + 0.1 * total_deferred


def _accept_prob(delta: float, temperature: float) -> float:
    """Metropolis acceptance probability, overflow-safe.

    The exponent is clamped to ``<= 0`` so a negative ``delta`` reaching
    this (it normally short-circuits to acceptance) cannot overflow
    ``exp`` at tiny temperatures; for the evaluated ``delta > 0`` path
    the clamp is exact (a no-op).
    """
    return float(np.exp(min(0.0, -delta / max(temperature, 1e-9))))


def schedule_cost(
    schedule: DecoderSchedule,
    latency: int = DEFAULT_LATENCY,
    n_partitions: int = DEFAULT_PARTITIONS,
    write_ports: int = DEFAULT_WRITE_PORTS,
    include_vn_phase: bool = False,
    kernel: str = "fast",
) -> float:
    """Scalarized objective (lower is better)."""
    cn = simulate_cn_phase(
        schedule, latency, n_partitions, write_ports, kernel=kernel
    )
    cost = _cn_phase_cost(cn.peak_buffer, cn.total_deferred, cn.drain_cycles)
    if include_vn_phase:
        vn = simulate_vn_phase(
            schedule, latency, n_partitions, write_ports, kernel=kernel
        )
        cost += _vn_phase_cost(vn.peak_buffer, vn.total_deferred)
    return cost


class _ReferenceEngine:
    """Seed proposal engine: clone + full rebuild + reference simulator."""

    def __init__(self, mapping: IpMapping, config: AnnealingConfig) -> None:
        self.mapping = mapping
        self.config = config
        self.current = DecoderSchedule.canonical(mapping)
        self._candidate: Optional[DecoderSchedule] = None
        self._best = self.current

    def current_schedule(self) -> DecoderSchedule:
        return self.current

    def cost_of_current(self) -> float:
        return self._cost(self.current)

    def _cost(self, schedule: DecoderSchedule) -> float:
        cfg = self.config
        return schedule_cost(
            schedule,
            cfg.latency,
            cfg.n_partitions,
            cfg.write_ports,
            cfg.include_vn_phase,
            kernel="reference",
        )

    def propose(self, rng: np.random.Generator) -> float:
        """Draw a random neighbour; returns its cost (never skips)."""
        schedule = self.current
        move = rng.integers(0, 3)
        layout = schedule.layout
        cn = schedule.cn_schedule
        if move == 0:
            # Swap the within-check read order of one check.
            cn = cn.clone()
            r = int(rng.integers(0, self.mapping.q))
            order = cn.within_check_orders[r]
            if len(order) >= 2:
                i, j = rng.choice(len(order), size=2, replace=False)
                order[i], order[j] = order[j], order[i]
            cn._rebuild()
        elif move == 1:
            # Swap two words within one group in the layout.
            layout = layout.clone()
            g = int(rng.integers(0, len(layout.slot_orders)))
            order = layout.slot_orders[g]
            if len(order) >= 2:
                i, j = rng.choice(len(order), size=2, replace=False)
                order[i], order[j] = order[j], order[i]
            layout._rebuild()
        else:
            # Swap two groups in the layout.
            layout = layout.clone()
            order = layout.group_order
            if len(order) >= 2:
                i, j = rng.choice(len(order), size=2, replace=False)
                order[i], order[j] = order[j], order[i]
            layout._rebuild()
        self._candidate = DecoderSchedule(layout=layout, cn_schedule=cn)
        return self._cost(self._candidate)

    def commit(self) -> None:
        self.current = self._candidate
        self._candidate = None

    def reject(self) -> None:
        self._candidate = None

    def snapshot_best(self) -> None:
        self._best = self.current

    def best_schedule(self) -> DecoderSchedule:
        return self._best


class _FastEngine:
    """Incremental proposal engine: in-place involutive swap moves.

    The working schedule state lives in mutable arrays (``read_order``,
    ``word_at``/``phys``, the address ROM and its inverse); a proposal
    applies one swap, patches only the affected ROM entries, and
    evaluates through :meth:`CnKernelContext.cost_components`.  A
    rejected proposal is undone by re-applying the same swap.  Draws
    from the RNG in exactly the reference engine's order, so both
    engines walk identical trajectories for a given seed.
    """

    def __init__(self, mapping: IpMapping, config: AnnealingConfig) -> None:
        from .fast_conflicts import CnKernelContext, simulate_vn_phase_fast

        self.mapping = mapping
        self.config = config
        self.layout = MemoryLayout.canonical(mapping)
        self.cn = CnPhaseSchedule.canonical(mapping)
        self.ctx = CnKernelContext(
            self.cn.check_bounds,
            config.latency,
            config.n_partitions,
            config.write_ports,
        )
        self._simulate_vn = simulate_vn_phase_fast
        n = mapping.n_words
        self.rom = self.layout.phys[self.cn.read_order]
        self.pos_of_word = np.empty(n, dtype=np.int64)
        self.pos_of_word[self.cn.read_order] = np.arange(n)
        self.q = mapping.q
        self.n_groups = len(self.layout.slot_orders)
        self._vn_cost = (
            self._eval_vn() if config.include_vn_phase else 0.0
        )
        self._pending = None
        self._pending_vn_cost = self._vn_cost
        self._best = None
        self.snapshot_best()

    # -- evaluation ----------------------------------------------------
    def _eval_cn(self) -> float:
        components = self.ctx.cost_components(self.rom)
        if components is None:  # write-port limit binds: exact fallback
            stats = self.ctx.stats(self.rom)
            components = (
                stats.peak_buffer, stats.total_deferred, stats.drain_cycles
            )
        return _cn_phase_cost(*components)

    def _eval_vn(self) -> float:
        cfg = self.config
        stats = self._simulate_vn(
            DecoderSchedule(layout=self.layout, cn_schedule=self.cn),
            cfg.latency, cfg.n_partitions, cfg.write_ports,
        )
        return _vn_phase_cost(stats.peak_buffer, stats.total_deferred)

    def current_schedule(self) -> DecoderSchedule:
        return DecoderSchedule(layout=self.layout, cn_schedule=self.cn)

    def cost_of_current(self) -> float:
        return self._eval_cn() + self._vn_cost

    # -- move application ----------------------------------------------
    def _swap_read_positions(self, a: int, b: int) -> None:
        rom = self.rom
        rom[a], rom[b] = rom[b], rom[a]
        read_order = self.cn.read_order
        self.pos_of_word[read_order[a]] = a
        self.pos_of_word[read_order[b]] = b

    def _apply_cn_swap(self, r: int, i: int, j: int) -> None:
        a, b = self.cn.swap_within_check(r, i, j)
        self._swap_read_positions(a, b)

    def _apply_slot_swap(self, g: int, i: int, j: int) -> None:
        w1, w2 = self.layout.swap_slots(g, i, j)
        p1, p2 = self.pos_of_word[w1], self.pos_of_word[w2]
        rom = self.rom
        rom[p1], rom[p2] = rom[p2], rom[p1]

    def _apply_group_swap(self, pi: int, pj: int) -> None:
        for start, end in self.layout.swap_groups(pi, pj):
            words = self.layout.word_at[start:end]
            self.rom[self.pos_of_word[words]] = np.arange(start, end)

    def propose(self, rng: np.random.Generator) -> Optional[float]:
        """Apply a random neighbour move in place; ``None`` if no-op.

        The RNG draw order matches :class:`_ReferenceEngine.propose`
        draw for draw; degenerate proposals (an order too short to
        swap) consume the same draws but skip the evaluation — the
        reference engine evaluates an identical schedule there and gets
        ``delta == 0``, accepted without a further draw either way.
        """
        move = rng.integers(0, 3)
        if move == 0:
            r = int(rng.integers(0, self.q))
            order = self.cn.within_check_orders[r]
            if len(order) < 2:
                return None
            i, j = rng.choice(len(order), size=2, replace=False)
            self._pending = ("cn", r, int(i), int(j))
            self._apply_cn_swap(r, int(i), int(j))
        elif move == 1:
            g = int(rng.integers(0, self.n_groups))
            order = self.layout.slot_orders[g]
            if len(order) < 2:
                return None
            i, j = rng.choice(len(order), size=2, replace=False)
            self._pending = ("slot", g, int(i), int(j))
            self._apply_slot_swap(g, int(i), int(j))
        else:
            if self.n_groups < 2:
                return None
            i, j = rng.choice(self.n_groups, size=2, replace=False)
            self._pending = ("group", int(i), int(j))
            self._apply_group_swap(int(i), int(j))
        if self.config.include_vn_phase and self._pending[0] == "group":
            # Only group placement changes the VN-phase node bounds.
            self._pending_vn_cost = self._eval_vn()
        else:
            self._pending_vn_cost = self._vn_cost
        return self._eval_cn() + self._pending_vn_cost

    def commit(self) -> None:
        self._vn_cost = self._pending_vn_cost
        self._pending = None

    def reject(self) -> None:
        """Undo the pending move (every move is an involutive swap)."""
        pending = self._pending
        if pending[0] == "cn":
            self._apply_cn_swap(*pending[1:])
        elif pending[0] == "slot":
            self._apply_slot_swap(*pending[1:])
        else:
            self._apply_group_swap(*pending[1:])
        self._pending = None

    # -- best tracking -------------------------------------------------
    def snapshot_best(self) -> None:
        """Record the current state as cheap array copies."""
        self._best = (
            self.layout.group_order.copy(),
            [o.copy() for o in self.layout.slot_orders],
            [o.copy() for o in self.cn.within_check_orders],
        )

    def best_schedule(self) -> DecoderSchedule:
        group_order, slot_orders, within_orders = self._best
        return DecoderSchedule(
            layout=MemoryLayout(self.mapping, group_order, slot_orders),
            cn_schedule=CnPhaseSchedule(self.mapping, within_orders),
        )


class AddressingAnnealer:
    """Anneal a :class:`DecoderSchedule` for one code rate."""

    def __init__(
        self,
        mapping: IpMapping,
        config: Optional[AnnealingConfig] = None,
        trace: Optional[TraceRecorder] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.mapping = mapping
        self.config = config or AnnealingConfig()
        _check_kernel(self.config.kernel)
        self.trace = trace
        self.registry = registry
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def run(self) -> AnnealingResult:
        """Anneal from the canonical schedule; deterministic given seed."""
        cfg = self.config
        engine = (
            _FastEngine(self.mapping, cfg)
            if cfg.kernel == "fast"
            else _ReferenceEngine(self.mapping, cfg)
        )
        initial_stats = simulate_cn_phase(
            engine.current_schedule(),
            cfg.latency,
            cfg.n_partitions,
            cfg.write_ports,
            registry=self.registry,
            kernel=cfg.kernel,
        )
        current_cost = engine.cost_of_current()
        best_cost = current_cost
        engine.snapshot_best()
        temperature = cfg.initial_temperature
        trace: List[float] = [current_cost]
        accepted = 0
        window_accepted = 0
        window = max(1, cfg.trace_every)
        for move in range(1, cfg.iterations + 1):
            cand_cost = engine.propose(self._rng)
            if cand_cost is None:
                # Degenerate no-op proposal: the reference engine would
                # evaluate an unchanged schedule, see delta == 0, and
                # accept without drawing the acceptance uniform.
                accepted += 1
                window_accepted += 1
            else:
                delta = cand_cost - current_cost
                if delta <= 0 or self._rng.random() < _accept_prob(
                    delta, temperature
                ):
                    engine.commit()
                    current_cost = cand_cost
                    accepted += 1
                    window_accepted += 1
                    if cand_cost < best_cost:
                        best_cost = cand_cost
                        engine.snapshot_best()
                else:
                    engine.reject()
            temperature *= cfg.cooling
            trace.append(current_cost)
            if self.trace is not None and (
                move % window == 0 or move == cfg.iterations
            ):
                span = window if move % window == 0 else move % window
                self.trace.event(
                    "anneal_window",
                    move=move,
                    temperature=float(temperature),
                    accepted=window_accepted,
                    window=span,
                    acceptance_rate=window_accepted / span,
                    current_cost=float(current_cost),
                    best_cost=float(best_cost),
                )
                window_accepted = 0
        if self.registry is not None and self.registry.enabled:
            self.registry.counter("hw.anneal.proposed").inc(cfg.iterations)
            self.registry.counter("hw.anneal.accepted").inc(accepted)
        best = engine.best_schedule()
        final_stats = simulate_cn_phase(
            best,
            cfg.latency,
            cfg.n_partitions,
            cfg.write_ports,
            registry=self.registry,
            kernel=cfg.kernel,
        )
        if self.trace is not None:
            self.trace.event(
                "anneal_result",
                proposed=cfg.iterations,
                accepted=accepted,
                initial_peak_buffer=initial_stats.peak_buffer,
                final_peak_buffer=final_stats.peak_buffer,
                best_cost=float(best_cost),
            )
        return AnnealingResult(
            schedule=best,
            initial_stats=initial_stats,
            final_stats=final_stats,
            cost_trace=trace,
            accepted_moves=accepted,
            proposed_moves=cfg.iterations,
            best_cost=float(best_cost),
        )


def optimize_rate(
    mapping: IpMapping,
    config: Optional[AnnealingConfig] = None,
    trace: Optional[TraceRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
) -> AnnealingResult:
    """Convenience wrapper: anneal the addressing for one code."""
    return AddressingAnnealer(mapping, config, trace, registry).run()
