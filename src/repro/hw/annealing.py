"""Simulated-annealing optimization of the RAM addressing scheme.

Paper Section 4: "We use simulated annealing to find the best addressing
scheme to reduce RAM access conflicts and hence to minimize the buffer
overhead.  This optimization step ensures that only one buffer is
required".

The search space is exactly the freedom the architecture leaves open
(see :mod:`repro.hw.schedule`):

* the order of information-node groups in the physical layout,
* the order of words inside each group,
* the read order of the ``k-2`` words inside each check.

The objective is lexicographic: first the peak write-buffer depth of the
critical check-node phase, then total buffer pressure, then drain cycles —
encoded as a weighted scalar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceRecorder
from .conflicts import (
    DEFAULT_LATENCY,
    ConflictStats,
    simulate_cn_phase,
    simulate_vn_phase,
)
from .mapping import IpMapping
from .memory import DEFAULT_PARTITIONS, DEFAULT_WRITE_PORTS
from .schedule import CnPhaseSchedule, DecoderSchedule, MemoryLayout


@dataclass
class AnnealingConfig:
    """Hyper-parameters of the annealing run."""

    iterations: int = 1500
    initial_temperature: float = 4.0
    cooling: float = 0.995
    seed: int = 1
    latency: int = DEFAULT_LATENCY
    n_partitions: int = DEFAULT_PARTITIONS
    write_ports: int = DEFAULT_WRITE_PORTS
    include_vn_phase: bool = False
    #: Emit one ``anneal_window`` trace event every this many proposals.
    trace_every: int = 100


@dataclass
class AnnealingResult:
    """Outcome of one annealing run."""

    schedule: DecoderSchedule
    initial_stats: ConflictStats
    final_stats: ConflictStats
    cost_trace: List[float] = field(default_factory=list)
    accepted_moves: int = 0
    proposed_moves: int = 0

    @property
    def buffer_reduction(self) -> int:
        """Peak-buffer depth saved versus the canonical schedule."""
        return self.initial_stats.peak_buffer - self.final_stats.peak_buffer


def schedule_cost(
    schedule: DecoderSchedule,
    latency: int = DEFAULT_LATENCY,
    n_partitions: int = DEFAULT_PARTITIONS,
    write_ports: int = DEFAULT_WRITE_PORTS,
    include_vn_phase: bool = False,
) -> float:
    """Scalarized objective (lower is better)."""
    cn = simulate_cn_phase(schedule, latency, n_partitions, write_ports)
    cost = (
        1000.0 * cn.peak_buffer
        + 1.0 * cn.total_deferred
        + 10.0 * cn.drain_cycles
    )
    if include_vn_phase:
        vn = simulate_vn_phase(schedule, latency, n_partitions, write_ports)
        cost += 100.0 * vn.peak_buffer + 0.1 * vn.total_deferred
    return cost


class AddressingAnnealer:
    """Anneal a :class:`DecoderSchedule` for one code rate."""

    def __init__(
        self,
        mapping: IpMapping,
        config: Optional[AnnealingConfig] = None,
        trace: Optional[TraceRecorder] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.mapping = mapping
        self.config = config or AnnealingConfig()
        self.trace = trace
        self.registry = registry
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def run(self) -> AnnealingResult:
        """Anneal from the canonical schedule; deterministic given seed."""
        cfg = self.config
        current = DecoderSchedule.canonical(self.mapping)
        initial_stats = simulate_cn_phase(
            current,
            cfg.latency,
            cfg.n_partitions,
            cfg.write_ports,
            registry=self.registry,
        )
        current_cost = self._cost(current)
        best = current
        best_cost = current_cost
        temperature = cfg.initial_temperature
        trace: List[float] = [current_cost]
        accepted = 0
        window_accepted = 0
        window = max(1, cfg.trace_every)
        for move in range(1, cfg.iterations + 1):
            candidate = self._propose(current)
            cand_cost = self._cost(candidate)
            delta = cand_cost - current_cost
            if delta <= 0 or self._rng.random() < np.exp(
                -delta / max(temperature, 1e-9)
            ):
                current, current_cost = candidate, cand_cost
                accepted += 1
                window_accepted += 1
                if cand_cost < best_cost:
                    best, best_cost = candidate, cand_cost
            temperature *= cfg.cooling
            trace.append(current_cost)
            if self.trace is not None and (
                move % window == 0 or move == cfg.iterations
            ):
                span = window if move % window == 0 else move % window
                self.trace.event(
                    "anneal_window",
                    move=move,
                    temperature=float(temperature),
                    accepted=window_accepted,
                    window=span,
                    acceptance_rate=window_accepted / span,
                    current_cost=float(current_cost),
                    best_cost=float(best_cost),
                )
                window_accepted = 0
        if self.registry is not None and self.registry.enabled:
            self.registry.counter("hw.anneal.proposed").inc(cfg.iterations)
            self.registry.counter("hw.anneal.accepted").inc(accepted)
        final_stats = simulate_cn_phase(
            best,
            cfg.latency,
            cfg.n_partitions,
            cfg.write_ports,
            registry=self.registry,
        )
        if self.trace is not None:
            self.trace.event(
                "anneal_result",
                proposed=cfg.iterations,
                accepted=accepted,
                initial_peak_buffer=initial_stats.peak_buffer,
                final_peak_buffer=final_stats.peak_buffer,
                best_cost=float(best_cost),
            )
        return AnnealingResult(
            schedule=best,
            initial_stats=initial_stats,
            final_stats=final_stats,
            cost_trace=trace,
            accepted_moves=accepted,
            proposed_moves=cfg.iterations,
        )

    # ------------------------------------------------------------------
    def _cost(self, schedule: DecoderSchedule) -> float:
        cfg = self.config
        return schedule_cost(
            schedule,
            cfg.latency,
            cfg.n_partitions,
            cfg.write_ports,
            cfg.include_vn_phase,
        )

    def _propose(self, schedule: DecoderSchedule) -> DecoderSchedule:
        """Random neighbour: one of the three legal move types."""
        move = self._rng.integers(0, 3)
        layout = schedule.layout
        cn = schedule.cn_schedule
        if move == 0:
            # Swap the within-check read order of one check.
            cn = cn.clone()
            r = int(self._rng.integers(0, self.mapping.q))
            order = cn.within_check_orders[r]
            if len(order) >= 2:
                i, j = self._rng.choice(len(order), size=2, replace=False)
                order[i], order[j] = order[j], order[i]
            cn._rebuild()
        elif move == 1:
            # Swap two words within one group in the layout.
            layout = layout.clone()
            g = int(self._rng.integers(0, len(layout.slot_orders)))
            order = layout.slot_orders[g]
            if len(order) >= 2:
                i, j = self._rng.choice(len(order), size=2, replace=False)
                order[i], order[j] = order[j], order[i]
            layout._rebuild()
        else:
            # Swap two groups in the layout.
            layout = layout.clone()
            order = layout.group_order
            if len(order) >= 2:
                i, j = self._rng.choice(len(order), size=2, replace=False)
                order[i], order[j] = order[j], order[i]
            layout._rebuild()
        return DecoderSchedule(layout=layout, cn_schedule=cn)


def optimize_rate(
    mapping: IpMapping,
    config: Optional[AnnealingConfig] = None,
    trace: Optional[TraceRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
) -> AnnealingResult:
    """Convenience wrapper: anneal the addressing for one code."""
    return AddressingAnnealer(mapping, config, trace, registry).run()
