"""Throughput model — paper Eq. (7)/(8) and the 255 Mbit/s requirement.

The decoder processes 360 messages per clock cycle, needs ``E_IN / P``
cycles per half iteration (information edges only; the zigzag chain is
handled concurrently inside the FUs), receives 10 channel values per clock
during I/O, and overlaps input of the next frame with output of the
previous one::

    #cyc = C / P_IO + It * (2 * E_IN / P + T_latency)

    T = I / #cyc * f_clk                                  (Eq. 8)

with ``C`` the codeword length, ``I = K`` the information bits, ``It`` the
iteration count (30 in the paper), and ``f_clk = 270 MHz`` worst-case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..codes.standard import CodeRateProfile, all_profiles

#: Channel values accepted per clock cycle during I/O (paper Section 4).
DEFAULT_IO_PARALLELISM = 10

#: Synthesis clock under worst-case conditions (paper Section 5).
DEFAULT_CLOCK_HZ = 270e6

#: Iterations assumed for the published throughput figure.
DEFAULT_ITERATIONS = 30

#: Per-iteration pipeline latency (functional units + shuffling network).
DEFAULT_LATENCY_CYCLES = 8

#: The DVB-S2 base-station requirement the core must meet.
REQUIRED_THROUGHPUT_BPS = 255e6


@dataclass(frozen=True)
class ThroughputModel:
    """Cycle and throughput calculator for one code-rate profile."""

    profile: CodeRateProfile
    clock_hz: float = DEFAULT_CLOCK_HZ
    io_parallelism: int = DEFAULT_IO_PARALLELISM
    latency_cycles: int = DEFAULT_LATENCY_CYCLES

    # ------------------------------------------------------------------
    def io_cycles(self) -> int:
        """Cycles to stream one codeword in (output overlaps input)."""
        c = self.profile.n
        return -(-c // self.io_parallelism)  # ceil division

    def cycles_per_iteration(self) -> int:
        """Cycles of one full iteration: both phases plus latency."""
        e_in = self.profile.e_in
        p = self.profile.parallelism
        return 2 * (e_in // p) + self.latency_cycles

    def decode_cycles(self, iterations: int = DEFAULT_ITERATIONS) -> int:
        """Cycles of the decode phase alone (no I/O): ``It`` iterations.

        This is the occupancy of the decode *stage* in the
        frame-pipelined model (:mod:`repro.hw.pipeline`), where I/O
        streams concurrently instead of serially as in Eq. 8.
        """
        return iterations * self.cycles_per_iteration()

    def cycles_per_block(self, iterations: int = DEFAULT_ITERATIONS) -> int:
        """Total cycles to decode one frame (paper Eq. 8 denominator)."""
        return self.io_cycles() + self.decode_cycles(iterations)

    def throughput_bps(self, iterations: int = DEFAULT_ITERATIONS) -> float:
        """Information throughput in bit/s at the configured clock."""
        return (
            self.profile.k_info
            / self.cycles_per_block(iterations)
            * self.clock_hz
        )

    def coded_throughput_bps(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> float:
        """Channel-bit throughput (codeword bits per second)."""
        return (
            self.profile.n / self.cycles_per_block(iterations) * self.clock_hz
        )

    def meets_requirement(
        self,
        iterations: int = DEFAULT_ITERATIONS,
        requirement_bps: float = REQUIRED_THROUGHPUT_BPS,
        coded: bool = True,
    ) -> bool:
        """Check the 255 Mbit/s DVB-S2 base-station requirement.

        The standard's requirement is on the *channel* symbol stream, so
        by default the coded throughput is compared.
        """
        rate = (
            self.coded_throughput_bps(iterations)
            if coded
            else self.throughput_bps(iterations)
        )
        return rate >= requirement_bps

    def max_iterations_at_requirement(
        self,
        requirement_bps: float = REQUIRED_THROUGHPUT_BPS,
        coded: bool = True,
    ) -> int:
        """Largest iteration count still meeting the requirement."""
        bits = self.profile.n if coded else self.profile.k_info
        budget = bits * self.clock_hz / requirement_bps - self.io_cycles()
        if budget <= 0:
            return 0
        return int(budget // self.cycles_per_iteration())


def throughput_table(
    iterations: int = DEFAULT_ITERATIONS,
    clock_hz: float = DEFAULT_CLOCK_HZ,
) -> List[Dict[str, float]]:
    """Per-rate throughput summary over all eleven DVB-S2 rates."""
    rows = []
    for profile in all_profiles():
        model = ThroughputModel(profile, clock_hz=clock_hz)
        rows.append(
            {
                "rate": profile.name,
                "info_bits": profile.k_info,
                "cycles": model.cycles_per_block(iterations),
                "info_throughput_mbps": model.throughput_bps(iterations)
                / 1e6,
                "coded_throughput_mbps": model.coded_throughput_bps(
                    iterations
                )
                / 1e6,
                "meets_255": model.meets_requirement(iterations),
            }
        )
    return rows
