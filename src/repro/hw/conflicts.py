"""Cycle-accurate RAM write-conflict simulation (paper Section 4 / Fig. 5).

During the check-node phase the decoder reads one message per FU per cycle
from "dedicated addresses" while previously computed messages stream back
through the shuffling network.  With single-port SRAMs a write can only
proceed to a partition not being read this cycle, and at most
``write_ports`` writes (to distinct partitions) are accepted per cycle;
anything else waits in the write buffer.  The paper uses simulated
annealing over the addressing scheme to make one small buffer suffice for
all code rates — :mod:`repro.hw.annealing` reproduces that optimization
against the statistics computed here.

Because all 360 FUs run in lockstep and read the *same* address every
cycle, one FU's access trace is every FU's access trace; the simulation
therefore models a single FU exactly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.registry import MetricsRegistry
from .memory import DEFAULT_PARTITIONS, DEFAULT_WRITE_PORTS
from .schedule import DecoderSchedule

#: Pipeline depth between reading a check's last input message and its
#: first output message appearing at the shuffling network.
DEFAULT_LATENCY = 3

#: Write-buffer occupancy bucket bounds for the conflict histograms.
BUFFER_OCCUPANCY_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64)


#: Selectable simulation kernels: the reference deque walk of
#: :func:`_simulate` and the vectorized kernel of
#: :mod:`repro.hw.fast_conflicts` (bit-identical statistics).
KERNELS = ("reference", "fast")


@dataclass
class ConflictStats:
    """Result of simulating one memory phase.

    Attributes
    ----------
    cycles:
        Total cycles including the drain tail after the last read.
    read_cycles:
        Cycles spent issuing reads (= number of address words).
    peak_buffer:
        Maximum number of writes waiting at any end of cycle — the
        required write-buffer depth.
    total_deferred:
        Sum of buffer occupancies (buffer pressure; annealing tie-break).
    blocked_write_cycles:
        Cycles in which at least one pending write could not proceed
        because of a partition conflict.
    drain_cycles:
        Cycles needed after the last read to empty the buffer.
    """

    cycles: int
    read_cycles: int
    peak_buffer: int
    total_deferred: int
    blocked_write_cycles: int
    drain_cycles: int


def _simulate(
    read_addrs: np.ndarray,
    emissions: Dict[int, List[int]],
    n_partitions: int,
    write_ports: int,
    registry: Optional[MetricsRegistry] = None,
    metric_prefix: str = "hw.conflicts",
) -> ConflictStats:
    """Generic one-FU phase simulation.

    Parameters
    ----------
    read_addrs:
        Physical address read at each cycle ``0..n-1``.
    emissions:
        ``cycle -> [write addresses]`` for results leaving the datapath.
    registry:
        Optional metrics sink.  When given, the per-cycle write-buffer
        occupancy is recorded into ``<prefix>.buffer_occupancy`` and the
        phase totals into ``<prefix>.*`` counters/histograms.  Opt-in
        (not the global registry) so the annealer's inner loop, which
        calls this thousands of times, stays unmetered.
    """
    n_reads = len(read_addrs)
    buffer: deque = deque()
    peak = 0
    total_deferred = 0
    blocked_cycles = 0
    cycle = 0
    occupancy_hist = None
    if registry is not None and registry.enabled:
        occupancy_hist = registry.histogram(
            f"{metric_prefix}.buffer_occupancy", BUFFER_OCCUPANCY_BUCKETS
        )
    last_emission = max(emissions) if emissions else -1
    while cycle < n_reads or buffer or cycle <= last_emission:
        for addr in emissions.get(cycle, ()):  # fresh results arrive
            buffer.append(addr)
        read_part = (
            int(read_addrs[cycle]) % n_partitions if cycle < n_reads else -1
        )
        # Accept up to write_ports writes to distinct partitions, none of
        # which may collide with the partition being read.
        used_parts = set()
        accepted_idx: List[int] = []
        blocked = False
        for idx, addr in enumerate(buffer):
            if len(accepted_idx) >= write_ports:
                break
            part = addr % n_partitions
            if part == read_part or part in used_parts:
                blocked = True
                continue
            used_parts.add(part)
            accepted_idx.append(idx)
        if accepted_idx:
            # Drain accepted writes by index (one linear rebuild) rather
            # than value-scanning removal, which was O(n^2) per cycle.
            drop = set(accepted_idx)
            buffer = deque(
                addr for idx, addr in enumerate(buffer) if idx not in drop
            )
        if blocked and buffer:
            blocked_cycles += 1
        peak = max(peak, len(buffer))
        total_deferred += len(buffer)
        if occupancy_hist is not None:
            occupancy_hist.observe(len(buffer))
        cycle += 1
        if cycle > 100 * (n_reads + 10):  # pragma: no cover - safety net
            raise RuntimeError("conflict simulation did not terminate")
    stats = ConflictStats(
        cycles=cycle,
        read_cycles=n_reads,
        peak_buffer=peak,
        total_deferred=total_deferred,
        blocked_write_cycles=blocked_cycles,
        drain_cycles=cycle - n_reads,
    )
    _record_phase_metrics(registry, metric_prefix, stats)
    return stats


def _record_phase_metrics(
    registry: Optional[MetricsRegistry],
    metric_prefix: str,
    stats: ConflictStats,
) -> None:
    """Fold one phase's totals into the registry (shared by kernels)."""
    if registry is None or not registry.enabled:
        return
    registry.counter(f"{metric_prefix}.phases").inc()
    registry.counter(f"{metric_prefix}.cycles").inc(stats.cycles)
    registry.counter(
        f"{metric_prefix}.blocked_write_cycles"
    ).inc(stats.blocked_write_cycles)
    registry.counter(
        f"{metric_prefix}.drain_cycles"
    ).inc(stats.drain_cycles)
    registry.histogram(
        f"{metric_prefix}.peak_buffer", BUFFER_OCCUPANCY_BUCKETS
    ).observe(stats.peak_buffer)


def cn_phase_emissions(
    schedule: DecoderSchedule, latency: int = DEFAULT_LATENCY
) -> Dict[int, List[int]]:
    """Write-back timing of the check-node phase.

    The serial FU can only produce a check's outputs after its last input
    message arrived (the control flag of paper Section 4); outputs then
    leave one per cycle, in read order, ``latency`` cycles later, each
    going back to the address it was read from.
    """
    phys = schedule.layout.phys
    reads = schedule.cn_schedule.read_order
    bounds = schedule.cn_schedule.check_bounds
    emissions: Dict[int, List[int]] = {}
    for r in range(len(bounds) - 1):
        start, end = int(bounds[r]), int(bounds[r + 1])
        first_out = (end - 1) + latency
        for j, idx in enumerate(range(start, end)):
            cycle = first_out + j
            emissions.setdefault(cycle, []).append(int(phys[reads[idx]]))
    return emissions


def vn_phase_emissions(
    schedule: DecoderSchedule, latency: int = DEFAULT_LATENCY
) -> Dict[int, List[int]]:
    """Write-back timing of the variable-node phase.

    Reads are sequential (incrementing address); a node's outputs start
    after its last message was read.
    """
    bounds = schedule.vn_node_bounds()
    emissions: Dict[int, List[int]] = {}
    for g in range(len(bounds) - 1):
        start, end = int(bounds[g]), int(bounds[g + 1])
        first_out = (end - 1) + latency
        for j, addr in enumerate(range(start, end)):
            cycle = first_out + j
            emissions.setdefault(cycle, []).append(addr)
    return emissions


def _check_kernel(kernel: str) -> None:
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown conflict kernel {kernel!r}; choose from {KERNELS}"
        )


def simulate_cn_phase(
    schedule: DecoderSchedule,
    latency: int = DEFAULT_LATENCY,
    n_partitions: int = DEFAULT_PARTITIONS,
    write_ports: int = DEFAULT_WRITE_PORTS,
    registry: Optional[MetricsRegistry] = None,
    kernel: str = "reference",
) -> ConflictStats:
    """Simulate the critical check-node phase of one half iteration."""
    _check_kernel(kernel)
    if kernel == "fast":
        from .fast_conflicts import simulate_cn_phase_fast

        return simulate_cn_phase_fast(
            schedule, latency, n_partitions, write_ports, registry=registry
        )
    read_addrs = schedule.address_rom()
    emissions = cn_phase_emissions(schedule, latency)
    return _simulate(
        read_addrs, emissions, n_partitions, write_ports,
        registry=registry, metric_prefix="hw.conflicts.cn",
    )


def simulate_vn_phase(
    schedule: DecoderSchedule,
    latency: int = DEFAULT_LATENCY,
    n_partitions: int = DEFAULT_PARTITIONS,
    write_ports: int = DEFAULT_WRITE_PORTS,
    registry: Optional[MetricsRegistry] = None,
    kernel: str = "reference",
) -> ConflictStats:
    """Simulate the variable-node phase (benign: reads rotate partitions)."""
    _check_kernel(kernel)
    if kernel == "fast":
        from .fast_conflicts import simulate_vn_phase_fast

        return simulate_vn_phase_fast(
            schedule, latency, n_partitions, write_ports, registry=registry
        )
    n = schedule.mapping.n_words
    read_addrs = np.arange(n)
    emissions = vn_phase_emissions(schedule, latency)
    return _simulate(
        read_addrs, emissions, n_partitions, write_ports,
        registry=registry, metric_prefix="hw.conflicts.vn",
    )


def simulate_iteration(
    schedule: DecoderSchedule,
    latency: int = DEFAULT_LATENCY,
    n_partitions: int = DEFAULT_PARTITIONS,
    write_ports: int = DEFAULT_WRITE_PORTS,
    registry: Optional[MetricsRegistry] = None,
    kernel: str = "reference",
) -> Tuple[ConflictStats, ConflictStats]:
    """Simulate one full iteration: ``(vn_stats, cn_stats)``."""
    return (
        simulate_vn_phase(
            schedule, latency, n_partitions, write_ports, registry, kernel
        ),
        simulate_cn_phase(
            schedule, latency, n_partitions, write_ports, registry, kernel
        ),
    )
