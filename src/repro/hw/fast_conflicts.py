"""Vectorized RAM write-conflict kernel (fast path of :mod:`.conflicts`).

The reference simulator (:func:`repro.hw.conflicts._simulate`) walks a
``deque`` cycle by cycle, re-deriving partitions with Python modulos and
scanning the buffer per accept — fine for one phase, ruinous inside the
annealer, which evaluates thousands of candidate schedules.  This module
produces **bit-identical** :class:`~repro.hw.conflicts.ConflictStats`
from a reformulated simulation:

* all per-cycle inputs (read partitions, emission partitions, emission
  arrival offsets) are precomputed as numpy array passes;
* the write buffer is represented as one FIFO *per partition* holding
  arrival sequence numbers.  Because the reference arbiter accepts the
  first ``write_ports`` distinct eligible partitions in FIFO order, and
  the first occurrence of a partition in the FIFO is exactly that
  partition's oldest element, acceptance reduces to "pop the
  ``write_ports`` eligible partitions with the smallest head arrival";
* the reference's *blocked* flag (some pending write examined but
  skipped) is recovered without traversing the buffer: with ``A`` the
  largest accepted arrival, a skip happened iff the read partition's
  head or an accepted partition's successor element is older than ``A``
  (non-accepted eligible heads are provably younger than ``A``), and in
  the undersubscribed case iff anything at all remains buffered.

The cycle recurrence itself is inherently sequential (the buffer feeds
back), so the remaining loop runs over plain Python ints on
pre-extracted lists — ~30x faster than the deque walk and, much more
importantly for annealing, reusable: :class:`CnKernelContext` freezes
everything that does not depend on the addressing (emission timing,
arrival order) so evaluating a candidate schedule is two vectorized
array passes plus the scalar recurrence.

Equivalence with the reference is enforced by
``tests/test_fast_conflicts.py`` across randomized schedules and
synthetic traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.registry import MetricsRegistry
from .conflicts import (
    BUFFER_OCCUPANCY_BUCKETS,
    DEFAULT_LATENCY,
    ConflictStats,
    _record_phase_metrics,
)
from .memory import DEFAULT_PARTITIONS, DEFAULT_WRITE_PORTS
from .schedule import DecoderSchedule


#: Arrival sentinel for "partition queue empty" in the scalar recurrence.
_INF = 1 << 62


def _fast_core(
    read_parts: List[int],
    emit_parts: List[int],
    emit_bounds: List[int],
    last_emission: int,
    n_partitions: int,
    write_ports: int,
    occupancy=None,
    skip: Optional[List[int]] = None,
) -> ConflictStats:
    """The sequential recurrence over precomputed per-cycle inputs.

    Parameters
    ----------
    read_parts:
        Partition read at each read cycle (plain ints).
    emit_parts:
        Partition of every emitted write, in arrival (cycle, FIFO) order.
    emit_bounds:
        ``emit_bounds[c]:emit_bounds[c+1]`` slices the arrivals of cycle
        ``c``; length ``last_emission + 2`` (empty when no emissions).
    occupancy:
        Optional histogram observing the end-of-cycle buffer depth
        (metric parity with the reference simulator).
    skip:
        Optional jump table from :func:`_skip_table`: ``skip[c]`` is the
        first cycle ``>= c`` that can do *anything* to an empty buffer.
        Runs of trivial cycles (no arrival, or arrivals that the ports
        accept on the spot) are then jumped over in one step — they
        leave every statistic untouched.  Mutually exclusive with
        ``occupancy``, which needs one observation per cycle.
    """
    n_reads = len(read_parts)
    end_pad = n_reads if n_reads > last_emission + 1 else last_emission + 1
    queues: List[List[int]] = [[] for _ in range(n_partitions)]
    heads = [0] * n_partitions
    head_val = [_INF] * n_partitions
    used = [False] * n_partitions
    accepted = [0] * (write_ports if write_ports > 0 else 1)
    buffer_size = 0
    peak = 0
    total_deferred = 0
    blocked_cycles = 0
    cycle = 0
    limit = 100 * (n_reads + 10)
    while cycle < n_reads or buffer_size or cycle <= last_emission:
        if skip is not None and buffer_size == 0:
            nxt = skip[cycle] if cycle < end_pad else end_pad
            if nxt != cycle:
                cycle = nxt
                continue
        if cycle <= last_emission:
            e0 = emit_bounds[cycle]
            e1 = emit_bounds[cycle + 1]
            if e1 > e0:
                buffer_size += e1 - e0
                while e0 < e1:
                    part = emit_parts[e0]
                    queue = queues[part]
                    if heads[part] == len(queue):
                        head_val[part] = e0
                    queue.append(e0)
                    e0 += 1
        read_part = read_parts[cycle] if cycle < n_reads else -1
        if buffer_size and write_ports > 0:
            # Accept the up-to-write_ports oldest heads of distinct
            # eligible partitions (== the reference's FIFO traversal).
            n_accepted = 0
            newest = -1
            for _ in range(write_ports):
                best = _INF
                best_part = -1
                for part in range(n_partitions):
                    value = head_val[part]
                    if value < best and part != read_part and not used[part]:
                        best = value
                        best_part = part
                if best_part < 0:
                    break
                used[best_part] = True
                queue = queues[best_part]
                head = heads[best_part] + 1
                heads[best_part] = head
                head_val[best_part] = (
                    queue[head] if head < len(queue) else _INF
                )
                accepted[n_accepted] = best_part
                n_accepted += 1
                if best > newest:
                    newest = best
            buffer_size -= n_accepted
            if n_accepted == write_ports:
                # Ports saturated: the reference stops examining the
                # FIFO right after its write_ports-th accept, so a skip
                # happened iff something older than the newest accepted
                # arrival was passed over — the read partition's head or
                # an accepted partition's successor (non-accepted
                # eligible heads are provably newer).
                blocked = (
                    read_part >= 0 and head_val[read_part] < newest
                )
                if not blocked:
                    for slot in range(n_accepted):
                        if head_val[accepted[slot]] < newest:
                            blocked = True
                            break
            else:
                # Undersubscribed: the whole FIFO was examined, so any
                # remaining element was a skip.
                blocked = buffer_size > 0
            for slot in range(n_accepted):
                used[accepted[slot]] = False
            if blocked:
                blocked_cycles += 1
        if buffer_size > peak:
            peak = buffer_size
        total_deferred += buffer_size
        if occupancy is not None:
            occupancy.observe(buffer_size)
        cycle += 1
        if cycle > limit:  # pragma: no cover - safety net
            raise RuntimeError("conflict simulation did not terminate")
    return ConflictStats(
        cycles=cycle,
        read_cycles=n_reads,
        peak_buffer=peak,
        total_deferred=total_deferred,
        blocked_write_cycles=blocked_cycles,
        drain_cycles=cycle - n_reads,
    )


def _skip_table(
    read_parts: np.ndarray,
    emit_parts: np.ndarray,
    emit_bounds: np.ndarray,
    last_emission: int,
    n_partitions: int,
    write_ports: int,
) -> List[int]:
    """Jump table over *trivial* cycles, built in pure array passes.

    A cycle is trivial for an **empty** buffer when it has no arrivals,
    or when its arrivals are accepted on the spot: one arrival to a
    partition other than the one being read, or two arrivals to two
    distinct such partitions with two write ports.  Such cycles change
    no statistic, so the recurrence may hop straight to ``skip[c]``, the
    next non-trivial cycle.
    """
    n_reads = len(read_parts)
    end_pad = max(n_reads, last_emission + 1)
    counts = np.zeros(end_pad, dtype=np.int64)
    if last_emission >= 0:
        counts[: last_emission + 1] = np.diff(emit_bounds)
    reads = np.full(end_pad, -1, dtype=np.int64)
    reads[:n_reads] = read_parts
    first = np.full(end_pad, -2, dtype=np.int64)
    second = np.full(end_pad, -3, dtype=np.int64)
    if last_emission >= 0:
        has1 = counts >= 1
        has2 = counts >= 2
        first[has1] = emit_parts[emit_bounds[:-1][has1[: last_emission + 1]]]
        second[has2] = emit_parts[
            emit_bounds[:-1][has2[: last_emission + 1]] + 1
        ]
    trivial = counts == 0
    if write_ports >= 1:
        trivial |= (counts == 1) & (first != reads)
    if write_ports >= 2:
        trivial |= (
            (counts == 2)
            & (first != reads)
            & (second != reads)
            & (first != second)
        )
    nxt = np.arange(end_pad, dtype=np.int64)
    nxt[trivial] = end_pad
    return np.minimum.accumulate(nxt[::-1])[::-1].tolist()


def _arrival_arrays(
    emit_cycles: np.ndarray,
) -> Tuple[np.ndarray, List[int], int]:
    """Sort emissions into arrival order and bucket them by cycle.

    Returns ``(order, emit_bounds, last_emission)`` where ``order``
    permutes emission-insertion order into arrival order.  The stable
    sort preserves insertion order within a cycle — exactly the FIFO
    order the reference's ``setdefault(...).append`` produces.
    """
    if emit_cycles.size == 0:
        return np.empty(0, dtype=np.int64), [0], -1
    order = np.argsort(emit_cycles, kind="stable")
    last_emission = int(emit_cycles[order[-1]])
    counts = np.bincount(emit_cycles, minlength=last_emission + 1)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return order, bounds.tolist(), last_emission


def _emissions_from_dict(
    emissions: Dict[int, List[int]]
) -> Tuple[np.ndarray, List[int], int]:
    """Flatten a reference-style ``cycle -> [addr]`` emission dict."""
    if not emissions:
        return np.empty(0, dtype=np.int64), [0], -1
    addrs: List[int] = []
    cycles: List[int] = []
    for cycle in sorted(emissions):
        row = emissions[cycle]
        addrs.extend(row)
        cycles.extend([cycle] * len(row))
    order, bounds, last = _arrival_arrays(np.asarray(cycles, dtype=np.int64))
    return np.asarray(addrs, dtype=np.int64)[order], bounds, last


def simulate_phase_fast(
    read_addrs: np.ndarray,
    emissions: Dict[int, List[int]],
    n_partitions: int,
    write_ports: int,
    registry: Optional[MetricsRegistry] = None,
    metric_prefix: str = "hw.conflicts",
) -> ConflictStats:
    """Drop-in fast equivalent of :func:`repro.hw.conflicts._simulate`."""
    read_addrs = np.asarray(read_addrs, dtype=np.int64)
    emit_addrs, emit_bounds, last_emission = _emissions_from_dict(emissions)
    read_parts = read_addrs % n_partitions
    emit_parts = emit_addrs % n_partitions
    occupancy = None
    skip = None
    if registry is not None and registry.enabled:
        occupancy = registry.histogram(
            f"{metric_prefix}.buffer_occupancy", BUFFER_OCCUPANCY_BUCKETS
        )
    else:
        skip = _skip_table(
            read_parts, emit_parts, np.asarray(emit_bounds),
            last_emission, n_partitions, write_ports,
        )
    stats = _fast_core(
        read_parts.tolist(),
        emit_parts.tolist(),
        emit_bounds,
        last_emission,
        n_partitions,
        write_ports,
        occupancy=occupancy,
        skip=skip,
    )
    _record_phase_metrics(registry, metric_prefix, stats)
    return stats


def _phase_emission_cycles(bounds: np.ndarray, latency: int) -> np.ndarray:
    """Emission cycle of every read position, in read order.

    Both phases obey the same law (see
    :func:`repro.hw.conflicts.cn_phase_emissions`): the ``j``-th output
    of a node/check whose reads span ``[start, end)`` leaves at cycle
    ``(end - 1) + latency + j``.
    """
    widths = np.diff(bounds)
    starts = np.repeat(bounds[:-1], widths)
    ends = np.repeat(bounds[1:], widths)
    idx = np.arange(int(bounds[-1]))
    return (ends - 1) + latency + (idx - starts)


class CnKernelContext:
    """Frozen CN-phase timing for repeated candidate evaluation.

    Everything here depends only on the check bounds (fixed across every
    annealing move — within-check orders permute reads inside a check
    without changing its span) and on the latency/partition/port
    configuration.  A candidate schedule is then characterized entirely
    by its address ROM, and :meth:`stats` is two vectorized passes plus
    the scalar recurrence.
    """

    def __init__(
        self,
        check_bounds: np.ndarray,
        latency: int = DEFAULT_LATENCY,
        n_partitions: int = DEFAULT_PARTITIONS,
        write_ports: int = DEFAULT_WRITE_PORTS,
    ) -> None:
        self.latency = latency
        self.n_partitions = n_partitions
        self.write_ports = write_ports
        cycles = _phase_emission_cycles(
            np.asarray(check_bounds, dtype=np.int64), latency
        )
        order, bounds, last = _arrival_arrays(cycles)
        #: Read position feeding the i-th arriving write-back.
        self.emit_src = order
        self.emit_bounds = bounds
        self.last_emission = last
        self._emit_bounds_np = np.asarray(bounds, dtype=np.int64)
        #: Emission cycle per read position (insertion order).
        self._ins_cycles = cycles
        n_reads = int(check_bounds[-1])
        self._end_pad = max(n_reads, last + 1)
        self._read_idx = np.arange(n_reads)

    @classmethod
    def for_schedule(
        cls,
        schedule: DecoderSchedule,
        latency: int = DEFAULT_LATENCY,
        n_partitions: int = DEFAULT_PARTITIONS,
        write_ports: int = DEFAULT_WRITE_PORTS,
    ) -> "CnKernelContext":
        return cls(
            schedule.cn_schedule.check_bounds, latency, n_partitions,
            write_ports,
        )

    def cost_components(
        self, address_rom: np.ndarray
    ) -> Optional[Tuple[int, int, int]]:
        """``(peak_buffer, total_deferred, drain_cycles)`` without a loop.

        As long as the write-port limit never binds, each partition's
        queue evolves independently under the Lindley recurrence
        ``L = max(0, L + arrivals - service)`` (service opportunity every
        cycle except when that partition is being read), which vectorizes
        as a cumulative sum minus its running minimum.  The port limit
        binds only when more than ``write_ports`` distinct partitions
        hold pending writes in one cycle — checked exactly from the
        unconstrained solution (the first violating cycle is computed
        from pre-violation state, so it cannot be masked).  Returns
        ``None`` when the limit binds anywhere (including the drain
        tail); callers then fall back to :meth:`stats`.

        These are exactly the components :func:`repro.hw.annealing
        .schedule_cost` consumes, so the annealer's inner loop can use
        this pass and reserve the scalar recurrence for full
        :class:`ConflictStats` (which additionally needs the blocked
        flag's FIFO traversal semantics).
        """
        n_partitions = self.n_partitions
        write_ports = self.write_ports
        end_pad = self._end_pad
        if write_ports <= 0 or end_pad == 0:
            return None
        read_parts = address_rom % n_partitions
        n_reads = read_parts.size
        # Arrival counts per (partition, cycle): the write sourced from
        # read position i lands in partition read_parts[i] at the fixed
        # cycle _ins_cycles[i] (bincount needs no arrival ordering).
        arrivals = np.bincount(
            read_parts * end_pad + self._ins_cycles,
            minlength=n_partitions * end_pad,
        ).reshape(n_partitions, end_pad)
        service = np.ones((n_partitions, end_pad), dtype=np.int64)
        service[read_parts, self._read_idx] = 0
        walk = np.cumsum(arrivals - service, axis=1)
        floor = np.minimum.accumulate(walk, axis=1)
        np.minimum(floor, 0, out=floor)
        occupancy = walk - floor  # per-partition end-of-cycle queue depth
        # Exact port-binding check: eligible pending partitions per cycle.
        pending = np.empty_like(occupancy)
        pending[:, 0] = arrivals[:, 0]
        np.add(occupancy[:, :-1], arrivals[:, 1:], out=pending[:, 1:])
        nonzero = pending > 0
        eligible = nonzero.sum(axis=0)
        eligible[:n_reads] -= nonzero[read_parts, self._read_idx]
        if int(eligible.max(initial=0)) > write_ports:
            return None
        residual = occupancy[:, -1]
        if int(np.count_nonzero(residual)) > write_ports:
            return None
        total = occupancy.sum(axis=0)
        peak = int(total.max(initial=0))
        # Past end_pad no reads or arrivals remain and at most
        # write_ports partitions hold writes, so each drains one per
        # cycle: a closed-form tail.
        deferred = int(total.sum() + (residual * (residual - 1) // 2).sum())
        drain = end_pad + int(residual.max(initial=0)) - n_reads
        return peak, deferred, drain

    def stats(
        self,
        address_rom: np.ndarray,
        registry: Optional[MetricsRegistry] = None,
        metric_prefix: str = "hw.conflicts.cn",
    ) -> ConflictStats:
        """Conflict statistics of the schedule with this address ROM."""
        read_parts = address_rom % self.n_partitions
        emit_parts = read_parts[self.emit_src]
        occupancy = None
        skip = None
        if registry is not None and registry.enabled:
            occupancy = registry.histogram(
                f"{metric_prefix}.buffer_occupancy",
                BUFFER_OCCUPANCY_BUCKETS,
            )
        else:
            skip = _skip_table(
                read_parts, emit_parts, self._emit_bounds_np,
                self.last_emission, self.n_partitions, self.write_ports,
            )
        stats = _fast_core(
            read_parts.tolist(),
            emit_parts.tolist(),
            self.emit_bounds,
            self.last_emission,
            self.n_partitions,
            self.write_ports,
            occupancy=occupancy,
            skip=skip,
        )
        _record_phase_metrics(registry, metric_prefix, stats)
        return stats


def simulate_cn_phase_fast(
    schedule: DecoderSchedule,
    latency: int = DEFAULT_LATENCY,
    n_partitions: int = DEFAULT_PARTITIONS,
    write_ports: int = DEFAULT_WRITE_PORTS,
    registry: Optional[MetricsRegistry] = None,
) -> ConflictStats:
    """Fast equivalent of :func:`repro.hw.conflicts.simulate_cn_phase`."""
    ctx = CnKernelContext.for_schedule(
        schedule, latency, n_partitions, write_ports
    )
    return ctx.stats(schedule.address_rom(), registry=registry)


def simulate_vn_phase_fast(
    schedule: DecoderSchedule,
    latency: int = DEFAULT_LATENCY,
    n_partitions: int = DEFAULT_PARTITIONS,
    write_ports: int = DEFAULT_WRITE_PORTS,
    registry: Optional[MetricsRegistry] = None,
) -> ConflictStats:
    """Fast equivalent of :func:`repro.hw.conflicts.simulate_vn_phase`.

    VN-phase reads increment through the RAM and every output writes
    back to the address it was read from, so both the read trace and the
    emission addresses are the identity — only the node bounds (layout
    group sizes in placement order) shape the timing.
    """
    n = schedule.mapping.n_words
    cycles = _phase_emission_cycles(schedule.vn_node_bounds(), latency)
    order, emit_bounds, last_emission = _arrival_arrays(cycles)
    reads = np.arange(n, dtype=np.int64) % n_partitions
    emit_parts = order % n_partitions
    occupancy = None
    skip = None
    if registry is not None and registry.enabled:
        occupancy = registry.histogram(
            "hw.conflicts.vn.buffer_occupancy", BUFFER_OCCUPANCY_BUCKETS
        )
    else:
        skip = _skip_table(
            reads, emit_parts, np.asarray(emit_bounds),
            last_emission, n_partitions, write_ports,
        )
    stats = _fast_core(
        reads.tolist(),
        emit_parts.tolist(),
        emit_bounds,
        last_emission,
        n_partitions,
        write_ports,
        occupancy=occupancy,
        skip=skip,
    )
    _record_phase_metrics(registry, "hw.conflicts.vn", stats)
    return stats
