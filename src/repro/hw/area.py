"""Synthesis-area model — regenerates paper Table 3 (ST 0.13 um CMOS).

The component areas of the IP core are driven by *architectural bit and
gate counts* that this library computes exactly; only two technology
constants (SRAM area per bit, logic area per gate) plus two calibration
factors (FU flexibility, shuffle routing) map counts to mm².  The paper's
own breakdown fixes those constants; everything else — which code rate
sizes which component, the relative split between memories and logic, the
negligible connectivity storage — emerges from the model:

* the **PN message memory** is sized by R = 1/4 (largest parity set),
* the **IN message memory** by R = 3/5 (most information edges),
* the **functional node logic** by the maximum node degrees over all
  rates (R = 2/3 information side, R = 9/10 check side),
* the **connectivity storage** is only the per-rate address/shuffle ROMs
  — 0.075 mm² against 9+ mm² of messages, the paper's headline
  architectural efficiency claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..codes.standard import CodeRateProfile, all_profiles
from .datapath import fu_gate_count
from .schedule import DecoderSchedule


@dataclass(frozen=True)
class Technology:
    """Process constants for an 0.13 um-class CMOS node.

    ``sram_bit_um2`` and ``gate_um2`` are standard figures for ST 0.13 um
    (single-port SRAM macro density incl. periphery; NAND2-equivalent
    cell).  ``fu_calibration`` scales the analytical FU gate model to the
    synthesized flexible unit (rate-programmable datapath, pipeline
    registers); ``shuffle_routing_factor`` accounts for the post-P&R
    wiring of the barrel shifter.  Both are calibrated once against the
    paper's Table 3 and documented in EXPERIMENTS.md.
    """

    name: str = "ST-0.13um"
    sram_bit_um2: float = 5.35
    gate_um2: float = 5.12
    fu_calibration: float = 4.84
    shuffle_routing_factor: float = 2.2
    control_gates: float = 39000.0
    buffer_words: int = 32


@dataclass
class AreaReport:
    """Component breakdown in mm² (the rows of Table 3)."""

    channel_ram: float
    message_ram: float
    connectivity_rom: float
    functional_nodes: float
    control: float
    shuffle_network: float
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total core area in mm²."""
        return (
            self.channel_ram
            + self.message_ram
            + self.connectivity_rom
            + self.functional_nodes
            + self.control
            + self.shuffle_network
        )

    def as_rows(self) -> List[Dict[str, float]]:
        """Table rows in the paper's order."""
        return [
            {"component": "channel LLR RAMs", "area_mm2": self.channel_ram},
            {"component": "message RAMs", "area_mm2": self.message_ram},
            {
                "component": "address/shuffle ROMs",
                "area_mm2": self.connectivity_rom,
            },
            {
                "component": "functional nodes",
                "area_mm2": self.functional_nodes,
            },
            {"component": "control logic", "area_mm2": self.control},
            {
                "component": "shuffling network",
                "area_mm2": self.shuffle_network,
            },
            {"component": "total", "area_mm2": self.total},
        ]


class AreaModel:
    """Area calculator for the multi-rate IP core."""

    def __init__(
        self,
        profiles: Optional[List[CodeRateProfile]] = None,
        width_bits: int = 6,
        technology: Optional[Technology] = None,
        schedules: Optional[Dict[str, DecoderSchedule]] = None,
    ) -> None:
        self.profiles = all_profiles() if profiles is None else profiles
        if not self.profiles:
            raise ValueError("need at least one profile")
        self.width_bits = width_bits
        self.technology = technology or Technology()
        self._schedules = schedules or {}
        self.parallelism = self.profiles[0].parallelism
        if any(p.parallelism != self.parallelism for p in self.profiles):
            raise ValueError("all profiles must share one parallelism")

    # ------------------------------------------------------------------
    # Architectural bit counts (worst rate per component)
    # ------------------------------------------------------------------
    def channel_ram_bits(self) -> int:
        """Channel LLR storage: one quantized value per codeword bit."""
        n = max(p.n for p in self.profiles)
        return n * self.width_bits

    def in_message_bits(self) -> int:
        """Information-edge message storage (sized by max E_IN)."""
        return max(p.e_in for p in self.profiles) * self.width_bits

    def pn_message_bits(self) -> int:
        """Zigzag backward-message storage: ``E_PN / 2`` messages
        (the Section 2.2 memory saving), sized by max N_parity."""
        return max(p.n_parity for p in self.profiles) * self.width_bits

    def sizing_rates(self) -> Dict[str, str]:
        """Which rate sizes which memory (paper Section 5 claims)."""
        by_ein = max(self.profiles, key=lambda p: p.e_in)
        by_parity = max(self.profiles, key=lambda p: p.n_parity)
        by_vn_degree = max(self.profiles, key=lambda p: p.j_high)
        by_cn_degree = max(self.profiles, key=lambda p: p.check_degree)
        return {
            "in_message_ram": by_ein.name,
            "pn_message_ram": by_parity.name,
            "fu_vn_degree": by_vn_degree.name,
            "fu_cn_degree": by_cn_degree.name,
        }

    def connectivity_bits(self) -> int:
        """Address + shuffle RAM bits for the worst single rate.

        One word (physical address + cyclic shift) steers each clock
        cycle; the deepest table (R = 3/5, 648 words) sizes the RAM.
        This is the entire on-chip storage needed to describe a Tanner
        graph — the paper's 0.075 mm² headline (per-rate contents are
        reloaded on a rate switch).
        """
        return max(self._rate_connectivity_bits(p) for p in self.profiles)

    def connectivity_bits_all_rates(self) -> int:
        """ROM bits if all eleven rates' tables were resident at once."""
        return sum(self._rate_connectivity_bits(p) for p in self.profiles)

    @staticmethod
    def _rate_connectivity_bits(p: CodeRateProfile) -> int:
        n = p.addr_entries
        addr_bits = max(1, int(np.ceil(np.log2(max(2, n)))))
        shift_bits = max(1, int(np.ceil(np.log2(p.parallelism))))
        return n * (addr_bits + shift_bits)

    def fu_gates(self) -> float:
        """Gate count of all functional units (flexibility-calibrated)."""
        max_vn = max(p.j_high for p in self.profiles)
        max_cn = max(p.check_degree for p in self.profiles)
        per_fu = fu_gate_count(max_vn, max_cn, self.width_bits)
        return (
            self.parallelism * per_fu * self.technology.fu_calibration
        )

    def shuffle_gates(self) -> float:
        """Barrel-shifter mux gates (both directions share one network)."""
        stages = int(np.ceil(np.log2(self.parallelism)))
        mux2 = stages * self.parallelism * self.width_bits
        return mux2 * 2.5  # NAND2-equivalents per 2:1 mux bit

    # ------------------------------------------------------------------
    def report(self) -> AreaReport:
        """Compute the full Table 3 breakdown."""
        t = self.technology
        sram = t.sram_bit_um2 / 1e6  # mm² per bit
        gate = t.gate_um2 / 1e6  # mm² per gate
        message_bits = self.in_message_bits() + self.pn_message_bits()
        buffer_gates = t.buffer_words * self.width_bits * 6.0
        return AreaReport(
            channel_ram=self.channel_ram_bits() * sram,
            message_ram=message_bits * sram,
            connectivity_rom=self.connectivity_bits() * sram,
            functional_nodes=self.fu_gates() * gate,
            control=(t.control_gates + buffer_gates) * gate,
            shuffle_network=self.shuffle_gates()
            * gate
            * t.shuffle_routing_factor,
            details={
                "channel_bits": float(self.channel_ram_bits()),
                "in_message_bits": float(self.in_message_bits()),
                "pn_message_bits": float(self.pn_message_bits()),
                "connectivity_bits": float(self.connectivity_bits()),
                "fu_gates": self.fu_gates(),
                "shuffle_gates": self.shuffle_gates(),
            },
        )


#: The paper's Table 3 reference values (mm²) for comparison in benches
#: and EXPERIMENTS.md.  The channel-RAM row is inferred from the total.
PAPER_TABLE3_MM2: Dict[str, float] = {
    "channel LLR RAMs": 1.995,
    "message RAMs": 9.12,
    "address/shuffle ROMs": 0.075,
    "functional nodes": 10.8,
    "control logic": 0.2,
    "shuffling network": 0.55,
    "total": 22.74,
}
