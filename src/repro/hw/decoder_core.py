"""The partly-parallel decoder IP core (paper Fig. 4), cycle-faithful.

This model executes the *actual hardware dataflow*: 360 lock-step
functional units, per-FU message RAMs addressed by the address ROM, the
barrel shuffling network between them, the zigzag chain registers, and the
backward-message RAMs.  Messages live in the 6-bit fixed-point format of
the synthesized core.

The model is bit-exact against the algorithmic golden model
(:class:`repro.decode.quantized.QuantizedZigzagDecoder` with one chain
segment per FU) — the equivalence is asserted in the test suite and is the
Fig. 4 reproduction experiment.

RAM layout convention (matching paper Section 4):

* after a **CN phase**, the message of edge ``(word w, column m)`` sits in
  FU ``m``'s RAM at address ``phys[w]`` ("shuffled back to their original
  position"),
* after a **VN phase**, it sits in FU ``(m + shift_w) mod P`` — the
  shuffling network rotates fresh variable-node outputs so that the check
  phase finds every message in the FU that owns the target check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..codes.construction import LdpcCode
from ..codes.matrix import syndrome
from ..decode.result import DecodeResult
from ..quantize.fixed_point import MESSAGE_6BIT, FixedPointFormat
from .mapping import IpMapping
from .schedule import DecoderSchedule
from .throughput import ThroughputModel


@dataclass
class CoreConfig:
    """Build-time parameters of the IP core."""

    fmt: FixedPointFormat = MESSAGE_6BIT
    normalization: float = 1.0
    channel_scale: float = 1.0
    iterations: int = 30
    early_stop: bool = False


class DecoderIpCore:
    """Cycle-faithful model of the DVB-S2 LDPC decoder IP.

    Parameters
    ----------
    code:
        The LDPC code (full-size or scaled; the architecture only needs
        the group structure).
    schedule:
        Memory layout + CN read order; defaults to the canonical
        (un-annealed) schedule, which is functionally identical — the
        annealing only changes conflict statistics, never results.
    config:
        Quantization and iteration parameters.
    """

    def __init__(
        self,
        code: LdpcCode,
        schedule: Optional[DecoderSchedule] = None,
        config: Optional[CoreConfig] = None,
    ) -> None:
        self.code = code
        self.config = config or CoreConfig()
        self.mapping = (
            schedule.mapping if schedule is not None else IpMapping(code)
        )
        self.schedule = schedule or DecoderSchedule.canonical(self.mapping)
        self.p = code.profile.parallelism
        self.q = code.profile.q
        self._prepare()

    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        mapping = self.mapping
        layout = self.schedule.layout
        self._phys = layout.phys
        self._shifts = mapping.shifts
        self._n_words = mapping.n_words
        # VN phase program: contiguous runs of words per placed group.
        self._vn_groups = [
            (
                int(g),
                [int(w) for w in np.nonzero(mapping.groups == g)[0][
                    layout.slot_orders[g]
                ]],
            )
            for g in layout.group_order
        ]
        # CN phase program: per local check, the (annealed) word order.
        reads = self.schedule.cn_schedule.read_order
        bounds = self.schedule.cn_schedule.check_bounds
        self._cn_checks = [
            [int(w) for w in reads[bounds[r] : bounds[r + 1]]]
            for r in range(self.q)
        ]
        # Posterior program: RAM columns per information group, built
        # once here (the per-decision scan over ``mapping.groups`` was
        # quadratic in the number of words).  One stable argsort keeps
        # the ascending word order of the original scan.
        n_groups = self.code.k // self.p
        by_group = np.argsort(mapping.groups, kind="stable")
        group_bounds = np.searchsorted(
            mapping.groups[by_group], np.arange(n_groups + 1)
        )
        self._group_phys = [
            self._phys[by_group[group_bounds[g] : group_bounds[g + 1]]]
            for g in range(n_groups)
        ]

    # ------------------------------------------------------------------
    def decode(
        self,
        channel_llrs: np.ndarray,
        iterations: Optional[int] = None,
        early_stop: Optional[bool] = None,
    ) -> DecodeResult:
        """Run the core on one frame of float channel LLRs.

        Returns a :class:`~repro.decode.result.DecodeResult` whose
        ``extra`` dict carries the cycle count of paper Eq. (8).
        """
        cfg = self.config
        iterations = cfg.iterations if iterations is None else iterations
        early_stop = cfg.early_stop if early_stop is None else early_stop
        fmt = cfg.fmt
        ch = fmt.quantize(
            np.asarray(channel_llrs, dtype=np.float64) * cfg.channel_scale
        ).astype(np.int64)
        if ch.shape != (self.code.n,):
            raise ValueError(f"expected {self.code.n} channel LLRs")

        p, q = self.p, self.q
        k = self.code.k
        n_groups = k // p
        # Channel RAMs (Fig. 4): information values per (group, lane),
        # parity values per (lane, local check).
        ch_in = ch[:k].reshape(n_groups, p)
        ch_pn = ch[k:].reshape(p, q)

        # Message memories, all zero at frame start.
        in_ram = np.zeros((p, self._n_words), dtype=np.int64)
        b_ram = np.zeros((p, q), dtype=np.int64)
        f_boundary = np.zeros(p, dtype=np.int64)  # f of each FU's last check

        graph = self.code.graph
        bits = (ch < 0).astype(np.uint8)
        executed = 0
        converged = early_stop and not syndrome(graph, bits).any()
        f_mat = np.zeros((p, q), dtype=np.int64)
        in_posteriors = ch_in.astype(np.int64).copy()

        while not converged and executed < iterations:
            in_posteriors = self._vn_phase(in_ram, ch_in)
            f_mat, f_boundary = self._cn_phase(
                in_ram, b_ram, ch_pn, f_boundary
            )
            executed += 1
            if early_stop or executed == iterations:
                bits = self._decisions(in_ram, ch_in, ch_pn, f_mat, b_ram)
                if early_stop and not syndrome(graph, bits).any():
                    converged = True
        if not early_stop:
            bits = self._decisions(in_ram, ch_in, ch_pn, f_mat, b_ram)

        posteriors = self._posteriors(in_ram, ch_in, ch_pn, f_mat, b_ram)
        cycles = ThroughputModel(self.code.profile).cycles_per_block(
            iterations=executed
        )
        return DecodeResult(
            bits=bits,
            converged=bool(converged),
            iterations=executed,
            posteriors=posteriors,
            extra={"cycles": float(cycles)},
        )

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _vn_phase(self, in_ram, ch_in) -> np.ndarray:
        """Variable-node half iteration: serial nodes, shuffled writes."""
        fmt = self.config.fmt
        p = self.p
        posteriors = np.empty((len(self._vn_groups), p), dtype=np.int64)
        for row, (g, words) in enumerate(self._vn_groups):
            inputs = [in_ram[:, self._phys[w]].copy() for w in words]
            wide = ch_in[g].astype(np.int64)
            for vec in inputs:
                wide = wide + vec
            posteriors[row] = wide
            for w, vec in zip(words, inputs):
                out = fmt.saturate(wide - vec).astype(np.int64)
                # VN output of lane m belongs to edge (w, m); the network
                # rotates it to the CN-side FU (m + shift) mod P.
                in_ram[:, self._phys[w]] = np.roll(out, self._shifts[w])
        return posteriors

    def _cn_phase(self, in_ram, b_ram, ch_pn, f_boundary):
        """Check-node half iteration with the zigzag forward chain."""
        fmt = self.config.fmt
        p, q = self.p, self.q
        sentinel = np.int64(1 << 40)
        b_col0_old = b_ram[:, 0].copy()
        f_mat = np.zeros((p, q), dtype=np.int64)
        # Chain input of each FU's first check: channel of the previous
        # FU's last parity node plus its stored forward message.  Lane 0
        # (check 0) has no predecessor: neutral (max magnitude, + sign).
        a = np.empty(p, dtype=np.int64)
        a[0] = fmt.max_int
        if p > 1:
            a[1:] = fmt.add(ch_pn[:-1, q - 1], f_boundary[:-1])
        for r in range(q):
            words = self._cn_checks[r]
            inputs = [in_ram[:, self._phys[w]].copy() for w in words]
            # Serial min1/min2/sign tracking, vectorized across lanes.
            min1 = np.full(p, sentinel, dtype=np.int64)
            min2 = np.full(p, sentinel, dtype=np.int64)
            argmin = np.zeros(p, dtype=np.int64)
            parity = np.ones(p, dtype=np.int64)
            for i, vec in enumerate(inputs):
                mag = np.abs(vec)
                parity *= np.where(vec < 0, -1, 1)
                better = mag < min1
                min2 = np.where(better, min1, np.minimum(min2, mag))
                argmin = np.where(better, i, argmin)
                min1 = np.where(better, mag, min1)
            # Chain inputs: a (fresh, forward) and c (stored, backward).
            if r < q - 1:
                b_next = b_ram[:, r + 1]
            else:
                b_next = np.concatenate([b_col0_old[1:], [0]])
            c = fmt.add(ch_pn[:, r], b_next).astype(np.int64)
            a_sign = np.where(a < 0, -1, 1)
            a_mag = np.abs(a)
            c_sign = np.where(c < 0, -1, 1)
            c_mag = np.abs(c)
            # Outputs to the information nodes, written back unshuffled.
            chain_min = np.minimum(a_mag, c_mag)
            out_parity = parity * a_sign * c_sign
            for i, (w, vec) in enumerate(zip(words, inputs)):
                other = np.where(argmin == i, min2, min1)
                mag = self._normalize(np.minimum(other, chain_min))
                sign = out_parity * np.where(vec < 0, -1, 1)
                in_ram[:, self._phys[w]] = np.roll(
                    sign * mag, -self._shifts[w]
                )
            # Chain outputs.
            f_new = parity * a_sign * self._normalize(
                np.minimum(min1, a_mag)
            )
            b_new = parity * c_sign * self._normalize(
                np.minimum(min1, c_mag)
            )
            f_mat[:, r] = f_new
            b_ram[:, r] = b_new
            a = fmt.add(ch_pn[:, r], f_new).astype(np.int64)
        return f_mat, f_mat[:, q - 1].copy()

    def _normalize(self, mags: np.ndarray) -> np.ndarray:
        if self.config.normalization == 1.0:
            return mags
        return np.floor(self.config.normalization * mags).astype(np.int64)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _info_posteriors(self, in_ram, ch_in) -> np.ndarray:
        """Wide posterior per information node from the current RAMs.

        After a CN phase the RAM holds check-to-variable messages in VN
        layout, so the posterior is channel plus the per-node RAM sum.
        """
        n_groups = ch_in.shape[0]
        post = np.empty((n_groups, self.p), dtype=np.int64)
        for g in range(n_groups):
            post[g] = ch_in[g] + in_ram[:, self._group_phys[g]].sum(axis=1)
        return post

    def _decisions(self, in_ram, ch_in, ch_pn, f_mat, b_ram) -> np.ndarray:
        info_post = self._info_posteriors(in_ram, ch_in)
        pn_post = self._pn_posteriors(ch_pn, f_mat, b_ram)
        info_bits = (info_post < 0).astype(np.uint8).reshape(-1)
        pn_bits = (pn_post < 0).astype(np.uint8).reshape(-1)
        return np.concatenate([info_bits, pn_bits])

    def _pn_posteriors(self, ch_pn, f_mat, b_ram) -> np.ndarray:
        p, q = self.p, self.q
        post = ch_pn.astype(np.int64) + f_mat
        # PN (lane, r) hears b of check (lane, r+1); the last local check
        # hears the next lane's first check (wrap: chain end hears none).
        post[:, : q - 1] += b_ram[:, 1:]
        nxt = np.concatenate([b_ram[1:, 0], [0]])
        post[:, q - 1] += nxt
        return post

    def _posteriors(self, in_ram, ch_in, ch_pn, f_mat, b_ram) -> np.ndarray:
        info = self._info_posteriors(in_ram, ch_in).reshape(-1)
        pn = self._pn_posteriors(ch_pn, f_mat, b_ram).reshape(-1)
        return np.concatenate([info, pn]).astype(np.float64) * (
            self.config.fmt.scale
        )
