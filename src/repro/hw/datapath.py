"""Serial functional-unit model (the 360 "functional nodes" of Fig. 4).

The paper's FU accepts one message per clock cycle and emits at most one
updated message per cycle; a control flag marks the last message of a node
and starts output processing.  The same unit serves both node types
because only one type is processed per half iteration.

Two artifacts live here:

* :class:`SerialFunctionalUnit` — a scalar, cycle-by-cycle model used in
  unit tests to pin down the exact arithmetic the vectorized core and the
  golden decoder must both match,
* :func:`fu_gate_count` — the gate-complexity model feeding the Table 3
  area reproduction.  The paper notes the FU logic (10.8 mm²) dominates
  because of "the required flexibility of the different code rates": the
  unit must handle the maximum degrees over all rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..quantize.fixed_point import FixedPointFormat


class SerialFunctionalUnit:
    """One FU processing messages serially in VN or CN mode.

    VN mode: accumulate a wide sum of the channel value and all inputs,
    then emit ``saturate(sum - input_i)`` per stored input (paper Eq. 4).

    CN mode (min-sum): track min1/min2/arg-min magnitude and the sign
    parity, then emit per input the excluding-self combination; chain
    inputs for the zigzag schedule are pushed like ordinary inputs.
    """

    def __init__(
        self, fmt: FixedPointFormat, normalization: float = 1.0
    ) -> None:
        self.fmt = fmt
        self.normalization = normalization
        self.reset()

    def reset(self) -> None:
        """Clear all node state (between nodes)."""
        self._inputs: List[int] = []
        self._channel = 0

    # ------------------------------------------------------------------
    # VN mode
    # ------------------------------------------------------------------
    def vn_begin(self, channel_value: int) -> None:
        """Start a variable node; latch its channel LLR."""
        self.reset()
        self._channel = int(channel_value)

    def vn_push(self, message: int) -> None:
        """Feed one check-to-variable message (one per cycle)."""
        self._inputs.append(int(message))

    def vn_finish(self) -> Tuple[List[int], int]:
        """Produce all outgoing messages and the wide posterior.

        Returns ``(messages, posterior)``; messages are saturated, the
        posterior is the un-saturated wide sum whose sign is the hard
        decision.
        """
        wide = self._channel + sum(self._inputs)
        outs = [
            int(self.fmt.saturate(np.array([wide - m]))[0])
            for m in self._inputs
        ]
        return outs, wide

    # ------------------------------------------------------------------
    # CN mode
    # ------------------------------------------------------------------
    def cn_begin(self) -> None:
        """Start a check node."""
        self.reset()

    def cn_push(self, message: int) -> None:
        """Feed one variable-to-check message (one per cycle)."""
        self._inputs.append(int(message))

    def _normalize(self, mag: int) -> int:
        if self.normalization == 1.0:
            return mag
        return int(np.floor(self.normalization * mag))

    def cn_finish(self) -> List[int]:
        """Produce the excluding-self min-sum output per input."""
        mags = [abs(m) for m in self._inputs]
        signs = [-1 if m < 0 else 1 for m in self._inputs]
        parity = 1
        for s in signs:
            parity *= s
        order = np.argsort(np.array(mags), kind="stable")
        i_min = int(order[0])
        min1 = mags[i_min]
        min2 = mags[int(order[1])] if len(mags) > 1 else self.fmt.max_int
        outs = []
        for i, (mag, sign) in enumerate(zip(mags, signs)):
            other = min2 if i == i_min else min1
            outs.append(parity * sign * self._normalize(other))
        return outs


@dataclass(frozen=True)
class GateModel:
    """Technology-independent gate-equivalent counts (NAND2 units)."""

    full_adder: float = 6.5
    flipflop: float = 6.0
    comparator_per_bit: float = 3.0
    mux2_per_bit: float = 2.5
    lut_per_bit: float = 1.2  # ROM-synthesized lookup entry bit


def fu_gate_count(
    max_vn_degree: int,
    max_cn_degree: int,
    width_bits: int,
    gates: Optional[GateModel] = None,
) -> float:
    """Gate-equivalents of one flexible functional unit.

    Sized by the worst-case degrees over all supported rates (paper: the
    VN side by R=2/3's degree-13 nodes, the CN side by R=9/10's
    degree-30 checks) and the message width.

    The count covers: input storage registers for the VN output pass, the
    wide accumulator, the subtract-and-saturate output stage, the
    min1/min2/sign tracker, the ``tanh``-approximation lookup tables, and
    the mode-switch muxing.
    """
    g = gates or GateModel()
    accumulator_bits = width_bits + int(np.ceil(np.log2(max_vn_degree + 1)))
    input_regs = max_vn_degree * width_bits * g.flipflop
    accumulator = accumulator_bits * g.full_adder + accumulator_bits * g.flipflop
    output_stage = accumulator_bits * g.full_adder + width_bits * g.mux2_per_bit
    # CN side: two magnitude comparators, sign/parity, index register.
    minmax = (
        2 * width_bits * g.comparator_per_bit
        + 2 * width_bits * g.flipflop
        + int(np.ceil(np.log2(max_cn_degree))) * g.flipflop
        + width_bits * g.mux2_per_bit
    )
    # Two phi lookup tables (in/out of the magnitude domain).
    luts = 2 * (2**width_bits) * width_bits * g.lut_per_bit / 8.0
    control = 40.0 * g.flipflop
    mode_mux = 2 * width_bits * g.mux2_per_bit
    return float(
        input_regs + accumulator + output_stage + minmax + luts + control + mode_mux
    )
