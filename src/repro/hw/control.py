"""Control-word generation — the "control logic" block of paper Fig. 4.

The decoder's sequencer drives, every clock cycle, one RAM address, one
shuffle offset, and the serial FU's *last-message* flag (the control flag
of paper Section 4 that "labels the last message belonging to a node and
starts the output processing").  This module generates that per-cycle
control stream from a :class:`~repro.hw.schedule.DecoderSchedule`, packs
it into ROM words, and cross-checks the cycle counts against the Eq. 8
throughput model — the control path of a real IP delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .schedule import DecoderSchedule
from .throughput import ThroughputModel


@dataclass(frozen=True)
class PhaseProgram:
    """Per-cycle control stream of one half iteration.

    Attributes
    ----------
    addresses:
        RAM address presented each cycle.
    shifts:
        Shuffle offset applied each cycle.
    last_flags:
        1 on the cycle carrying a node's final message.
    """

    addresses: np.ndarray
    shifts: np.ndarray
    last_flags: np.ndarray

    def __post_init__(self) -> None:
        n = self.addresses.size
        if self.shifts.size != n or self.last_flags.size != n:
            raise ValueError("control streams must have equal length")

    @property
    def cycles(self) -> int:
        """Length of the phase in clock cycles (reads only)."""
        return int(self.addresses.size)

    def pack_words(self, addr_bits: int, shift_bits: int) -> np.ndarray:
        """Pack the stream into control-ROM words.

        Layout (LSB first): address, shift, last flag.
        """
        if self.addresses.size and int(self.addresses.max()) >= (1 << addr_bits):
            raise ValueError("address field too narrow")
        if self.shifts.size and int(self.shifts.max()) >= (1 << shift_bits):
            raise ValueError("shift field too narrow")
        return (
            self.addresses.astype(np.int64)
            | (self.shifts.astype(np.int64) << addr_bits)
            | (self.last_flags.astype(np.int64) << (addr_bits + shift_bits))
        )

    @staticmethod
    def unpack_words(
        words: np.ndarray, addr_bits: int, shift_bits: int
    ) -> "PhaseProgram":
        """Inverse of :meth:`pack_words`."""
        words = np.asarray(words, dtype=np.int64)
        addresses = words & ((1 << addr_bits) - 1)
        shifts = (words >> addr_bits) & ((1 << shift_bits) - 1)
        last_flags = words >> (addr_bits + shift_bits)
        return PhaseProgram(
            addresses=addresses, shifts=shifts, last_flags=last_flags
        )


class ControlUnit:
    """Sequencer model generating both phases' control streams."""

    def __init__(self, schedule: DecoderSchedule) -> None:
        self.schedule = schedule
        self.mapping = schedule.mapping

    # ------------------------------------------------------------------
    def vn_program(self) -> PhaseProgram:
        """VN phase: incrementing addresses, node flag at group ends."""
        n = self.mapping.n_words
        addresses = np.arange(n, dtype=np.int64)
        shifts = self.schedule.shuffle_rom_vn().astype(np.int64)
        last = np.zeros(n, dtype=np.int64)
        bounds = self.schedule.vn_node_bounds()
        last[bounds[1:] - 1] = 1
        return PhaseProgram(addresses, shifts, last)

    def cn_program(self) -> PhaseProgram:
        """CN phase: dedicated addresses, flag at check boundaries."""
        addresses = self.schedule.address_rom().astype(np.int64)
        shifts = self.schedule.shuffle_rom_cn().astype(np.int64)
        last = np.zeros(addresses.size, dtype=np.int64)
        bounds = self.schedule.cn_schedule.check_bounds
        last[np.asarray(bounds[1:]) - 1] = 1
        return PhaseProgram(addresses, shifts, last)

    # ------------------------------------------------------------------
    def field_widths(self) -> Tuple[int, int]:
        """Minimum (addr_bits, shift_bits) for the ROM packing."""
        n = self.mapping.n_words
        addr_bits = max(1, int(np.ceil(np.log2(max(2, n)))))
        shift_bits = max(
            1, int(np.ceil(np.log2(self.mapping.parallelism)))
        )
        return addr_bits, shift_bits

    def rom_image(self) -> Tuple[np.ndarray, np.ndarray]:
        """Packed control ROMs ``(vn_words, cn_words)``."""
        addr_bits, shift_bits = self.field_widths()
        return (
            self.vn_program().pack_words(addr_bits, shift_bits),
            self.cn_program().pack_words(addr_bits, shift_bits),
        )

    def cycles_per_iteration(self, latency: int = 8) -> int:
        """Both phases plus the pipeline latency."""
        return (
            self.vn_program().cycles + self.cn_program().cycles + latency
        )

    def verify_against_throughput_model(self, latency: int = 8) -> None:
        """The control stream must realize exactly Eq. 8's cycle count."""
        model = ThroughputModel(
            self.mapping.code.profile, latency_cycles=latency
        )
        expected = model.cycles_per_iteration()
        actual = self.cycles_per_iteration(latency)
        if actual != expected:
            raise AssertionError(
                f"control program takes {actual} cycles/iteration; "
                f"Eq. 8 promises {expected}"
            )
