"""Parallel multi-chain annealing of the RAM addressing, across rates.

The paper's memory claim (Section 4) is an *all-rates* statement: one
small write buffer suffices for every DVB-S2 code rate because each
rate's addressing scheme is annealed offline.  This module makes that
sweep a first-class, fast workload on top of the incremental annealer:

* **multi-chain** — ``chains`` independent annealing runs per rate,
  seeded from the children of one :class:`numpy.random.SeedSequence`,
  with the best chain (ties broken by chain index) kept.  Chain ``c`` of
  rate ``i`` always gets the same seed, so the merged outcome is
  bit-identical for *any* worker count;
* **process fan-out** — chains run as tasks on the shared worker pool of
  :mod:`repro.sim.pool` (fork context, serial fallback, ``workers=1`` is
  the same loop in-process);
* **observability** — each chain anneals against a worker-local
  :class:`~repro.obs.registry.MetricsRegistry` and an in-memory
  :class:`~repro.obs.trace.TraceRecorder`; the parent merges registries
  and re-emits buffered events tagged with ``rate``/``chain`` in
  deterministic task order, then emits one ``anneal_sweep`` summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..codes import RATE_NAMES, build_small_code
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.trace import TraceRecorder
from ..sim.pool import map_ordered, spawn_seeds
from .annealing import AnnealingConfig, AnnealingResult, AddressingAnnealer
from .conflicts import ConflictStats
from .mapping import IpMapping
from .schedule import CnPhaseSchedule, DecoderSchedule, MemoryLayout

#: Default number of independent chains per rate.
DEFAULT_CHAINS = 4

#: Default scaled-code parallelism for rate sweeps (matches the CLI).
DEFAULT_PARALLELISM = 36


@dataclass
class ChainOutcome:
    """Picklable result of one annealing chain (worker return value).

    Carries the best schedule as its three defining order arrays rather
    than a :class:`DecoderSchedule` — the parent reconstructs the
    winner against its own mapping, and losers never pay a rebuild.
    """

    rate: str
    chain: int
    best_cost: float
    accepted_moves: int
    proposed_moves: int
    initial_stats: ConflictStats
    final_stats: ConflictStats
    group_order: np.ndarray
    slot_orders: List[np.ndarray]
    within_check_orders: List[np.ndarray]
    cost_trace: List[float] = field(default_factory=list)
    #: Worker-local registry snapshot for this chain.
    metrics: Optional[dict] = None
    #: Buffered trace events (``anneal_window``/``anneal_result``).
    trace_events: Optional[list] = None


@dataclass
class MultiChainResult:
    """Best-of-``chains`` outcome for one rate."""

    rate: str
    best: AnnealingResult
    best_chain: int
    chain_costs: List[float]
    outcomes: List[ChainOutcome]


@dataclass
class AllRatesResult:
    """Outcome of one all-rates annealing sweep."""

    results: Dict[str, MultiChainResult]
    parallelism: int
    config: AnnealingConfig

    @property
    def max_final_peak(self) -> int:
        """Worst annealed peak-buffer depth across rates — the paper's
        "one buffer suffices for all rates" figure of merit."""
        return max(
            r.best.final_stats.peak_buffer for r in self.results.values()
        )

    def table(self) -> List[dict]:
        """One row per rate for reports and the CLI."""
        rows = []
        for rate, res in self.results.items():
            best = res.best
            rows.append(
                {
                    "rate": rate,
                    "initial_peak": best.initial_stats.peak_buffer,
                    "final_peak": best.final_stats.peak_buffer,
                    "total_deferred": best.final_stats.total_deferred,
                    "drain_cycles": best.final_stats.drain_cycles,
                    "best_cost": best.best_cost,
                    "best_chain": res.best_chain,
                    "chains": len(res.outcomes),
                }
            )
        return rows


# ----------------------------------------------------------------------
# Worker-side machinery (fork-inherited or pickled once per worker).
_ANNEAL_STATE: dict = {}


def _init_anneal_worker(
    config: AnnealingConfig,
    want_trace: bool,
    parallelism: int,
    preload: dict,
) -> None:
    _ANNEAL_STATE["config"] = config
    _ANNEAL_STATE["want_trace"] = want_trace
    _ANNEAL_STATE["parallelism"] = parallelism
    _ANNEAL_STATE["mappings"] = dict(preload)


def _worker_mapping(rate: str) -> IpMapping:
    """The worker's mapping for ``rate`` (built once, then cached)."""
    cache = _ANNEAL_STATE["mappings"]
    if rate not in cache:
        cache[rate] = IpMapping(
            build_small_code(rate, parallelism=_ANNEAL_STATE["parallelism"])
        )
    return cache[rate]


def _run_chain(task) -> ChainOutcome:
    """Pool entry point: anneal one chain with its spawned seed."""
    rate, chain, seed_seq = task
    config = replace(_ANNEAL_STATE["config"], seed=seed_seq)
    registry = MetricsRegistry()
    recorder = TraceRecorder(sink=None) if _ANNEAL_STATE["want_trace"] else None
    mapping = _worker_mapping(rate)
    result = AddressingAnnealer(
        mapping, config, trace=recorder, registry=registry
    ).run()
    schedule = result.schedule
    return ChainOutcome(
        rate=rate,
        chain=chain,
        best_cost=result.best_cost,
        accepted_moves=result.accepted_moves,
        proposed_moves=result.proposed_moves,
        initial_stats=result.initial_stats,
        final_stats=result.final_stats,
        group_order=schedule.layout.group_order,
        slot_orders=list(schedule.layout.slot_orders),
        within_check_orders=list(schedule.cn_schedule.within_check_orders),
        cost_trace=result.cost_trace,
        metrics=registry.snapshot(),
        trace_events=recorder.drain() if recorder is not None else None,
    )


# ----------------------------------------------------------------------
def _rebuild_result(mapping: IpMapping, outcome: ChainOutcome) -> AnnealingResult:
    """Reconstruct the winning chain's schedule against ``mapping``."""
    schedule = DecoderSchedule(
        layout=MemoryLayout(
            mapping,
            outcome.group_order.copy(),
            [o.copy() for o in outcome.slot_orders],
        ),
        cn_schedule=CnPhaseSchedule(
            mapping, [o.copy() for o in outcome.within_check_orders]
        ),
    )
    return AnnealingResult(
        schedule=schedule,
        initial_stats=outcome.initial_stats,
        final_stats=outcome.final_stats,
        cost_trace=outcome.cost_trace,
        accepted_moves=outcome.accepted_moves,
        proposed_moves=outcome.proposed_moves,
        best_cost=outcome.best_cost,
    )


def _pick_best(outcomes: Sequence[ChainOutcome]) -> int:
    """Index of the winning chain: lowest cost, ties to the lowest chain.

    Chain indices are globally unique keys, so the argmin — and with it
    the merged result — is independent of worker count and merge order.
    """
    return min(
        range(len(outcomes)),
        key=lambda i: (outcomes[i].best_cost, outcomes[i].chain),
    )


def _merge_observability(
    outcomes: Sequence[ChainOutcome],
    registry: Optional[MetricsRegistry],
    trace: Optional[TraceRecorder],
) -> None:
    """Fold chain registries/events into the parent in task order."""
    target = registry if registry is not None else get_registry()
    for outcome in outcomes:
        if target.enabled and outcome.metrics is not None:
            target.merge(outcome.metrics)
        if trace is not None:
            for event in outcome.trace_events or ():
                trace.emit(
                    {**event, "rate": outcome.rate, "chain": outcome.chain}
                )
    if target.enabled:
        target.counter("hw.anneal.chains").inc(len(outcomes))


def anneal_chains(
    mapping: IpMapping,
    config: Optional[AnnealingConfig] = None,
    *,
    chains: int = DEFAULT_CHAINS,
    workers: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
    trace: Optional[TraceRecorder] = None,
    rate: str = "?",
) -> MultiChainResult:
    """Best-of-``chains`` annealing for one mapping.

    Chain ``c`` anneals with the ``c``-th child of
    ``SeedSequence(config.seed)``; the returned best is bit-identical
    for any ``workers`` value (including the serial ``workers=1``).
    """
    if chains < 1:
        raise ValueError("need at least one chain")
    config = config or AnnealingConfig()
    seeds = spawn_seeds(config.seed, chains)
    tasks = [(rate, c, seeds[c]) for c in range(chains)]
    outcomes = map_ordered(
        _run_chain,
        tasks,
        workers=workers,
        initializer=_init_anneal_worker,
        initargs=(config, trace is not None, 0, {rate: mapping}),
        label="annealing engine",
    )
    _merge_observability(outcomes, registry, trace)
    best_idx = _pick_best(outcomes)
    result = MultiChainResult(
        rate=rate,
        best=_rebuild_result(mapping, outcomes[best_idx]),
        best_chain=outcomes[best_idx].chain,
        chain_costs=[o.best_cost for o in outcomes],
        outcomes=list(outcomes),
    )
    if trace is not None:
        trace.event(
            "anneal_sweep",
            rates=[rate],
            chains=chains,
            best_costs={rate: result.best.best_cost},
            final_peaks={rate: result.best.final_stats.peak_buffer},
        )
    return result


def optimize_all_rates(
    rates: Optional[Sequence[str]] = None,
    *,
    parallelism: int = DEFAULT_PARALLELISM,
    config: Optional[AnnealingConfig] = None,
    chains: int = DEFAULT_CHAINS,
    workers: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
    trace: Optional[TraceRecorder] = None,
) -> AllRatesResult:
    """Anneal the addressing of every configured code rate.

    The paper's Section 4 sweep: each rate gets ``chains`` independent
    chains (seeded from per-rate children of ``config.seed``), all
    ``rates × chains`` tasks share one worker pool, and the per-rate
    best is kept.  Deterministic for any worker count.
    """
    if chains < 1:
        raise ValueError("need at least one chain")
    rates = list(rates) if rates is not None else list(RATE_NAMES)
    if not rates:
        raise ValueError("need at least one rate")
    config = config or AnnealingConfig()
    rate_seeds = spawn_seeds(config.seed, len(rates))
    tasks = []
    for i, rate in enumerate(rates):
        for c, seed in enumerate(rate_seeds[i].spawn(chains)):
            tasks.append((rate, c, seed))
    outcomes = map_ordered(
        _run_chain,
        tasks,
        workers=workers,
        initializer=_init_anneal_worker,
        initargs=(config, trace is not None, parallelism, {}),
        label="annealing engine",
    )
    _merge_observability(outcomes, registry, trace)
    results: Dict[str, MultiChainResult] = {}
    for i, rate in enumerate(rates):
        rate_outcomes = outcomes[i * chains:(i + 1) * chains]
        mapping = IpMapping(build_small_code(rate, parallelism=parallelism))
        best_idx = _pick_best(rate_outcomes)
        results[rate] = MultiChainResult(
            rate=rate,
            best=_rebuild_result(mapping, rate_outcomes[best_idx]),
            best_chain=rate_outcomes[best_idx].chain,
            chain_costs=[o.best_cost for o in rate_outcomes],
            outcomes=list(rate_outcomes),
        )
    sweep = AllRatesResult(
        results=results, parallelism=parallelism, config=config
    )
    if trace is not None:
        trace.event(
            "anneal_sweep",
            rates=list(rates),
            chains=chains,
            best_costs={
                rate: res.best.best_cost for rate, res in results.items()
            },
            final_peaks={
                rate: res.best.final_stats.peak_buffer
                for rate, res in results.items()
            },
        )
    return sweep
