"""Energy/power model of the IP core (extension beyond the paper).

The DATE'05 paper reports area and throughput; its research group's
follow-up work (e.g. "Energy Consumption of Channel Decoders", cited in
the HAL record's related list) studies energy.  This module adds the
energy dimension using the same philosophy as the area model: exact
architectural *activity counts* (bits moved through SRAMs, FU-cycles,
shuffle transits) mapped to Joules by a small set of 0.13 um-class
technology constants.

Reference anchor: the fully-parallel ref [4] chip dissipates 690 mW at
1 Gb/s (64 iterations max); partly-parallel 0.13 um LDPC decoders of the
era land in the 300–700 mW range, which the default constants hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..codes.standard import CodeRateProfile, all_profiles
from .area import AreaModel, Technology
from .throughput import (
    DEFAULT_CLOCK_HZ,
    DEFAULT_IO_PARALLELISM,
    DEFAULT_ITERATIONS,
    ThroughputModel,
)


@dataclass(frozen=True)
class EnergyConstants:
    """Per-event energies for a 0.13 um-class process.

    Calibrated so the R=1/2 core at full throughput lands at ~0.5 W,
    the middle of the 0.13 um LDPC-decoder envelope (the fully-parallel
    ref [4] reports 690 mW at 0.16 um); the per-event values include the
    typical switching-activity factors (~10-15% for datapath logic).
    """

    sram_pj_per_bit: float = 0.19      # one SRAM bit read or written
    logic_fj_per_gate_cycle: float = 0.45  # switching incl. activity factor
    shuffle_pj_per_bit_stage: float = 0.006  # one mux stage transit
    clock_mw: float = 45.0             # clock tree + control, constant
    io_pj_per_bit: float = 1.2         # pad + channel-RAM fill


class PowerModel:
    """Energy calculator for one code-rate configuration."""

    def __init__(
        self,
        profile: CodeRateProfile,
        width_bits: int = 6,
        constants: Optional[EnergyConstants] = None,
        clock_hz: float = DEFAULT_CLOCK_HZ,
    ) -> None:
        self.profile = profile
        self.width_bits = width_bits
        self.constants = constants or EnergyConstants()
        self.clock_hz = clock_hz
        self._area = AreaModel(width_bits=width_bits)
        self._throughput = ThroughputModel(profile, clock_hz=clock_hz)

    # ------------------------------------------------------------------
    # Activity counts (exact, per decoded frame)
    # ------------------------------------------------------------------
    def message_ram_bit_accesses(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> int:
        """Bits read+written in the IN and PN message RAMs per frame.

        Per iteration: both phases read and write every information-edge
        message once (2 phases x E_IN x width x {read+write}), and the
        check phase reads and writes one backward message per check.
        """
        p = self.profile
        per_iteration = (
            2 * 2 * p.e_in * self.width_bits       # IN messages, 2 phases
            + 2 * p.n_parity * self.width_bits     # PN backward messages
        )
        return iterations * per_iteration

    def channel_ram_bit_accesses(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> int:
        """Channel-LLR reads: every node consults its channel value once
        per phase that processes it."""
        p = self.profile
        per_iteration = (p.k_info + 2 * p.n_parity) * self.width_bits
        return iterations * per_iteration

    def fu_gate_cycles(self, iterations: int = DEFAULT_ITERATIONS) -> float:
        """Gate-cycles of the functional units per frame.

        All ``P`` units are active for ``2 * E_IN / P`` cycles per
        iteration (both phases), so the array's gate-cycles are the full
        gate count times the active cycle count.
        """
        gates = self._area.fu_gates()
        cycles = iterations * 2 * (
            self.profile.e_in // self.profile.parallelism
        )
        return gates * cycles

    def shuffle_bit_stages(self, iterations: int = DEFAULT_ITERATIONS) -> int:
        """Bit-stage transits through the barrel shuffler per frame."""
        import math

        stages = math.ceil(math.log2(self.profile.parallelism))
        return iterations * 2 * self.profile.e_in * self.width_bits * stages

    # ------------------------------------------------------------------
    # Energy and power
    # ------------------------------------------------------------------
    def energy_per_frame_nj(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> Dict[str, float]:
        """Energy breakdown per decoded frame in nanojoules."""
        c = self.constants
        ram = (
            self.message_ram_bit_accesses(iterations)
            + self.channel_ram_bit_accesses(iterations)
        ) * c.sram_pj_per_bit / 1e3
        logic = (
            self.fu_gate_cycles(iterations) * c.logic_fj_per_gate_cycle
            / 1e6
        )
        shuffle = (
            self.shuffle_bit_stages(iterations)
            * c.shuffle_pj_per_bit_stage
            / 1e3
        )
        io = self.profile.n * self.width_bits * c.io_pj_per_bit / 1e3
        frame_seconds = (
            self._throughput.cycles_per_block(iterations) / self.clock_hz
        )
        clock = c.clock_mw * 1e-3 * frame_seconds * 1e9
        return {
            "memories": ram,
            "fu_logic": logic,
            "shuffle": shuffle,
            "io": io,
            "clock": clock,
            "total": ram + logic + shuffle + io + clock,
        }

    def power_mw(self, iterations: int = DEFAULT_ITERATIONS) -> float:
        """Average power at full throughput (back-to-back frames)."""
        energy_nj = self.energy_per_frame_nj(iterations)["total"]
        frame_seconds = (
            self._throughput.cycles_per_block(iterations) / self.clock_hz
        )
        return energy_nj * 1e-9 / frame_seconds * 1e3

    def energy_per_bit_nj(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> float:
        """Energy per decoded information bit."""
        total = self.energy_per_frame_nj(iterations)["total"]
        return total / self.profile.k_info

    def energy_per_bit_per_iteration_pj(
        self, iterations: int = DEFAULT_ITERATIONS
    ) -> float:
        """The literature's standard figure of merit (pJ/bit/iteration)."""
        return self.energy_per_bit_nj(iterations) * 1e3 / iterations


def power_table(
    iterations: int = DEFAULT_ITERATIONS,
    width_bits: int = 6,
) -> List[Dict[str, float]]:
    """Per-rate energy summary over all eleven DVB-S2 rates."""
    rows = []
    for profile in all_profiles():
        model = PowerModel(profile, width_bits=width_bits)
        breakdown = model.energy_per_frame_nj(iterations)
        rows.append(
            {
                "rate": profile.name,
                "energy_per_frame_uj": breakdown["total"] / 1e3,
                "memory_fraction": breakdown["memories"]
                / breakdown["total"],
                "power_mw": model.power_mw(iterations),
                "pj_per_bit_per_iter": model.energy_per_bit_per_iteration_pj(
                    iterations
                ),
            }
        )
    return rows
