"""Node-to-functional-unit mapping (paper Section 3, Fig. 3).

The architecture instantiates ``P = 360`` functional units (FUs).  The
mapping the paper derives from the code structure:

* **Information nodes**: 360 consecutive nodes form a group; node
  ``i`` of a group maps to FU ``i mod 360``.  Each FU's message RAM holds
  one message per *address word* (one base address of the table), so a
  degree-8 node occupies 8 words — "8 storage places are allocated".
* **Check nodes**: ``q`` consecutive check nodes map to the same FU —
  CN ``c`` goes to FU ``c // q`` with local index ``c mod q``.

Writing a base address as ``x = r + q * t``, the edge of group column
``m`` lands on check ``r + q * ((t + m) mod 360)``, i.e. CN-side FU
``(m + t) mod 360`` and local check ``r``.  Consequences, all verified by
:meth:`IpMapping.verify`:

* the VN-side to CN-side FU permutation of every address word is a
  *cyclic shift* by ``t`` — a barrel shuffler suffices (paper's claim),
* during the check phase, all 360 FUs always read the *same* RAM address,
* each FU processes exactly ``q * (k - 2)`` information edges per half
  iteration (paper Eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..codes.construction import LdpcCode


@dataclass(frozen=True)
class AddressWord:
    """One word of the address/shuffle ROM (one base address of Π).

    Attributes
    ----------
    index:
        Word index ``w`` in canonical table order.
    group:
        Information-node group the word belongs to.
    slot:
        Position of the word within its group's table row.
    residue:
        ``x mod q`` — the local check index this word's messages belong
        to during the check phase.
    shift:
        ``x // q`` — the cyclic-shift amount the shuffling network
        applies to this word's 360 messages.
    """

    index: int
    group: int
    slot: int
    residue: int
    shift: int


class IpMapping:
    """The paper's message/functional-unit mapping for one code."""

    def __init__(self, code: LdpcCode) -> None:
        self.code = code
        self.parallelism = code.profile.parallelism
        self.q = code.profile.q
        self.words: List[AddressWord] = []
        slot_counter: dict = {}
        for w, (g, x) in enumerate(code.table.iter_addresses()):
            slot = slot_counter.get(g, 0)
            slot_counter[g] = slot + 1
            self.words.append(
                AddressWord(
                    index=w,
                    group=g,
                    slot=slot,
                    residue=x % self.q,
                    shift=x // self.q,
                )
            )
        self._residue = np.array([u.residue for u in self.words])
        self._shift = np.array([u.shift for u in self.words])
        self._group = np.array([u.group for u in self.words])

    # ------------------------------------------------------------------
    @property
    def n_words(self) -> int:
        """Address/shuffle ROM depth (= Table 2 ``Addr``)."""
        return len(self.words)

    @property
    def residues(self) -> np.ndarray:
        """Residue (local check index) of every word."""
        return self._residue

    @property
    def shifts(self) -> np.ndarray:
        """Cyclic-shift amount of every word."""
        return self._shift

    @property
    def groups(self) -> np.ndarray:
        """Group index of every word."""
        return self._group

    # ------------------------------------------------------------------
    # Node-to-FU maps
    # ------------------------------------------------------------------
    def fu_of_information_node(self, i: int) -> int:
        """FU processing information node ``i`` during the VN phase."""
        return i % self.parallelism

    def group_of_information_node(self, i: int) -> int:
        """Group of information node ``i``."""
        return i // self.parallelism

    def fu_of_check_node(self, c: int) -> int:
        """FU processing check node ``c`` during the CN phase."""
        return c // self.q

    def local_index_of_check_node(self, c: int) -> int:
        """Position of check ``c`` within its FU's sequence of checks."""
        return c % self.q

    def edge_location(self, word: int, m: int) -> Tuple[int, int]:
        """CN-side (fu, check) reached by column ``m`` of address word
        ``word`` — the cyclic-shift law in one place."""
        u = self.words[word]
        fu = (m + u.shift) % self.parallelism
        check = u.residue + self.q * fu
        return fu, check

    def words_of_check_residue(self, residue: int) -> np.ndarray:
        """Address words feeding local check ``residue`` (length k-2)."""
        return np.nonzero(self._residue == residue)[0]

    def edges_per_fu_per_half_iteration(self) -> int:
        """Work per FU per half iteration: ``q * (k - 2)`` (paper Eq. 6)."""
        return self.q * (self.code.profile.check_degree - 2)

    def in_ram_words_per_fu(self) -> int:
        """Depth of each FU's information message RAM."""
        return self.n_words

    def pn_ram_words_per_fu(self) -> int:
        """Depth of each FU's parity (backward) message RAM.

        The zigzag schedule stores only ``E_PN / 2`` messages in total
        (paper Section 2.2), i.e. one backward message per check node,
        ``q`` per FU.
        """
        return self.q

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Check the mapping laws against the actual Tanner graph.

        Expands every address word and verifies (a) the cyclic-shift law,
        (b) the balanced work distribution, (c) that CN-phase reads of one
        cycle all target the same word for every FU.  Raises
        ``AssertionError`` with a description on any mismatch.
        """
        code = self.code
        p = self.parallelism
        table = code.table
        m_range = np.arange(p)
        w = 0
        for g, x in table.iter_addresses():
            cn = (x + table.q * m_range) % table.n_checks
            u = self.words[w]
            expected_fu = (m_range + u.shift) % p
            if not np.array_equal(cn // self.q, expected_fu):
                raise AssertionError(
                    f"word {w}: cyclic-shift law violated"
                )
            if not (cn % self.q == u.residue).all():
                raise AssertionError(
                    f"word {w}: residue law violated"
                )
            w += 1
        # Balanced work: every residue has exactly k - 2 words.
        counts = np.bincount(self._residue, minlength=self.q)
        if not (counts == code.profile.check_degree - 2).all():
            raise AssertionError("unbalanced check-phase schedule")
        if self.n_words != code.profile.addr_entries:
            raise AssertionError("address ROM depth disagrees with Table 2")
