"""Cyclic shuffling network model (the ``Π`` box of paper Fig. 4).

Because the node mapping reduces every address word's FU-to-FU permutation
to a cyclic shift (see :mod:`repro.hw.mapping`), the full crossbar a
generic partly-parallel decoder would need collapses to a barrel shifter:
``ceil(log2(P))`` mux stages of ``P`` lanes each.  The paper reports that
after place & route the network showed no congestion and its area is
dominated by the logic cells — our gate model reflects that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import Optional

import numpy as np

from ..obs.registry import MetricsRegistry, get_registry


@dataclass(frozen=True)
class ShuffleNetwork:
    """Barrel shuffler moving one message per FU lane per cycle.

    Parameters
    ----------
    lanes:
        Number of FU lanes ``P`` (360 for the full decoder).
    width_bits:
        Message width carried per lane (6 in the synthesized core).
    registry:
        Metrics registry receiving the traffic counters
        (``hw.shuffle.calls`` / ``.messages`` / ``.nonzero_shifts``);
        defaults to the process-wide registry.
    """

    lanes: int
    width_bits: int = 6
    registry: Optional[MetricsRegistry] = field(
        default=None, compare=False, repr=False
    )

    def _count_traffic(self, shift: int) -> None:
        registry = self.registry if self.registry is not None else get_registry()
        if not registry.enabled:
            return
        registry.counter("hw.shuffle.calls").inc()
        registry.counter("hw.shuffle.messages").inc(self.lanes)
        if shift % self.lanes != 0:
            registry.counter("hw.shuffle.nonzero_shifts").inc()

    def shuffle(self, messages: np.ndarray, shift: int) -> np.ndarray:
        """Cyclic shift: lane ``m`` input appears on lane ``(m+shift)%P``.

        This is the VN-phase direction: messages produced by VN-side FU
        ``m`` are routed to the CN-side FU that owns the target check.
        """
        messages = np.asarray(messages)
        if messages.shape[0] != self.lanes:
            raise ValueError(f"expected {self.lanes} lanes")
        self._count_traffic(shift)
        return np.roll(messages, shift, axis=0)

    def unshuffle(self, messages: np.ndarray, shift: int) -> np.ndarray:
        """Inverse shift (CN-phase write-back direction)."""
        messages = np.asarray(messages)
        if messages.shape[0] != self.lanes:
            raise ValueError(f"expected {self.lanes} lanes")
        self._count_traffic(shift)
        return np.roll(messages, -shift, axis=0)

    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Mux stages of the barrel shifter."""
        return ceil(log2(self.lanes))

    def mux_count(self) -> int:
        """2:1 mux equivalents of one barrel shifter."""
        return self.n_stages * self.lanes * self.width_bits

    def verify_realizes_table(self, mapping) -> None:
        """Prove the network suffices for a code: every address word's
        permutation must be realizable as a single cyclic shift.

        Walks each word, builds the exact FU permutation demanded by the
        Tanner graph, and checks it equals ``roll`` by the word's shift.
        """
        code = mapping.code
        table = code.table
        p = self.lanes
        if table.parallelism != p:
            raise ValueError("lane count differs from code parallelism")
        m_range = np.arange(p)
        identity = np.arange(p)
        for w, (_, x) in enumerate(table.iter_addresses()):
            cn_fu = ((x + table.q * m_range) % table.n_checks) // table.q
            shift = mapping.words[w].shift
            expected = (identity + shift) % p
            if not np.array_equal(cn_fu, expected):
                raise AssertionError(
                    f"word {w} needs a non-cyclic permutation; "
                    "a barrel shifter would not suffice"
                )
