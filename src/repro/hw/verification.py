"""Programmatic core-vs-golden verification (the licensee's sign-off).

One call checks that the cycle-faithful architectural core and the
algorithmic golden model agree bit-for-bit over a batch of noisy frames
for a given configuration — the check an integrator runs after touching
anything.  Exposed on the CLI as ``python -m repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..channel.awgn import AwgnChannel
from ..codes.construction import LdpcCode
from ..decode.quantized import QuantizedZigzagDecoder
from ..encode.encoder import IraEncoder
from .decoder_core import CoreConfig, DecoderIpCore


@dataclass
class VerificationReport:
    """Outcome of an equivalence run."""

    frames: int
    mismatches: int
    max_posterior_delta: float
    mismatch_indices: List[int] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every frame matched bit-for-bit."""
        return self.mismatches == 0


def verify_core(
    code: LdpcCode,
    config: Optional[CoreConfig] = None,
    n_frames: int = 5,
    ebn0_db: float = 2.0,
    seed: int = 0,
) -> VerificationReport:
    """Drive random noisy frames through core and golden model.

    Returns a report; raises nothing — inspect ``report.passed``.
    """
    config = config or CoreConfig(
        normalization=0.75, channel_scale=0.5, iterations=10
    )
    core = DecoderIpCore(code, config=config)
    golden = QuantizedZigzagDecoder(
        code,
        fmt=config.fmt,
        normalization=config.normalization,
        channel_scale=config.channel_scale,
        segments=code.profile.parallelism,
    )
    encoder = IraEncoder(code)
    channel = AwgnChannel(
        ebn0_db=ebn0_db, rate=float(code.profile.rate), seed=seed
    )
    rng = np.random.default_rng(seed)
    mismatches: List[int] = []
    max_delta = 0.0
    for index in range(n_frames):
        frame = encoder.encode(
            rng.integers(0, 2, code.k, dtype=np.uint8)
        )
        llrs = channel.llrs(frame)
        rc = core.decode(llrs)
        rg = golden.decode(
            llrs, max_iterations=config.iterations, early_stop=False
        )
        if not np.array_equal(rc.bits, rg.bits):
            mismatches.append(index)
        max_delta = max(
            max_delta,
            float(np.abs(rc.posteriors - rg.posteriors).max()),
        )
    return VerificationReport(
        frames=n_frames,
        mismatches=len(mismatches),
        max_posterior_delta=max_delta,
        mismatch_indices=mismatches,
    )
