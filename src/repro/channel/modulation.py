"""BPSK modulation (the paper's simulation chain uses binary modulation).

DVB-S2 proper maps bits onto QPSK/8PSK/etc.; for LDPC decoder evaluation
the standard practice — and what refs [6]/[9] of the paper assume — is the
equivalent binary-input AWGN channel, i.e. BPSK per bit with Gray-mapped
QPSK behaving identically per dimension.
"""

from __future__ import annotations

import numpy as np


def bpsk_modulate(bits: np.ndarray) -> np.ndarray:
    """Map bits to antipodal symbols: ``0 -> +1``, ``1 -> -1``.

    The 0→+1 convention keeps LLR signs positive for zero bits, matching
    the all-zero-codeword shortcut used in Monte-Carlo simulation.
    """
    bits = np.asarray(bits)
    if ((bits != 0) & (bits != 1)).any():
        raise ValueError("bits must be 0/1")
    return 1.0 - 2.0 * bits.astype(np.float64)


def bpsk_demodulate_hard(symbols: np.ndarray) -> np.ndarray:
    """Hard decision: negative symbol -> bit 1."""
    return (np.asarray(symbols) < 0).astype(np.uint8)


def qpsk_modulate(bits: np.ndarray) -> np.ndarray:
    """Gray-mapped QPSK: pairs of bits to unit-energy complex symbols.

    Provided for completeness of the DVB-S2 chain; per-dimension it is two
    independent BPSK channels, which is why the decoder studies use BPSK.
    """
    bits = np.asarray(bits)
    if bits.size % 2:
        raise ValueError("QPSK needs an even number of bits")
    i = 1.0 - 2.0 * bits[0::2].astype(np.float64)
    q = 1.0 - 2.0 * bits[1::2].astype(np.float64)
    return (i + 1j * q) / np.sqrt(2.0)


def qpsk_demodulate_hard(symbols: np.ndarray) -> np.ndarray:
    """Hard Gray demapping of QPSK symbols back to a bit array."""
    symbols = np.asarray(symbols)
    bits = np.empty(symbols.size * 2, dtype=np.uint8)
    bits[0::2] = symbols.real < 0
    bits[1::2] = symbols.imag < 0
    return bits
