"""8PSK modulation and soft demapping (DVB-S2 modcods beyond QPSK).

DVB-S2 pairs its LDPC codes with QPSK, 8PSK, 16APSK and 32APSK.  The
decoder IP is agnostic — it consumes LLRs — but a system reproduction
needs at least one higher-order demapper to close the chain.  This
module provides Gray-mapped 8PSK with both exact (log-sum-exp) and
max-log LLR computation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Gray code order around the circle: adjacent symbols differ in 1 bit.
_GRAY_ORDER = np.array([0, 1, 3, 2, 6, 7, 5, 4])

#: Constellation points indexed by the 3-bit label value.
_POINTS = np.empty(8, dtype=np.complex128)
for _pos, _label in enumerate(_GRAY_ORDER):
    _POINTS[_label] = np.exp(1j * (2.0 * np.pi * _pos / 8.0 + np.pi / 8.0))

#: Bit value of each label for the three bit positions (MSB first).
_BITS = np.array(
    [[(label >> (2 - b)) & 1 for b in range(3)] for label in range(8)]
)


def psk8_modulate(bits: np.ndarray) -> np.ndarray:
    """Map a bit array (length divisible by 3) to unit-energy 8PSK."""
    bits = np.asarray(bits)
    if bits.size % 3:
        raise ValueError("8PSK needs a multiple of 3 bits")
    if ((bits != 0) & (bits != 1)).any():
        raise ValueError("bits must be 0/1")
    triples = bits.reshape(-1, 3)
    labels = triples[:, 0] * 4 + triples[:, 1] * 2 + triples[:, 2]
    return _POINTS[labels]


def psk8_demodulate_hard(symbols: np.ndarray) -> np.ndarray:
    """Nearest-point hard decision back to bits."""
    symbols = np.asarray(symbols)
    distances = np.abs(symbols[:, None] - _POINTS[None, :])
    labels = np.argmin(distances, axis=1)
    return _BITS[labels].reshape(-1).astype(np.uint8)


def psk8_llrs(
    received: np.ndarray, sigma: float, max_log: bool = True
) -> np.ndarray:
    """Per-bit LLRs from received 8PSK symbols.

    Parameters
    ----------
    received:
        Complex received symbols ``y = s + n`` with complex noise of
        per-dimension standard deviation ``sigma``.
    sigma:
        Noise standard deviation per real dimension.
    max_log:
        ``True`` for the hardware-friendly max-log approximation,
        ``False`` for the exact log-sum-exp demapper.

    Returns
    -------
    LLR array of length ``3 * len(received)``, positive favouring 0.
    """
    received = np.asarray(received, dtype=np.complex128)
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    # squared distances to all 8 points: (symbols, 8)
    d2 = np.abs(received[:, None] - _POINTS[None, :]) ** 2
    metric = -d2 / (2.0 * sigma * sigma)
    llrs = np.empty((received.size, 3), dtype=np.float64)
    for b in range(3):
        zero_set = _BITS[:, b] == 0
        if max_log:
            llrs[:, b] = metric[:, zero_set].max(axis=1) - metric[
                :, ~zero_set
            ].max(axis=1)
        else:
            from scipy.special import logsumexp

            llrs[:, b] = logsumexp(metric[:, zero_set], axis=1) - (
                logsumexp(metric[:, ~zero_set], axis=1)
            )
    return llrs.reshape(-1)


def psk8_gray_neighbours() -> Tuple[np.ndarray, np.ndarray]:
    """Label pairs of adjacent constellation points (for tests)."""
    order = _GRAY_ORDER
    return order, np.roll(order, -1)


class Psk8Channel:
    """AWGN channel over 8PSK with soft demapping.

    Es/N0 relates to Eb/N0 through the 3 bits/symbol and the code rate:
    ``Es/N0 = 3 * R * Eb/N0``.
    """

    def __init__(
        self,
        ebn0_db: float,
        rate: float,
        seed: int = None,
        max_log: bool = True,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        esn0 = 3.0 * rate * 10.0 ** (ebn0_db / 10.0)
        self.sigma = float(1.0 / np.sqrt(2.0 * esn0))
        self.max_log = max_log
        self._rng = np.random.default_rng(seed)

    def llrs(self, bits: np.ndarray) -> np.ndarray:
        """Modulate, add complex noise, demap to bit LLRs."""
        symbols = psk8_modulate(bits)
        noise = self._rng.normal(
            0.0, self.sigma, symbols.size
        ) + 1j * self._rng.normal(0.0, self.sigma, symbols.size)
        return psk8_llrs(symbols + noise, self.sigma, self.max_log)
