"""Channel factory: one constructor for every modulation x channel cell.

The scenario matrix sweeps {modulation} x {AWGN, Rician, Rayleigh} x
{rate}; this module maps those axes onto concrete channel objects with
a single call, so the Monte-Carlo engines, the serve-plane frame
pools, and the CLI all build channels the same way (and the parallel
engine can ship the axes to worker processes as a picklable spec dict).

Conventions shared by every channel the factory returns:

* ``llrs(bits)`` accepts one frame ``(n,)`` or a batch ``(frames, n)``
  and ``llrs_all_zero(n, size=None)`` mirrors the AWGN batching
  contract — a batched call is stream-identical to the equivalent
  sequence of per-frame calls on the same seed;
* ``bpsk`` + ``awgn`` returns the legacy :class:`AwgnChannel` object
  itself, so every existing seeded run stays bit-identical;
* higher-order modulations ride :class:`SymbolChannel`, a generic
  constellation-over-complex-AWGN channel with optional block fading
  and coherent (known-gain) demapping.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .apsk import (
    APSK16_GAMMA,
    APSK32_GAMMA,
    Constellation,
    apsk16,
    apsk32,
)
from .awgn import AwgnChannel
from .fading import (
    BlockFadingChannel,
    rayleigh_amplitudes,
    rician_amplitudes,
)
from .psk import _POINTS as _PSK8_POINTS

#: Bits per symbol for every modulation the factory knows.
MODULATION_BITS = {
    "bpsk": 1,
    "qpsk": 2,
    "8psk": 3,
    "16apsk": 4,
    "32apsk": 5,
}

#: Channel models the factory knows (the fading axes of the matrix).
CHANNEL_NAMES = ("awgn", "rician", "rayleigh")

#: Ring-ratio fallbacks for rates outside the standard's APSK tables
#: (DVB-S2 never pairs e.g. rate 1/4 with 16APSK; the matrix harness
#: may, and a mid-table geometry keeps the cell well defined).
_APSK16_FALLBACK_GAMMA = 2.70
_APSK32_FALLBACK_GAMMAS = (2.64, 4.64)


def qpsk() -> Constellation:
    """Gray-mapped unit-energy QPSK: MSB selects the I sign, LSB the Q
    sign, so adjacent points differ in exactly one bit."""
    labels = np.arange(4)
    i = 1.0 - 2.0 * (labels >> 1)
    q = 1.0 - 2.0 * (labels & 1)
    return Constellation(
        points=(i + 1j * q) / np.sqrt(2.0), bits_per_symbol=2,
        name="QPSK",
    )


def psk8() -> Constellation:
    """The Gray-mapped 8PSK ring as a :class:`Constellation` (same
    points and labels as :mod:`repro.channel.psk`)."""
    return Constellation(
        points=_PSK8_POINTS.copy(), bits_per_symbol=3, name="8PSK"
    )


def constellation_for(
    modulation: str, rate_label: Optional[str] = None
) -> Constellation:
    """The constellation for a non-BPSK modulation name.

    APSK ring ratios are rate-dependent in the standard; ``rate_label``
    (e.g. ``"3/4"``) selects the Table-9 geometry when the rate is in
    the table, otherwise a documented mid-table fallback.
    """
    if modulation == "qpsk":
        return qpsk()
    if modulation == "8psk":
        return psk8()
    if modulation == "16apsk":
        if rate_label in APSK16_GAMMA:
            return apsk16(rate_label)
        return apsk16(gamma=_APSK16_FALLBACK_GAMMA)
    if modulation == "32apsk":
        if rate_label in APSK32_GAMMA:
            return apsk32(rate_label)
        return apsk32(gammas=_APSK32_FALLBACK_GAMMAS)
    raise ValueError(f"no constellation for modulation {modulation!r}")


class SymbolChannel:
    """Constellation over complex AWGN with optional block fading.

    The generic higher-order-modulation channel: modulate, apply
    block-constant fading gains (Rician or Rayleigh, amplitudes drawn
    exactly like :class:`BlockFadingChannel`), add complex noise, then
    demap coherently — the receiver knows the gain ``a``, and
    equalizing ``z = y / a`` with per-symbol noise ``sigma / a`` is
    exactly the known-gain metric ``-|y - a p|^2 / (2 sigma^2)``.

    Parameters
    ----------
    constellation:
        The labeled constellation to modulate/demap with.
    ebn0_db:
        *Average* Eb/N0 operating point (fading has unit mean power).
    rate:
        Code rate for the Eb/N0 -> Es/N0 conversion
        (``Es/N0 = m R Eb/N0`` for ``m`` bits/symbol).
    fading:
        ``None`` (pure AWGN), ``"rician"`` or ``"rayleigh"``.
    k_factor_db / block_length:
        Fading shape, as in :class:`BlockFadingChannel` (symbols per
        constant-gain block; 0 = one gain per frame).
    max_log:
        Max-log (default, scipy-free) vs exact log-sum-exp demapping.
    """

    def __init__(
        self,
        constellation: Constellation,
        ebn0_db: float,
        rate: float,
        *,
        seed=None,
        fading: Optional[str] = None,
        k_factor_db: float = 10.0,
        block_length: int = 0,
        max_log: bool = True,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if fading not in (None, "rician", "rayleigh"):
            raise ValueError(f"unknown fading model {fading!r}")
        bits = constellation.bits_per_symbol
        esn0 = bits * rate * 10.0 ** (ebn0_db / 10.0)
        self.constellation = constellation
        self.ebn0_db = float(ebn0_db)
        self.rate = float(rate)
        self.sigma = float(1.0 / np.sqrt(2.0 * esn0))
        self.fading = fading
        self.k_factor_db = k_factor_db
        self.block_length = int(block_length)
        self.max_log = max_log
        self._rng = np.random.default_rng(seed)

    @property
    def bits_per_symbol(self) -> int:
        return self.constellation.bits_per_symbol

    @property
    def esn0_db(self) -> float:
        """*Average* Es/N0 (dB)."""
        return float(10.0 * np.log10(1.0 / (2.0 * self.sigma**2)))

    def reseed(self, seed) -> None:
        """Restart the fading + noise stream deterministically."""
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _draw_gains(self, n_symbols: int) -> Optional[np.ndarray]:
        if self.fading is None:
            return None
        block = (
            self.block_length if self.block_length > 0 else n_symbols
        )
        n_blocks = -(-n_symbols // block)
        if self.fading == "rayleigh":
            amps = rayleigh_amplitudes(n_blocks, self._rng)
        else:
            amps = rician_amplitudes(
                n_blocks, self.k_factor_db, self._rng
            )
        return np.repeat(amps, block)[:n_symbols]

    def _frame_llrs(self, bits: np.ndarray) -> np.ndarray:
        symbols = self.constellation.modulate(bits)
        gains = self._draw_gains(symbols.size)
        faded = symbols if gains is None else gains * symbols
        noise = self._rng.normal(
            0.0, self.sigma, symbols.size
        ) + 1j * self._rng.normal(0.0, self.sigma, symbols.size)
        received = faded + noise
        if gains is None:
            return self.constellation.llrs(
                received, self.sigma, self.max_log
            )
        return self.constellation.llrs(
            received / gains, self.sigma / gains, self.max_log
        )

    def llrs(self, bits: np.ndarray) -> np.ndarray:
        """Modulate, fade, add noise, demap to bit LLRs.

        Accepts ``(n,)`` or ``(frames, n)``; batched frames consume the
        RNG row by row (gains, then noise), stream-identical to the
        equivalent sequence of per-frame calls.
        """
        bits = np.asarray(bits)
        if bits.ndim == 2:
            return np.stack([self._frame_llrs(row) for row in bits])
        return self._frame_llrs(bits)

    def llrs_all_zero(
        self, n: int, size: Optional[int] = None
    ) -> np.ndarray:
        """LLRs for a literal all-zero transmit.

        Unlike the BPSK shortcut this is *not* a symmetry argument:
        the all-zero word maps to specific constellation points, so
        higher-order sweeps measure the all-zero-transmit operating
        point (the standard Monte-Carlo practice for demapper chains;
        encoded-frame sweeps through ``llrs`` remove the caveat).
        """
        zeros = np.zeros(n, dtype=np.uint8)
        if size is not None:
            return np.stack(
                [self._frame_llrs(zeros) for _ in range(size)]
            )
        return self._frame_llrs(zeros)


def build_channel(
    *,
    ebn0_db: float,
    rate: float,
    modulation: str = "bpsk",
    channel: str = "awgn",
    seed=None,
    k_factor_db: float = 10.0,
    block_length: int = 0,
    rate_label: Optional[str] = None,
    max_log: bool = True,
):
    """Build the channel object for one scenario-matrix cell.

    ``modulation`` in :data:`MODULATION_BITS`, ``channel`` in
    :data:`CHANNEL_NAMES`.  ``seed`` may be an int, ``None``, or a
    ``numpy.random.SeedSequence`` (what the sharded parallel engine
    passes).  ``bpsk``/``awgn`` returns the legacy
    :class:`AwgnChannel`; ``bpsk`` with fading returns
    :class:`BlockFadingChannel`; everything else a
    :class:`SymbolChannel`.
    """
    if modulation not in MODULATION_BITS:
        raise ValueError(
            f"unknown modulation {modulation!r} "
            f"(choose from {sorted(MODULATION_BITS)})"
        )
    if channel not in CHANNEL_NAMES:
        raise ValueError(
            f"unknown channel {channel!r} "
            f"(choose from {list(CHANNEL_NAMES)})"
        )
    if modulation == "bpsk":
        if channel == "awgn":
            return AwgnChannel(
                ebn0_db=ebn0_db, rate=float(rate), seed=seed
            )
        return BlockFadingChannel(
            ebn0_db=ebn0_db,
            rate=float(rate),
            k_factor_db=None if channel == "rayleigh" else k_factor_db,
            block_length=block_length,
            seed=seed,
        )
    return SymbolChannel(
        constellation_for(modulation, rate_label),
        ebn0_db,
        float(rate),
        seed=seed,
        fading=None if channel == "awgn" else channel,
        k_factor_db=k_factor_db,
        block_length=block_length,
        max_log=max_log,
    )
