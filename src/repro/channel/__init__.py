"""Modulation, AWGN and fading channels, LLRs, Shannon limits."""

from .awgn import (
    AwgnChannel,
    ebn0_db_to_sigma,
    esn0_db_to_sigma,
    sigma_to_ebn0_db,
)
from .fading import (
    BlockFadingChannel,
    rayleigh_amplitudes,
    rician_amplitudes,
)
from .capacity import (
    bpsk_capacity,
    gap_to_shannon_db,
    shannon_limit_ebn0_db,
    unconstrained_capacity,
)
from .apsk import (
    ApskChannel,
    Constellation,
    apsk16,
    apsk32,
)
from .factory import (
    CHANNEL_NAMES,
    MODULATION_BITS,
    SymbolChannel,
    build_channel,
    constellation_for,
    psk8,
    qpsk,
)
from .psk import (
    Psk8Channel,
    psk8_demodulate_hard,
    psk8_llrs,
    psk8_modulate,
)
from .modulation import (
    bpsk_demodulate_hard,
    bpsk_modulate,
    qpsk_demodulate_hard,
    qpsk_modulate,
)

__all__ = [
    "ApskChannel",
    "AwgnChannel",
    "BlockFadingChannel",
    "CHANNEL_NAMES",
    "Constellation",
    "MODULATION_BITS",
    "Psk8Channel",
    "SymbolChannel",
    "apsk16",
    "apsk32",
    "build_channel",
    "constellation_for",
    "psk8",
    "qpsk",
    "bpsk_capacity",
    "bpsk_demodulate_hard",
    "bpsk_modulate",
    "ebn0_db_to_sigma",
    "esn0_db_to_sigma",
    "gap_to_shannon_db",
    "qpsk_demodulate_hard",
    "rayleigh_amplitudes",
    "rician_amplitudes",
    "psk8_demodulate_hard",
    "psk8_llrs",
    "psk8_modulate",
    "qpsk_modulate",
    "shannon_limit_ebn0_db",
    "sigma_to_ebn0_db",
    "unconstrained_capacity",
]
