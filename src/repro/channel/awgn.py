"""Binary-input AWGN channel with exact LLR computation.

Conventions (standard in the LDPC literature and in the paper's refs):

* Unit-energy BPSK: ``x = ±1`` (``Es = 1``),
* real noise with variance ``sigma^2 = N0 / 2``, so ``Es/N0 = 1 / (2 sigma^2)``,
* BPSK carries one bit per symbol, so ``Eb/N0 = (Es/N0) / R`` for code
  rate ``R``,
* channel LLR (the ``λ_ch`` of paper Eq. 4): ``L = 2 y / sigma^2``,
  positive for a likely 0 bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .modulation import bpsk_modulate


def ebn0_db_to_sigma(ebn0_db: float, rate: float) -> float:
    """Noise standard deviation for an Eb/N0 (dB) and code rate."""
    if rate <= 0:
        raise ValueError("code rate must be positive")
    esn0 = rate * 10.0 ** (ebn0_db / 10.0)
    return float(1.0 / np.sqrt(2.0 * esn0))


def sigma_to_ebn0_db(sigma: float, rate: float) -> float:
    """Inverse of :func:`ebn0_db_to_sigma`."""
    if sigma <= 0 or rate <= 0:
        raise ValueError("sigma and rate must be positive")
    esn0 = 1.0 / (2.0 * sigma * sigma)
    return float(10.0 * np.log10(esn0 / rate))


def esn0_db_to_sigma(esn0_db: float) -> float:
    """Noise standard deviation for an Es/N0 (dB)."""
    esn0 = 10.0 ** (esn0_db / 10.0)
    return float(1.0 / np.sqrt(2.0 * esn0))


@dataclass
class AwgnChannel:
    """Seeded AWGN channel producing channel LLRs.

    Parameters
    ----------
    ebn0_db:
        Operating point in Eb/N0 (dB).
    rate:
        Code rate used for the Eb/N0 → sigma conversion.
    seed:
        PRNG seed; ``None`` draws entropy from the OS.
    """

    ebn0_db: float
    rate: float
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.sigma = ebn0_db_to_sigma(self.ebn0_db, self.rate)
        self._rng = np.random.default_rng(self.seed)

    @property
    def esn0_db(self) -> float:
        """Operating point in Es/N0 (dB)."""
        return float(10.0 * np.log10(1.0 / (2.0 * self.sigma**2)))

    @property
    def llr_scale(self) -> float:
        """The exact LLR scale ``2 / sigma^2``."""
        return 2.0 / (self.sigma * self.sigma)

    def transmit(self, bits: np.ndarray) -> np.ndarray:
        """Modulate bits, add noise, and return received symbols.

        Accepts a single frame ``(n,)`` or a batch ``(frames, n)``; the
        noise stream is consumed row by row, so a batched call is
        stream-identical to the equivalent sequence of per-frame calls.
        """
        symbols = bpsk_modulate(bits)
        return symbols + self._rng.normal(0.0, self.sigma, size=symbols.shape)

    def llrs(self, bits: np.ndarray) -> np.ndarray:
        """Transmit bits and return the exact channel LLRs ``2 y / sigma^2``."""
        return self.llr_scale * self.transmit(bits)

    def llrs_all_zero(
        self, n: int, size: Optional[int] = None
    ) -> np.ndarray:
        """LLRs for the all-zero codeword without materializing the bits.

        Valid for linear codes with symmetric decoders: the BER of the
        all-zero word equals the average BER, the standard Monte-Carlo
        shortcut.

        With ``size`` given, returns a ``(size, n)`` batch drawn in one
        RNG call; the stream is identical to ``size`` sequential calls,
        so batched and per-frame simulations see the same noise.
        """
        shape = n if size is None else (size, n)
        received = 1.0 + self._rng.normal(0.0, self.sigma, size=shape)
        return self.llr_scale * received

    def reseed(self, seed: int) -> None:
        """Restart the noise stream deterministically."""
        self._rng = np.random.default_rng(seed)
