"""16APSK / 32APSK constellations — DVB-S2's high-efficiency modcods.

DVB-S2 pairs rates >= 2/3 with amplitude-phase-shift keying: rings of
PSK points whose radius ratios are optimized per code rate (the
standard's Table 9).  This module provides a generic soft-demapped
:class:`Constellation` plus the standard's ring geometries.

The exact standard bit-to-point labeling is not redistributable here; a
Gray-structured labeling with the same ring geometry is used instead
(documented substitution — LDPC performance depends on the geometry and
the per-ring Gray property, not the global label order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

#: Standard ring-radius ratios gamma = R2/R1 for 16APSK per code rate.
APSK16_GAMMA: Dict[str, float] = {
    "2/3": 3.15,
    "3/4": 2.85,
    "4/5": 2.75,
    "5/6": 2.70,
    "8/9": 2.60,
    "9/10": 2.57,
}

#: Standard (gamma1, gamma2) = (R2/R1, R3/R1) for 32APSK per code rate.
APSK32_GAMMA: Dict[str, tuple] = {
    "3/4": (2.84, 5.27),
    "4/5": (2.72, 4.87),
    "5/6": (2.64, 4.64),
    "8/9": (2.54, 4.33),
    "9/10": (2.53, 4.30),
}


def _gray_codes(n_bits: int) -> np.ndarray:
    """Gray sequence of length 2^n_bits."""
    count = 1 << n_bits
    return np.array([v ^ (v >> 1) for v in range(count)])


@dataclass(frozen=True)
class Constellation:
    """A labeled constellation with exact/max-log soft demapping.

    Attributes
    ----------
    points:
        Complex points, unit average energy, indexed by label value.
    bits_per_symbol:
        Label width; ``points`` has ``2**bits_per_symbol`` entries.
    name:
        Human-readable identifier.
    """

    points: np.ndarray
    bits_per_symbol: int
    name: str = "custom"

    def __post_init__(self) -> None:
        expected = 1 << self.bits_per_symbol
        if self.points.shape != (expected,):
            raise ValueError(
                f"need {expected} points for {self.bits_per_symbol} bits"
            )
        energy = float(np.mean(np.abs(self.points) ** 2))
        if abs(energy - 1.0) > 1e-6:
            raise ValueError("constellation must have unit mean energy")

    # ------------------------------------------------------------------
    def _label_bits(self) -> np.ndarray:
        b = self.bits_per_symbol
        labels = np.arange(1 << b)
        return np.array(
            [[(v >> (b - 1 - i)) & 1 for i in range(b)] for v in labels]
        )

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit array to symbols (length divisible by the label
        width)."""
        bits = np.asarray(bits)
        b = self.bits_per_symbol
        if bits.size % b:
            raise ValueError(f"need a multiple of {b} bits")
        if ((bits != 0) & (bits != 1)).any():
            raise ValueError("bits must be 0/1")
        groups = bits.reshape(-1, b)
        weights = 1 << np.arange(b - 1, -1, -1)
        labels = groups @ weights
        return self.points[labels]

    def demodulate_hard(self, symbols: np.ndarray) -> np.ndarray:
        """Nearest-point decision back to bits."""
        symbols = np.asarray(symbols)
        d = np.abs(symbols[:, None] - self.points[None, :])
        labels = np.argmin(d, axis=1)
        return self._label_bits()[labels].reshape(-1).astype(np.uint8)

    def llrs(
        self, received: np.ndarray, sigma, max_log: bool = True
    ) -> np.ndarray:
        """Per-bit LLRs (positive favours 0) from received symbols.

        ``sigma`` is the per-dimension noise standard deviation — a
        scalar, or an array of per-symbol values (one per received
        symbol), which is how a coherently equalized fading channel
        expresses its per-block effective SNR.
        """
        received = np.asarray(received, dtype=np.complex128)
        sigma = np.asarray(sigma, dtype=np.float64)
        if (sigma <= 0).any():
            raise ValueError("sigma must be positive")
        if sigma.ndim not in (0, 1) or (
            sigma.ndim == 1 and sigma.size != received.size
        ):
            raise ValueError(
                "sigma must be a scalar or one value per symbol"
            )
        metric = -np.abs(received[:, None] - self.points[None, :]) ** 2
        var2 = 2.0 * sigma * sigma
        metric /= var2 if sigma.ndim == 0 else var2[:, None]
        label_bits = self._label_bits()
        out = np.empty(
            (received.size, self.bits_per_symbol), dtype=np.float64
        )
        for b in range(self.bits_per_symbol):
            zero = label_bits[:, b] == 0
            if max_log:
                out[:, b] = metric[:, zero].max(axis=1) - metric[
                    :, ~zero
                ].max(axis=1)
            else:
                from scipy.special import logsumexp

                out[:, b] = logsumexp(metric[:, zero], axis=1) - (
                    logsumexp(metric[:, ~zero], axis=1)
                )
        return out.reshape(-1)


def _ring(count: int, radius: float, phase0: float) -> np.ndarray:
    angles = phase0 + 2.0 * np.pi * np.arange(count) / count
    return radius * np.exp(1j * angles)


def _normalized(points: np.ndarray) -> np.ndarray:
    return points / np.sqrt(np.mean(np.abs(points) ** 2))


def apsk16(rate: str = "3/4", gamma: Optional[float] = None) -> Constellation:
    """The 4+12 16APSK constellation for a code rate.

    Labeling: the two MSBs select ring/sector Gray-wise, the remaining
    bits Gray-count around each ring.
    """
    if gamma is None:
        if rate not in APSK16_GAMMA:
            raise KeyError(
                f"no standard 16APSK ratio for rate {rate!r}"
            )
        gamma = APSK16_GAMMA[rate]
    inner = _ring(4, 1.0, np.pi / 4.0)
    outer = _ring(12, gamma, np.pi / 12.0)
    pts = np.empty(16, dtype=np.complex128)
    # Labels 0..3 take the inner ring in Gray order around the circle;
    # labels 4..15 walk the outer ring.  (12 is not a power of two, so a
    # perfect Gray labeling of the outer ring does not exist; the LDPC
    # chain is insensitive to the residual non-Gray transitions.)
    for position, gray in enumerate(_gray_codes(2)):
        pts[int(gray)] = inner[position]
    for position in range(12):
        pts[4 + position] = outer[position]
    return Constellation(
        points=_normalized(pts), bits_per_symbol=4,
        name=f"16APSK(g={gamma})",
    )


def apsk32(
    rate: str = "4/5", gammas: Optional[tuple] = None
) -> Constellation:
    """The 4+12+16 32APSK constellation for a code rate."""
    if gammas is None:
        if rate not in APSK32_GAMMA:
            raise KeyError(
                f"no standard 32APSK ratios for rate {rate!r}"
            )
        gammas = APSK32_GAMMA[rate]
    g1, g2 = gammas
    rings = np.concatenate(
        [
            _ring(4, 1.0, np.pi / 4.0),
            _ring(12, g1, np.pi / 12.0),
            _ring(16, g2, 0.0),
        ]
    )
    return Constellation(
        points=_normalized(rings), bits_per_symbol=5,
        name=f"32APSK(g={g1},{g2})",
    )


class ApskChannel:
    """AWGN channel over an APSK constellation with soft demapping."""

    def __init__(
        self,
        constellation: Constellation,
        ebn0_db: float,
        rate: float,
        seed: Optional[int] = None,
        max_log: bool = True,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        bits = constellation.bits_per_symbol
        esn0 = bits * rate * 10.0 ** (ebn0_db / 10.0)
        self.constellation = constellation
        self.sigma = float(1.0 / np.sqrt(2.0 * esn0))
        self.max_log = max_log
        self._rng = np.random.default_rng(seed)

    def llrs(self, bits: np.ndarray) -> np.ndarray:
        """Modulate, add complex noise, demap."""
        symbols = self.constellation.modulate(bits)
        noise = self._rng.normal(
            0.0, self.sigma, symbols.size
        ) + 1j * self._rng.normal(0.0, self.sigma, symbols.size)
        return self.constellation.llrs(
            symbols + noise, self.sigma, self.max_log
        )
