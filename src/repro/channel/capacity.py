"""Shannon-limit computations (the paper's "0.7 dB to Shannon" claim).

Two limits matter for DVB-S2:

* the *unconstrained* AWGN capacity ``C = 1/2 log2(1 + 2 Es/N0)`` bits per
  real channel use, and
* the *binary-input* (BPSK) AWGN capacity, computed by Gauss–Hermite
  quadrature of ``C = 1 - E[log2(1 + e^{-L})]`` over the LLR distribution
  ``L ~ N(2/sigma^2, 4/sigma^2)`` conditioned on ``x = +1``.

The Shannon limit for a code of rate ``R`` is the Eb/N0 at which the
capacity equals ``R``; the paper's 0.7 dB figure is the distance between
the DVB-S2 operating point and that limit.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

_HERMITE_POINTS = 96


def unconstrained_capacity(esn0_db: float) -> float:
    """Capacity of the real AWGN channel in bits per channel use."""
    esn0 = 10.0 ** (esn0_db / 10.0)
    return float(0.5 * np.log2(1.0 + 2.0 * esn0))


def bpsk_capacity(esn0_db: float) -> float:
    """Binary-input AWGN capacity in bits per channel use.

    Uses Gauss–Hermite quadrature; accurate to well below 1e-6 bits over
    the range relevant to DVB-S2 (−5 .. 15 dB).
    """
    esn0 = 10.0 ** (esn0_db / 10.0)
    sigma2 = 1.0 / (2.0 * esn0)
    mean = 2.0 / sigma2
    std = 2.0 / np.sqrt(sigma2)
    nodes, weights = np.polynomial.hermite.hermgauss(_HERMITE_POINTS)
    llrs = mean + np.sqrt(2.0) * std * nodes
    # log2(1 + e^-l) evaluated stably for both signs of l.
    vals = np.logaddexp(0.0, -llrs) / np.log(2.0)
    expectation = float(np.sum(weights * vals) / np.sqrt(np.pi))
    return max(0.0, 1.0 - expectation)


def _bisect(
    func: Callable[[float], float], lo: float, hi: float, tol: float = 1e-9
) -> float:
    """Root of a monotone increasing ``func`` on [lo, hi] by bisection."""
    flo, fhi = func(lo), func(hi)
    if flo > 0 or fhi < 0:
        raise ValueError("root not bracketed")
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if func(mid) < 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def shannon_limit_ebn0_db(rate: float, constrained: bool = True) -> float:
    """Minimum Eb/N0 (dB) at which rate ``rate`` is achievable.

    Parameters
    ----------
    rate:
        Code rate in (0, 1) — equivalently the spectral efficiency of BPSK
        at that rate, in bits per real channel use.
    constrained:
        ``True`` (default) uses the BPSK-input capacity, which is the right
        reference for an LDPC-coded BPSK/QPSK system; ``False`` uses the
        Gaussian-input limit.
    """
    if not 0.0 < rate < 1.0:
        raise ValueError("rate must be in (0, 1)")
    capacity = bpsk_capacity if constrained else unconstrained_capacity

    def gap(ebn0_db: float) -> float:
        esn0_db = ebn0_db + 10.0 * np.log10(rate)
        return capacity(esn0_db) - rate

    return _bisect(gap, -10.0, 30.0)


def gap_to_shannon_db(
    operating_ebn0_db: float, rate: float, constrained: bool = True
) -> float:
    """Distance (dB) between an operating point and the Shannon limit."""
    return operating_ebn0_db - shannon_limit_ebn0_db(rate, constrained)
