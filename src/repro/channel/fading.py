"""Fading channels for mobile-satellite studies (extension).

DVB-S2's ACM mode exists because real links fade.  This module provides
the two standard satellite fading models on top of the AWGN substrate:

* **Rician** — a strong line-of-sight component plus scattered power,
  parameterized by the K-factor (dB); the usual model for open-sky
  satellite reception,
* **Rayleigh** — the K → -inf limit (no line of sight; heavy shadowing).

Fading is block-constant per frame group (slow fading relative to the
frame duration, the regime where ACM rate adaptation works), and the
receiver is assumed to know the channel gain (coherent detection), so
LLRs scale with the instantaneous amplitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .awgn import ebn0_db_to_sigma
from .modulation import bpsk_modulate


def rician_amplitudes(
    n: int, k_factor_db: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw unit-mean-power Rician fading amplitudes.

    ``K`` is the LOS-to-scatter power ratio; total mean power is
    normalized to 1 so the average SNR is preserved.
    """
    k = 10.0 ** (k_factor_db / 10.0)
    los = np.sqrt(k / (k + 1.0))
    scatter_sigma = np.sqrt(1.0 / (2.0 * (k + 1.0)))
    i = los + scatter_sigma * rng.normal(size=n)
    q = scatter_sigma * rng.normal(size=n)
    return np.hypot(i, q)


def rayleigh_amplitudes(n: int, rng: np.random.Generator) -> np.ndarray:
    """Unit-mean-power Rayleigh amplitudes (no line of sight)."""
    sigma = np.sqrt(0.5)
    return np.hypot(
        sigma * rng.normal(size=n), sigma * rng.normal(size=n)
    )


@dataclass
class BlockFadingChannel:
    """Block-fading BPSK channel with coherent LLR computation.

    Parameters
    ----------
    ebn0_db:
        *Average* Eb/N0 operating point.
    rate:
        Code rate for the Eb/N0 conversion.
    k_factor_db:
        Rician K-factor; ``None`` selects Rayleigh fading.
    block_length:
        Symbols sharing one fading amplitude (0 = whole frame).
    seed:
        PRNG seed for both fading and noise.
    """

    ebn0_db: float
    rate: float
    k_factor_db: Optional[float] = 10.0
    block_length: int = 0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.sigma = ebn0_db_to_sigma(self.ebn0_db, self.rate)
        self._rng = np.random.default_rng(self.seed)

    @property
    def esn0_db(self) -> float:
        """*Average* Es/N0 (dB) — the fading has unit mean power."""
        return float(10.0 * np.log10(1.0 / (2.0 * self.sigma**2)))

    def reseed(self, seed) -> None:
        """Restart the fading + noise stream deterministically."""
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _draw_gains(self, n: int) -> np.ndarray:
        block = self.block_length if self.block_length > 0 else n
        n_blocks = -(-n // block)
        if self.k_factor_db is None:
            amps = rayleigh_amplitudes(n_blocks, self._rng)
        else:
            amps = rician_amplitudes(n_blocks, self.k_factor_db, self._rng)
        return np.repeat(amps, block)[:n]

    def llrs(self, bits: np.ndarray) -> np.ndarray:
        """Transmit and return coherent LLRs ``2 a y / sigma^2``.

        With known gain ``a``: ``y = a x + n`` and
        ``LLR = 2 a y / sigma^2`` — weak blocks automatically produce
        weak LLRs, which is what lets the decoder ride through fades.

        Accepts one frame ``(n,)`` or a batch ``(frames, n)``.  Batched
        frames draw gains-then-noise per row, exactly the order the
        per-frame path uses, so a batched call is stream-identical to
        the equivalent sequence of single-frame calls.
        """
        bits = np.asarray(bits)
        if bits.ndim == 2:
            return np.stack([self._frame_llrs(row) for row in bits])
        return self._frame_llrs(bits)

    def _frame_llrs(self, bits: np.ndarray) -> np.ndarray:
        gains = self._draw_gains(bits.size)
        symbols = gains * bpsk_modulate(bits)
        received = symbols + self._rng.normal(0.0, self.sigma, bits.size)
        return 2.0 * gains * received / (self.sigma * self.sigma)

    def llrs_all_zero(
        self, n: int, size: Optional[int] = None
    ) -> np.ndarray:
        """All-zero-codeword shortcut under fading.

        Same seed, same stream as :meth:`llrs` on an all-zero frame:
        gains first, then noise, and ``bpsk_modulate(0) = +1`` so the
        two paths produce identical LLRs draw for draw.  With ``size``
        given, returns a ``(size, n)`` batch built frame by frame —
        stream-identical to ``size`` sequential calls (the AWGN
        batching contract; here the gain and noise draws interleave per
        frame, so the rows are generated sequentially rather than in
        one vectorized draw).
        """
        if size is not None:
            return np.stack(
                [self.llrs_all_zero(n) for _ in range(size)]
            )
        gains = self._draw_gains(n)
        received = gains + self._rng.normal(0.0, self.sigma, n)
        return 2.0 * gains * received / (self.sigma * self.sigma)
