"""Min-sum decoder variants (the hardware-friendly check-node kernel).

Thin configuration layer over :class:`~repro.decode.bp.BeliefPropagationDecoder`
providing the three standard min-sum flavours used when evaluating decoder
hardware:

* plain min-sum (overestimates magnitudes; ~0.3–0.5 dB loss),
* normalized min-sum (scales outputs by ``alpha``; near-BP performance),
* offset min-sum (subtracts ``beta`` before flooring at zero).
"""

from __future__ import annotations

from typing import Optional

from ..codes.construction import LdpcCode
from ..obs.iteration import IterationTrace
from .bp import BeliefPropagationDecoder

#: Standard normalization factor for degree-7..30 checks; hardware uses
#: 0.75 or 0.8125 because they are cheap shift-add multiplications.
DEFAULT_NORMALIZATION = 0.75

#: Typical offset for 6-bit quantized LLRs with 2 fractional bits.
DEFAULT_OFFSET = 0.25


class MinSumDecoder(BeliefPropagationDecoder):
    """Plain min-sum flooding decoder."""

    def __init__(
        self,
        code: LdpcCode,
        iteration_trace: Optional[IterationTrace] = None,
    ) -> None:
        super().__init__(
            code, cn_kernel="minsum", iteration_trace=iteration_trace
        )


class NormalizedMinSumDecoder(BeliefPropagationDecoder):
    """Normalized min-sum: check outputs scaled by ``alpha``."""

    def __init__(
        self,
        code: LdpcCode,
        alpha: float = DEFAULT_NORMALIZATION,
        iteration_trace: Optional[IterationTrace] = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        super().__init__(
            code,
            cn_kernel="minsum",
            normalization=alpha,
            iteration_trace=iteration_trace,
        )


class OffsetMinSumDecoder(BeliefPropagationDecoder):
    """Offset min-sum: check outputs reduced by ``beta``, floored at 0."""

    def __init__(
        self,
        code: LdpcCode,
        beta: float = DEFAULT_OFFSET,
        iteration_trace: Optional[IterationTrace] = None,
    ) -> None:
        if beta < 0.0:
            raise ValueError("beta must be non-negative")
        super().__init__(
            code,
            cn_kernel="minsum",
            offset=beta,
            iteration_trace=iteration_trace,
        )
