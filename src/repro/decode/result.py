"""Common result type returned by every decoder in this library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass
class DecodeResult:
    """Outcome of decoding one frame.

    Attributes
    ----------
    bits:
        Hard-decision codeword estimate (length ``N``).
    converged:
        ``True`` when the syndrome reached zero before the iteration
        limit (early termination) — a decoder success indicator, not a
        guarantee the *transmitted* word was recovered.
    iterations:
        Number of full iterations actually executed.
    posteriors:
        Final a-posteriori LLRs per variable node.
    extra:
        Decoder-specific diagnostics (e.g. cycle counts for the hardware
        core).
    """

    bits: np.ndarray
    converged: bool
    iterations: int
    posteriors: np.ndarray
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def info_bits(self) -> np.ndarray:
        """Convenience alias: callers slice ``bits[:k]`` themselves when
        they know ``k``; kept as the full word here."""
        return self.bits

    def bit_errors(self, reference: np.ndarray) -> int:
        """Hamming distance to a reference codeword."""
        reference = np.asarray(reference)
        if reference.shape != self.bits.shape:
            raise ValueError("reference length mismatch")
        return int(np.count_nonzero(self.bits != reference))

    def frame_error(self, reference: np.ndarray) -> bool:
        """True when any bit differs from the reference codeword."""
        return self.bit_errors(reference) > 0
