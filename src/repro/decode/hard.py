"""Hard-decision decoders — Gallager's original algorithms (paper ref [2]).

The paper cites Gallager's 1963 monograph for both the codes and the
message-passing idea.  These decoders are the historical baselines the
soft decoder is measured against, and in hardware terms they are what a
decoder without message RAMs could do: they need one bit per edge
instead of six — at a ~2 dB performance cost, which is exactly why the
IP core spends 9 mm² on message storage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..codes.construction import LdpcCode
from ..codes.matrix import syndrome
from .result import DecodeResult


class BitFlippingDecoder:
    """Gradient-style bit flipping on hard channel decisions.

    Each iteration counts, per variable node, the number of unsatisfied
    incident checks and flips every bit whose count is maximal.  Simple,
    fast, and ~2 dB worse than BP — the baseline that motivates soft
    decoding.
    """

    def __init__(self, code: LdpcCode) -> None:
        self.code = code

    def decode(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
    ) -> DecodeResult:
        """Decode from LLR signs (soft input is immediately sliced)."""
        graph = self.code.graph
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.shape != (graph.n_vns,):
            raise ValueError(f"expected {graph.n_vns} LLRs")
        bits = (llrs < 0).astype(np.uint8)
        iterations = 0
        converged = not syndrome(graph, bits).any()
        while not converged and iterations < max_iterations:
            unsatisfied = syndrome(graph, bits)
            counts = np.zeros(graph.n_vns, dtype=np.int64)
            np.add.at(
                counts, graph.edge_vn, unsatisfied[graph.edge_cn]
            )
            worst = counts.max()
            if worst == 0:  # pragma: no cover - caught by syndrome
                break
            bits = bits ^ (counts == worst).astype(np.uint8)
            iterations += 1
            converged = not syndrome(graph, bits).any()
            if not early_stop and iterations < max_iterations:
                converged = False if not converged else converged
        posteriors = (1.0 - 2.0 * bits.astype(np.float64))
        return DecodeResult(
            bits=bits,
            converged=bool(converged),
            iterations=iterations,
            posteriors=posteriors,
        )


class GallagerBDecoder:
    """Gallager's algorithm B: single-bit message passing with majority.

    CN message = XOR of the other incoming bits; VN sends the channel
    bit unless at least ``threshold`` of the other check messages
    disagree.  The decision uses the full majority including the channel
    bit.

    A finding this reproduction surfaces: on the DVB-S2 codes the
    default majority threshold oscillates — the degree-2 zigzag chain
    relays single hard errors along the accumulator and the bulk of
    degree-3 nodes flip on 2-of-2 disagreement.  A conservative
    ``threshold=3`` (only nodes of degree >= 4 ever flip) is stable and
    corrects high-SNR error patterns; either way the ~2 dB+ gap to soft
    decoding is the quantitative case for the IP core's 9 mm² of soft
    message RAM.
    """

    def __init__(
        self, code: LdpcCode, threshold: Optional[int] = None
    ) -> None:
        self.code = code
        graph = code.graph
        self._vn_order = graph.vn_order
        self._vn_ptr = graph.vn_ptr
        self._cn_order = graph.cn_order
        self._cn_ptr = graph.cn_ptr
        self.threshold = threshold

    def _vn_threshold(self, degree: np.ndarray) -> np.ndarray:
        """Per-node flip threshold: majority of the other messages."""
        if self.threshold is not None:
            return np.full_like(degree, self.threshold)
        return np.maximum(1, ((degree - 1) // 2) + 1)

    def decode(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
    ) -> DecodeResult:
        """Decode from LLR signs."""
        graph = self.code.graph
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.shape != (graph.n_vns,):
            raise ValueError(f"expected {graph.n_vns} LLRs")
        channel_bits = (llrs < 0).astype(np.int64)
        v2c = channel_bits[graph.edge_vn].copy()
        bits = channel_bits.astype(np.uint8)
        iterations = 0
        converged = early_stop and not syndrome(graph, bits).any()
        thresholds = self._vn_threshold(graph.vn_degrees)
        while not converged and iterations < max_iterations:
            # CN phase: XOR of the other inputs per edge.
            sums = np.zeros(graph.n_cns, dtype=np.int64)
            np.add.at(sums, graph.edge_cn, v2c)
            c2v = (sums[graph.edge_cn] - v2c) & 1
            # VN phase: disagreements with the channel bit, excluding self.
            disagree = (c2v != channel_bits[graph.edge_vn]).astype(np.int64)
            totals = np.zeros(graph.n_vns, dtype=np.int64)
            np.add.at(totals, graph.edge_vn, disagree)
            other_disagree = totals[graph.edge_vn] - disagree
            flip = other_disagree >= thresholds[graph.edge_vn]
            v2c = np.where(
                flip, 1 - channel_bits[graph.edge_vn],
                channel_bits[graph.edge_vn],
            )
            # Decision: majority of channel bit and all check messages.
            votes = np.zeros(graph.n_vns, dtype=np.int64)
            np.add.at(votes, graph.edge_vn, 2 * c2v - 1)
            votes += 2 * channel_bits - 1
            bits = (votes > 0).astype(np.uint8)
            ties = votes == 0
            bits[ties] = channel_bits[ties].astype(np.uint8)
            iterations += 1
            if early_stop and not syndrome(graph, bits).any():
                converged = True
        posteriors = (1.0 - 2.0 * bits.astype(np.float64))
        return DecodeResult(
            bits=bits,
            converged=bool(converged),
            iterations=iterations,
            posteriors=posteriors,
        )
