"""Numba kernel twins for the ``numba`` array backend.

The two serial-dependency kernels of the quantized zigzag/min-sum hot
path — the t-major forward chain scan and the fused per-segment
min1/min2/argmin sweep — written as plain-python loops that
``numba.njit(parallel=True)`` compiles when numba is installed.  The
undecorated twins stay importable (and unit-tested against the numpy
decoders) everywhere, so environments without numba still verify the
kernel semantics while the backend reports itself unavailable.

Every load is routed through ``int(...)`` so the python twins compute
in exact python integers (numpy int8 scalar arithmetic would wrap);
numba compiles the same casts to 64-bit scalar ops.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    HAVE_NUMBA = True
    NUMBA_IMPORT_ERROR = None
except Exception as _exc:  # ImportError, or a broken install
    HAVE_NUMBA = False
    NUMBA_IMPORT_ERROR = str(_exc)
    prange = range

    def njit(*args, **kwargs):  # type: ignore[misc]
        def wrap(fn):
            return fn

        return wrap


def _segment_min_scan(mags, starts, big, min1, min2, argmin):
    """Fused per-segment (min1, min2, argmin) in one sweep.

    ``mags`` is ``(m, n_edges)`` CN-sorted magnitudes, ``starts`` the
    ``(n_segs,)`` segment offsets (implied end ``n_edges``).  ``argmin``
    receives the *global sorted position* of the first minimum and
    ``min2`` the minimum of the remaining entries (``big`` — the dtype's
    max — when a segment has one edge), exactly matching the numpy
    two-``reduceat`` path's mask value.
    """
    m = mags.shape[0]
    n_edges = mags.shape[1]
    n_segs = starts.shape[0]
    for f in prange(m):
        for s in range(n_segs):
            lo = int(starts[s])
            hi = int(starts[s + 1]) if s + 1 < n_segs else n_edges
            m1 = int(big)
            m2 = int(big)
            am = lo
            for e in range(lo, hi):
                v = int(mags[f, e])
                if v < m1:
                    m2 = m1
                    m1 = v
                    am = e
                elif v < m2:
                    m2 = v
            min1[f, s] = m1
            min2[f, s] = m2
            argmin[f, s] = am


def _zigzag_forward_scan(
    n1, parity_neg, ch_pn, f_old, seg, mi, lut, f, a_norm, a_neg
):
    """Serial-per-segment forward chain scan of the zigzag check phase.

    Matches ``BatchQuantizedZigzagDecoder._forward_scan``: ``n1`` is the
    already-normalized first minimum ``lut[min1]``; outputs are ``f``,
    ``lut[|a|]`` and ``a < 0`` in linear parity-node order.  All arrays
    are ``(m, n_par)``; the chain value is saturated to ``±mi`` after
    every step exactly like the golden model.
    """
    m = n1.shape[0]
    n_par = n1.shape[1]
    q = n_par // seg
    for fr in prange(m):
        for s in range(seg):
            base = s * q
            if s == 0:
                a = int(mi)
            else:
                a = int(ch_pn[fr, base - 1]) + int(f_old[fr, base - 1])
                if a > mi:
                    a = int(mi)
                elif a < -mi:
                    a = -int(mi)
            for j in range(q):
                p = base + j
                am = -a if a < 0 else a
                an = int(lut[am])
                a_norm[fr, p] = an
                neg = a < 0
                a_neg[fr, p] = neg
                mag = int(n1[fr, p])
                if an < mag:
                    mag = an
                if parity_neg[fr, p] != neg:
                    mag = -mag
                f[fr, p] = mag
                a = int(ch_pn[fr, p]) + mag
                if a > mi:
                    a = int(mi)
                elif a < -mi:
                    a = -int(mi)


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    segment_min_scan = njit(cache=True, parallel=True)(_segment_min_scan)
    zigzag_forward_scan = njit(cache=True, parallel=True)(
        _zigzag_forward_scan
    )
else:
    segment_min_scan = _segment_min_scan
    zigzag_forward_scan = _zigzag_forward_scan
