"""LDPC decoders: two-phase BP, min-sum variants, zigzag schedule,
fixed-point implementations."""

from .backend import (
    ArrayBackend,
    available_backends,
    backend_status,
    resolve_backend,
)
from .batch import BatchDecodeResult, BatchMinSumDecoder, BatchZigzagDecoder
from .batch_quantized import (
    BatchQuantizedMinSumDecoder,
    BatchQuantizedZigzagDecoder,
)
from .bp import BeliefPropagationDecoder
from .hard import BitFlippingDecoder, GallagerBDecoder
from .layered import LayeredMinSumDecoder, sequential_block_layers
from .minsum import (
    MinSumDecoder,
    NormalizedMinSumDecoder,
    OffsetMinSumDecoder,
)
from .quantized import QuantizedMinSumDecoder, QuantizedZigzagDecoder
from .result import DecodeResult
from .zigzag import ZigzagDecoder

__all__ = [
    "ArrayBackend",
    "BatchDecodeResult",
    "BatchMinSumDecoder",
    "BatchQuantizedMinSumDecoder",
    "BatchQuantizedZigzagDecoder",
    "BatchZigzagDecoder",
    "BeliefPropagationDecoder",
    "BitFlippingDecoder",
    "DecodeResult",
    "GallagerBDecoder",
    "LayeredMinSumDecoder",
    "MinSumDecoder",
    "NormalizedMinSumDecoder",
    "OffsetMinSumDecoder",
    "QuantizedMinSumDecoder",
    "QuantizedZigzagDecoder",
    "ZigzagDecoder",
    "available_backends",
    "backend_status",
    "resolve_backend",
    "sequential_block_layers",
]
