"""Batched decoding: many frames through one vectorized decoder.

Monte-Carlo BER runs dominate LDPC evaluation time; decoding a batch of
frames as one ``(frames, edges)`` matrix amortizes every index
computation and typically buys a 5–10x simulation speedup.  Results are
bit-identical to the single-frame decoders (asserted in the tests):
converged frames are frozen while the rest keep iterating.

Two schedules are available:

* :class:`BatchMinSumDecoder` — two-phase (flooding) normalized min-sum,
* :class:`BatchZigzagDecoder` — the paper's Section 2.2 zigzag schedule,
  which converges in fewer iterations (~30 vs ~40) and whose check-node
  phase works on a dense ``(frames, n_parity, k-2)`` view instead of
  ragged edge segments, making it the fastest software path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..codes.construction import LdpcCode
from .messages import phi
from .zigzag import DEFAULT_MAX_ITERATIONS, _NEUTRAL_MAG


def _batch_syndromes_ok(
    bits: np.ndarray,
    edge_vn_sorted: np.ndarray,
    cn_starts: np.ndarray,
) -> np.ndarray:
    """Per-frame all-checks-satisfied flag for a ``(frames, n)`` batch.

    The reduction stays in uint8 — check degrees are far below 256, so
    the per-check popcount cannot wrap.
    """
    edge_bits = bits[:, edge_vn_sorted]
    parities = np.add.reduceat(edge_bits, cn_starts, axis=1) & 1
    return ~parities.any(axis=1)


def _normalize_iteration_budgets(max_iterations, frames: int):
    """Normalize ``max_iterations`` into per-frame budgets plus a cap.

    Decoders with ``supports_frame_budgets`` accept either a scalar
    budget (the classic meaning) or a ``(frames,)`` array of per-frame
    budgets — the deadline-aware serve path uses the latter to stop
    iterating on frames whose time is up while the rest of the batch
    keeps going.  Returns the broadcast ``(frames,)`` int64 array and
    the largest budget (the outer loop bound).
    """
    budgets = np.asarray(max_iterations, dtype=np.int64)
    if budgets.ndim == 0:
        budgets = np.full(frames, int(budgets), dtype=np.int64)
    elif budgets.shape != (frames,):
        raise ValueError(
            f"max_iterations must be a scalar or shape ({frames},)"
        )
    else:
        budgets = budgets.copy()
    if frames and budgets.min() < 0:
        raise ValueError("iteration budgets must be non-negative")
    limit = int(budgets.max()) if frames else 0
    return budgets, limit


def _batch_unsatisfied_counts(
    bits: np.ndarray,
    edge_vn_sorted: np.ndarray,
    cn_starts: np.ndarray,
) -> np.ndarray:
    """Per-frame count of unsatisfied checks (iteration-trace observable)."""
    edge_bits = bits[:, edge_vn_sorted]
    parities = np.add.reduceat(edge_bits, cn_starts, axis=1) & 1
    return parities.sum(axis=1, dtype=np.int64)


@dataclass
class BatchDecodeResult:
    """Outcome of decoding a batch of frames."""

    bits: np.ndarray           # (frames, n)
    converged: np.ndarray      # (frames,) bool
    iterations: np.ndarray     # (frames,) iterations executed per frame

    @property
    def n_frames(self) -> int:
        """Number of frames in the batch."""
        return int(self.bits.shape[0])

    def frame_errors(self, reference: np.ndarray) -> np.ndarray:
        """Per-frame bit-error counts against reference codewords."""
        reference = np.asarray(reference)
        if reference.shape != self.bits.shape:
            raise ValueError("reference batch shape mismatch")
        return np.count_nonzero(self.bits != reference, axis=1)


class BatchMinSumDecoder:
    """Two-phase (flooding) normalized min-sum over a frame batch."""

    def __init__(
        self, code: LdpcCode, normalization: float = 0.75
    ) -> None:
        self.code = code
        self.normalization = normalization
        graph = code.graph
        self._vn_order = graph.vn_order
        self._vn_starts = graph.vn_ptr[:-1]
        self._cn_order = graph.cn_order
        self._cn_starts = graph.cn_ptr[:-1]
        self._vn_of_edge = graph.edge_vn
        self._cn_of_edge = graph.edge_cn
        cn_lengths = np.diff(graph.cn_ptr)
        self._seg_of_sorted = np.repeat(
            np.arange(graph.n_cns), cn_lengths
        )
        # syndrome helper: edges sorted by check for parity reduction
        self._edge_vn_sorted = graph.edge_vn[self._cn_order]

    # ------------------------------------------------------------------
    def decode_batch(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> BatchDecodeResult:
        """Decode a ``(frames, N)`` batch of channel LLRs.

        ``iteration_trace`` is an optional per-iteration hook (see
        :mod:`repro.obs.iteration`); it observes but never alters the
        decoding (results are bit-identical with tracing on or off).
        """
        graph = self.code.graph
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.ndim != 2 or llrs.shape[1] != graph.n_vns:
            raise ValueError(
                f"expected shape (frames, {graph.n_vns})"
            )
        frames = llrs.shape[0]
        c2v = np.zeros((frames, graph.n_edges), dtype=np.float64)
        bits = (llrs < 0).astype(np.uint8)
        iterations = np.zeros(frames, dtype=np.int64)
        if iteration_trace is not None:
            iteration_trace.record_batch(
                type(self).__name__,
                0,
                np.arange(frames),
                self._unsatisfied_counts(bits),
                np.abs(llrs).mean(axis=1),
                np.zeros(frames, dtype=np.int64),
            )
        converged = (
            self._syndromes_ok(bits)
            if early_stop
            else np.zeros(frames, dtype=bool)
        )
        active = ~converged
        for it in range(1, max_iterations + 1):
            if not active.any():
                break
            idx = np.nonzero(active)[0]
            sub_c2v = c2v[idx]
            sub_llrs = llrs[idx]
            # VN phase
            totals = np.add.reduceat(
                sub_c2v[:, self._vn_order], self._vn_starts, axis=1
            )
            posteriors = sub_llrs + totals
            v2c = posteriors[:, self._vn_of_edge] - sub_c2v
            # CN phase (normalized min-sum)
            sub_c2v = self._check_phase(v2c)
            c2v[idx] = sub_c2v
            iterations[idx] += 1
            totals = np.add.reduceat(
                sub_c2v[:, self._vn_order], self._vn_starts, axis=1
            )
            posteriors = sub_llrs + totals
            sub_bits = (posteriors < 0).astype(np.uint8)
            if iteration_trace is not None:
                iteration_trace.record_batch(
                    type(self).__name__,
                    it,
                    idx,
                    self._unsatisfied_counts(sub_bits),
                    np.abs(posteriors).mean(axis=1),
                    np.count_nonzero(sub_bits != bits[idx], axis=1),
                )
            bits[idx] = sub_bits
            if early_stop:
                ok = self._syndromes_ok(sub_bits)
                converged[idx[ok]] = True
                active = ~converged
        return BatchDecodeResult(
            bits=bits, converged=converged, iterations=iterations
        )

    # ------------------------------------------------------------------
    def _syndromes_ok(self, bits: np.ndarray) -> np.ndarray:
        """Per-frame all-checks-satisfied flag, vectorized."""
        return _batch_syndromes_ok(
            bits, self._edge_vn_sorted, self._cn_starts
        )

    def _unsatisfied_counts(self, bits: np.ndarray) -> np.ndarray:
        """Per-frame unsatisfied-check counts (trace observable)."""
        return _batch_unsatisfied_counts(
            bits, self._edge_vn_sorted, self._cn_starts
        )

    def _check_phase(self, v2c: np.ndarray) -> np.ndarray:
        frames, n_edges = v2c.shape
        sorted_vals = v2c[:, self._cn_order]
        mags = np.abs(sorted_vals)
        min1 = np.minimum.reduceat(mags, self._cn_starts, axis=1)
        expanded = min1[:, self._seg_of_sorted]
        is_min = mags == expanded
        positions = np.where(is_min, np.arange(n_edges), n_edges)
        argmin = np.minimum.reduceat(positions, self._cn_starts, axis=1)
        rows = np.arange(frames)[:, None]
        # mags is scratch from here on: mask the first minimum in place
        # instead of copying the whole (frames, edges) array.
        mags[rows, argmin] = np.inf
        min2 = np.minimum.reduceat(mags, self._cn_starts, axis=1)
        out = expanded  # fancy-indexed copy above, safe to overwrite
        out[rows, argmin] = min2
        out *= self.normalization
        negs = (sorted_vals < 0).astype(np.int64)
        parity = 1 - 2 * (
            np.add.reduceat(negs, self._cn_starts, axis=1) & 1
        )
        signs = parity[:, self._seg_of_sorted] * np.where(
            sorted_vals < 0, -1.0, 1.0
        )
        result_sorted = signs * out
        result = np.empty_like(v2c)
        result[:, self._cn_order] = result_sorted
        return result


class BatchZigzagDecoder:
    """Vectorized zigzag-schedule decoder over a frame batch.

    Bit-identical per frame to the single-frame
    :class:`~repro.decode.zigzag.ZigzagDecoder` with the same kernel and
    ``segments`` (asserted in the tests).  The information-edge check
    phase reshapes into a dense ``(frames, n_parity, k-2)`` array — every
    check has exactly ``k-2`` information edges — and the forward chain
    scan runs sequentially over the ``q`` check nodes of a segment while
    vectorizing across ``frames × segments``.

    Parameters mirror :class:`~repro.decode.zigzag.ZigzagDecoder`;
    ``segments`` defaults to ``code.profile.parallelism`` (the IP core's
    schedule, and the shape that vectorizes best).
    """

    def __init__(
        self,
        code: LdpcCode,
        cn_kernel: str = "minsum",
        normalization: float = 1.0,
        offset: float = 0.0,
        segments: Optional[int] = None,
    ) -> None:
        if cn_kernel not in ("tanh", "minsum"):
            raise ValueError("cn_kernel must be 'tanh' or 'minsum'")
        if segments is None:
            segments = code.profile.parallelism
        n_parity = code.n_parity
        if segments < 1 or n_parity % segments != 0:
            raise ValueError(
                f"segments={segments} must divide n_parity={n_parity}"
            )
        self.code = code
        self.cn_kernel = cn_kernel
        self.normalization = normalization
        self.offset = offset
        self.segments = segments
        graph = code.graph
        sl = code.information_edge_slice()
        in_vn = graph.edge_vn[sl]
        in_cn = graph.edge_cn[sl]
        self._e_in = code.e_in
        self._n_parity = n_parity
        self._k = code.k
        self._width = code.profile.check_degree - 2
        # Messages are stored CN-sorted throughout: each check's k-2
        # information edges are contiguous, so the check phase is a plain
        # reshape and no per-iteration permutation is needed.
        cn_sort = np.argsort(in_cn, kind="stable")
        cn_unsort = np.empty_like(cn_sort)
        cn_unsort[cn_sort] = np.arange(self._e_in)
        self._in_vn_sorted = in_vn[cn_sort]
        # Gather pattern reproducing the canonical VN-major edge order
        # from the CN-sorted storage (keeps reduceat sums bit-identical
        # to the single-frame decoder's).
        self._vn_gather = cn_unsort[graph.vn_order[: self._e_in]]
        self._vn_starts = graph.vn_ptr[: self._k]
        self._seg_len = n_parity // segments
        self._cn_starts_all = graph.cn_ptr[:-1]
        self._edge_vn_sorted = graph.edge_vn[graph.cn_order]

    # ------------------------------------------------------------------
    def decode_batch(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> BatchDecodeResult:
        """Decode a ``(frames, N)`` batch of channel LLRs.

        ``iteration_trace`` is an optional per-iteration hook (see
        :mod:`repro.obs.iteration`); it observes but never alters the
        decoding (results are bit-identical with tracing on or off).
        """
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.ndim != 2 or llrs.shape[1] != self.code.n:
            raise ValueError(f"expected shape (frames, {self.code.n})")
        frames = llrs.shape[0]
        k, n_par, e_in = self._k, self._n_parity, self._e_in
        ch_in = llrs[:, :k]
        ch_pn = llrs[:, k:]

        c2v = np.zeros((frames, e_in), dtype=np.float64)
        # VN totals of the stored c2v messages, cached between iterations
        # (the decision pass of iteration i computes exactly the totals
        # the VN phase of iteration i+1 needs).
        totals = np.zeros((frames, k), dtype=np.float64)
        b_old = np.zeros((frames, n_par + 1), dtype=np.float64)
        f_old = np.zeros((frames, n_par), dtype=np.float64)
        bits = (llrs < 0).astype(np.uint8)
        iterations = np.zeros(frames, dtype=np.int64)
        if iteration_trace is not None:
            iteration_trace.record_batch(
                type(self).__name__,
                0,
                np.arange(frames),
                self._unsatisfied_counts(bits),
                np.abs(llrs).mean(axis=1),
                np.zeros(frames, dtype=np.int64),
            )
        converged = (
            self._syndromes_ok(bits)
            if early_stop
            else np.zeros(frames, dtype=bool)
        )
        active = ~converged
        for it in range(1, max_iterations + 1):
            if not active.any():
                break
            all_active = bool(active.all())
            if all_active:
                idx = slice(None)
                sub_c2v = c2v
                sub_ch_in, sub_ch_pn = ch_in, ch_pn
                sub_totals = totals
                sub_b, sub_f = b_old, f_old
                m = frames
            else:
                idx = np.nonzero(active)[0]
                sub_c2v = c2v[idx]
                sub_ch_in = ch_in[idx]
                sub_ch_pn = ch_pn[idx]
                sub_totals = totals[idx]
                sub_b, sub_f = b_old[idx], f_old[idx]
                m = idx.size
            # VN phase (information nodes, Eq. 4)
            in_posteriors = sub_ch_in + sub_totals
            v2c = in_posteriors[:, self._in_vn_sorted] - sub_c2v
            # CN phase with the zigzag schedule
            sub_c2v, f_new, b_new, pn_posteriors = self._check_phase(
                v2c, sub_ch_pn, sub_b, sub_f
            )
            iterations[idx] += 1
            # decisions (and the next iteration's cached totals)
            sub_totals = np.add.reduceat(
                sub_c2v[:, self._vn_gather], self._vn_starts, axis=1
            )
            sub_bits = np.empty((m, k + n_par), dtype=np.uint8)
            np.less(sub_ch_in + sub_totals, 0, out=sub_bits[:, :k])
            np.less(pn_posteriors, 0, out=sub_bits[:, k:])
            if iteration_trace is not None:
                prev_bits = bits if all_active else bits[idx]
                mean_abs = (
                    np.abs(sub_ch_in + sub_totals).sum(axis=1)
                    + np.abs(pn_posteriors).sum(axis=1)
                ) / (k + n_par)
                iteration_trace.record_batch(
                    type(self).__name__,
                    it,
                    np.arange(frames) if all_active else idx,
                    self._unsatisfied_counts(sub_bits),
                    mean_abs,
                    np.count_nonzero(sub_bits != prev_bits, axis=1),
                )
            if all_active:
                c2v, f_old, b_old = sub_c2v, f_new, b_new
                totals, bits = sub_totals, sub_bits
            else:
                c2v[idx] = sub_c2v
                f_old[idx] = f_new
                b_old[idx] = b_new
                totals[idx] = sub_totals
                bits[idx] = sub_bits
            if early_stop:
                ok = self._syndromes_ok(sub_bits)
                if all_active:
                    converged = ok
                else:
                    converged[idx[ok]] = True
                active = ~converged
        return BatchDecodeResult(
            bits=bits, converged=converged, iterations=iterations
        )

    # ------------------------------------------------------------------
    def _syndromes_ok(self, bits: np.ndarray) -> np.ndarray:
        return _batch_syndromes_ok(
            bits, self._edge_vn_sorted, self._cn_starts_all
        )

    def _unsatisfied_counts(self, bits: np.ndarray) -> np.ndarray:
        """Per-frame unsatisfied-check counts (trace observable)."""
        return _batch_unsatisfied_counts(
            bits, self._edge_vn_sorted, self._cn_starts_all
        )

    def _correct(self, mags: np.ndarray) -> np.ndarray:
        # Inputs are magnitudes (>= 0), so the zero floor only matters
        # when an offset is subtracted.
        if self.offset:
            return np.maximum(
                self.normalization * mags - self.offset, 0.0
            )
        if self.normalization != 1.0:
            return self.normalization * mags
        return mags

    def _check_phase(
        self,
        v2c: np.ndarray,
        ch_pn: np.ndarray,
        b_old: np.ndarray,
        f_old: np.ndarray,
    ) -> tuple:
        """One batched zigzag check-node phase.

        Same message definitions as the single-frame decoder's
        ``_check_phase``, with a leading frames axis everywhere;
        ``v2c`` arrives CN-sorted, so ``reshape`` exposes the dense
        ``(frames, n_parity, k-2)`` check rows directly.  All sign
        factors are exactly ±1.0, so reordering/in-placing the sign
        multiplications keeps results bit-identical.
        """
        frames = v2c.shape[0]
        n_par, width = self._n_parity, self._width

        rows = v2c.reshape(frames, n_par, width)
        neg = rows < 0
        row_sign = np.where(neg, -1.0, 1.0)
        parity = 1.0 - 2.0 * (neg.sum(axis=2) & 1)
        mags = np.abs(rows)

        c_in = ch_pn + b_old[:, 1 : n_par + 1]
        c_sign = np.where(c_in < 0, -1.0, 1.0)
        c_mag = np.abs(c_in)

        if self.cn_kernel == "minsum":
            argmin = mags.argmin(axis=2)
            if width > 1:
                part = np.partition(mags, 1, axis=2)
                min1 = part[:, :, 0]
                min2 = part[:, :, 1]
            else:
                min1 = mags[:, :, 0]
                min2 = np.full((frames, n_par), np.inf)
            f, a_vals = self._forward_scan_minsum(
                min1, parity, ch_pn, f_old
            )
            a_sign = np.where(a_vals < 0, -1.0, 1.0)
            a_mag = np.abs(a_vals)
            b_mag = self._correct(np.minimum(min1, c_mag))
            b = np.where(parity * c_sign < 0, -b_mag, b_mag)
            out = np.broadcast_to(min1[:, :, None], rows.shape).copy()
            np.put_along_axis(
                out, argmin[:, :, None], min2[:, :, None], axis=2
            )
            chain_min = np.minimum(a_mag, c_mag)
            np.minimum(out, chain_min[:, :, None], out=out)
            if self.offset:
                out *= self.normalization
                out -= self.offset
                np.maximum(out, 0.0, out=out)
            elif self.normalization != 1.0:
                out *= self.normalization
            out *= row_sign
            out *= (parity * a_sign * c_sign)[:, :, None]
        else:  # tanh kernel in the phi domain
            phis = phi(mags)
            phi_sum = phis.sum(axis=2)
            f, a_vals = self._forward_scan_tanh(
                phi_sum, parity, ch_pn, f_old
            )
            a_sign = np.where(a_vals < 0, -1.0, 1.0)
            a_phi = phi(np.abs(a_vals))
            c_phi = phi(c_mag)
            b_mag = phi(phi_sum + c_phi)
            b = np.where(parity * c_sign < 0, -b_mag, b_mag)
            chain_phi = a_phi + c_phi
            out = phi(
                phi_sum[:, :, None] - phis + chain_phi[:, :, None]
            )
            out *= row_sign
            out *= (parity * a_sign * c_sign)[:, :, None]

        c2v = out.reshape(frames, -1)

        pn_posteriors = ch_pn + f
        pn_posteriors[:, :-1] += b[:, 1:]

        b_store = np.zeros((frames, n_par + 1), dtype=np.float64)
        b_store[:, 1:n_par] = b[:, 1:]
        return c2v, f, b_store, pn_posteriors

    def _forward_scan_minsum(
        self,
        min1: np.ndarray,
        parity: np.ndarray,
        ch_pn: np.ndarray,
        f_old: np.ndarray,
    ) -> tuple:
        """Sequential forward update, vectorized across frames × segments."""
        frames = min1.shape[0]
        seg, q = self.segments, self._seg_len
        min1_s = min1.reshape(frames, seg, q)
        parity_s = parity.reshape(frames, seg, q)
        ch_s = ch_pn.reshape(frames, seg, q)
        f = np.empty((frames, seg, q), dtype=np.float64)
        a_used = np.empty((frames, seg, q), dtype=np.float64)
        starts = np.arange(seg) * q
        a = np.empty((frames, seg), dtype=np.float64)
        a[:, 0] = _NEUTRAL_MAG
        if seg > 1:
            a[:, 1:] = (
                ch_pn[:, starts[1:] - 1] + f_old[:, starts[1:] - 1]
            )
        for t in range(q):
            a_used[:, :, t] = a
            a_sign = np.where(a < 0, -1.0, 1.0)
            mag = self._correct(np.minimum(min1_s[:, :, t], np.abs(a)))
            f_t = parity_s[:, :, t] * a_sign * mag
            f[:, :, t] = f_t
            a = ch_s[:, :, t] + f_t
        return f.reshape(frames, -1), a_used.reshape(frames, -1)

    def _forward_scan_tanh(
        self,
        phi_sum: np.ndarray,
        parity: np.ndarray,
        ch_pn: np.ndarray,
        f_old: np.ndarray,
    ) -> tuple:
        """Forward scan for the tanh kernel (phi-domain combine)."""
        frames = phi_sum.shape[0]
        seg, q = self.segments, self._seg_len
        phi_s = phi_sum.reshape(frames, seg, q)
        parity_s = parity.reshape(frames, seg, q)
        ch_s = ch_pn.reshape(frames, seg, q)
        f = np.empty((frames, seg, q), dtype=np.float64)
        a_used = np.empty((frames, seg, q), dtype=np.float64)
        starts = np.arange(seg) * q
        a = np.full((frames, seg), _NEUTRAL_MAG)
        if seg > 1:
            a[:, 1:] = (
                ch_pn[:, starts[1:] - 1] + f_old[:, starts[1:] - 1]
            )
        for t in range(q):
            a_used[:, :, t] = a
            a_sign = np.where(a < 0, -1.0, 1.0)
            mag = phi(phi_s[:, :, t] + phi(np.abs(a)))
            f_t = parity_s[:, :, t] * a_sign * mag
            f[:, :, t] = f_t
            a = ch_s[:, :, t] + f_t
        return f.reshape(frames, -1), a_used.reshape(frames, -1)


#: Batched decoding schedules available to the Monte-Carlo paths.
BATCH_SCHEDULES = (
    "flooding", "zigzag", "quantized-zigzag", "quantized-minsum"
)


def make_batch_decoder(
    code: LdpcCode,
    schedule: str = "flooding",
    normalization: float = 0.75,
    segments: Optional[int] = None,
    fmt=None,
    channel_scale: float = 1.0,
    backend=None,
):
    """Build a batched decoder for a schedule name.

    ``"flooding"`` gives the two-phase :class:`BatchMinSumDecoder`;
    ``"zigzag"`` the paper-schedule :class:`BatchZigzagDecoder` (min-sum
    kernel); ``"quantized-zigzag"`` / ``"quantized-minsum"`` the
    fixed-point decoders of :mod:`repro.decode.batch_quantized` (6-bit
    messages by default — the arithmetic behind the paper's Table 3).
    All four expose the same ``decode_batch`` interface.

    ``fmt`` (a :class:`~repro.quantize.fixed_point.FixedPointFormat`),
    ``channel_scale`` and ``backend`` (an array-backend name or
    :class:`~repro.decode.backend.ArrayBackend` instance — see
    :mod:`repro.decode.backend`) configure the quantized schedules
    only; passing any of them with a float schedule is an error.
    """
    if schedule in ("quantized-zigzag", "quantized-minsum"):
        from .batch_quantized import (
            BatchQuantizedMinSumDecoder,
            BatchQuantizedZigzagDecoder,
        )
        from ..quantize.fixed_point import MESSAGE_6BIT

        fmt = MESSAGE_6BIT if fmt is None else fmt
        if schedule == "quantized-zigzag":
            return BatchQuantizedZigzagDecoder(
                code,
                fmt=fmt,
                normalization=normalization,
                channel_scale=channel_scale,
                segments=segments,
                backend=backend,
            )
        return BatchQuantizedMinSumDecoder(
            code,
            fmt=fmt,
            normalization=normalization,
            channel_scale=channel_scale,
            backend=backend,
        )
    if fmt is not None or channel_scale != 1.0 or backend is not None:
        raise ValueError(
            "fmt/channel_scale/backend apply only to the quantized-* "
            "schedules"
        )
    if schedule == "flooding":
        return BatchMinSumDecoder(code, normalization=normalization)
    if schedule == "zigzag":
        return BatchZigzagDecoder(
            code,
            "minsum",
            normalization=normalization,
            segments=segments,
        )
    raise ValueError(
        f"unknown schedule {schedule!r}; expected one of {BATCH_SCHEDULES}"
    )
