"""Batched decoding: many frames through one vectorized decoder.

Monte-Carlo BER runs dominate LDPC evaluation time; decoding a batch of
frames as one ``(frames, edges)`` matrix amortizes every index
computation and typically buys a 5–10x simulation speedup.  Results are
bit-identical to the single-frame two-phase min-sum decoder (asserted in
the tests): converged frames are frozen while the rest keep iterating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..codes.construction import LdpcCode


@dataclass
class BatchDecodeResult:
    """Outcome of decoding a batch of frames."""

    bits: np.ndarray           # (frames, n)
    converged: np.ndarray      # (frames,) bool
    iterations: np.ndarray     # (frames,) iterations executed per frame

    @property
    def n_frames(self) -> int:
        """Number of frames in the batch."""
        return int(self.bits.shape[0])

    def frame_errors(self, reference: np.ndarray) -> np.ndarray:
        """Per-frame bit-error counts against reference codewords."""
        reference = np.asarray(reference)
        if reference.shape != self.bits.shape:
            raise ValueError("reference batch shape mismatch")
        return np.count_nonzero(self.bits != reference, axis=1)


class BatchMinSumDecoder:
    """Two-phase (flooding) normalized min-sum over a frame batch."""

    def __init__(
        self, code: LdpcCode, normalization: float = 0.75
    ) -> None:
        self.code = code
        self.normalization = normalization
        graph = code.graph
        self._vn_order = graph.vn_order
        self._vn_starts = graph.vn_ptr[:-1]
        self._cn_order = graph.cn_order
        self._cn_starts = graph.cn_ptr[:-1]
        self._vn_of_edge = graph.edge_vn
        self._cn_of_edge = graph.edge_cn
        cn_lengths = np.diff(graph.cn_ptr)
        self._seg_of_sorted = np.repeat(
            np.arange(graph.n_cns), cn_lengths
        )
        # syndrome helper: edges sorted by check for parity reduction
        self._edge_vn_sorted = graph.edge_vn[self._cn_order]

    # ------------------------------------------------------------------
    def decode_batch(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
    ) -> BatchDecodeResult:
        """Decode a ``(frames, N)`` batch of channel LLRs."""
        graph = self.code.graph
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.ndim != 2 or llrs.shape[1] != graph.n_vns:
            raise ValueError(
                f"expected shape (frames, {graph.n_vns})"
            )
        frames = llrs.shape[0]
        c2v = np.zeros((frames, graph.n_edges), dtype=np.float64)
        bits = (llrs < 0).astype(np.uint8)
        iterations = np.zeros(frames, dtype=np.int64)
        converged = (
            self._syndromes_ok(bits)
            if early_stop
            else np.zeros(frames, dtype=bool)
        )
        active = ~converged
        for _ in range(max_iterations):
            if not active.any():
                break
            idx = np.nonzero(active)[0]
            sub_c2v = c2v[idx]
            sub_llrs = llrs[idx]
            # VN phase
            totals = np.add.reduceat(
                sub_c2v[:, self._vn_order], self._vn_starts, axis=1
            )
            posteriors = sub_llrs + totals
            v2c = posteriors[:, self._vn_of_edge] - sub_c2v
            # CN phase (normalized min-sum)
            sub_c2v = self._check_phase(v2c)
            c2v[idx] = sub_c2v
            iterations[idx] += 1
            totals = np.add.reduceat(
                sub_c2v[:, self._vn_order], self._vn_starts, axis=1
            )
            posteriors = sub_llrs + totals
            sub_bits = (posteriors < 0).astype(np.uint8)
            bits[idx] = sub_bits
            if early_stop:
                ok = self._syndromes_ok(sub_bits)
                converged[idx[ok]] = True
                active = ~converged
        return BatchDecodeResult(
            bits=bits, converged=converged, iterations=iterations
        )

    # ------------------------------------------------------------------
    def _syndromes_ok(self, bits: np.ndarray) -> np.ndarray:
        """Per-frame all-checks-satisfied flag, vectorized."""
        edge_bits = bits[:, self._edge_vn_sorted].astype(np.int64)
        parities = (
            np.add.reduceat(edge_bits, self._cn_starts, axis=1) & 1
        )
        return ~parities.any(axis=1)

    def _check_phase(self, v2c: np.ndarray) -> np.ndarray:
        frames, n_edges = v2c.shape
        sorted_vals = v2c[:, self._cn_order]
        mags = np.abs(sorted_vals)
        min1 = np.minimum.reduceat(mags, self._cn_starts, axis=1)
        expanded = min1[:, self._seg_of_sorted]
        is_min = mags == expanded
        positions = np.where(is_min, np.arange(n_edges), n_edges)
        argmin = np.minimum.reduceat(positions, self._cn_starts, axis=1)
        masked = mags.copy()
        rows = np.repeat(
            np.arange(frames), argmin.shape[1]
        ).reshape(frames, -1)
        masked[rows, argmin] = np.inf
        min2 = np.minimum.reduceat(masked, self._cn_starts, axis=1)
        out = expanded.copy()
        out[rows, argmin] = min2
        out *= self.normalization
        negs = (sorted_vals < 0).astype(np.int64)
        parity = 1 - 2 * (
            np.add.reduceat(negs, self._cn_starts, axis=1) & 1
        )
        signs = parity[:, self._seg_of_sorted] * np.where(
            sorted_vals < 0, -1.0, 1.0
        )
        result_sorted = signs * out
        result = np.empty_like(v2c)
        result[:, self._cn_order] = result_sorted
        return result
