"""Optimized degree-2 parity-node update schedule (paper Section 2.2).

The accumulator structure of DVB-S2 makes every parity node a degree-2
relay between consecutive check nodes.  The paper's optimized schedule
(Fig. 2b) processes check nodes sequentially from left to right and passes
the freshly updated chain message *immediately* to the next check node
("forward update, sequential"), while the chain messages flowing the other
way are updated in parallel from stored values ("backward update,
parallel").  Two benefits, both reproduced here:

* **iteration savings** — the same communications performance in ~30
  instead of ~40 iterations (reproduced in ``bench_fig2_update_schemes``),
* **memory savings** — only the backward chain messages are stored, i.e.
  ``E_PN / 2`` messages instead of ``E_PN`` (accounted in the area model).

Hardware reality: 360 functional units each own ``q`` consecutive check
nodes, so the forward chain is cut into 360 segments whose boundary
messages come from the previous iteration.  The ``segments`` parameter
models exactly that; ``segments=1`` is the ideal uncut scan, and
``segments=P`` reproduces the IP core's behaviour (and is also the fast,
vectorized path).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..codes.construction import LdpcCode
from ..codes.matrix import syndrome
from .messages import min1_min2, phi, segment_sums
from .result import DecodeResult

#: Iteration budget of the IP core (paper Section 5: "30 iterations are
#: assumed").
DEFAULT_MAX_ITERATIONS = 30

_NEUTRAL_MAG = np.inf  # min-sum neutral element (no chain input)


class ZigzagDecoder:
    """Decoder using the paper's optimized zigzag schedule.

    Parameters
    ----------
    code:
        The (IRA) LDPC code; its zigzag structure is mandatory.
    cn_kernel:
        ``"tanh"`` (exact, paper Eq. 5) or ``"minsum"``.
    normalization, offset:
        Min-sum corrections applied to every check-node output.
    segments:
        Number of independent forward-chain segments.  Must divide the
        number of parity nodes.  ``1`` = ideal sequential scan;
        the IP core uses ``code.profile.parallelism`` (one segment per
        functional unit).
    iteration_trace:
        Optional :class:`~repro.obs.iteration.IterationTrace` hook
        called once per iteration (read-only; results unchanged).
    """

    def __init__(
        self,
        code: LdpcCode,
        cn_kernel: str = "minsum",
        normalization: float = 1.0,
        offset: float = 0.0,
        segments: int = 1,
        record_trace: bool = False,
        iteration_trace=None,
    ) -> None:
        if cn_kernel not in ("tanh", "minsum"):
            raise ValueError("cn_kernel must be 'tanh' or 'minsum'")
        n_parity = code.n_parity
        if segments < 1 or n_parity % segments != 0:
            raise ValueError(
                f"segments={segments} must divide n_parity={n_parity}"
            )
        self.code = code
        self.cn_kernel = cn_kernel
        self.normalization = normalization
        self.offset = offset
        self.segments = segments
        self.record_trace = record_trace
        self.iteration_trace = iteration_trace
        self._prepare()

    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        code = self.code
        graph = code.graph
        sl = code.information_edge_slice()
        self._in_vn = graph.edge_vn[sl]
        self._in_cn = graph.edge_cn[sl]
        self._e_in = code.e_in
        self._n_parity = code.n_parity
        self._k = code.k
        self._row_width = code.profile.check_degree - 2
        # CN-major sorted view of the information edges.  Every check has
        # exactly k-2 information edges, so the sorted view reshapes into
        # a dense (n_parity, k-2) array — the key to full vectorization.
        self._cn_sort = np.argsort(self._in_cn, kind="stable")
        self._cn_unsort = np.empty_like(self._cn_sort)
        self._cn_unsort[self._cn_sort] = np.arange(self._e_in)
        # VN-side segment structure for the information nodes (their
        # edges are exactly the information edges).
        self._vn_order = graph.vn_order[: self._e_in]
        self._vn_ptr = graph.vn_ptr[: self._k + 1]
        self._seg_len = self._n_parity // self.segments

    # ------------------------------------------------------------------
    def decode(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> DecodeResult:
        """Decode one frame of ``N`` channel LLRs."""
        channel_llrs = np.asarray(channel_llrs, dtype=np.float64)
        if channel_llrs.shape != (self.code.n,):
            raise ValueError(
                f"expected {self.code.n} LLRs, got {channel_llrs.shape}"
            )
        ch_in = channel_llrs[: self._k]
        ch_pn = channel_llrs[self._k :]
        n_par = self._n_parity

        c2v_in = np.zeros(self._e_in, dtype=np.float64)
        # Stored chain state: backward messages b[j] = CN j -> PN j-1
        # (defined for j >= 1; index 0 unused) and the forward messages of
        # the previous iteration, needed at segment boundaries.
        b_old = np.zeros(n_par + 1, dtype=np.float64)
        f_old = np.zeros(n_par, dtype=np.float64)

        hook = (
            iteration_trace
            if iteration_trace is not None
            else self.iteration_trace
        )
        posteriors = channel_llrs.copy()
        bits = (posteriors < 0).astype(np.uint8)
        iterations = 0
        trace = []
        if self.record_trace:
            trace.append(int(syndrome(self.code.graph, bits).sum()))
        if hook is not None:
            prev_bits = bits
            hook.record(
                type(self).__name__,
                0,
                int(syndrome(self.code.graph, bits).sum()),
                float(np.abs(posteriors).mean()),
                0,
            )
        converged = early_stop and not syndrome(self.code.graph, bits).any()

        while not converged and iterations < max_iterations:
            # ---- variable-node phase (information nodes, Eq. 4) ----
            totals = segment_sums(c2v_in[self._vn_order], self._vn_ptr)
            in_posteriors = ch_in + totals
            v2c_in = in_posteriors[self._in_vn] - c2v_in

            # ---- check-node phase with zigzag schedule ----
            c2v_in, f_new, b_new, pn_posteriors = self._check_phase(
                v2c_in, ch_pn, b_old, f_old
            )
            f_old = f_new
            b_old = b_new
            iterations += 1

            # ---- decisions ----
            totals = segment_sums(c2v_in[self._vn_order], self._vn_ptr)
            posteriors = np.concatenate([ch_in + totals, pn_posteriors])
            bits = (posteriors < 0).astype(np.uint8)
            if self.record_trace:
                trace.append(int(syndrome(self.code.graph, bits).sum()))
            if hook is not None:
                hook.record(
                    type(self).__name__,
                    iterations,
                    int(syndrome(self.code.graph, bits).sum()),
                    float(np.abs(posteriors).mean()),
                    int(np.count_nonzero(bits != prev_bits)),
                )
                prev_bits = bits
            if early_stop and not syndrome(self.code.graph, bits).any():
                converged = True

        result = DecodeResult(
            bits=bits,
            converged=bool(converged),
            iterations=iterations,
            posteriors=posteriors,
        )
        if self.record_trace:
            result.extra["syndrome_trace"] = trace
        return result

    # ------------------------------------------------------------------
    def _check_phase(
        self,
        v2c_in: np.ndarray,
        ch_pn: np.ndarray,
        b_old: np.ndarray,
        f_old: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One zigzag check-node phase.

        Returns ``(c2v_in, f, b, pn_posteriors)`` where ``f[j]`` is the
        fresh forward message CN j → PN j, ``b[j]`` the fresh backward
        message CN j → PN j-1 (index 0 unused, length n_parity + 1 with a
        trailing 0 for the chain end).
        """
        n_par = self._n_parity
        seg, q = self.segments, self._seg_len
        width = self._row_width

        sorted_vals = v2c_in[self._cn_sort]
        rows = sorted_vals.reshape(n_par, width)
        row_sign = np.where(rows < 0, -1.0, 1.0)
        parity = np.prod(row_sign, axis=1)
        mags = np.abs(rows)

        # Chain input from the parity node on the *self* edge: PN j feeds
        # CN j with channel + stored backward message from CN j+1.
        c_in = ch_pn + b_old[1 : n_par + 1]
        c_sign = np.where(c_in < 0, -1.0, 1.0)
        c_mag = np.abs(c_in)

        if self.cn_kernel == "minsum":
            flat_min1, flat_min2, flat_argmin = min1_min2(
                mags.reshape(-1),
                np.arange(0, n_par * width + 1, width),
            )
            min1 = flat_min1
            min2 = flat_min2
            argmin_col = flat_argmin - np.arange(n_par) * width
            f, a_vals = self._forward_scan_minsum(
                min1, parity, ch_pn, f_old, seg, q
            )
            a_sign = np.where(a_vals < 0, -1.0, 1.0)
            a_mag = np.abs(a_vals)
            # Backward messages (parallel): exclude the backward edge,
            # include the stored chain input c.
            b_mag = self._correct(np.minimum(min1, c_mag))
            b = np.where(parity * c_sign < 0, -b_mag, b_mag)
            # Outputs to the information nodes: exclude self IN input,
            # include both chain inputs.
            other = np.broadcast_to(min1[:, None], (n_par, width)).copy()
            other[np.arange(n_par), argmin_col] = min2
            chain_min = np.minimum(a_mag, c_mag)
            out_mag = self._correct(np.minimum(other, chain_min[:, None]))
            out_sign = (
                (parity * a_sign * c_sign)[:, None] * row_sign
            )
            out_rows = out_sign * out_mag
        else:  # tanh kernel in the phi domain
            phis = phi(mags)
            phi_sum = phis.sum(axis=1)
            f, a_vals = self._forward_scan_tanh(
                phi_sum, parity, ch_pn, f_old, seg, q
            )
            a_sign = np.where(a_vals < 0, -1.0, 1.0)
            a_phi = phi(np.abs(a_vals))
            c_phi = phi(c_mag)
            b_mag = phi(phi_sum + c_phi)
            b = np.where(parity * c_sign < 0, -b_mag, b_mag)
            chain_phi = a_phi + c_phi
            out_mag = phi(
                phi_sum[:, None] - phis + chain_phi[:, None]
            )
            out_sign = (parity * a_sign * c_sign)[:, None] * row_sign
            out_rows = out_sign * out_mag

        c2v_in = out_rows.reshape(-1)[self._cn_unsort]

        # Parity-node posteriors: channel + both incident chain messages.
        # PN j hears f[j] (from CN j) and b[j+1] (from CN j+1); the last
        # parity node has degree 1 and hears only f.
        pn_posteriors = ch_pn + f
        pn_posteriors[:-1] += b[1:]

        b_store = np.zeros(n_par + 1, dtype=np.float64)
        b_store[1:n_par] = b[1:]
        return c2v_in, f, b_store, pn_posteriors

    # ------------------------------------------------------------------
    def _correct(self, mags: np.ndarray) -> np.ndarray:
        """Apply normalization/offset to check-node output magnitudes."""
        out = self.normalization * mags - self.offset
        return np.maximum(out, 0.0)

    def _forward_scan_minsum(
        self,
        min1: np.ndarray,
        parity: np.ndarray,
        ch_pn: np.ndarray,
        f_old: np.ndarray,
        seg: int,
        q: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sequential forward update, vectorized across chain segments.

        Returns the fresh forward messages ``f`` (CN j → PN j) and the
        chain inputs ``a`` (PN j-1 → CN j) actually used, both length
        ``n_parity`` in global CN order.
        """
        min1_s = min1.reshape(seg, q)
        parity_s = parity.reshape(seg, q)
        ch_s = ch_pn.reshape(seg, q)
        f = np.empty((seg, q), dtype=np.float64)
        a_used = np.empty((seg, q), dtype=np.float64)
        # Boundary chain input: segment p starts at CN p*q, whose chain
        # input comes from PN p*q - 1, i.e. channel + previous iteration's
        # forward message.  Segment 0 has no predecessor (CN 0 sees only
        # its self edge): neutral input.
        starts = np.arange(seg) * q
        a = np.empty(seg, dtype=np.float64)
        a[0] = _NEUTRAL_MAG  # sign +, infinite magnitude = neutral
        if seg > 1:
            a[1:] = ch_pn[starts[1:] - 1] + f_old[starts[1:] - 1]
        for t in range(q):
            a_used[:, t] = a
            a_sign = np.where(a < 0, -1.0, 1.0)
            mag = self._correct(np.minimum(min1_s[:, t], np.abs(a)))
            f_t = parity_s[:, t] * a_sign * mag
            f[:, t] = f_t
            a = ch_s[:, t] + f_t
        return f.reshape(-1), a_used.reshape(-1)

    def _forward_scan_tanh(
        self,
        phi_sum: np.ndarray,
        parity: np.ndarray,
        ch_pn: np.ndarray,
        f_old: np.ndarray,
        seg: int,
        q: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Forward scan for the tanh kernel (phi-domain combine)."""
        phi_s = phi_sum.reshape(seg, q)
        parity_s = parity.reshape(seg, q)
        ch_s = ch_pn.reshape(seg, q)
        f = np.empty((seg, q), dtype=np.float64)
        a_used = np.empty((seg, q), dtype=np.float64)
        starts = np.arange(seg) * q
        a = np.full(seg, _NEUTRAL_MAG)
        if seg > 1:
            a[1:] = ch_pn[starts[1:] - 1] + f_old[starts[1:] - 1]
        for t in range(q):
            a_used[:, t] = a
            a_sign = np.where(a < 0, -1.0, 1.0)
            mag = phi(phi_s[:, t] + phi(np.abs(a)))
            f_t = parity_s[:, t] * a_sign * mag
            f[:, t] = f_t
            a = ch_s[:, t] + f_t
        return f.reshape(-1), a_used.reshape(-1)
