"""Row-layered (horizontal shuffled) decoding — the schedule ablation.

The paper's zigzag trick is a special case of a broader idea: using
freshly updated messages within the same iteration speeds up convergence.
Row-layered decoding applies it to *every* check node: checks are
processed in layers, and the a-posteriori LLRs are updated immediately
after each layer.  Follow-up DVB-S2 decoders (e.g. Marchand & Boutillon)
are layered; this module provides the schedule as an ablation point
against the paper's flooding+zigzag design.

The natural layer structure for the DVB-S2 mapping is by *local check
index*: layer ``r`` holds the 360 checks ``{p*q + r}`` — exactly the
checks all functional units process in the same cycle group, so the
hardware cost of layering would be an accumulator per VN, not a new
network.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..codes.construction import LdpcCode
from ..codes.matrix import syndrome
from .result import DecodeResult


class LayeredMinSumDecoder:
    """Layered min-sum decoder over arbitrary CN layers.

    Parameters
    ----------
    code:
        The LDPC code.
    layers:
        Sequence of check-node index arrays partitioning all checks.
        Default: interleaved layers by local check index (``q`` layers
        of ``P`` checks each), matching the hardware mapping.
    normalization:
        Min-sum normalization factor.
    """

    def __init__(
        self,
        code: LdpcCode,
        layers: Optional[Sequence[np.ndarray]] = None,
        normalization: float = 0.75,
    ) -> None:
        self.code = code
        self.normalization = normalization
        graph = code.graph
        if layers is None:
            q = code.profile.q
            p = code.profile.parallelism
            layers = [np.arange(p) * q + r for r in range(q)]
        self.layers = [np.asarray(l, dtype=np.int64) for l in layers]
        covered = np.concatenate(self.layers)
        if sorted(covered.tolist()) != list(range(graph.n_cns)):
            raise ValueError("layers must partition the check nodes")
        # Precompute per-layer edge index lists (graph order is by CN).
        self._layer_edges: List[np.ndarray] = []
        self._layer_ptr: List[np.ndarray] = []
        for layer in self.layers:
            edges = np.concatenate([graph.cn_edges(int(c)) for c in layer])
            degrees = graph.cn_degrees[layer]
            self._layer_edges.append(edges)
            self._layer_ptr.append(
                np.concatenate(([0], np.cumsum(degrees)))
            )

    # ------------------------------------------------------------------
    def decode(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
    ) -> DecodeResult:
        """Decode one frame; one iteration = one pass over all layers."""
        graph = self.code.graph
        channel_llrs = np.asarray(channel_llrs, dtype=np.float64)
        if channel_llrs.shape != (graph.n_vns,):
            raise ValueError(f"expected {graph.n_vns} LLRs")
        posterior = channel_llrs.copy()
        c2v = np.zeros(graph.n_edges, dtype=np.float64)
        bits = (posterior < 0).astype(np.uint8)
        iterations = 0
        converged = early_stop and not syndrome(graph, bits).any()
        while not converged and iterations < max_iterations:
            for edges, ptr in zip(self._layer_edges, self._layer_ptr):
                vns = graph.edge_vn[edges]
                v2c = posterior[vns] - c2v[edges]
                new_c2v = self._minsum_segments(v2c, ptr)
                # np.add.at: a VN shared by two checks of one layer must
                # accumulate both corrections (plain fancy-index +=
                # silently drops duplicates).
                np.add.at(posterior, vns, new_c2v - c2v[edges])
                c2v[edges] = new_c2v
            iterations += 1
            bits = (posterior < 0).astype(np.uint8)
            if early_stop and not syndrome(graph, bits).any():
                converged = True
        return DecodeResult(
            bits=bits,
            converged=bool(converged),
            iterations=iterations,
            posteriors=posterior,
        )

    # ------------------------------------------------------------------
    def _minsum_segments(
        self, v2c: np.ndarray, ptr: np.ndarray
    ) -> np.ndarray:
        """Excluding-self min-sum over variable-length segments."""
        mags = np.abs(v2c)
        n = v2c.size
        starts = ptr[:-1]
        seg_lengths = np.diff(ptr)
        seg_of = np.repeat(np.arange(len(starts)), seg_lengths)
        min1 = np.minimum.reduceat(mags, starts)
        is_min = mags == min1[seg_of]
        positions = np.where(is_min, np.arange(n), n)
        argmin = np.minimum.reduceat(positions, starts)
        masked = mags.copy()
        masked[argmin] = np.inf
        min2 = np.minimum.reduceat(masked, starts)
        out = min1[seg_of].copy()
        out[argmin] = min2[seg_of[argmin]]
        out = self.normalization * out
        negs = (v2c < 0).astype(np.int64)
        parity = 1 - 2 * (np.add.reduceat(negs, starts) & 1)
        own = np.where(v2c < 0, -1.0, 1.0)
        return parity[seg_of] * own * out


def sequential_block_layers(code: LdpcCode, n_layers: int) -> List[np.ndarray]:
    """Alternative layering: consecutive blocks of checks.

    Exposes the layer-granularity ablation; ``n_layers`` must divide the
    check count.
    """
    n_cns = code.graph.n_cns
    if n_layers < 1 or n_cns % n_layers != 0:
        raise ValueError("n_layers must divide the check count")
    block = n_cns // n_layers
    return [
        np.arange(i * block, (i + 1) * block) for i in range(n_layers)
    ]
