"""Fixed-point decoders (the bit widths behind paper Table 3).

The synthesis results of the paper assume a 6-bit quantization of both the
channel values and the exchanged messages; ref [9] puts the loss at
~0.1 dB versus infinite precision, ref [6] at ~0.15–0.2 dB for 5 bits.
Two decoders live here:

* :class:`QuantizedMinSumDecoder` — conventional two-phase schedule,
* :class:`QuantizedZigzagDecoder` — the paper's optimized schedule with
  integer arithmetic; this is the *golden model* the cycle-accurate
  hardware core (:mod:`repro.hw.decoder_core`) is checked against
  bit-exactly.

All arithmetic follows decoder-hardware conventions: wide accumulation in
the variable nodes with a single saturation at the output, saturating adds
along the zigzag chain, and magnitude normalization by truncating
shift-adds (``floor(alpha * m)``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..codes.construction import LdpcCode
from ..codes.matrix import syndrome
from ..quantize.fixed_point import MESSAGE_6BIT, FixedPointFormat
from .result import DecodeResult

_SENTINEL = np.int64(1 << 40)


def _int_min1_min2(
    mags: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """First/second minimum and first-min index along the last axis.

    Works on any leading batch shape — ``(rows, width)`` for the
    single-frame decoders, ``(frames, rows, width)`` for the batched
    ones — and any signed integer dtype: the batched decoders store
    messages in the narrowest dtype that holds them, so the first-min
    mask value is the dtype's own maximum (an upper bound on every
    magnitude, which is all the ``min2`` reduction needs).  ``mags`` is
    treated as scratch: instead of copying the whole array to mask out
    the first minimum (a hot-path allocation), the first-min positions
    are overwritten in place.  All callers pass a fresh ``np.abs``
    result that is not read afterwards.
    """
    argmin_col = np.argmin(mags, axis=-1)
    idx = argmin_col[..., None]
    min1 = np.take_along_axis(mags, idx, axis=-1)[..., 0]
    np.put_along_axis(mags, idx, np.iinfo(mags.dtype).max, axis=-1)
    min2 = mags.min(axis=-1)
    return min1, min2, argmin_col


class QuantizedMinSumDecoder:
    """Two-phase min-sum decoder on saturating fixed-point messages."""

    def __init__(
        self,
        code: LdpcCode,
        fmt: FixedPointFormat = MESSAGE_6BIT,
        normalization: float = 1.0,
        channel_scale: float = 1.0,
        iteration_trace=None,
    ) -> None:
        if not 0.0 < normalization <= 1.0:
            raise ValueError("normalization must be in (0, 1]")
        self.code = code
        self.fmt = fmt
        self.normalization = normalization
        self.channel_scale = channel_scale
        self.iteration_trace = iteration_trace
        graph = code.graph
        self._vn_order = graph.vn_order
        self._vn_ptr = graph.vn_ptr
        self._cn_order = graph.cn_order
        self._cn_ptr = graph.cn_ptr
        self._vn_of_edge = graph.edge_vn
        self._cn_of_edge = graph.edge_cn

    # ------------------------------------------------------------------
    def quantize_channel(self, channel_llrs: np.ndarray) -> np.ndarray:
        """Scale and quantize float channel LLRs into the message format.

        Vectorized over any leading batch shape: ``(n,)`` frames and
        ``(frames, n)`` batches quantize elementwise identically.
        Non-finite LLRs raise (see :meth:`FixedPointFormat.quantize`).
        """
        return self.fmt.quantize(
            np.asarray(channel_llrs, dtype=np.float64) * self.channel_scale
        )

    def decode(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 40,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> DecodeResult:
        """Decode one frame of float channel LLRs (quantized internally)."""
        graph = self.code.graph
        ch = self.quantize_channel(channel_llrs).astype(np.int64)
        if ch.shape != (graph.n_vns,):
            raise ValueError(f"expected {graph.n_vns} LLRs")
        hook = (
            iteration_trace
            if iteration_trace is not None
            else self.iteration_trace
        )
        c2v = np.zeros(graph.n_edges, dtype=np.int64)
        posteriors = ch.copy()
        bits = (posteriors < 0).astype(np.uint8)
        iterations = 0
        if hook is not None:
            prev_bits = bits
            hook.record(
                type(self).__name__,
                0,
                int(syndrome(graph, bits).sum()),
                float(np.abs(posteriors).mean() * self.fmt.scale),
                0,
            )
        converged = early_stop and not syndrome(graph, bits).any()
        while not converged and iterations < max_iterations:
            # VN phase: wide totals, saturate each outgoing message.
            totals = np.add.reduceat(c2v[self._vn_order], self._vn_ptr[:-1])
            wide = ch + totals
            v2c = self.fmt.saturate(wide[self._vn_of_edge] - c2v).astype(
                np.int64
            )
            # CN phase: min-sum with truncating normalization.
            c2v = self._check_phase(v2c)
            iterations += 1
            totals = np.add.reduceat(c2v[self._vn_order], self._vn_ptr[:-1])
            posteriors = ch + totals
            bits = (posteriors < 0).astype(np.uint8)
            if hook is not None:
                hook.record(
                    type(self).__name__,
                    iterations,
                    int(syndrome(graph, bits).sum()),
                    float(np.abs(posteriors).mean() * self.fmt.scale),
                    int(np.count_nonzero(bits != prev_bits)),
                )
                prev_bits = bits
            if early_stop and not syndrome(graph, bits).any():
                converged = True
        return DecodeResult(
            bits=bits,
            converged=bool(converged),
            iterations=iterations,
            posteriors=posteriors.astype(np.float64) * self.fmt.scale,
        )

    # ------------------------------------------------------------------
    def _check_phase(self, v2c: np.ndarray) -> np.ndarray:
        mags = np.abs(v2c)
        sorted_mags = mags[self._cn_order].astype(np.int64)
        starts = self._cn_ptr[:-1]
        n_edges = v2c.size
        min1 = np.minimum.reduceat(sorted_mags, starts)
        seg_lengths = np.diff(self._cn_ptr)
        seg_of_sorted = np.repeat(np.arange(len(starts)), seg_lengths)
        is_min = sorted_mags == min1[seg_of_sorted]
        positions = np.where(is_min, np.arange(n_edges), n_edges)
        argmin_pos = np.minimum.reduceat(positions, starts)
        masked = sorted_mags.copy()
        masked[argmin_pos] = _SENTINEL
        min2 = np.minimum.reduceat(masked, starts)
        out_sorted = min1[seg_of_sorted].copy()
        out_sorted[argmin_pos] = min2[seg_of_sorted[argmin_pos]]
        out_mags = np.empty(n_edges, dtype=np.int64)
        out_mags[self._cn_order] = out_sorted
        if self.normalization != 1.0:
            out_mags = np.floor(self.normalization * out_mags).astype(
                np.int64
            )
        negatives = (v2c[self._cn_order] < 0).astype(np.int64)
        neg_counts = np.add.reduceat(negatives, starts)
        parity = 1 - 2 * (neg_counts & 1)
        own_sign = np.where(v2c < 0, -1, 1)
        return parity[self._cn_of_edge] * own_sign * out_mags


class QuantizedZigzagDecoder:
    """Zigzag-scheduled min-sum on fixed-point messages (golden model).

    Mirrors :class:`~repro.decode.zigzag.ZigzagDecoder` with integer
    arithmetic.  ``segments`` models the forward-chain cut at functional
    unit boundaries exactly as in the IP core.
    """

    def __init__(
        self,
        code: LdpcCode,
        fmt: FixedPointFormat = MESSAGE_6BIT,
        normalization: float = 1.0,
        channel_scale: float = 1.0,
        segments: Optional[int] = None,
        iteration_trace=None,
    ) -> None:
        if segments is None:
            segments = code.profile.parallelism
        if segments < 1 or code.n_parity % segments != 0:
            raise ValueError("segments must divide n_parity")
        self.code = code
        self.fmt = fmt
        self.normalization = normalization
        self.channel_scale = channel_scale
        self.segments = segments
        self.iteration_trace = iteration_trace
        graph = code.graph
        sl = code.information_edge_slice()
        self._in_vn = graph.edge_vn[sl]
        self._in_cn = graph.edge_cn[sl]
        self._e_in = code.e_in
        self._n_parity = code.n_parity
        self._k = code.k
        self._width = code.profile.check_degree - 2
        self._cn_sort = np.argsort(self._in_cn, kind="stable")
        self._cn_unsort = np.empty_like(self._cn_sort)
        self._cn_unsort[self._cn_sort] = np.arange(self._e_in)
        self._vn_order = graph.vn_order[: self._e_in]
        self._vn_ptr = graph.vn_ptr[: self._k + 1]

    # ------------------------------------------------------------------
    def quantize_channel(self, channel_llrs: np.ndarray) -> np.ndarray:
        """Scale and quantize float channel LLRs into the message format.

        Vectorized over any leading batch shape: ``(n,)`` frames and
        ``(frames, n)`` batches quantize elementwise identically.
        Non-finite LLRs raise (see :meth:`FixedPointFormat.quantize`).
        """
        return self.fmt.quantize(
            np.asarray(channel_llrs, dtype=np.float64) * self.channel_scale
        )

    def decode(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> DecodeResult:
        """Decode one frame of float channel LLRs (quantized internally)."""
        ch = self.quantize_channel(channel_llrs).astype(np.int64)
        return self.decode_quantized(
            ch, max_iterations, early_stop, iteration_trace
        )

    def decode_quantized(
        self,
        ch: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> DecodeResult:
        """Decode already-quantized integer channel LLRs."""
        n_par = self._n_parity
        ch = np.asarray(ch, dtype=np.int64)
        if ch.shape != (self.code.n,):
            raise ValueError(f"expected {self.code.n} quantized LLRs")
        hook = (
            iteration_trace
            if iteration_trace is not None
            else self.iteration_trace
        )
        ch_in = ch[: self._k]
        ch_pn = ch[self._k :]
        c2v_in = np.zeros(self._e_in, dtype=np.int64)
        b_old = np.zeros(n_par + 1, dtype=np.int64)
        f_old = np.zeros(n_par, dtype=np.int64)
        posteriors = ch.copy()
        bits = (posteriors < 0).astype(np.uint8)
        iterations = 0
        graph = self.code.graph
        if hook is not None:
            prev_bits = bits
            hook.record(
                type(self).__name__,
                0,
                int(syndrome(graph, bits).sum()),
                float(np.abs(posteriors).mean() * self.fmt.scale),
                0,
            )
        converged = early_stop and not syndrome(graph, bits).any()
        while not converged and iterations < max_iterations:
            totals = np.add.reduceat(c2v_in[self._vn_order], self._vn_ptr[:-1])
            wide = ch_in + totals
            v2c_in = self.fmt.saturate(wide[self._in_vn] - c2v_in).astype(
                np.int64
            )
            c2v_in, f_old, b_old, pn_post = self._check_phase(
                v2c_in, ch_pn, b_old, f_old
            )
            iterations += 1
            totals = np.add.reduceat(c2v_in[self._vn_order], self._vn_ptr[:-1])
            posteriors = np.concatenate([ch_in + totals, pn_post])
            bits = (posteriors < 0).astype(np.uint8)
            if hook is not None:
                hook.record(
                    type(self).__name__,
                    iterations,
                    int(syndrome(graph, bits).sum()),
                    float(np.abs(posteriors).mean() * self.fmt.scale),
                    int(np.count_nonzero(bits != prev_bits)),
                )
                prev_bits = bits
            if early_stop and not syndrome(graph, bits).any():
                converged = True
        return DecodeResult(
            bits=bits,
            converged=bool(converged),
            iterations=iterations,
            posteriors=posteriors.astype(np.float64) * self.fmt.scale,
        )

    # ------------------------------------------------------------------
    def _normalize(self, mags: np.ndarray) -> np.ndarray:
        if self.normalization == 1.0:
            return mags
        return np.floor(self.normalization * mags).astype(np.int64)

    def _check_phase(self, v2c_in, ch_pn, b_old, f_old):
        n_par = self._n_parity
        width = self._width
        seg = self.segments
        q = n_par // seg

        rows = v2c_in[self._cn_sort].reshape(n_par, width)
        row_sign = np.where(rows < 0, -1, 1).astype(np.int64)
        parity = np.prod(row_sign, axis=1)
        mags = np.abs(rows)
        min1, min2, argmin_col = _int_min1_min2(mags)

        c_in = self.fmt.add(ch_pn, b_old[1 : n_par + 1]).astype(np.int64)
        c_sign = np.where(c_in < 0, -1, 1).astype(np.int64)
        c_mag = np.abs(c_in)

        # Sequential forward scan, vectorized across segments.
        min1_s = min1.reshape(seg, q)
        parity_s = parity.reshape(seg, q)
        ch_s = ch_pn.reshape(seg, q)
        f = np.empty((seg, q), dtype=np.int64)
        a_used = np.empty((seg, q), dtype=np.int64)
        starts = np.arange(seg) * q
        # Neutral chain input for segment 0: saturation magnitude with
        # positive sign (min() is unaffected because min1 <= max_int).
        a = np.empty(seg, dtype=np.int64)
        a[0] = self.fmt.max_int
        if seg > 1:
            a[1:] = self.fmt.add(
                ch_pn[starts[1:] - 1], f_old[starts[1:] - 1]
            )
        for t in range(q):
            a_used[:, t] = a
            a_sign = np.where(a < 0, -1, 1)
            mag = self._normalize(np.minimum(min1_s[:, t], np.abs(a)))
            f_t = parity_s[:, t] * a_sign * mag
            f[:, t] = f_t
            a = self.fmt.add(ch_s[:, t], f_t).astype(np.int64)
        f = f.reshape(-1)
        a_used = a_used.reshape(-1)
        a_sign = np.where(a_used < 0, -1, 1).astype(np.int64)
        a_mag = np.abs(a_used)

        b_mag = self._normalize(np.minimum(min1, c_mag))
        b = parity * c_sign * b_mag

        other = np.broadcast_to(min1[:, None], (n_par, width)).copy()
        other[np.arange(n_par), argmin_col] = min2
        chain_min = np.minimum(a_mag, c_mag)
        out_mag = self._normalize(np.minimum(other, chain_min[:, None]))
        out_sign = (parity * a_sign * c_sign)[:, None] * row_sign
        c2v_in = (out_sign * out_mag).reshape(-1)[self._cn_unsort]

        pn_post = ch_pn + f
        pn_post[:-1] += b[1:]

        b_store = np.zeros(n_par + 1, dtype=np.int64)
        b_store[1:n_par] = b[1:]
        return c2v_in, f, b_store, pn_post
