"""Vectorized message-passing primitives shared by all decoders.

Every decoder in this package works on flat edge arrays in the Tanner
graph's canonical edge order.  The helpers here implement the two
node-update kernels of the paper:

* variable-node update, Eq. (4): "sum of all inputs except self",
* check-node update, Eq. (5): the tanh rule, plus its min-sum
  approximation used by decoder hardware.

All kernels are O(E) using ``np.ufunc.reduceat`` over segment-sorted views.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Magnitude clip applied inside the tanh-rule kernel; keeps ``phi``
#: finite without affecting decisions (LLR 38 ≈ certainty).
_LLR_CLIP = 38.0
_PHI_MIN = 1e-12


def phi(x: np.ndarray) -> np.ndarray:
    """Gallager's involution ``phi(x) = -log(tanh(x/2))``, self-inverse.

    Accepts positive magnitudes; values are clipped to keep the result
    finite (hardware implements this as a saturating lookup table).
    """
    x = np.clip(np.asarray(x, dtype=np.float64), _PHI_MIN, _LLR_CLIP)
    return -np.log(np.tanh(0.5 * x))


def segment_sums(values_sorted: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    """Sum of each segment of a segment-sorted value array.

    ``ptr`` is a CSR pointer array of length ``n_segments + 1``; empty
    segments are not supported (Tanner graphs have no isolated nodes).
    """
    return np.add.reduceat(values_sorted, ptr[:-1])


def segment_mins(values_sorted: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    """Minimum of each segment."""
    return np.minimum.reduceat(values_sorted, ptr[:-1])


def expand_to_edges(
    per_segment: np.ndarray, segment_of_edge: np.ndarray
) -> np.ndarray:
    """Broadcast per-segment values back onto edges."""
    return per_segment[segment_of_edge]


def exclusive_segment_sums(
    values: np.ndarray,
    order: np.ndarray,
    ptr: np.ndarray,
    segment_of_edge: np.ndarray,
) -> np.ndarray:
    """For each edge: sum of its segment minus its own value (Eq. 4 core).

    Parameters
    ----------
    values:
        Edge values in canonical order.
    order:
        Permutation sorting edges by segment.
    ptr:
        Segment pointers into the sorted order.
    segment_of_edge:
        Segment id of every edge (canonical order).
    """
    totals = segment_sums(values[order], ptr)
    return totals[segment_of_edge] - values


def min1_min2(
    mags_sorted: np.ndarray, ptr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """First and second minimum per segment plus the first-min position.

    Returns
    -------
    (min1, min2, argmin_sorted_pos):
        ``min1[s]``/``min2[s]`` are the two smallest magnitudes of segment
        ``s`` (``min2 = min1`` cannot happen unless the segment has
        duplicate minima, in which case ``min2`` equals that duplicate —
        exactly the hardware behaviour); ``argmin_sorted_pos[s]`` is the
        index *in the sorted array* of the first occurrence of ``min1``.
        Segments of length 1 get ``min2 = +inf``.
    """
    n_edges = mags_sorted.size
    starts = ptr[:-1]
    min1 = np.minimum.reduceat(mags_sorted, starts)
    # Position of the first minimum: replace non-minimal entries by a
    # sentinel index and reduce with minimum.
    seg_lengths = np.diff(ptr)
    seg_of_sorted = np.repeat(np.arange(len(starts)), seg_lengths)
    is_min = mags_sorted == min1[seg_of_sorted]
    positions = np.where(is_min, np.arange(n_edges), n_edges)
    argmin_pos = np.minimum.reduceat(positions, starts)
    # Second minimum: mask out the first-min occurrence and reduce again.
    masked = mags_sorted.copy()
    masked[argmin_pos] = np.inf
    min2 = np.minimum.reduceat(masked, starts)
    return min1, min2, argmin_pos


def sign_parities(
    values_sorted: np.ndarray, ptr: np.ndarray
) -> np.ndarray:
    """Product-of-signs per segment, encoded as ±1 (0 counts as +)."""
    negatives = (values_sorted < 0).astype(np.int64)
    counts = np.add.reduceat(negatives, ptr[:-1])
    return 1 - 2 * (counts & 1)


def check_node_tanh(
    v2c: np.ndarray,
    cn_order: np.ndarray,
    cn_ptr: np.ndarray,
    cn_of_edge: np.ndarray,
) -> np.ndarray:
    """Full tanh-rule check-node update (paper Eq. 5), all edges at once.

    Implemented in the ``phi`` domain: ``|out_e| = phi(Σ phi(|in|) −
    phi(|in_e|))`` with the sign the product of the other signs.
    """
    mags = phi(np.abs(v2c))
    mags_sorted = mags[cn_order]
    totals = segment_sums(mags_sorted, cn_ptr)
    other = totals[cn_of_edge] - mags
    out_mags = phi(other)
    parity = sign_parities(v2c[cn_order], cn_ptr)
    own_sign = np.where(v2c < 0, -1, 1)
    out_signs = parity[cn_of_edge] * own_sign
    return out_signs * out_mags


def check_node_minsum(
    v2c: np.ndarray,
    cn_order: np.ndarray,
    cn_ptr: np.ndarray,
    cn_of_edge: np.ndarray,
    normalization: float = 1.0,
    offset: float = 0.0,
) -> np.ndarray:
    """Min-sum check-node update with optional normalization/offset.

    ``normalization`` scales the magnitudes (normalized min-sum,
    typically 0.75–0.8125); ``offset`` subtracts a constant before
    flooring at zero (offset min-sum).  Both default to plain min-sum.
    """
    mags = np.abs(v2c)
    mags_sorted = mags[cn_order]
    min1, min2, argmin_pos = min1_min2(mags_sorted, cn_ptr)
    # For each edge (in sorted order): min of the *others* is min2 at the
    # first-min position, min1 elsewhere.
    n_edges = v2c.size
    seg_lengths = np.diff(cn_ptr)
    seg_of_sorted = np.repeat(np.arange(len(seg_lengths)), seg_lengths)
    out_sorted = min1[seg_of_sorted].copy()
    out_sorted[argmin_pos] = min2[seg_of_sorted[argmin_pos]]
    out_mags = np.empty(n_edges, dtype=np.float64)
    out_mags[cn_order] = out_sorted
    out_mags = np.maximum(normalization * out_mags - offset, 0.0)
    parity = sign_parities(v2c[cn_order], cn_ptr)
    own_sign = np.where(v2c < 0, -1, 1)
    return parity[cn_of_edge] * own_sign * out_mags


def variable_node_update(
    c2v: np.ndarray,
    channel_llrs: np.ndarray,
    vn_order: np.ndarray,
    vn_ptr: np.ndarray,
    vn_of_edge: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Variable-node update (paper Eq. 4) plus a-posteriori LLRs.

    Returns
    -------
    (v2c, posteriors):
        New variable-to-check messages per edge, and the per-VN posterior
        ``λ_ch + Σ λ_l`` used for hard decisions.
    """
    totals = segment_sums(c2v[vn_order], vn_ptr)
    posteriors = channel_llrs + totals
    v2c = posteriors[vn_of_edge] - c2v
    return v2c, posteriors
