"""Two-phase (flooding) belief-propagation decoder — paper Fig. 2a.

This is the *conventional* message-update scheme the paper's Section 2.2
improves upon: within one iteration all variable nodes update first, then
all check nodes, every message computed from the previous half-iteration's
stored values.  It treats information and parity nodes identically and is
the reference against which the zigzag schedule's iteration savings are
measured.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..codes.construction import LdpcCode
from ..codes.matrix import syndrome
from .messages import (
    check_node_minsum,
    check_node_tanh,
    variable_node_update,
)
from .result import DecodeResult

#: Default iteration count for the conventional schedule; the paper notes
#: it needs ~40 iterations to match the zigzag schedule's 30.
DEFAULT_MAX_ITERATIONS = 40


class BeliefPropagationDecoder:
    """Flooding decoder with selectable check-node kernel.

    Parameters
    ----------
    code:
        The LDPC code to decode.
    cn_kernel:
        ``"tanh"`` for the exact rule of paper Eq. (5) (sum-product) or
        ``"minsum"`` for the hardware-friendly approximation.
    normalization, offset:
        Min-sum correction parameters (ignored by the tanh kernel).
    iteration_trace:
        Optional :class:`~repro.obs.iteration.IterationTrace` hook
        called once per iteration with unsatisfied-check count, mean
        ``|LLR|`` and sign-flip count (read-only; results unchanged).
    """

    def __init__(
        self,
        code: LdpcCode,
        cn_kernel: str = "tanh",
        normalization: float = 1.0,
        offset: float = 0.0,
        record_trace: bool = False,
        iteration_trace=None,
    ) -> None:
        if cn_kernel not in ("tanh", "minsum"):
            raise ValueError("cn_kernel must be 'tanh' or 'minsum'")
        self.code = code
        self.cn_kernel = cn_kernel
        self.normalization = normalization
        self.offset = offset
        self.record_trace = record_trace
        self.iteration_trace = iteration_trace
        graph = code.graph
        self._vn_order = graph.vn_order
        self._vn_ptr = graph.vn_ptr
        self._cn_order = graph.cn_order
        self._cn_ptr = graph.cn_ptr
        self._vn_of_edge = graph.edge_vn
        self._cn_of_edge = graph.edge_cn

    # ------------------------------------------------------------------
    def decode(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> DecodeResult:
        """Decode one frame of channel LLRs.

        Parameters
        ----------
        channel_llrs:
            Length-``N`` array of channel LLRs (positive favours bit 0).
        max_iterations:
            Iteration budget (a VN phase plus a CN phase each).
        early_stop:
            Stop as soon as the hard decision satisfies all checks, which
            is what the decoder hardware's syndrome check does.
        iteration_trace:
            Per-call override of the constructor's iteration hook.
        """
        channel_llrs = np.asarray(channel_llrs, dtype=np.float64)
        graph = self.code.graph
        if channel_llrs.shape != (graph.n_vns,):
            raise ValueError(
                f"expected {graph.n_vns} LLRs, got {channel_llrs.shape}"
            )
        hook = (
            iteration_trace
            if iteration_trace is not None
            else self.iteration_trace
        )
        c2v = np.zeros(graph.n_edges, dtype=np.float64)
        posteriors = channel_llrs.copy()
        bits = (posteriors < 0).astype(np.uint8)
        iterations = 0
        trace = []
        if self.record_trace:
            trace.append(int(syndrome(graph, bits).sum()))
        if hook is not None:
            prev_bits = bits
            hook.record(
                type(self).__name__,
                0,
                int(syndrome(graph, bits).sum()),
                float(np.abs(posteriors).mean()),
                0,
            )
        converged = early_stop and not syndrome(graph, bits).any()
        while not converged and iterations < max_iterations:
            v2c, posteriors = variable_node_update(
                c2v,
                channel_llrs,
                self._vn_order,
                self._vn_ptr,
                self._vn_of_edge,
            )
            c2v = self._check_phase(v2c)
            iterations += 1
            # Decisions use the freshest extrinsic information.
            totals = np.zeros(graph.n_vns, dtype=np.float64)
            np.add.at(totals, self._vn_of_edge, c2v)
            posteriors = channel_llrs + totals
            bits = (posteriors < 0).astype(np.uint8)
            if self.record_trace:
                trace.append(int(syndrome(graph, bits).sum()))
            if hook is not None:
                hook.record(
                    type(self).__name__,
                    iterations,
                    int(syndrome(graph, bits).sum()),
                    float(np.abs(posteriors).mean()),
                    int(np.count_nonzero(bits != prev_bits)),
                )
                prev_bits = bits
            if early_stop and not syndrome(graph, bits).any():
                converged = True
        result = DecodeResult(
            bits=bits,
            converged=bool(converged),
            iterations=iterations,
            posteriors=posteriors,
        )
        if self.record_trace:
            result.extra["syndrome_trace"] = trace
        return result

    # ------------------------------------------------------------------
    def _check_phase(self, v2c: np.ndarray) -> np.ndarray:
        if self.cn_kernel == "tanh":
            return check_node_tanh(
                v2c, self._cn_order, self._cn_ptr, self._cn_of_edge
            )
        return check_node_minsum(
            v2c,
            self._cn_order,
            self._cn_ptr,
            self._cn_of_edge,
            normalization=self.normalization,
            offset=self.offset,
        )
