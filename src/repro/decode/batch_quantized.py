"""Batched fixed-point decoding: the paper's 6-bit arithmetic, vectorized.

The synthesis results of the paper (Table 3) and its ~0.1 dB loss claim
rest on the **6-bit quantized** decoder, yet quantization-loss waterfalls
were the slowest experiment in the repo: the quantized decoders in
:mod:`repro.decode.quantized` are single-frame only while the float path
already decodes whole ``(frames, edges)`` batches.  This module closes
that gap with two batched fixed-point decoders that are **bit-identical**
per frame to their single-frame golden models (asserted in the tests),
which in turn pin the cycle-accurate :mod:`repro.hw.decoder_core`:

* :class:`BatchQuantizedMinSumDecoder` — two-phase (flooding) schedule on
  saturating fixed-point messages,
* :class:`BatchQuantizedZigzagDecoder` — the paper's optimized zigzag
  schedule with integer arithmetic, the fast fixed-point path.

All hardware arithmetic conventions carry over unchanged: wide
accumulation in the variable nodes with a single saturation at the
output, saturating adds along the zigzag chain, and magnitude
normalization by truncating shift-adds (``floor(alpha * m)``).  Because
integer arithmetic is exact in any width that holds the values, the
batch path is free to pick its storage: messages live in the narrowest
dtype that holds ``2*max_int`` (``int8`` for the paper's 6-bit format)
and VN accumulators in the narrowest dtype that holds a full posterior
sum (``int16``).  At full-frame batch sizes this is what makes the
vectorization win — the ``(frames, edges)`` working set stays an order
of magnitude smaller than a naive ``int64`` layout, and the
``floor(alpha*m)`` normalization becomes a tiny lookup table indexed by
magnitude (computed once with the exact float expression the
single-frame decoder evaluates per element).  Reduction order never
perturbs results, and converged frames are frozen while the rest
iterate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from ..codes.construction import LdpcCode
from ..quantize.fixed_point import MESSAGE_6BIT, FixedPointFormat
from .backend import mask_into as _mask_into
from .backend import resolve_backend
from .batch import (
    BatchDecodeResult,
    _batch_syndromes_ok,
    _batch_unsatisfied_counts,
    _normalize_iteration_budgets,
)


def _min_int_dtype(bound: int) -> np.dtype:
    """Narrowest signed dtype whose range contains ``±bound``."""
    for dt in (np.int8, np.int16, np.int32, np.int64):
        if bound <= np.iinfo(dt).max:
            return np.dtype(dt)
    raise ValueError(f"no integer dtype holds {bound}")


# ---------------------------------------------------------------------------
# Module-level caches for the immutable per-code index tables and the
# normalization LUTs.  Pool workers, Monte-Carlo sweeps and serve
# restarts construct many decoder instances for the same code; the
# sort/permutation tables dominate construction cost and never change,
# so instances share one read-only copy per Tanner graph.

#: id(graph) -> (graph, {namespace: table dict}).  The strong graph
#: reference pins the id so a recycled address can never alias a dead
#: entry; the LRU bound keeps long multi-rate sweeps from accumulating.
_TABLE_CACHE: "OrderedDict[int, tuple]" = OrderedDict()
_TABLE_CACHE_MAX = 8

_LUT_CACHE: dict = {}


def _graph_tables(code: LdpcCode) -> dict:
    """Mutable per-graph table namespace from the module-level cache."""
    graph = code.graph
    key = id(graph)
    hit = _TABLE_CACHE.get(key)
    if hit is not None and hit[0] is graph:
        _TABLE_CACHE.move_to_end(key)
        return hit[1]
    tables: dict = {}
    _TABLE_CACHE[key] = (graph, tables)
    _TABLE_CACHE.move_to_end(key)
    while len(_TABLE_CACHE) > _TABLE_CACHE_MAX:
        _TABLE_CACHE.popitem(last=False)
    return tables


def _freeze(arr: np.ndarray) -> np.ndarray:
    """Mark a cached table read-only (shared across instances)."""
    arr.setflags(write=False)
    return arr


def _cached_norm_lut(mi: int, normalization: float, mdt) -> np.ndarray:
    """floor(alpha * m) for every representable magnitude — the same
    float64 expression the single-frame decoder evaluates, so the
    lookup is exact by construction."""
    key = (mi, float(normalization), np.dtype(mdt).str)
    lut = _LUT_CACHE.get(key)
    if lut is None:
        lut = _freeze(
            np.floor(normalization * np.arange(mi + 1)).astype(mdt)
        )
        _LUT_CACHE[key] = lut
    return lut


def _cached_signed_lut(norm_lut: np.ndarray, mi: int) -> np.ndarray:
    """floor(alpha*|a|) looked up directly by the signed int8 chain
    value viewed as uint8 — saves the per-step np.abs in the forward
    scan (chain values are clipped to ±max_int, so only indices
    0..max_int and 256-max_int..255 occur)."""
    key = ("signed", mi, float(norm_lut[-1]), norm_lut.tobytes())
    lut = _LUT_CACHE.get(key)
    if lut is None:
        signed = np.arange(256, dtype=np.uint8).view(np.int8)
        amag = np.minimum(
            np.abs(signed.astype(np.int16)), mi
        ).astype(np.intp)
        lut = _freeze(norm_lut[amag])
        _LUT_CACHE[key] = lut
    return lut


class _QuantizedBatchBase:
    """Format plumbing shared by both batched fixed-point decoders."""

    #: Both decoders accept a ``(frames,)`` array of per-frame iteration
    #: budgets wherever ``max_iterations`` is taken (deadline-aware
    #: serving); a scalar budget reproduces the classic behaviour
    #: bit-identically.
    supports_frame_budgets = True

    def __init__(
        self,
        code: LdpcCode,
        fmt: FixedPointFormat,
        normalization: float,
        channel_scale: float,
        backend=None,
    ) -> None:
        if not 0.0 < normalization <= 1.0:
            raise ValueError("normalization must be in (0, 1]")
        self.code = code
        self.fmt = fmt
        self.normalization = normalization
        self.channel_scale = channel_scale
        #: Array backend supplying the kernel primitives (and the
        #: scratch arena) — see :mod:`repro.decode.backend`.
        self.backend = resolve_backend(backend)
        mi = int(fmt.max_int)
        #: Message dtype: must hold 2*max_int so saturating adds can form
        #: the true sum before clipping (int8 for the 6-bit format).
        self._mdt = _min_int_dtype(2 * mi + 1)
        max_degree = int(np.diff(code.graph.vn_ptr).max())
        #: Accumulator dtype: holds any VN posterior sum exactly.
        self._adt = _min_int_dtype((max_degree + 1) * mi)
        self._norm_lut = _cached_norm_lut(
            mi, normalization, self._mdt
        )

    @property
    def _scratch(self) -> dict:
        """The backend's named scratch arena (see :meth:`_buf`)."""
        return self.backend._scratch

    def _buf(self, name: str, shape: tuple, dtype) -> np.ndarray:
        """Named scratch array, grown on demand and sliced per batch."""
        return self.backend.buf(name, shape, dtype)

    # ------------------------------------------------------------------
    def quantize_channel(self, channel_llrs: np.ndarray) -> np.ndarray:
        """Scale and quantize float LLRs (any leading batch shape)."""
        return self.fmt.quantize(
            np.asarray(channel_llrs, dtype=np.float64) * self.channel_scale
        )

    def _normalize(self, mags: np.ndarray) -> np.ndarray:
        """Truncating normalization via the magnitude lookup table."""
        return self._norm_lut[mags]


class BatchQuantizedMinSumDecoder(_QuantizedBatchBase):
    """Two-phase min-sum over a frame batch of fixed-point messages.

    Bit-identical per frame to
    :class:`~repro.decode.quantized.QuantizedMinSumDecoder` with the same
    format, normalization and channel scale (asserted in the tests).
    """

    def __init__(
        self,
        code: LdpcCode,
        fmt: FixedPointFormat = MESSAGE_6BIT,
        normalization: float = 1.0,
        channel_scale: float = 1.0,
        backend=None,
    ) -> None:
        super().__init__(code, fmt, normalization, channel_scale, backend)
        if self.backend.kind == "device":
            raise ValueError(
                f"backend {self.backend.name!r} is a device backend; "
                "quantized-minsum supports numpy/fused backends only "
                "(use schedule='quantized-zigzag' for device decoding)"
            )
        graph = code.graph
        self._vn_order = graph.vn_order
        self._vn_starts = graph.vn_ptr[:-1]
        self._cn_order = graph.cn_order
        self._cn_starts = graph.cn_ptr[:-1]
        self._vn_of_edge = graph.edge_vn
        tables = _graph_tables(code)
        ms = tables.get("ms")
        if ms is None:
            cn_lengths = np.diff(graph.cn_ptr)
            edt = _min_int_dtype(graph.n_edges)
            ms = {
                "seg_of_sorted": _freeze(
                    np.repeat(np.arange(graph.n_cns), cn_lengths)
                ),
                "edge_vn_sorted": _freeze(
                    graph.edge_vn[self._cn_order]
                ),
                "edge_index": _freeze(
                    np.arange(graph.n_edges, dtype=edt)
                ),
                "cn_starts64": _freeze(
                    np.ascontiguousarray(self._cn_starts, np.int64)
                ),
            }
            tables["ms"] = ms
        self._seg_of_sorted = ms["seg_of_sorted"]
        self._edge_vn_sorted = ms["edge_vn_sorted"]
        self._edge_index = ms["edge_index"]
        self._cn_starts64 = ms["cn_starts64"]
        self._n_edges_val = ms["edge_index"].dtype.type(graph.n_edges)

    def decode_batch(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 40,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> BatchDecodeResult:
        """Decode a ``(frames, N)`` batch of float channel LLRs.

        LLRs are quantized internally exactly as the single-frame
        decoder does.  ``max_iterations`` may be a scalar or a
        ``(frames,)`` array of per-frame budgets; a frame is frozen once
        its own budget is spent.  ``iteration_trace`` is the optional
        read-only per-iteration hook (see :mod:`repro.obs.iteration`);
        observables come from the integer posteriors, de-scaled by the
        format's LSB.
        """
        graph = self.code.graph
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.ndim != 2 or llrs.shape[1] != graph.n_vns:
            raise ValueError(f"expected shape (frames, {graph.n_vns})")
        frames = llrs.shape[0]
        budgets, limit = _normalize_iteration_budgets(
            max_iterations, frames
        )
        ch = self.quantize_channel(llrs).astype(self._mdt)
        c2v = np.zeros((frames, graph.n_edges), dtype=self._mdt)
        bits = (ch < 0).astype(np.uint8)
        iterations = np.zeros(frames, dtype=np.int64)
        if iteration_trace is not None:
            iteration_trace.record_batch(
                type(self).__name__,
                0,
                np.arange(frames),
                self._unsatisfied_counts(bits),
                np.abs(ch.astype(np.int64)).mean(axis=1) * self.fmt.scale,
                np.zeros(frames, dtype=np.int64),
            )
        converged = (
            self._syndromes_ok(bits)
            if early_stop
            else np.zeros(frames, dtype=bool)
        )
        active = (iterations < budgets) & ~converged
        for it in range(1, limit + 1):
            if not active.any():
                break
            idx = np.nonzero(active)[0]
            sub_c2v = c2v[idx]
            sub_ch = ch[idx]
            # VN phase: wide totals, saturate each outgoing message.
            totals = self.backend.segment_sum(
                sub_c2v[:, self._vn_order],
                self._vn_starts,
                dtype=self._adt,
            )
            wide = sub_ch + totals
            v2c = np.clip(
                wide[:, self._vn_of_edge] - sub_c2v,
                -self.fmt.max_int,
                self.fmt.max_int,
            ).astype(self._mdt)
            # CN phase: min-sum with truncating normalization.
            sub_c2v = self._check_phase(v2c)
            c2v[idx] = sub_c2v
            iterations[idx] += 1
            totals = self.backend.segment_sum(
                sub_c2v[:, self._vn_order],
                self._vn_starts,
                dtype=self._adt,
            )
            posteriors = sub_ch + totals
            sub_bits = (posteriors < 0).astype(np.uint8)
            if iteration_trace is not None:
                iteration_trace.record_batch(
                    type(self).__name__,
                    it,
                    idx,
                    self._unsatisfied_counts(sub_bits),
                    np.abs(posteriors.astype(np.int64)).mean(axis=1)
                    * self.fmt.scale,
                    np.count_nonzero(sub_bits != bits[idx], axis=1),
                )
            bits[idx] = sub_bits
            if early_stop:
                ok = self._syndromes_ok(sub_bits)
                converged[idx[ok]] = True
            active = (iterations < budgets) & ~converged
        return BatchDecodeResult(
            bits=bits, converged=converged, iterations=iterations
        )

    # ------------------------------------------------------------------
    def _syndromes_ok(self, bits: np.ndarray) -> np.ndarray:
        return _batch_syndromes_ok(
            bits, self._edge_vn_sorted, self._cn_starts
        )

    def _unsatisfied_counts(self, bits: np.ndarray) -> np.ndarray:
        return _batch_unsatisfied_counts(
            bits, self._edge_vn_sorted, self._cn_starts
        )

    def _check_phase(self, v2c: np.ndarray) -> np.ndarray:
        frames = v2c.shape[0]
        sorted_vals = v2c[:, self._cn_order]
        mags = np.abs(sorted_vals)
        # Fused backends return (min1, min2, argmin) in one sweep; the
        # numpy fallback reproduces the historical two-reduceat dance
        # bit-identically (mags is scratch — the fallback masks the
        # first minimum in place for the second pass).
        min1, min2, argmin = self.backend.segment_min1_min2(
            mags,
            self._cn_starts64,
            self._seg_of_sorted,
            self._edge_index,
            self._n_edges_val,
        )
        rows = np.arange(frames)[:, None]
        out = np.take(min1, self._seg_of_sorted, axis=1)
        out[rows, argmin] = min2
        out = self._norm_lut[out]
        negs = sorted_vals < 0
        parity_neg = (
            self.backend.segment_sum(
                negs, self._cn_starts, dtype=np.int8
            )
            & 1
        ).astype(bool)
        sign_neg = parity_neg[:, self._seg_of_sorted] ^ negs
        result_sorted = np.where(sign_neg, -out, out)
        result = np.empty_like(v2c)
        result[:, self._cn_order] = result_sorted
        return result


class BatchQuantizedZigzagDecoder(_QuantizedBatchBase):
    """Vectorized zigzag schedule on fixed-point messages (fast path).

    Bit-identical per frame to the golden-model
    :class:`~repro.decode.quantized.QuantizedZigzagDecoder` with the same
    format, normalization, channel scale and ``segments`` (asserted in
    the tests) — and therefore also to the cycle-accurate
    :class:`repro.hw.decoder_core.DecoderIpCore` that model pins.

    Storage is *slot-major*: edge ``(cn, t)`` of the dense
    ``n_parity × (k-2)`` info-edge grid lives at index ``t*n_parity +
    cn``, so a reshape to ``(frames, k-2, n_parity)`` makes every
    check-phase operation a short loop over ``k-2`` contiguous
    ``(frames, n_parity)`` slabs — min1/min2/argmin become an online
    scan, the check parity an XOR chain — instead of strided
    reductions over a tiny trailing axis (the hot spot at full-frame
    sizes).  The forward chain scan runs sequentially over the ``q``
    checks of a segment while vectorizing across ``frames × segments``.
    """

    def __init__(
        self,
        code: LdpcCode,
        fmt: FixedPointFormat = MESSAGE_6BIT,
        normalization: float = 1.0,
        channel_scale: float = 1.0,
        segments: Optional[int] = None,
        backend=None,
    ) -> None:
        super().__init__(code, fmt, normalization, channel_scale, backend)
        if segments is None:
            segments = code.profile.parallelism
        if segments < 1 or code.n_parity % segments != 0:
            raise ValueError("segments must divide n_parity")
        self.segments = segments
        graph = code.graph
        self._e_in = code.e_in
        self._n_parity = code.n_parity
        self._k = code.k
        self._width = code.profile.check_degree - 2
        zz = self._zigzag_tables(code)
        self._in_vn_sorted = zz["in_vn_sorted"]
        self._in_vn_i32 = zz["in_vn_i32"]
        self._vn_gather = zz["vn_gather"]
        self._deg_runs = zz["deg_runs"]
        self._vn_gather_tm = zz["vn_gather_tm"]
        self._edge_vn_sorted = zz["edge_vn_sorted"]
        self._vn_starts = graph.vn_ptr[: self._k]
        self._seg_len = self._n_parity // segments
        self._cn_starts_all = graph.cn_ptr[:-1]
        # The VN gather may clip posteriors to ±2*max_int first (see the
        # VN phase) — only valid when the subtraction cannot overflow
        # the message dtype.
        mi = int(fmt.max_int)
        self._post_clip = 2 * mi
        self._narrow_vn = 3 * mi <= np.iinfo(self._mdt).max
        #: Alternates the persisted check-phase output buffers between
        #: iterations so the state arrays from iteration i are never the
        #: buffers iteration i+1 writes into.
        self._flip = 0
        #: Identity key + cached t-major transpose of the parity channel
        #: slab (iteration-invariant while the active set is full).
        self._ch_t_src = None
        self._ch_t = None
        if self._mdt == np.int8:
            self._norm_lut_signed = _cached_signed_lut(self._norm_lut, mi)
        else:
            self._norm_lut_signed = None
        #: Per-iteration kernel hook: let the backend run the forward
        #: chain scan (it may still decline per call on dtype grounds).
        self._scan_hook = self.backend.kind == "fused"
        #: Whole-batch fused decode plan, or None.  Only fused-kind
        #: backends are asked, so constructing a numpy-backend decoder
        #: never triggers a compile probe.
        self._fused_plan = (
            self.backend.fused_zigzag_plan(self)
            if self.backend.kind == "fused"
            else None
        )

    @staticmethod
    def _zigzag_tables(code: LdpcCode) -> dict:
        """Immutable zigzag index tables, shared via the module cache."""
        tables = _graph_tables(code)
        zz = tables.get("zz")
        if zz is not None:
            return zz
        graph = code.graph
        e_in, n_parity, k = code.e_in, code.n_parity, code.k
        width = code.profile.check_degree - 2
        sl = code.information_edge_slice()
        in_vn = graph.edge_vn[sl]
        in_cn = graph.edge_cn[sl]
        cn_sort = np.argsort(in_cn, kind="stable")
        # Slot-major storage: CN-major sorted edge cn*width + t moves to
        # t*n_parity + cn (a pure transpose of the dense edge grid).
        slot_sort = cn_sort.reshape(n_parity, width).T.reshape(-1)
        slot_unsort = np.empty_like(slot_sort)
        slot_unsort[slot_sort] = np.arange(e_in)
        in_vn_sorted = _freeze(in_vn[slot_sort].astype(np.intp))
        # Gather pattern reproducing the canonical VN-major edge order
        # from the slot-major storage (integer sums are exact, so this
        # is cosmetic for values — but it keeps the code shape identical
        # to the float batch decoder).
        vn_gather = _freeze(slot_unsort[graph.vn_order[:e_in]])
        # Degree-run layout for the totals pass: DVB-S2 info VNs of
        # equal degree are contiguous, so per-VN sums become short loops
        # of contiguous slab adds instead of a reduceat over 2*e_in
        # strided spans.  Falls back to reduceat for irregular layouts.
        deg_runs = []
        vn_gather_tm = None
        deg = np.diff(graph.vn_ptr[: k + 1])
        if graph.vn_ptr[k] == e_in:
            run_starts = np.concatenate(
                ([0], np.nonzero(np.diff(deg))[0] + 1, [k])
            )
            if len(run_starts) <= 18:
                chunks = []
                offset = 0
                for v0, v1 in zip(run_starts[:-1], run_starts[1:]):
                    d = int(deg[v0])
                    span = vn_gather[graph.vn_ptr[v0]: graph.vn_ptr[v1]]
                    chunks.append(span.reshape(v1 - v0, d).T.ravel())
                    deg_runs.append((int(v0), int(v1), d, offset))
                    offset += (v1 - v0) * d
                vn_gather_tm = _freeze(
                    np.ascontiguousarray(
                        np.concatenate(chunks), dtype=np.intp
                    )
                )
        zz = {
            "in_vn_sorted": in_vn_sorted,
            "in_vn_i32": _freeze(
                np.ascontiguousarray(in_vn_sorted, dtype=np.int32)
            ),
            "vn_gather": vn_gather,
            "deg_runs": tuple(deg_runs),
            "vn_gather_tm": vn_gather_tm,
            "edge_vn_sorted": _freeze(graph.edge_vn[graph.cn_order]),
        }
        tables["zz"] = zz
        return zz

    def decode_batch(
        self,
        channel_llrs: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> BatchDecodeResult:
        """Decode a ``(frames, N)`` float-LLR batch (quantized internally)."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.ndim != 2 or llrs.shape[1] != self.code.n:
            raise ValueError(f"expected shape (frames, {self.code.n})")
        ch = self.quantize_channel(llrs)
        return self.decode_quantized_batch(
            ch, max_iterations, early_stop, iteration_trace
        )

    def decode_quantized_batch(
        self,
        ch: np.ndarray,
        max_iterations: int = 30,
        early_stop: bool = True,
        iteration_trace=None,
    ) -> BatchDecodeResult:
        """Decode a ``(frames, N)`` batch of already-quantized integers.

        ``max_iterations`` may be a scalar or a ``(frames,)`` array of
        per-frame budgets; a frame freezes once its budget is spent.
        """
        ch = np.asarray(ch)
        if ch.ndim != 2 or ch.shape[1] != self.code.n:
            raise ValueError(
                f"expected shape (frames, {self.code.n}) quantized LLRs"
            )
        ch = ch.astype(self._mdt)
        frames = ch.shape[0]
        budgets, limit = _normalize_iteration_budgets(
            max_iterations, frames
        )
        # Tracing needs per-iteration observables, which only the
        # stepwise numpy loop exposes — the fused/device fast paths are
        # bit-identical, so falling back never changes results.
        if iteration_trace is None:
            if self._fused_plan is not None:
                return self._decode_fused(ch, budgets, early_stop)
            if (
                self.backend.kind == "device"
                and self._vn_gather_tm is not None
            ):
                return self._decode_device(ch, budgets, limit, early_stop)
        k, n_par, e_in = self._k, self._n_parity, self._e_in
        ch_in = ch[:, :k]
        ch_pn = np.ascontiguousarray(ch[:, k:])

        mi = int(self.fmt.max_int)
        c2v = np.zeros((frames, e_in), dtype=self._mdt)
        # Cached info-VN posteriors, wide path only (the narrow path
        # pipelines the gathered posteriors instead, see below).
        posts = None if self._narrow_vn else ch_in.astype(self._adt)
        b_old = np.zeros((frames, n_par + 1), dtype=self._mdt)
        f_old = np.zeros((frames, n_par), dtype=self._mdt)
        bits = (ch < 0).astype(np.uint8)
        iterations = np.zeros(frames, dtype=np.int64)
        if iteration_trace is not None:
            iteration_trace.record_batch(
                type(self).__name__,
                0,
                np.arange(frames),
                self._unsatisfied_counts(bits),
                np.abs(ch.astype(np.int64)).mean(axis=1) * self.fmt.scale,
                np.zeros(frames, dtype=np.int64),
            )
        converged = (
            self._syndromes_ok(bits)
            if early_stop
            else np.zeros(frames, dtype=bool)
        )
        active = (iterations < budgets) & ~converged
        # Posterior pipeline (narrow path): the decision pass of
        # iteration i leaves the clipped, edge-expanded info posteriors
        # in ``gbuf`` — exactly what the VN phase of iteration i+1
        # subtracts messages from (clip(post - c2v, ±mi) equals
        # clip(clip(post, ±2mi) - c2v, ±mi) because |c2v| <= mi) — so
        # the big (frames, e_in) gather happens once per iteration and
        # its signs double as the syndrome's info-edge bits.
        narrow = self._narrow_vn
        if narrow:
            gbuf = self._buf("zz_g", (frames, e_in), self._mdt)
            # Channel values already sit inside ±2*mi: no clip needed.
            np.take(ch_in, self._in_vn_sorted, axis=1, out=gbuf)
        g_rows_full = True
        g_rows = None  # global frame ids of gbuf rows once subsetting
        for it in range(1, limit + 1):
            if not active.any():
                break
            all_active = bool(active.all())
            if all_active:
                idx = slice(None)
                sub_c2v = c2v
                sub_ch_in, sub_ch_pn = ch_in, ch_pn
                sub_b, sub_f = b_old, f_old
                m = frames
            else:
                idx = np.nonzero(active)[0]
                sub_c2v = c2v[idx]
                sub_ch_in = ch_in[idx]
                sub_ch_pn = ch_pn[idx]
                sub_b, sub_f = b_old[idx], f_old[idx]
                m = idx.size
            # VN phase: wide posterior, single saturation per message.
            if narrow:
                if all_active and g_rows_full:
                    v2c = gbuf[:frames]
                else:
                    pos = np.asarray(
                        idx
                        if g_rows_full
                        else np.searchsorted(g_rows, idx),
                        dtype=np.intp,
                    )
                    v2c = self._buf("zz_v2c", (m, e_in), self._mdt)
                    np.take(gbuf, pos, axis=0, out=v2c)
                np.subtract(v2c, sub_c2v, out=v2c)
                np.clip(v2c, -mi, mi, out=v2c)
            else:
                v2c = posts[idx][:, self._in_vn_sorted]
                np.subtract(v2c, sub_c2v, out=v2c)
                np.clip(v2c, -mi, mi, out=v2c)
                v2c = v2c.astype(self._mdt)
            # CN phase with the zigzag schedule.  Persisted outputs come
            # from alternating reuse buffers on the all-active fast path
            # (fresh arrays once frames start freezing out).
            sub_c2v, f_new, b_new, pn_post = self._check_phase(
                v2c, sub_ch_pn, sub_b, sub_f, reuse=all_active
            )
            iterations[idx] += 1
            # Decision pass: per-VN sums over degree runs (contiguous
            # slab adds in the accumulator dtype; integer sums are exact
            # in any grouping).
            if narrow:
                posts_new = self._buf("zz_posts", (m, k), self._adt)
            else:
                posts_new = np.empty((m, k), dtype=self._adt)
            if self._vn_gather_tm is not None:
                gathered = self._buf("zz_dec", (m, e_in), self._mdt)
                np.take(
                    sub_c2v, self._vn_gather_tm, axis=1, out=gathered
                )
                for v0, v1, d, offset in self._deg_runs:
                    run = gathered[
                        :, offset : offset + d * (v1 - v0)
                    ].reshape(m, d, v1 - v0)
                    acc = posts_new[:, v0:v1]
                    acc[...] = run[:, 0]
                    for t in range(1, d):
                        acc += run[:, t]
            else:
                np.add.reduceat(
                    sub_c2v[:, self._vn_gather],
                    self._vn_starts,
                    axis=1,
                    dtype=self._adt,
                    out=posts_new,
                )
            posts_new += sub_ch_in
            sub_bits = np.empty((m, k + n_par), dtype=np.uint8)
            np.less(posts_new, 0, out=sub_bits[:, :k])
            np.less(pn_post, 0, out=sub_bits[:, k:])
            if narrow:
                # Refill the pipeline for the next iteration.
                post_n = self._buf("zz_postn", (m, k), self._mdt)
                np.clip(
                    posts_new,
                    -self._post_clip,
                    self._post_clip,
                    out=post_n,
                )
                np.take(
                    post_n, self._in_vn_sorted, axis=1, out=gbuf[:m]
                )
                if not all_active:
                    g_rows = idx
                    g_rows_full = False
            if iteration_trace is not None:
                prev_bits = bits if all_active else bits[idx]
                mean_abs = (
                    np.abs(posts_new).sum(axis=1)
                    + np.abs(pn_post).sum(axis=1)
                ) / (k + n_par) * self.fmt.scale
                iteration_trace.record_batch(
                    type(self).__name__,
                    it,
                    np.arange(frames) if all_active else idx,
                    self._unsatisfied_counts(sub_bits),
                    mean_abs,
                    np.count_nonzero(sub_bits != prev_bits, axis=1),
                )
            if all_active:
                c2v, f_old, b_old = sub_c2v, f_new, b_new
                bits = sub_bits
                if not narrow:
                    posts = posts_new
            else:
                c2v[idx] = sub_c2v
                f_old[idx] = f_new
                b_old[idx] = b_new
                bits[idx] = sub_bits
                if not narrow:
                    posts[idx] = posts_new
            if early_stop:
                if narrow:
                    ok = self._syndromes_from_pipeline(m, sub_bits)
                else:
                    ok = self._syndromes_ok(sub_bits)
                if all_active:
                    converged = ok
                else:
                    converged[idx[ok]] = True
            active = (iterations < budgets) & ~converged
        return BatchDecodeResult(
            bits=bits, converged=converged, iterations=iterations
        )

    # ------------------------------------------------------------------
    def _decode_fused(
        self, ch: np.ndarray, budgets: np.ndarray, early_stop: bool
    ) -> BatchDecodeResult:
        """Whole-batch decode on the backend's fused kernel.

        The plan gates on the message dtype/normalization at
        construction; inputs are handed over exactly as the numpy loop
        would see them, and the kernel's outputs are bit-identical by
        the backend contract (asserted by the parametrized equivalence
        sweeps).
        """
        k = self._k
        ch_in = np.ascontiguousarray(ch[:, :k], dtype=np.int16)
        ch_pn = np.ascontiguousarray(ch[:, k:], dtype=np.int8)
        bits, converged, iterations = self.backend.fused_zigzag_decode(
            self, self._fused_plan, ch_in, ch_pn, budgets, early_stop
        )
        return BatchDecodeResult(
            bits=bits, converged=converged, iterations=iterations
        )

    def _decode_device(
        self,
        ch: np.ndarray,
        budgets: np.ndarray,
        limit: int,
        early_stop: bool,
    ) -> BatchDecodeResult:
        """Zigzag decode with the working set on a device array module.

        The same golden-model operation sequence as the numpy loop, in
        ``xp``-generic arithmetic: every intermediate is exact in int32,
        so results stay bit-identical.  Device-friendly shape: no frame
        subsetting (state is committed through masked whole-batch
        blends) and only decisions/syndromes return to the host each
        iteration.
        """
        be = self.backend
        xp = be.xp
        k, n_par, width = self._k, self._n_parity, self._width
        e_in, seg, q = self._e_in, self.segments, self._seg_len
        mi = int(self.fmt.max_int)
        frames = ch.shape[0]

        lut = be.to_device(self._norm_lut.astype(np.int32))
        in_vn = be.to_device(
            np.ascontiguousarray(self._in_vn_sorted, dtype=np.int64)
        )
        gather_tm = be.to_device(
            np.ascontiguousarray(self._vn_gather_tm, dtype=np.int64)
        )
        ch_in = be.to_device(
            np.ascontiguousarray(ch[:, :k], dtype=np.int32)
        )
        ch_pn = be.to_device(
            np.ascontiguousarray(ch[:, k:], dtype=np.int32)
        )
        c2v = xp.zeros((frames, e_in), dtype=xp.int32)
        b_old = xp.zeros((frames, n_par + 1), dtype=xp.int32)
        f_old = xp.zeros((frames, n_par), dtype=xp.int32)
        posts = ch_in.copy()  # wide info posteriors (channel + totals)

        # Control state stays on the host: tiny, and it steers python
        # control flow every iteration anyway.
        bits = (ch < 0).astype(np.uint8)
        iterations = np.zeros(frames, dtype=np.int64)
        converged = (
            self._syndromes_ok(bits)
            if early_stop
            else np.zeros(frames, dtype=bool)
        )
        active = (iterations < budgets) & ~converged

        t_idx = np.arange(width).reshape(1, width, 1)
        t_idx = be.to_device(t_idx)
        seg_last = np.arange(1, seg) * q - 1  # host index arrays are fine
        for _ in range(1, limit + 1):
            if not active.any():
                break
            act = be.to_device(active)[:, None]
            # VN phase.
            v2c = xp.take(posts, in_vn, axis=1)
            v2c = xp.clip(v2c - c2v, -mi, mi)
            # CN phase: slab minima (argmin keeps first occurrence,
            # matching the numpy online scan's strict-less updates).
            slabs = v2c.reshape(frames, width, n_par)
            negs = slabs < 0
            mags = xp.abs(slabs)
            min1 = mags.min(axis=1)
            amin = mags.argmin(axis=1)
            sel = t_idx == amin[:, None, :]
            # Seeded at max_int exactly like the numpy scan: the true
            # second minimum whenever a check has >= 2 info edges.
            min2 = xp.where(sel, mi, mags).min(axis=1)
            parity_neg = (negs.sum(axis=1) & 1).astype(xp.bool_)
            c_in = xp.clip(ch_pn + b_old[:, 1:], -mi, mi)
            c_neg = c_in < 0
            lutc = xp.take(lut, xp.abs(c_in))
            n1 = xp.take(lut, min1)
            # Forward chain scan, serial over the q checks of a segment.
            n1_s = n1.reshape(frames, seg, q)
            par_s = parity_neg.reshape(frames, seg, q)
            ch_s = ch_pn.reshape(frames, seg, q)
            f = xp.empty((frames, seg, q), dtype=xp.int32)
            anorm = xp.empty((frames, seg, q), dtype=xp.int32)
            aneg = xp.empty((frames, seg, q), dtype=xp.bool_)
            a = xp.full((frames, seg), mi, dtype=xp.int32)
            if seg > 1:
                a[:, 1:] = xp.clip(
                    ch_pn[:, seg_last] + f_old[:, seg_last], -mi, mi
                )
            for t in range(q):
                an = xp.take(lut, xp.abs(a))
                ng = a < 0
                anorm[:, :, t] = an
                aneg[:, :, t] = ng
                mag = xp.minimum(n1_s[:, :, t], an)
                f_t = xp.where(par_s[:, :, t] ^ ng, -mag, mag)
                f[:, :, t] = f_t
                a = xp.clip(ch_s[:, :, t] + f_t, -mi, mi)
            f_lin = f.reshape(frames, n_par)
            anorm_lin = anorm.reshape(frames, n_par)
            aneg_lin = aneg.reshape(frames, n_par)
            # Output magnitudes/signs per slab.
            chain = xp.minimum(anorm_lin, lutc)
            lo1 = xp.minimum(n1, chain)
            lo2 = xp.minimum(xp.take(lut, min2), chain)
            b_mag = xp.minimum(n1, lutc)
            b = xp.where(parity_neg ^ c_neg, -b_mag, b_mag)
            chain_neg = parity_neg ^ aneg_lin ^ c_neg
            bmag = xp.where(sel, lo2[:, None, :], lo1[:, None, :])
            sign = chain_neg[:, None, :] ^ negs
            c2v_new = xp.where(sign, -bmag, bmag).reshape(frames, e_in)
            # Decision pass over the degree runs.
            gathered = xp.take(c2v_new, gather_tm, axis=1)
            posts_new = xp.empty((frames, k), dtype=xp.int32)
            for v0, v1, d, offset in self._deg_runs:
                run = gathered[
                    :, offset: offset + d * (v1 - v0)
                ].reshape(frames, d, v1 - v0)
                acc = run[:, 0]
                for t in range(1, d):
                    acc = acc + run[:, t]
                posts_new[:, v0:v1] = acc
            posts_new = posts_new + ch_in
            pn_new = ch_pn + f_lin
            pn_new[:, :-1] = pn_new[:, :-1] + b[:, 1:]
            b_store = xp.zeros((frames, n_par + 1), dtype=xp.int32)
            b_store[:, 1:n_par] = b[:, 1:]
            # Masked whole-batch commit (frozen frames keep their state).
            c2v = xp.where(act, c2v_new, c2v)
            f_old = xp.where(act, f_lin, f_old)
            b_old = xp.where(act, b_store, b_old)
            posts = xp.where(act, posts_new, posts)
            # Decisions and syndromes on the host.
            sub_bits = np.concatenate(
                (be.asnumpy(posts_new < 0), be.asnumpy(pn_new < 0)),
                axis=1,
            ).astype(np.uint8)
            iterations[active] += 1
            bits[active] = sub_bits[active]
            if early_stop:
                converged |= active & self._syndromes_ok(sub_bits)
            active = (iterations < budgets) & ~converged
        return BatchDecodeResult(
            bits=bits, converged=converged, iterations=iterations
        )

    # ------------------------------------------------------------------
    def _syndromes_ok(self, bits: np.ndarray) -> np.ndarray:
        # IRA structure (the same chain the schedule itself relies on):
        # check c is satisfied iff the XOR of its info bits with parity
        # bits c and c-1 is zero — slab XORs over the slot-major layout
        # instead of a reduceat over the full edge list.
        k, n_par, width = self._k, self._n_parity, self._width
        edge_bits = bits[:, self._in_vn_sorted].reshape(-1, width, n_par)
        par = edge_bits[:, 0].copy()
        for t in range(1, width):
            par ^= edge_bits[:, t]
        pbits = bits[:, k:]
        par ^= pbits
        par[:, 1:] ^= pbits[:, :-1]
        return ~par.any(axis=1)

    def _unsatisfied_counts(self, bits: np.ndarray) -> np.ndarray:
        return _batch_unsatisfied_counts(
            bits, self._edge_vn_sorted, self._cn_starts_all
        )

    def _syndromes_from_pipeline(
        self, m: int, bits: np.ndarray
    ) -> np.ndarray:
        """Per-frame syndrome flags from the pipelined posterior gather.

        The freshly refilled ``zz_g`` buffer holds the clipped info
        posteriors per edge slot; clipping at >= max_int preserves
        signs, so ``zz_g < 0`` is exactly ``bits[:, :k]`` expanded to
        edges — no second gather needed.
        """
        k, n_par, width = self._k, self._n_parity, self._width
        g = self._scratch["zz_g"][:m].reshape(m, width, n_par)
        edge_bits = self._buf("zz_eb", (m, width, n_par), np.uint8)
        np.less(g, 0, out=edge_bits)
        par = self._buf("zz_par", (m, n_par), np.uint8)
        np.copyto(par, edge_bits[:, 0])
        for t in range(1, width):
            np.bitwise_xor(par, edge_bits[:, t], out=par)
        pbits = bits[:, k:]
        np.bitwise_xor(par, pbits, out=par)
        np.bitwise_xor(par[:, 1:], pbits[:, :-1], out=par[:, 1:])
        return ~par.any(axis=1)

    def _check_phase(
        self,
        v2c: np.ndarray,
        ch_pn: np.ndarray,
        b_old: np.ndarray,
        f_old: np.ndarray,
        reuse: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One batched zigzag check-node phase in integer arithmetic.

        Same message definitions as the single-frame golden model's
        ``_check_phase`` with a leading frames axis everywhere; signs are
        carried as boolean negativity masks (exactly ±1 factors) and
        integer sums/minima are exact, so the slot-major reordering
        keeps results bit-identical.  min1/min2/argmin are computed by
        an online scan over the ``k-2`` contiguous slabs (strict-less
        updates reproduce ``np.argmin``'s first-occurrence ties; later
        duplicates of the minimum value land in ``min2``), and the check
        parity is an XOR chain over the slab sign masks.
        """
        m = v2c.shape[0]
        n_par, width = self._n_parity, self._width
        mdt = self._mdt
        mi = int(self.fmt.max_int)
        lut = self._norm_lut
        buf = self._buf
        if reuse:
            self._flip ^= 1

        slabs = v2c.reshape(m, width, n_par)
        neg = buf("cp_neg", (m, width, n_par), bool)
        np.less(slabs, 0, out=neg)
        mags = buf("cp_mags", (m, width, n_par), mdt)
        np.abs(slabs, out=mags)

        parity_neg = buf("cp_par", (m, n_par), bool)
        np.copyto(parity_neg, neg[:, 0])
        min1 = buf("cp_min1", (m, n_par), mdt)
        np.copyto(min1, mags[:, 0])
        # min2 is seeded at max_int rather than an out-of-range sentinel
        # so every value stays inside the LUT's index range: the true
        # second minimum is <= max_int whenever a check has >= 2 info
        # edges, and a degenerate width-1 check wants `other = chain`
        # anyway — which min(lut[max_int], lut[chain]) delivers, the LUT
        # being monotone.
        min2 = buf("cp_min2", (m, n_par), mdt)
        min2[...] = mi
        argmin = buf("cp_am", (m, n_par), np.int8)
        argmin[...] = 0
        lt = buf("cp_lt", (m, n_par), bool)
        msk8 = buf("cp_msk8", (m, n_par), np.int8)
        msk = msk8 if mdt == np.int8 else buf("cp_msk", (m, n_par), mdt)
        tmp = buf("cp_tmp", (m, n_par), mdt)
        tmp8 = buf("cp_tmp8", (m, n_par), np.int8)
        for t in range(1, width):
            np.bitwise_xor(parity_neg, neg[:, t], out=parity_neg)
            v = mags[:, t]
            np.less(v, min1, out=lt)
            _mask_into(lt, msk8)
            if msk is not msk8:
                _mask_into(lt, msk)
            # min2 = select(lt, min1, min(min2, v)); min1 = select(lt,
            # v, min1); argmin = select(lt, t, argmin) — all in place.
            np.minimum(min2, v, out=min2)
            np.bitwise_xor(min1, min2, out=tmp)
            np.bitwise_and(tmp, msk, out=tmp)
            np.bitwise_xor(min2, tmp, out=min2)
            np.bitwise_xor(v, min1, out=tmp)
            np.bitwise_and(tmp, msk, out=tmp)
            np.bitwise_xor(min1, tmp, out=min1)
            np.bitwise_xor(argmin, np.int8(t), out=tmp8)
            np.bitwise_and(tmp8, msk8, out=tmp8)
            np.bitwise_xor(argmin, tmp8, out=argmin)

        # Saturating chain add: the message dtype holds the true sum.
        # c_mag doubles as the c_in scratch (only sign+magnitude live on).
        c_mag = buf("cp_cmag", (m, n_par), mdt)
        np.add(ch_pn, b_old[:, 1 : n_par + 1], out=c_mag)
        np.clip(c_mag, -mi, mi, out=c_mag)
        c_neg = buf("cp_cneg", (m, n_par), bool)
        np.less(c_mag, 0, out=c_neg)
        np.abs(c_mag, out=c_mag)

        # floor(alpha * m) is monotone, so it commutes with min():
        # normalize the scan minima once and take the remaining minima
        # in LUT space, instead of a LUT gather per output slab.
        n1 = buf("cp_n1", (m, n_par), mdt)
        np.take(lut, min1, out=n1)
        f, a_norm, a_neg = self._forward_scan(
            n1, parity_neg, ch_pn, f_old, reuse
        )

        lutc = buf("cp_lutc", (m, n_par), mdt)
        np.take(lut, c_mag, out=lutc)
        b = buf("cp_b", (m, n_par), mdt)
        np.minimum(n1, lutc, out=b)
        np.bitwise_xor(parity_neg, c_neg, out=lt)
        _mask_into(lt, msk)
        np.bitwise_xor(b, msk, out=b)
        np.subtract(b, msk, out=b)

        # lutc becomes the normalized chain minimum min(lut[|a|],
        # lut[c_mag]); lo1/lo2 are the two candidate output magnitudes.
        np.minimum(a_norm, lutc, out=lutc)
        lo1 = buf("cp_lo1", (m, n_par), mdt)
        np.minimum(n1, lutc, out=lo1)
        lo2 = buf("cp_lo2", (m, n_par), mdt)
        np.take(lut, min2, out=lo2)
        np.minimum(lo2, lutc, out=lo2)
        chain_neg = buf("cp_chn", (m, n_par), bool)
        np.bitwise_xor(parity_neg, a_neg, out=chain_neg)
        np.bitwise_xor(chain_neg, c_neg, out=chain_neg)

        if reuse:
            out = buf(f"zz_out{self._flip}", (m, v2c.shape[1]), mdt)
        else:
            out = np.empty((m, v2c.shape[1]), dtype=mdt)
        c2v = out.reshape(m, width, n_par)
        for t in range(width):
            slab = c2v[:, t]
            np.equal(argmin, t, out=lt)
            _mask_into(lt, msk)
            np.bitwise_xor(lo2, lo1, out=tmp)
            np.bitwise_and(tmp, msk, out=tmp)
            np.bitwise_xor(lo1, tmp, out=tmp)
            np.bitwise_xor(chain_neg, neg[:, t], out=lt)
            _mask_into(lt, msk)
            np.bitwise_xor(tmp, msk, out=slab)
            np.subtract(slab, msk, out=slab)

        pn_post = buf("cp_pn", (m, n_par), self._adt)
        np.add(ch_pn, f, out=pn_post)
        pn_post[:, :-1] += b[:, 1:]

        if reuse:
            b_store = buf(f"zz_bst{self._flip}", (m, n_par + 1), mdt)
        else:
            b_store = np.empty((m, n_par + 1), dtype=mdt)
        b_store[:, 0] = 0
        b_store[:, n_par] = 0
        b_store[:, 1:n_par] = b[:, 1:]
        return out, f, b_store, pn_post

    def _forward_scan(
        self,
        n1: np.ndarray,
        parity_neg: np.ndarray,
        ch_pn: np.ndarray,
        f_old: np.ndarray,
        reuse: bool,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sequential saturating forward update over ``frames × segments``.

        ``n1`` is the already-normalized first minimum (``lut[min1]``);
        monotonicity lets each step take ``min(n1, lut[|a|])`` instead
        of normalizing after the min.  Returns ``(f, lut[|a|], a < 0)``
        — the caller needs only the chain input's normalized magnitude
        and sign, so the raw values are never stored.
        """
        m = n1.shape[0]
        seg, q = self.segments, self._seg_len
        mdt = self._mdt
        mi = int(self.fmt.max_int)
        lut = self._norm_lut
        buf = self._buf
        if self._scan_hook:
            # Compiled backends run the whole chain scan in one call;
            # a backend may decline per call (dtype/layout grounds) and
            # the numpy path below reuses the same named buffers.
            if reuse:
                f = buf(f"zz_f{self._flip}", (m, seg, q), mdt)
            else:
                f = np.empty((m, seg, q), dtype=mdt)
            a_norm = buf("fs_anorm", (m, seg, q), mdt)
            a_neg = buf("fs_aneg", (m, seg, q), bool)
            if self.backend.zigzag_forward_scan(
                n1,
                parity_neg,
                ch_pn,
                f_old,
                seg,
                mi,
                lut,
                f.reshape(m, -1),
                a_norm.reshape(m, -1),
                a_neg.reshape(m, -1),
            ):
                return (
                    f.reshape(m, -1),
                    a_norm.reshape(m, -1),
                    a_neg.reshape(m, -1),
                )
        # The scan's parallel dimension is frames x segments, so work
        # t-major: transposed (q, m, seg) copies make every per-step
        # operand a small contiguous slab instead of a stride-q view
        # that touches one cache line per element.
        n1_t = buf("fs_n1t", (q, m, seg), mdt)
        np.copyto(n1_t, n1.reshape(m, seg, q).transpose(2, 0, 1))
        par_t = buf("fs_part", (q, m, seg), bool)
        np.copyto(par_t, parity_neg.reshape(m, seg, q).transpose(2, 0, 1))
        # ch_pn is iteration-invariant on the all-active path; cache its
        # transpose by identity (each decode call copies its input, so a
        # fresh call always misses).
        if self._ch_t_src is not ch_pn:
            ch_t = buf("fs_cht", (q, m, seg), mdt)
            np.copyto(ch_t, ch_pn.reshape(m, seg, q).transpose(2, 0, 1))
            self._ch_t_src = ch_pn
            self._ch_t = ch_t
        else:
            ch_t = self._ch_t
        f_t = buf("fs_ft", (q, m, seg), mdt)
        anorm_t = buf("fs_ant", (q, m, seg), mdt)
        aneg_t = buf("fs_agt", (q, m, seg), bool)
        starts = np.arange(seg) * q
        # Neutral chain input for segment 0: saturation magnitude with
        # positive sign (min() is unaffected because min1 <= max_int).
        a = buf("fs_a", (m, seg), mdt)
        a[:, 0] = mi
        if seg > 1:
            np.add(
                ch_pn[:, starts[1:] - 1],
                f_old[:, starts[1:] - 1],
                out=a[:, 1:],
            )
            np.clip(a[:, 1:], -mi, mi, out=a[:, 1:])
        la = buf("fs_la", (m, seg), mdt)
        sgn = buf("fs_sgn", (m, seg), bool)
        msk = buf("fs_msk", (m, seg), mdt)
        lut_signed = self._norm_lut_signed
        for t in range(q):
            if lut_signed is not None:
                # The 256-entry LUT clamps |a| at max_int itself, so the
                # chain value needs no explicit clip: its sign survives
                # saturation unchanged and only lut[min(|a|, max_int)]
                # and that sign are ever consumed.
                np.take(lut_signed, a.view(np.uint8), out=anorm_t[t])
            else:
                np.abs(a, out=la)
                np.take(lut, la, out=anorm_t[t])
            np.less(a, 0, out=aneg_t[t])
            np.minimum(n1_t[t], anorm_t[t], out=la)
            np.bitwise_xor(aneg_t[t], par_t[t], out=sgn)
            _mask_into(sgn, msk)
            np.bitwise_xor(la, msk, out=la)
            np.subtract(la, msk, out=f_t[t])
            np.add(ch_t[t], f_t[t], out=a)
            if lut_signed is None:
                np.clip(a, -mi, mi, out=a)
        if reuse:
            f = buf(f"zz_f{self._flip}", (m, seg, q), mdt)
        else:
            f = np.empty((m, seg, q), dtype=mdt)
        np.copyto(f, f_t.transpose(1, 2, 0))
        a_norm = buf("fs_anorm", (m, seg, q), mdt)
        np.copyto(a_norm, anorm_t.transpose(1, 2, 0))
        a_neg = buf("fs_aneg", (m, seg, q), bool)
        np.copyto(a_neg, aneg_t.transpose(1, 2, 0))
        return (
            f.reshape(m, -1),
            a_norm.reshape(m, -1),
            a_neg.reshape(m, -1),
        )
