"""Pluggable array backends for the batched fixed-point decoders.

The paper's partly-parallel core gets its throughput from mapping the
min-sum/zigzag update onto wide parallel functional units; the software
analogue — the ``(frames, edges)`` vectorized engines in
:mod:`repro.decode.batch_quantized` — is written against the small seam
defined here instead of being hard-wired to numpy.  A backend exposes
the primitives the decoders actually use:

* a named scratch arena (:meth:`ArrayBackend.buf`),
* gathers, LUT application and branchless blends,
* segment sums and fused segment ``(min1, min2, argmin)``
  (the two ``reduceat`` shapes of the check phase),
* the serial-dependency t-major forward chain scan
  (:meth:`ArrayBackend.zigzag_forward_scan`),
* an optional whole-batch fused decode
  (:meth:`ArrayBackend.fused_zigzag_plan` /
  :meth:`ArrayBackend.fused_zigzag_decode`).

Shipped backends:

``numpy``
    The default.  Bit-identical to the historical implementation by
    construction — the decoders' own vectorized numpy loops *are* this
    backend's implementation; it never overrides a kernel hook.
``cnative``
    Compiled C kernels (:mod:`repro.decode._cnative`), built lazily from
    ``_zigzag_kernels.c`` with the system compiler.  Provides the fused
    min1/min2/argmin sweep, the compiled forward scan, and a fused
    whole-batch zigzag decode.  Unavailable (with a captured reason)
    when no working C compiler exists.
``numba``
    ``numba.njit(parallel=True)`` twins of the same two kernels
    (:mod:`repro.decode._numba_kernels`).  Import-guarded: without
    numba installed the backend reports itself unavailable and the
    undecorated python twins remain unit-testable.
``cupy``
    Device backend driving the zigzag decoder's device decode loop with
    ``cupy`` arrays.  Unavailable without a CUDA device.
``mock-device``
    ``numpy`` masquerading as a device array module — always available,
    so the device code path (transfers, masked commits, ``xp``-generic
    arithmetic) is exercised by CI without hardware.

``resolve_backend`` also accepts the alias ``"compiled"`` (first
available of ``numba``, ``cnative``) and any :class:`ArrayBackend`
instance (duck-typed backends plug straight in).

Every backend is bound by the bit-identity contract: for identical
inputs it must reproduce the serial quantized golden models exactly
(integer arithmetic is exact in any grouping, so this is a matter of
preserving operation semantics, not tolerances).  The equivalence
sweeps in ``tests/test_batch_quantized.py`` are parametrized over all
installed backends to enforce it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

from . import _cnative


def mask_into(cond: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Fill ``out`` with 0 where ``cond`` is False and -1 where True.

    ``np.where`` on byte-sized operands is memory-bound and an order of
    magnitude slower than the arithmetic it gates at full-frame batch
    shapes; an all-ones/all-zeros mask turns every select into a couple
    of in-place bitwise ops (``b ^ ((a ^ b) & mask)``) that stay exact
    for two's-complement integers.
    """
    if out.dtype == np.int8:
        np.negative(cond.view(np.int8), out=out)
    else:
        np.multiply(cond, -1, out=out, casting="unsafe")
    return out


class ArrayBackend:
    """Base array backend: the numpy implementations of every primitive.

    Subclasses override the kernel hooks they accelerate and leave the
    rest inherited; any hook may *decline* at runtime (unsupported
    dtype, non-contiguous input) and the decoder falls back to its own
    numpy path, so partial backends stay bit-identical by construction.
    """

    #: Registry name (``resolve_backend(name)``).
    name = "numpy"
    #: ``"numpy"`` (pure fallback), ``"fused"`` (compiled host kernels)
    #: or ``"device"`` (arrays live on an accelerator; the zigzag
    #: decoder switches to its device decode loop).
    kind = "numpy"
    #: Array module (numpy-compatible namespace) for device-generic code.
    xp = np

    @classmethod
    def available(cls) -> bool:
        return True

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        return None

    def __init__(self) -> None:
        #: Named reusable scratch arrays (see :meth:`buf`).
        self._scratch: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} kind={self.kind!r}>"

    # -- scratch arena --------------------------------------------------
    def buf(self, name: str, shape: tuple, dtype) -> np.ndarray:
        """Named scratch array, grown on demand and sliced per batch.

        At full-frame batch sizes the per-iteration temporaries exceed
        the allocator's mmap threshold, so fresh allocations pay a page
        fault per written page every iteration — reuse removes that.
        """
        arr = self._scratch.get(name)
        if (
            arr is None
            or arr.dtype != np.dtype(dtype)
            or arr.shape[1:] != tuple(shape[1:])
            or arr.shape[0] < shape[0]
        ):
            arr = np.empty(shape, dtype)
            self._scratch[name] = arr
        return arr if arr.shape[0] == shape[0] else arr[: shape[0]]

    # -- elementwise primitives -----------------------------------------
    @staticmethod
    def take(arr, indices, axis=1, out=None):
        """Gather along ``axis`` (the decoders' edge-expansion shape)."""
        return np.take(arr, indices, axis=axis, out=out)

    @staticmethod
    def lut_apply(table, idx, out=None):
        """Apply a small lookup table elementwise (normalization)."""
        return np.take(table, idx, out=out)

    mask_into = staticmethod(mask_into)

    # -- segment reductions ----------------------------------------------
    @staticmethod
    def segment_sum(values, starts, dtype=None, out=None):
        """Per-segment sums over a sorted edge axis (VN totals)."""
        return np.add.reduceat(values, starts, axis=1, dtype=dtype, out=out)

    def segment_min1_min2(
        self, mags, starts, seg_of_sorted, edge_index, n_edges_val
    ):
        """Per-segment ``(min1, min2, argmin)`` over sorted magnitudes.

        ``argmin`` is the *global sorted position* of the first minimum
        (first occurrence on ties) and ``min2`` the minimum of the
        remaining entries — the dtype's max when a segment has a single
        edge.  ``mags`` is scratch: this numpy fallback masks the first
        minimum in place for the second ``reduceat``; fused backends
        return all three in one sweep without the second pass.
        """
        min1 = np.minimum.reduceat(mags, starts, axis=1)
        is_min = mags == min1[:, seg_of_sorted]
        positions = np.where(is_min, edge_index, n_edges_val)
        argmin = np.minimum.reduceat(positions, starts, axis=1)
        rows = np.arange(mags.shape[0])[:, None]
        mags[rows, argmin] = np.iinfo(mags.dtype).max
        min2 = np.minimum.reduceat(mags, starts, axis=1)
        return min1, min2, argmin

    # -- kernel hooks ------------------------------------------------------
    def zigzag_forward_scan(
        self, n1, parity_neg, ch_pn, f_old, seg, mi, lut, f, a_norm, a_neg
    ) -> bool:
        """Fill ``(f, a_norm, a_neg)`` for the zigzag forward chain scan.

        Return ``True`` when handled; returning ``False`` declines and
        the decoder runs its own vectorized t-major numpy scan.  All
        arrays are ``(m, n_par)`` in linear parity-node order.
        """
        return False

    def fused_zigzag_plan(self, decoder) -> Optional[dict]:
        """Precompute a whole-batch fused decode plan for ``decoder``.

        Called once at decoder construction (fused-kind backends only).
        Return ``None`` when the decoder's format/normalization falls
        outside what the fused kernel supports — the decoder then uses
        the per-iteration hooks instead.
        """
        return None

    def fused_zigzag_decode(
        self, decoder, plan, ch_in, ch_pn, budgets, early_stop
    ):
        """Decode a whole quantized batch under a plan from
        :meth:`fused_zigzag_plan`; returns ``(bits, converged,
        iterations)`` exactly as the numpy loop would produce them."""
        raise NotImplementedError(
            f"backend {self.name!r} published no fused decode plan"
        )

    # -- device transfer ---------------------------------------------------
    def to_device(self, arr):
        """Move a host array to the backend's array module (no-op here)."""
        return arr

    def asnumpy(self, arr) -> np.ndarray:
        """Move an array back to host numpy (no-op here)."""
        return np.asarray(arr)


#: name -> backend class, in registration (= listing) order.
_REGISTRY: "Dict[str, Type[ArrayBackend]]" = {}


def register_backend(cls: Type[ArrayBackend]) -> Type[ArrayBackend]:
    """Class decorator adding a backend to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


register_backend(ArrayBackend)
NumpyBackend = ArrayBackend


@register_backend
class CNativeBackend(ArrayBackend):
    """Compiled C kernels built lazily with the system compiler.

    Fuses the check-phase min1/min2/argmin into one sweep, runs the
    forward chain scan as a compiled loop, and — for formats whose
    ``floor(alpha*m)`` table admits an exact multiply-shift — decodes
    whole batches to completion in a single C call (the dominant win:
    no per-iteration python/numpy dispatch at all).
    """

    name = "cnative"
    kind = "fused"

    @classmethod
    def available(cls) -> bool:
        return _cnative.available()

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        return _cnative.unavailable_reason()

    def segment_min1_min2(
        self, mags, starts, seg_of_sorted, edge_index, n_edges_val
    ):
        if mags.dtype != np.int8 or not mags.flags.c_contiguous:
            return super().segment_min1_min2(
                mags, starts, seg_of_sorted, edge_index, n_edges_val
            )
        # No copy when already int64-contiguous (the cached tables are).
        starts64 = np.ascontiguousarray(starts, dtype=np.int64)
        return _cnative.segment_min_scan(mags, starts64)

    def zigzag_forward_scan(
        self, n1, parity_neg, ch_pn, f_old, seg, mi, lut, f, a_norm, a_neg
    ) -> bool:
        if n1.dtype != np.int8:
            return False
        for arr in (n1, parity_neg, ch_pn, f_old, lut, f, a_norm, a_neg):
            if not arr.flags.c_contiguous:
                return False
        _cnative.zigzag_forward_scan(
            n1,
            parity_neg.view(np.uint8),
            ch_pn,
            f_old,
            seg,
            mi,
            lut,
            f,
            a_norm,
            a_neg.view(np.uint8),
        )
        return True

    def fused_zigzag_plan(self, decoder) -> Optional[dict]:
        mi = int(decoder.fmt.max_int)
        if decoder._mdt != np.int8 or not decoder._narrow_vn:
            return None
        if np.dtype(decoder._adt).itemsize > 2:
            return None
        ms = _cnative.find_mulshift(decoder._norm_lut, mi)
        if ms is None:
            return None
        return {
            "in_vn": decoder._in_vn_i32,
            "mult": int(ms[0]),
            "shift": int(ms[1]),
        }

    def fused_zigzag_decode(
        self, decoder, plan, ch_in, ch_pn, budgets, early_stop
    ):
        return _cnative.zigzag_decode(
            ch_in,
            ch_pn,
            plan["in_vn"],
            decoder._width,
            decoder.segments,
            int(decoder.fmt.max_int),
            plan["mult"],
            plan["shift"],
            budgets,
            early_stop,
        )


@register_backend
class NumbaBackend(ArrayBackend):
    """``numba.njit(parallel=True)`` twins of the two scan kernels."""

    name = "numba"
    kind = "fused"

    @classmethod
    def available(cls) -> bool:
        from . import _numba_kernels

        return _numba_kernels.HAVE_NUMBA

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        from . import _numba_kernels

        if _numba_kernels.HAVE_NUMBA:
            return None
        return f"numba not importable: {_numba_kernels.NUMBA_IMPORT_ERROR}"

    def segment_min1_min2(
        self, mags, starts, seg_of_sorted, edge_index, n_edges_val
    ):
        from . import _numba_kernels

        if not mags.flags.c_contiguous:
            return super().segment_min1_min2(
                mags, starts, seg_of_sorted, edge_index, n_edges_val
            )
        starts64 = np.ascontiguousarray(starts, dtype=np.int64)
        m, n_segs = mags.shape[0], starts64.shape[0]
        min1 = np.empty((m, n_segs), dtype=mags.dtype)
        min2 = np.empty((m, n_segs), dtype=mags.dtype)
        argmin = np.empty((m, n_segs), dtype=np.int64)
        _numba_kernels.segment_min_scan(
            mags, starts64, int(np.iinfo(mags.dtype).max),
            min1, min2, argmin,
        )
        return min1, min2, argmin

    def zigzag_forward_scan(
        self, n1, parity_neg, ch_pn, f_old, seg, mi, lut, f, a_norm, a_neg
    ) -> bool:
        from . import _numba_kernels

        _numba_kernels.zigzag_forward_scan(
            n1, parity_neg, ch_pn, f_old, seg, mi, lut, f, a_norm, a_neg
        )
        return True


@register_backend
class CupyBackend(ArrayBackend):
    """CuPy device backend (zigzag device decode loop on a CUDA GPU)."""

    name = "cupy"
    kind = "device"

    _probe: Optional[tuple] = None  # memoised (ok, reason)

    @classmethod
    def _check(cls) -> tuple:
        if cls._probe is None:
            try:  # pragma: no cover - requires CUDA hardware
                import cupy

                if cupy.cuda.runtime.getDeviceCount() < 1:
                    raise RuntimeError("no CUDA device visible")
                cls._probe = (True, None)
            except Exception as exc:
                cls._probe = (False, f"cupy unavailable: {exc}")
        return cls._probe

    @classmethod
    def available(cls) -> bool:
        return cls._check()[0]

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        return cls._check()[1]

    def __init__(self) -> None:  # pragma: no cover - requires hardware
        super().__init__()
        import cupy

        self.xp = cupy

    def to_device(self, arr):  # pragma: no cover - requires hardware
        return self.xp.asarray(arr)

    def asnumpy(self, arr):  # pragma: no cover - requires hardware
        return self.xp.asnumpy(arr)


@register_backend
class MockDeviceBackend(ArrayBackend):
    """Numpy masquerading as a device module.

    Always available, so the zigzag device decode loop — host/device
    transfers, ``xp``-generic arithmetic, masked whole-batch commits —
    is exercised on every CI run without accelerator hardware.  Slower
    than the plain numpy backend by design (no subsetting, wide
    dtypes): it exists to test the seam, not to win benchmarks.
    """

    name = "mock-device"
    kind = "device"

    def to_device(self, arr):
        # Copy, as a real transfer would: mutations on "device" arrays
        # must never alias caller memory.
        return np.array(arr)


class InstrumentedBackend(ArrayBackend):
    """Wraps any backend, timing its kernel primitives into a registry.

    The timed surface is the set of hooks a backend can accelerate —
    ``segment_sum``, ``segment_min1_min2``, ``zigzag_forward_scan``,
    ``fused_zigzag_decode`` and the device transfers — recorded as
    ``<prefix>.<kernel>`` timers (default ``decode.kernel.*``), which
    ``repro obs profile`` renders as the decode-stage breakdown.  The
    cheap elementwise primitives (``take``/``lut_apply``/``mask_into``)
    delegate untimed: they run thousands of times per frame and two
    clock reads per call would distort exactly what is being measured.

    The wrapper changes timing only, never values, so the bit-identity
    contract of the wrapped backend carries over unchanged.
    """

    def __init__(
        self, inner: ArrayBackend, registry, prefix: str = "decode.kernel"
    ) -> None:
        super().__init__()
        self.inner = inner
        self.registry = registry
        self.prefix = prefix
        self._scratch = inner._scratch  # share the inner arena
        self.name = inner.name
        self.kind = inner.kind
        self.xp = inner.xp
        self.take = inner.take
        self.lut_apply = inner.lut_apply
        self.mask_into = inner.mask_into

    def _timer(self, kernel: str):
        return self.registry.timer(f"{self.prefix}.{kernel}")

    def buf(self, name, shape, dtype):
        return self.inner.buf(name, shape, dtype)

    def segment_sum(self, values, starts, dtype=None, out=None):
        with self._timer("segment_sum"):
            return self.inner.segment_sum(
                values, starts, dtype=dtype, out=out
            )

    def segment_min1_min2(
        self, mags, starts, seg_of_sorted, edge_index, n_edges_val
    ):
        with self._timer("segment_min1_min2"):
            return self.inner.segment_min1_min2(
                mags, starts, seg_of_sorted, edge_index, n_edges_val
            )

    def zigzag_forward_scan(self, *args) -> bool:
        with self._timer("zigzag_forward_scan"):
            return self.inner.zigzag_forward_scan(*args)

    def fused_zigzag_plan(self, decoder):
        return self.inner.fused_zigzag_plan(decoder)

    def fused_zigzag_decode(
        self, decoder, plan, ch_in, ch_pn, budgets, early_stop
    ):
        with self._timer("fused_zigzag_decode"):
            return self.inner.fused_zigzag_decode(
                decoder, plan, ch_in, ch_pn, budgets, early_stop
            )

    def to_device(self, arr):
        with self._timer("to_device"):
            return self.inner.to_device(arr)

    def asnumpy(self, arr):
        with self._timer("asnumpy"):
            return self.inner.asnumpy(arr)


def instrument_backend(
    spec, registry, prefix: str = "decode.kernel"
) -> InstrumentedBackend:
    """Resolve ``spec`` (as :func:`resolve_backend`) and wrap it with
    kernel timers recording into ``registry``."""
    return InstrumentedBackend(
        resolve_backend(spec), registry, prefix=prefix
    )


# ---------------------------------------------------------------------------
#: ``resolve_backend`` aliases: name -> preference-ordered candidates.
_ALIASES = {"compiled": ("numba", "cnative")}


def backend_status() -> "Dict[str, tuple]":
    """name -> (kind, unavailable_reason-or-None) for every registered
    backend, in registration order."""
    return {
        name: (cls.kind, cls.unavailable_reason())
        for name, cls in _REGISTRY.items()
    }


def available_backends() -> List[str]:
    """Names of the backends usable in this environment."""
    return [name for name, cls in _REGISTRY.items() if cls.available()]


def resolve_backend(spec=None) -> ArrayBackend:
    """Turn a backend spec into a ready :class:`ArrayBackend` instance.

    ``spec`` may be ``None`` (numpy), a registered name, the
    ``"compiled"`` alias (first available of numba, cnative), or an
    :class:`ArrayBackend` instance (returned as-is, so duck-typed
    third-party backends plug in without registration).
    """
    if spec is None:
        spec = "numpy"
    if isinstance(spec, ArrayBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"backend must be a name or ArrayBackend instance, "
            f"got {type(spec).__name__}"
        )
    if spec in _ALIASES:
        reasons = []
        for cand in _ALIASES[spec]:
            cls = _REGISTRY[cand]
            if cls.available():
                return cls()
            reasons.append(f"{cand}: {cls.unavailable_reason()}")
        raise ValueError(
            f"no {spec!r} backend is available ({'; '.join(reasons)})"
        )
    cls = _REGISTRY.get(spec)
    if cls is None:
        names = ", ".join(
            sorted(set(available_backends()) | set(_ALIASES))
        )
        raise ValueError(
            f"unknown backend {spec!r}; available backends: {names}"
        )
    if not cls.available():
        raise ValueError(
            f"backend {spec!r} is not available in this environment: "
            f"{cls.unavailable_reason()}"
        )
    return cls()
