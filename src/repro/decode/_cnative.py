"""Lazy build + ctypes bindings for the compiled decoder kernels.

The ``cnative`` array backend (see :mod:`repro.decode.backend`) calls
the C routines in ``_zigzag_kernels.c``.  The shared library is built
on first use with the system C compiler into a per-process temporary
directory — no build step, no packaging hook, and no hard dependency:
when no working compiler is present the backend simply reports itself
unavailable (with the captured reason) and everything else falls back
to the numpy backend.

The compile is attempted once per process and memoised, including the
failure reason, so repeated probes are free.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import sys
import tempfile
from typing import Optional

import numpy as np

_SOURCE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "_zigzag_kernels.c"
)

#: Memoised load state: None = not tried, (lib, None) = loaded,
#: (None, reason) = unavailable.
_STATE: Optional[tuple] = None

_I8 = ctypes.POINTER(ctypes.c_int8)
_U8 = ctypes.POINTER(ctypes.c_uint8)
_I16 = ctypes.POINTER(ctypes.c_int16)
_I32 = ctypes.POINTER(ctypes.c_int32)
_I64 = ctypes.POINTER(ctypes.c_int64)


def _compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _compile() -> tuple:
    cc = _compiler()
    if cc is None:
        return None, "no C compiler found (set $CC to override)"
    if not os.path.exists(_SOURCE):
        return None, f"kernel source missing: {_SOURCE}"
    build_dir = tempfile.mkdtemp(prefix="repro-kernels-")
    atexit.register(shutil.rmtree, build_dir, ignore_errors=True)
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    lib_path = os.path.join(build_dir, "zigzag_kernels" + suffix)
    base = [cc, "-O3", "-fPIC", "-shared", _SOURCE, "-o", lib_path]
    # -march=native maximises the vectorized inner loops but is not
    # universally supported; retry plain if it is rejected.  OpenMP is
    # likewise best-effort (frames decode independently).
    attempts = (
        base[:1] + ["-march=native", "-fopenmp"] + base[1:],
        base[:1] + ["-march=native"] + base[1:],
        base,
    )
    err = ""
    for cmd in attempts:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode == 0 and os.path.exists(lib_path):
            try:
                return ctypes.CDLL(lib_path), None
            except OSError as exc:  # built but not loadable
                err = str(exc)
                continue
        err = (proc.stderr or proc.stdout).strip()
    return None, f"kernel compile failed with {cc}: {err[:500]}"


def load() -> tuple:
    """Return ``(lib, reason)``: the loaded CDLL or the failure reason."""
    global _STATE
    if _STATE is None:
        _STATE = _compile()
        lib = _STATE[0]
        if lib is not None:
            lib.segment_min_scan.restype = None
            lib.segment_min_scan.argtypes = [
                _I8, ctypes.c_int64, ctypes.c_int64,
                _I64, ctypes.c_int64, _I8, _I8, _I64,
            ]
            lib.zigzag_forward_scan.restype = None
            lib.zigzag_forward_scan.argtypes = [
                _I8, _U8, _I8, _I8,
                ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                ctypes.c_int64, _I8, _I8, _I8, _U8,
            ]
            lib.zigzag_decode.restype = None
            lib.zigzag_decode.argtypes = [
                _I16, _I8, _I32,
                ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                ctypes.c_int64, ctypes.c_int64,
                _I64, ctypes.c_int,
                _U8, _U8, _I64,
            ]
    return _STATE


def available() -> bool:
    return load()[0] is not None


def unavailable_reason() -> Optional[str]:
    return load()[1]


def _ptr(arr: np.ndarray, ctype):
    return arr.ctypes.data_as(ctypes.POINTER(ctype))


def segment_min_scan(
    mags: np.ndarray, starts: np.ndarray
) -> tuple:
    """Fused per-segment (min1, min2, argmin) in one C sweep."""
    lib, reason = load()
    if lib is None:  # pragma: no cover - guarded by the backend
        raise RuntimeError(reason)
    m, n_edges = mags.shape
    n_segs = starts.shape[0]
    min1 = np.empty((m, n_segs), dtype=np.int8)
    min2 = np.empty((m, n_segs), dtype=np.int8)
    argmin = np.empty((m, n_segs), dtype=np.int64)
    lib.segment_min_scan(
        _ptr(mags, ctypes.c_int8), m, n_edges,
        _ptr(starts, ctypes.c_int64), n_segs,
        _ptr(min1, ctypes.c_int8), _ptr(min2, ctypes.c_int8),
        _ptr(argmin, ctypes.c_int64),
    )
    return min1, min2, argmin


def zigzag_forward_scan(
    n1: np.ndarray,
    parity_neg: np.ndarray,
    ch_pn: np.ndarray,
    f_old: np.ndarray,
    seg: int,
    mi: int,
    lut: np.ndarray,
    f: np.ndarray,
    a_norm: np.ndarray,
    a_neg: np.ndarray,
) -> None:
    lib, reason = load()
    if lib is None:  # pragma: no cover - guarded by the backend
        raise RuntimeError(reason)
    m, n_par = n1.shape
    lib.zigzag_forward_scan(
        _ptr(n1, ctypes.c_int8), _ptr(parity_neg, ctypes.c_uint8),
        _ptr(ch_pn, ctypes.c_int8), _ptr(f_old, ctypes.c_int8),
        m, n_par, seg, mi, _ptr(lut, ctypes.c_int8),
        _ptr(f, ctypes.c_int8), _ptr(a_norm, ctypes.c_int8),
        _ptr(a_neg, ctypes.c_uint8),
    )


def find_mulshift(lut: np.ndarray, max_int: int) -> Optional[tuple]:
    """Exact integer multiply-shift reproducing ``lut[m] == floor(alpha*m)``.

    The decode kernel applies magnitude normalization as
    ``(mult * m) >> shift`` so its SIMD lanes never gather from a table.
    This searches for a ``(mult, shift)`` pair that matches the
    decoder's LUT on every representable magnitude ``0..max_int``;
    returns ``None`` when no pair reproduces it (the backend then falls
    back to the numpy path for that decoder).
    """
    want = lut[: max_int + 1].astype(np.int64)
    if want[0] != 0:
        return None
    mags = np.arange(1, max_int + 1, dtype=np.int64)
    vals = want[1:]
    for shift in range(0, 25):
        # floor(mult*m / 2^shift) == vals[m] for every m constrains
        # mult to [ceil(vals*2^s / m), ceil((vals+1)*2^s / m) - 1];
        # intersect the per-magnitude intervals.
        lo = int(np.max(-((-vals << shift) // mags)))
        hi = int(np.min(-((-(vals + 1) << shift) // mags) - 1))
        if lo <= hi:
            mult = lo
            if np.all((mult * mags) >> shift == vals):
                return mult, shift
    return None


def zigzag_decode(
    ch_in: np.ndarray,
    ch_pn: np.ndarray,
    in_vn: np.ndarray,
    width: int,
    seg: int,
    mi: int,
    mult: int,
    shift: int,
    budgets: np.ndarray,
    early_stop: bool,
) -> tuple:
    """Decode a whole quantized batch to completion in C."""
    lib, reason = load()
    if lib is None:  # pragma: no cover - guarded by the backend
        raise RuntimeError(reason)
    frames, k = ch_in.shape
    n_par = ch_pn.shape[1]
    bits = np.empty((frames, k + n_par), dtype=np.uint8)
    converged = np.zeros(frames, dtype=np.uint8)
    iterations = np.zeros(frames, dtype=np.int64)
    lib.zigzag_decode(
        _ptr(ch_in, ctypes.c_int16), _ptr(ch_pn, ctypes.c_int8),
        _ptr(in_vn, ctypes.c_int32),
        frames, k, n_par, width, seg, mi, mult, shift,
        _ptr(budgets, ctypes.c_int64), int(bool(early_stop)),
        _ptr(bits, ctypes.c_uint8), _ptr(converged, ctypes.c_uint8),
        _ptr(iterations, ctypes.c_int64),
    )
    if frames and iterations[0] == -1 and (iterations == -1).all():
        raise MemoryError("kernel workspace allocation failed")
    return bits, converged.astype(bool), iterations
