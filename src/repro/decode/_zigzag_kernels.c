/* Compiled kernels for the batched fixed-point decoders.
 *
 * Built lazily by repro.decode._cnative with the system C compiler and
 * loaded through ctypes; the "cnative" array backend dispatches here.
 * Every routine reproduces the integer arithmetic of the numpy batch
 * decoders exactly (integer ops are exact, so matching the operation
 * definitions gives bit-identical results by construction — asserted by
 * the backend-parity test suite).
 *
 * The decode kernel is *lane-blocked*: frames are processed in groups
 * of LANES with every per-frame array stored lane-minor (shape
 * [element][LANES]), so each inner loop is a fixed-width contiguous
 * SIMD operation across frames — including the posterior gather and
 * the decision scatter-add, whose row indices are shared by all lanes.
 * Each pass lives in its own static function with restrict-qualified
 * pointers; without that the compiler gives up on the alias run-time
 * checks and leaves the lane loops scalar.
 *
 * Two more tricks keep the hot loops narrow:
 *   - magnitude normalization floor(alpha*m) is an exact
 *     multiply-shift (the caller verifies (mult*m)>>shift reproduces
 *     the decoder's LUT for every representable magnitude), so there
 *     are no table gathers;
 *   - the VN pass reads an int8 mirror of the posteriors clipped to
 *     +-2*max_int (sign-preserving, and c2v is in [-mi, mi], so the
 *     clipped difference saturates to the same v2c — the numpy
 *     decoder's "narrow" path uses the identical argument).  This
 *     requires 3*max_int <= 127, which the caller enforces; wide
 *     int16 posteriors are still kept for the exact decision sums.
 *
 * Layout conventions (see repro.decode.batch_quantized):
 *   - info-edge storage is slot-major: edge (cn, t) of the dense
 *     n_par x width grid lives at index t*n_par + cn;
 *   - messages are int8 (formats up to 7 bits), VN accumulators int16.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#ifdef _OPENMP
#include <omp.h>
#endif

/* Frames per SIMD block: 32 int8 lanes = one 256-bit vector. */
#define LANES 32

static inline int clip_i(int v, int mi)
{
    return v > mi ? mi : (v < -mi ? -mi : v);
}

static inline int abs_i(int v) { return v < 0 ? -v : v; }

/* ------------------------------------------------------------------ */
/* Fused per-segment min1/min2/argmin for the flooding check phase.
 *
 * One sweep per segment replaces the two np.minimum.reduceat passes:
 * min1 is the segment minimum, argmin the *global sorted position* of
 * its first occurrence, and min2 the minimum of the remaining entries
 * (duplicates of min1 included), seeded at INT8_MAX exactly like the
 * numpy path's in-place mask value.                                   */
void segment_min_scan(
    const int8_t *mags,     /* (m, n_edges) CN-sorted magnitudes */
    int64_t m, int64_t n_edges,
    const int64_t *starts,  /* (n_segs,) segment start offsets */
    int64_t n_segs,
    int8_t *min1,           /* (m, n_segs) out */
    int8_t *min2,           /* (m, n_segs) out */
    int64_t *argmin)        /* (m, n_segs) out, global positions */
{
    int64_t f;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (f = 0; f < m; f++) {
        const int8_t *row = mags + f * n_edges;
        int8_t *m1 = min1 + f * n_segs;
        int8_t *m2 = min2 + f * n_segs;
        int64_t *am = argmin + f * n_segs;
        for (int64_t s = 0; s < n_segs; s++) {
            int64_t lo = starts[s];
            int64_t hi = (s + 1 < n_segs) ? starts[s + 1] : n_edges;
            int a = row[lo], b = INT8_MAX;
            int64_t pos = lo;
            for (int64_t e = lo + 1; e < hi; e++) {
                int v = row[e];
                if (v < a) { b = a; a = v; pos = e; }
                else if (v < b) { b = v; }
            }
            m1[s] = (int8_t)a;
            m2[s] = (int8_t)b;
            am[s] = pos;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Standalone t-major forward scan (numpy-loop trace path).
 *
 * Matches BatchQuantizedZigzagDecoder._forward_scan: n1 is the already
 * normalized first minimum, outputs are f, lut[|a|] and (a < 0) in
 * linear n_par order.                                                 */
void zigzag_forward_scan(
    const int8_t *n1,          /* (m, n_par) lut[min1] */
    const uint8_t *parity_neg, /* (m, n_par) */
    const int8_t *ch_pn,       /* (m, n_par) */
    const int8_t *f_old,       /* (m, n_par) */
    int64_t m, int64_t n_par, int64_t seg, int64_t mi,
    const int8_t *lut,         /* (mi+1,) */
    int8_t *f,                 /* (m, n_par) out */
    int8_t *a_norm,            /* (m, n_par) out */
    uint8_t *a_neg)            /* (m, n_par) out */
{
    const int64_t q = n_par / seg;
    int64_t fr;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (fr = 0; fr < m; fr++) {
        const int8_t *n1r = n1 + fr * n_par;
        const uint8_t *pr = parity_neg + fr * n_par;
        const int8_t *chr_ = ch_pn + fr * n_par;
        const int8_t *for_ = f_old + fr * n_par;
        int8_t *fo = f + fr * n_par;
        int8_t *an = a_norm + fr * n_par;
        uint8_t *ag = a_neg + fr * n_par;
        for (int64_t s = 0; s < seg; s++) {
            int64_t base = s * q;
            int a = (s == 0)
                ? (int)mi
                : clip_i((int)chr_[base - 1] + (int)for_[base - 1],
                         (int)mi);
            for (int64_t j = 0; j < q; j++) {
                int64_t i = base + j;
                int anv = lut[abs_i(a)];
                int ang = a < 0;
                an[i] = (int8_t)anv;
                ag[i] = (uint8_t)ang;
                int fm = n1r[i] < anv ? n1r[i] : anv;
                int fv = (ang ^ pr[i]) ? -fm : fm;
                fo[i] = (int8_t)fv;
                a = clip_i((int)chr_[i] + fv, (int)mi);
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Lane-blocked zigzag decode.  Every per-frame array is lane-minor:
 * element i of lane f lives at [i*LANES + f].                         */

typedef struct {
    int16_t *chi;    /* (k, LANES) channel info LLRs */
    int8_t *chp;     /* (n_par, LANES) channel parity LLRs */
    int16_t *posts;  /* (k, LANES) wide info posteriors */
    int8_t *posts8;  /* (k, LANES) posteriors clipped to +-2*mi */
    int8_t *c2v;     /* (e_in, LANES) check-to-VN messages */
    int8_t *f_a;     /* (n_par, LANES) forward messages (double buf) */
    int8_t *f_b;
    int8_t *b_old;   /* (n_par + 1, LANES) backward messages */
    int8_t *b;       /* (n_par, LANES) */
    int8_t *min1;    /* (n_par, LANES) */
    int8_t *min2;
    int8_t *am;      /* argmin slab index */
    int8_t *n1;      /* normalized min1 */
    int8_t *cl;      /* normalized |c_in| */
    int8_t *lo1;
    int8_t *lo2;
    int8_t *anorm;
    uint8_t *par;    /* check parity sign */
    uint8_t *cneg;
    uint8_t *chain;
    uint8_t *aneg;
    uint8_t *synd;
    uint8_t *pb;     /* (n_par, LANES) parity-bit decisions */
    void *base;
} workspace;

static int ws_alloc(workspace *w, int64_t k, int64_t n_par, int64_t e_in)
{
    const int64_t L = LANES;
    int64_t bytes =
        k * L * 5 +                     /* chi, posts (int16), posts8 */
        e_in * L +                      /* c2v */
        (n_par + 1) * L * 24;           /* everything else, padded */
    char *p = malloc((size_t)bytes);
    if (!p) return 0;
    w->base = p;
#define TAKE(field, type, count) \
    w->field = (type *)p; p += (int64_t)(count) * L * sizeof(type);
    TAKE(chi, int16_t, k)
    TAKE(posts, int16_t, k)
    TAKE(posts8, int8_t, k)
    TAKE(chp, int8_t, n_par)
    TAKE(c2v, int8_t, e_in)
    TAKE(f_a, int8_t, n_par)
    TAKE(f_b, int8_t, n_par)
    TAKE(b_old, int8_t, n_par + 1)
    TAKE(b, int8_t, n_par)
    TAKE(min1, int8_t, n_par)
    TAKE(min2, int8_t, n_par)
    TAKE(am, int8_t, n_par)
    TAKE(n1, int8_t, n_par)
    TAKE(cl, int8_t, n_par)
    TAKE(lo1, int8_t, n_par)
    TAKE(lo2, int8_t, n_par)
    TAKE(anorm, int8_t, n_par)
    TAKE(par, uint8_t, n_par)
    TAKE(cneg, uint8_t, n_par)
    TAKE(chain, uint8_t, n_par)
    TAKE(aneg, uint8_t, n_par)
    TAKE(synd, uint8_t, n_par)
    TAKE(pb, uint8_t, n_par)
#undef TAKE
    return 1;
}

/* Pass A, slab t=0: the VN update v2c = clip(posts - c2v, +-mi) seeds
 * the min scan, the check parity sign, and the IRA syndrome of the
 * previous iteration's decision.  v2c itself is not stored — the
 * output pass recomputes its sign from the same inputs. */
static void vn_pass_first(
    const int32_t *restrict vn,
    const int8_t *restrict posts8,
    const int8_t *restrict c2v,
    int8_t *restrict min1,
    int8_t *restrict min2,
    int8_t *restrict am,
    uint8_t *restrict par,
    uint8_t *restrict synd,
    const uint8_t *restrict pb,
    int64_t n_par, int mi)
{
    for (int64_t c = 0; c < n_par; c++) {
        const int8_t *pr = posts8 + (int64_t)vn[c] * LANES;
        const int8_t *cv = c2v + c * LANES;
        int8_t *m1 = min1 + c * LANES;
        int8_t *m2 = min2 + c * LANES;
        int8_t *amc = am + c * LANES;
        uint8_t *pc = par + c * LANES;
        uint8_t *sy = synd + c * LANES;
        const uint8_t *pbc = pb + c * LANES;
        const uint8_t *pbp = pb + (c - 1) * LANES;
        if (c)
            for (int f = 0; f < LANES; f++)
                sy[f] = pbc[f] ^ pbp[f] ^ (uint8_t)(pr[f] < 0);
        else
            for (int f = 0; f < LANES; f++)
                sy[f] = pbc[f] ^ (uint8_t)(pr[f] < 0);
        for (int f = 0; f < LANES; f++) {
            int v = pr[f] - cv[f];
            v = v > mi ? mi : v;
            v = v < -mi ? -mi : v;
            int mag = v < 0 ? -v : v;
            m1[f] = (int8_t)mag;
            m2[f] = (int8_t)mi;
            amc[f] = 0;
            pc[f] = v < 0;
        }
    }
}

/* Pass A, slabs t>=1: online min1/min2/argmin scan (strict-less,
 * first occurrence — the numpy batch ordering). */
static void vn_pass_slab(
    const int32_t *restrict vn,
    const int8_t *restrict posts8,
    const int8_t *restrict c2v,
    int8_t *restrict min1,
    int8_t *restrict min2,
    int8_t *restrict am,
    uint8_t *restrict par,
    uint8_t *restrict synd,
    int64_t n_par, int mi, int t)
{
    for (int64_t c = 0; c < n_par; c++) {
        const int8_t *pr = posts8 + (int64_t)vn[c] * LANES;
        const int8_t *cv = c2v + c * LANES;
        int8_t *m1 = min1 + c * LANES;
        int8_t *m2 = min2 + c * LANES;
        int8_t *amc = am + c * LANES;
        uint8_t *pc = par + c * LANES;
        uint8_t *sy = synd + c * LANES;
        for (int f = 0; f < LANES; f++) {
            int p = pr[f];
            sy[f] ^= (uint8_t)(p < 0);
            int v = p - cv[f];
            v = v > mi ? mi : v;
            v = v < -mi ? -mi : v;
            pc[f] ^= (uint8_t)(v < 0);
            int mag = v < 0 ? -v : v;
            int lt = mag < m1[f];
            int mm = m2[f] < mag ? m2[f] : mag;
            m2[f] = (int8_t)(lt ? m1[f] : mm);
            m1[f] = (int8_t)(lt ? mag : m1[f]);
            amc[f] = (int8_t)(lt ? t : amc[f]);
        }
    }
}

/* OR-reduce the per-check syndrome columns into one flag per lane. */
static void synd_reduce(
    const uint8_t *restrict synd, int64_t n_par, uint8_t *restrict bad)
{
    for (int f = 0; f < LANES; f++) bad[f] = 0;
    for (int64_t c = 0; c < n_par; c++) {
        const uint8_t *sy = synd + c * LANES;
        for (int f = 0; f < LANES; f++)
            bad[f] |= sy[f];
    }
}

/* Chain input c_in = clip(ch_pn + b_old[1:]) and the normalized
 * magnitudes lut[|c_in|], lut[min1]. */
static void chain_inputs(
    const int8_t *restrict chp,
    const int8_t *restrict b_old,
    const int8_t *restrict min1,
    uint8_t *restrict cneg,
    int8_t *restrict cl,
    int8_t *restrict n1,
    int64_t n_par, int mi, int32_t nm, int sh)
{
    for (int64_t c = 0; c < n_par; c++) {
        const int8_t *cp = chp + c * LANES;
        const int8_t *bo = b_old + (c + 1) * LANES;
        const int8_t *m1 = min1 + c * LANES;
        uint8_t *cn = cneg + c * LANES;
        int8_t *clc = cl + c * LANES;
        int8_t *n1c = n1 + c * LANES;
        for (int f = 0; f < LANES; f++) {
            int ci = cp[f] + bo[f];
            ci = ci > mi ? mi : ci;
            ci = ci < -mi ? -mi : ci;
            cn[f] = ci < 0;
            int cm = ci < 0 ? -ci : ci;
            clc[f] = (int8_t)((nm * cm) >> sh);
            n1c[f] = (int8_t)((nm * (int32_t)m1[f]) >> sh);
        }
    }
}

/* Forward scan: serial along each segment, SIMD across lanes. */
static void forward_scan_blk(
    const int8_t *restrict n1,
    const uint8_t *restrict par,
    const int8_t *restrict chp,
    const int8_t *restrict f_old,
    int8_t *restrict f_new,
    int8_t *restrict anorm,
    uint8_t *restrict aneg,
    int64_t n_par, int64_t seg, int mi, int32_t nm, int sh)
{
    const int64_t q = n_par / seg;
    for (int64_t s = 0; s < seg; s++) {
        const int64_t base = s * q;
        int16_t a[LANES];
        if (s == 0) {
            for (int f = 0; f < LANES; f++)
                a[f] = (int16_t)mi;
        } else {
            const int8_t *cp = chp + (base - 1) * LANES;
            const int8_t *fo = f_old + (base - 1) * LANES;
            for (int f = 0; f < LANES; f++) {
                int av = cp[f] + fo[f];
                av = av > mi ? mi : av;
                av = av < -mi ? -mi : av;
                a[f] = (int16_t)av;
            }
        }
        for (int64_t j = 0; j < q; j++) {
            const int64_t i = base + j;
            const int8_t *n1c = n1 + i * LANES;
            const uint8_t *pc = par + i * LANES;
            const int8_t *cp = chp + i * LANES;
            int8_t *anc = anorm + i * LANES;
            uint8_t *agc = aneg + i * LANES;
            int8_t *fn = f_new + i * LANES;
            for (int f = 0; f < LANES; f++) {
                int av = a[f];
                int ang = av < 0;
                int anv = (int)((nm * (int32_t)(ang ? -av : av)) >> sh);
                anc[f] = (int8_t)anv;
                agc[f] = (uint8_t)ang;
                int fm = n1c[f] < anv ? n1c[f] : anv;
                int fv = (ang ^ pc[f]) ? -fm : fm;
                fn[f] = (int8_t)fv;
                int nx = cp[f] + fv;
                nx = nx > mi ? mi : nx;
                nx = nx < -mi ? -mi : nx;
                a[f] = (int16_t)nx;
            }
        }
    }
}

/* Backward message b and the two candidate output magnitudes. */
static void backward_outputs(
    const int8_t *restrict n1,
    const int8_t *restrict cl,
    const int8_t *restrict min2,
    const int8_t *restrict anorm,
    const uint8_t *restrict par,
    const uint8_t *restrict cneg,
    const uint8_t *restrict aneg,
    int8_t *restrict b,
    int8_t *restrict lo1,
    int8_t *restrict lo2,
    uint8_t *restrict chain,
    int64_t n_par, int32_t nm, int sh)
{
    for (int64_t c = 0; c < n_par; c++) {
        const int8_t *n1c = n1 + c * LANES;
        const int8_t *clc = cl + c * LANES;
        const int8_t *m2 = min2 + c * LANES;
        const int8_t *anc = anorm + c * LANES;
        const uint8_t *pc = par + c * LANES;
        const uint8_t *cn = cneg + c * LANES;
        const uint8_t *agc = aneg + c * LANES;
        int8_t *bc = b + c * LANES;
        int8_t *l1 = lo1 + c * LANES;
        int8_t *l2 = lo2 + c * LANES;
        uint8_t *chn = chain + c * LANES;
        for (int f = 0; f < LANES; f++) {
            int bm = n1c[f] < clc[f] ? n1c[f] : clc[f];
            bc[f] = (int8_t)((pc[f] ^ cn[f]) ? -bm : bm);
            int cm = anc[f] < clc[f] ? anc[f] : clc[f];
            l1[f] = (int8_t)(n1c[f] < cm ? n1c[f] : cm);
            int lm = (int)((nm * (int32_t)m2[f]) >> sh);
            l2[f] = (int8_t)(lm < cm ? lm : cm);
            chn[f] = pc[f] ^ agc[f] ^ cn[f];
        }
    }
}

/* Pass C, one slab: output blend + wide decision scatter-add.  The
 * v2c sign is recomputed from the unchanged posts8/c2v instead of
 * being stored by pass A.  Scatter rows are shared across lanes, so
 * the inner loop is still a contiguous vector add. */
static void output_pass_slab(
    const int32_t *restrict vn,
    const int8_t *restrict posts8,
    int8_t *restrict c2v,
    const int8_t *restrict lo1,
    const int8_t *restrict lo2,
    const int8_t *restrict am,
    const uint8_t *restrict chain,
    int16_t *restrict posts,
    int64_t n_par, int t)
{
    for (int64_t c = 0; c < n_par; c++) {
        const int8_t *pr8 = posts8 + (int64_t)vn[c] * LANES;
        int8_t *cv = c2v + c * LANES;
        const int8_t *l1 = lo1 + c * LANES;
        const int8_t *l2 = lo2 + c * LANES;
        const int8_t *amc = am + c * LANES;
        const uint8_t *chn = chain + c * LANES;
        int16_t *pr = posts + (int64_t)vn[c] * LANES;
        for (int f = 0; f < LANES; f++) {
            int vneg = pr8[f] < cv[f];  /* sign of posts - c2v */
            int bmag = amc[f] == t ? l2[f] : l1[f];
            int o = (chn[f] ^ vneg) ? -bmag : bmag;
            cv[f] = (int8_t)o;
            pr[f] = (int16_t)(pr[f] + o);
        }
    }
}

/* Refresh the int8 posterior mirror: clip(posts, +-2*mi). */
static void clip_posts(
    const int16_t *restrict posts,
    int8_t *restrict posts8,
    int64_t k, int clip)
{
    for (int64_t i = 0; i < k * LANES; i++) {
        int p = posts[i];
        p = p > clip ? clip : p;
        p = p < -clip ? -clip : p;
        posts8[i] = (int8_t)p;
    }
}

/* Parity posteriors ch_pn + f + b[1:], decision signs into pb. */
static void parity_decisions(
    const int8_t *restrict chp,
    const int8_t *restrict f_new,
    const int8_t *restrict b,
    uint8_t *restrict pb,
    int64_t n_par)
{
    for (int64_t c = 0; c + 1 < n_par; c++) {
        const int8_t *cp = chp + c * LANES;
        const int8_t *fn = f_new + c * LANES;
        const int8_t *bn = b + (c + 1) * LANES;
        uint8_t *pbc = pb + c * LANES;
        for (int f = 0; f < LANES; f++)
            pbc[f] = (int16_t)(cp[f] + fn[f] + bn[f]) < 0;
    }
    {
        const int64_t c = n_par - 1;
        const int8_t *cp = chp + c * LANES;
        const int8_t *fn = f_new + c * LANES;
        uint8_t *pbc = pb + c * LANES;
        for (int f = 0; f < LANES; f++)
            pbc[f] = (int16_t)(cp[f] + fn[f]) < 0;
    }
}

/* Copy one finished lane's decisions out to its (frames, n) bits row. */
static void extract_lane(
    const workspace *w, int lane, int64_t k, int64_t n_par,
    uint8_t *brow)
{
    for (int64_t v = 0; v < k; v++)
        brow[v] = w->posts8[v * LANES + lane] < 0;
    for (int64_t c = 0; c < n_par; c++)
        brow[k + c] = w->pb[c * LANES + lane];
}

/* ------------------------------------------------------------------ */
/* Whole-batch fused zigzag decode: frames run to completion (early
 * stop / per-frame iteration budget) in SIMD blocks of LANES frames.
 * Mirrors QuantizedZigzagDecoder.decode_quantized exactly:
 *
 *   v2c      = clip(posts_prev - c2v, +-mi)          (VN phase)
 *   min scan = strict-less first-occurrence argmin, min2 seeded at mi
 *   c_in     = clip(ch_pn + b_old[1:], +-mi)
 *   forward  = per-segment serial chain, f = sign * min(n1, norm|a|)
 *   outputs  = slab blends of lo1/lo2 with chain sign
 *   decision = wide VN sums (ch_in + sum of new c2v)
 *   syndrome = IRA chain, fused into the next iteration's VN gather
 *
 * Lanes that converge or exhaust their budget have their decisions
 * extracted immediately and are then ignored; the remaining lanes keep
 * iterating (the extra vector work changes nothing observable).
 *
 * Caller contract: 3*mi <= 127 (int8 narrow-VN condition) and
 * (mult*m)>>shift == floor(alpha*m) for m in 0..mi.
 */
void zigzag_decode(
    const int16_t *ch_in,   /* (frames, k) quantized info LLRs */
    const int8_t *ch_pn,    /* (frames, n_par) quantized parity LLRs */
    const int32_t *in_vn,   /* (e_in,) slot -> info VN */
    int64_t frames, int64_t k, int64_t n_par,
    int64_t width, int64_t seg, int64_t mi,
    int64_t mult, int64_t shift, /* floor(alpha*m) == (mult*m)>>shift */
    const int64_t *budgets, /* (frames,) per-frame iteration budgets */
    int early_stop,
    uint8_t *bits,          /* (frames, k + n_par) out */
    uint8_t *converged,     /* (frames,) out */
    int64_t *iterations)    /* (frames,) out */
{
    const int64_t e_in = width * n_par;
    const int64_t n = k + n_par;
    const int64_t n_blocks = (frames + LANES - 1) / LANES;
    const int32_t nm = (int32_t)mult;
    const int sh = (int)shift;
    const int imi = (int)mi;
    int fail = 0;
    int64_t blk;

#ifdef _OPENMP
#pragma omp parallel
#endif
    {
        workspace w;
        int ok_mem = ws_alloc(&w, k, n_par, e_in);
        if (!ok_mem) {
#ifdef _OPENMP
#pragma omp atomic write
#endif
            fail = 1;
        }

#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
        for (blk = 0; blk < n_blocks; blk++) {
            if (fail) continue;
            const int64_t f0 = blk * LANES;
            uint8_t done[LANES];
            int64_t bud[LANES];
            int64_t blockmax = 0;
            int alive = 0;

            /* Lane-minor transposes; dead lanes duplicate frame f0
             * (valid data, never extracted). */
            for (int f = 0; f < LANES; f++) {
                int64_t src = f0 + f < frames ? f0 + f : f0;
                const int16_t *ci = ch_in + src * k;
                const int8_t *cp = ch_pn + src * n_par;
                for (int64_t v = 0; v < k; v++) {
                    w.chi[v * LANES + f] = ci[v];
                    w.posts[v * LANES + f] = ci[v];
                    w.posts8[v * LANES + f] =
                        (int8_t)clip_i(ci[v], 2 * imi);
                }
                for (int64_t c = 0; c < n_par; c++) {
                    w.chp[c * LANES + f] = cp[c];
                    w.pb[c * LANES + f] = cp[c] < 0;
                }
                if (f0 + f < frames) {
                    done[f] = 0;
                    bud[f] = budgets[f0 + f];
                    if (bud[f] > blockmax) blockmax = bud[f];
                    iterations[f0 + f] = 0;
                    converged[f0 + f] = 0;
                    alive++;
                } else {
                    done[f] = 1;
                    bud[f] = 0;
                }
            }
            memset(w.c2v, 0, (size_t)(e_in * LANES));
            memset(w.f_a, 0, (size_t)(n_par * LANES));
            memset(w.b_old, 0, (size_t)((n_par + 1) * LANES));
            int8_t *f_old = w.f_a, *f_new = w.f_b;

            for (int64_t it = 1; alive && it <= blockmax + 1; it++) {
                /* Pass A: VN phase fused with the check min scan and
                 * the IRA syndrome of the *previous* decision. */
                vn_pass_first(in_vn, w.posts8, w.c2v, w.min1,
                              w.min2, w.am, w.par, w.synd, w.pb,
                              n_par, imi);
                for (int t = 1; t < (int)width; t++)
                    vn_pass_slab(in_vn + (int64_t)t * n_par, w.posts8,
                                 w.c2v + (int64_t)t * n_par * LANES,
                                 w.min1, w.min2, w.am, w.par, w.synd,
                                 n_par, imi, t);

                /* Lane bookkeeping: converged lanes first (the golden
                 * model's in-loop check), then exhausted budgets. */
                if (early_stop) {
                    uint8_t bad[LANES];
                    synd_reduce(w.synd, n_par, bad);
                    for (int f = 0; f < LANES; f++) {
                        if (!done[f] && !bad[f]) {
                            extract_lane(&w, f, k, n_par,
                                         bits + (f0 + f) * n);
                            iterations[f0 + f] = it - 1;
                            converged[f0 + f] = 1;
                            done[f] = 1;
                            alive--;
                        }
                    }
                }
                for (int f = 0; f < LANES; f++) {
                    if (!done[f] && it > bud[f]) {
                        extract_lane(&w, f, k, n_par,
                                     bits + (f0 + f) * n);
                        iterations[f0 + f] = bud[f];
                        done[f] = 1;
                        alive--;
                    }
                }
                if (!alive) break;

                chain_inputs(w.chp, w.b_old, w.min1, w.cneg, w.cl,
                             w.n1, n_par, imi, nm, sh);
                forward_scan_blk(w.n1, w.par, w.chp, f_old, f_new,
                                 w.anorm, w.aneg, n_par, seg, imi,
                                 nm, sh);
                backward_outputs(w.n1, w.cl, w.min2, w.anorm, w.par,
                                 w.cneg, w.aneg, w.b, w.lo1, w.lo2,
                                 w.chain, n_par, nm, sh);

                memcpy(w.posts, w.chi,
                       (size_t)(k * LANES) * sizeof(int16_t));
                for (int t = 0; t < (int)width; t++)
                    output_pass_slab(
                        in_vn + (int64_t)t * n_par, w.posts8,
                        w.c2v + (int64_t)t * n_par * LANES,
                        w.lo1, w.lo2, w.am, w.chain, w.posts,
                        n_par, t);
                clip_posts(w.posts, w.posts8, k, 2 * imi);

                parity_decisions(w.chp, f_new, w.b, w.pb, n_par);
                memcpy(w.b_old + LANES, w.b + LANES,
                       (size_t)((n_par - 1) * LANES));
                memset(w.b_old, 0, LANES);
                memset(w.b_old + n_par * LANES, 0, LANES);
                { int8_t *tmp = f_old; f_old = f_new; f_new = tmp; }
                for (int f = 0; f < LANES; f++)
                    if (!done[f]) iterations[f0 + f] = it;
            }

            /* Lanes that ran out of the block loop without an early
             * stop (early_stop == 0 budgets) extract their final
             * decisions here. */
            for (int f = 0; f < LANES; f++)
                if (!done[f])
                    extract_lane(&w, f, k, n_par, bits + (f0 + f) * n);
        }

        if (ok_mem) free(w.base);
    }

    if (fail)
        for (blk = 0; blk < frames; blk++) iterations[blk] = -1;
}
