"""SNR estimation from live LLR statistics.

The link adapter needs the receive SNR without a pilot side-channel.
For BPSK over AWGN the channel LLRs themselves carry it exactly:
``L = 2y/sigma^2`` with ``y = ±1 + n`` is Gaussian with mean ``±m`` and
variance ``2m`` for ``m = 2/sigma^2``, so the second moment alone
identifies the operating point::

    E[L^2] = m^2 + 2m   →   m = -1 + sqrt(1 + E[L^2])
    Es/N0  = 1/(2 sigma^2) = m/4

No bit decisions, no sign statistics — the estimate is insensitive to
the transmitted word.  For fading and higher-order demapped LLRs the
same moment reads out an *effective* SNR (the demapper compresses the
constellation geometry into the LLR scale), which is biased but still
monotone in the true SNR; the controller's oracle mode exists for
exactly those links, and the threshold tables can be derived against
either estimate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Floor on the recovered LLR mean — keeps the dB conversion finite on
#: pathological (all-zero) LLR blocks.
_MIN_MEAN = 1e-9


def llr_moment_esn0_db(llrs: np.ndarray) -> float:
    """Moment-based Es/N0 (dB) estimate from one block of channel LLRs.

    Exact in expectation for BPSK/AWGN; an effective-SNR proxy
    elsewhere (see module docstring).
    """
    llrs = np.asarray(llrs, dtype=np.float64)
    if llrs.size == 0:
        raise ValueError("need at least one LLR")
    second = float(np.mean(np.square(llrs)))
    mean = max(_MIN_MEAN, -1.0 + np.sqrt(1.0 + second))
    return float(10.0 * np.log10(mean / 4.0))


class SnrEstimator:
    """EWMA-smoothed LLR-moment Es/N0 tracker.

    One instantaneous estimate per observed frame, folded into an
    exponentially weighted moving average so a single deep-faded frame
    does not slam the MODCOD selection around.  ``alpha`` is the weight
    of the newest sample (1.0 = no smoothing).
    """

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self._esn0_db: Optional[float] = None

    @property
    def esn0_db(self) -> Optional[float]:
        """Current smoothed estimate (None before any observation)."""
        return self._esn0_db

    def observe(self, llrs: np.ndarray) -> float:
        """Fold one frame's LLRs in; returns the smoothed Es/N0 (dB)."""
        instant = llr_moment_esn0_db(llrs)
        if self._esn0_db is None:
            self._esn0_db = instant
        else:
            self._esn0_db += self.alpha * (instant - self._esn0_db)
        return self._esn0_db

    def reset(self) -> None:
        """Forget the history (e.g. after a known link re-point)."""
        self._esn0_db = None
