"""The link adapter: measured SNR in, MODCOD decision out.

:class:`LinkAdapter` closes the ACM loop.  Each received frame's LLRs
(or, in oracle mode, the true Es/N0) update the SNR estimate; the
threshold table proposes the most efficient MODCOD that estimate
clears; and two stabilizers keep the output from chattering at
threshold boundaries:

* **hysteresis** — switching *up* additionally requires the estimate to
  clear the target's threshold by ``hysteresis_db``, so noise straddling
  a boundary cannot flip the MODCOD every frame;
* **dwell** — at least ``dwell_frames`` frames must pass after any
  switch before the next up-switch.

Down-switches are immediate and un-hysteresed: running above the
channel's capability costs frames *now*, so the controller never lingers
on a failing MODCOD.  This up-slow/down-fast asymmetry is the standard
ACM discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..obs.registry import MetricsRegistry, get_registry
from .estimator import SnrEstimator
from .modcod import ModCod
from .thresholds import ThresholdTable

#: Adapter modes: measure from LLRs, or trust a fed-in true Es/N0.
MODE_ESTIMATOR = "estimator"
MODE_ORACLE = "oracle"


@dataclass
class AcmConfig:
    """Controller knobs around a threshold table."""

    table: ThresholdTable
    mode: str = MODE_ESTIMATOR
    #: Extra dB the estimate must clear a threshold by to switch up.
    hysteresis_db: float = 0.3
    #: Frames after a switch before the next up-switch may fire.
    dwell_frames: int = 4
    #: EWMA weight of the newest per-frame SNR sample (estimator mode).
    ewma_alpha: float = 0.25
    #: Start on this MODCOD instead of the table floor.
    initial: Optional[ModCod] = field(default=None)

    def __post_init__(self) -> None:
        if self.mode not in (MODE_ESTIMATOR, MODE_ORACLE):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.hysteresis_db < 0:
            raise ValueError("hysteresis_db must be non-negative")
        if self.dwell_frames < 0:
            raise ValueError("dwell_frames must be non-negative")


class LinkAdapter:
    """Per-frame MODCOD controller over a threshold table.

    Metrics (when a registry is supplied or globally enabled):
    ``acm.switch.up`` / ``acm.switch.down`` counters, ``acm.esn0_db``
    and ``acm.modcod.index`` gauges, and a per-MODCOD
    ``acm.selected.<label>`` counter.
    """

    def __init__(
        self,
        config: AcmConfig,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.table = config.table
        self.registry = (
            registry if registry is not None else get_registry()
        )
        self.estimator = SnrEstimator(alpha=config.ewma_alpha)
        self._index = (
            0 if config.initial is None
            else self.table.index_of(config.initial)
        )
        self._since_switch = config.dwell_frames  # free first switch
        self._last_esn0: Optional[float] = None
        self.switches_up = 0
        self.switches_down = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> ModCod:
        """The MODCOD currently commanded for the link."""
        return self.table.entries[self._index].modcod

    @property
    def current_index(self) -> int:
        return self._index

    @property
    def esn0_db(self) -> Optional[float]:
        """The SNR estimate behind the latest decision (None before the
        first observation)."""
        return self._last_esn0

    # ------------------------------------------------------------------
    def observe(
        self,
        llrs: Optional[np.ndarray] = None,
        *,
        esn0_db: Optional[float] = None,
    ) -> ModCod:
        """Fold one frame's evidence in; returns the MODCOD to use for
        the *next* frame.

        Estimator mode consumes ``llrs`` (the frame's channel LLRs);
        oracle mode consumes ``esn0_db`` (the true operating point) —
        the mode decides which input is required, so a harness can pass
        both and compare controllers on identical traces.
        """
        if self.config.mode == MODE_ESTIMATOR:
            if llrs is None:
                raise ValueError("estimator mode needs llrs")
            estimate = self.estimator.observe(llrs)
        else:
            if esn0_db is None:
                raise ValueError("oracle mode needs esn0_db")
            estimate = float(esn0_db)
        self._last_esn0 = estimate
        self._since_switch += 1
        self.registry.gauge("acm.esn0_db").set(round(estimate, 3))

        target = self.table.select_index(estimate)
        if target > self._index:
            entry = self.table.entries[target]
            ready = self._since_switch > self.config.dwell_frames
            cleared = estimate >= (
                entry.esn0_db + self.config.hysteresis_db
            )
            if ready and cleared:
                self._index = target
                self._since_switch = 0
                self.switches_up += 1
                self.registry.counter("acm.switch.up").inc()
        elif target < self._index:
            # Down-switches are immediate: the link is failing *now*.
            self._index = target
            self._since_switch = 0
            self.switches_down += 1
            self.registry.counter("acm.switch.down").inc()
        self.registry.gauge("acm.modcod.index").set(self._index)
        self.registry.counter(
            f"acm.selected.{self.current.label}"
        ).inc()
        return self.current
