"""ACM closed-loop trace and the scenario-matrix harness.

Two harnesses that exercise the full receiver chain end to end:

* :func:`run_acm_trace` ramps the true Es/N0 across a threshold
  table's range and runs *two* link adapters on the identical trace —
  one estimating SNR from the frames' own LLRs, one fed the truth
  (oracle).  Every frame decodes through the multi-MODCOD serve plane
  under the estimator's choice, so the result reports both tracking
  quality (estimator within one table step of the oracle) and link
  quality (frame errors through the serve path).

* :func:`run_matrix` runs a grid of scenario cells — MODCOD × channel
  model — through the Monte-Carlo engines (one waterfall row per
  cell) *and* the live serve/loadgen path (one capacity row per
  cell), the reproducibility bar the committed experiment tables hold
  everything else to.

Plus :func:`mixed_serve_check`, the acceptance probe: a mixed-MODCOD
stream through one :class:`~repro.acm.service.MultiModcodService`
must decode bit-identically to dedicated single-config services.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..encode.encoder import IraEncoder
from ..obs.registry import MetricsRegistry
from ..serve.api import ServeConfig
from ..serve.engine import DecodeService
from ..serve.loadgen import LoadgenResult, make_frame_pool, run_loadgen
from ..sim.sweep import SweepPoint, parallel_snr_sweep
from .controller import MODE_ESTIMATOR, MODE_ORACLE, AcmConfig, LinkAdapter
from .modcod import ModCod, build_modcod_code, channel_spec, make_channel
from .service import MultiModcodService
from .thresholds import ThresholdTable


# ----------------------------------------------------------------------
# ACM ramp trace
# ----------------------------------------------------------------------
@dataclass
class AcmTraceResult:
    """Outcome of one :func:`run_acm_trace` run."""

    frames: int
    #: Fraction of frames where |estimator index − oracle index| ≤ 1.
    within_one_rate: float
    #: RMS Es/N0 estimation error (dB) after EWMA warm-up.
    est_rmse_db: float
    est_switches_up: int
    est_switches_down: int
    oracle_switches_up: int
    oracle_switches_down: int
    #: Frames whose decoded codeword differed from the transmitted one.
    frame_errors: int
    #: Frames decoded and compared (completed through the serve plane).
    checked: int
    #: Per-frame traces (true Es/N0, estimate, chosen indices).
    true_esn0_db: List[float] = field(default_factory=list)
    est_esn0_db: List[float] = field(default_factory=list)
    est_indices: List[int] = field(default_factory=list)
    oracle_indices: List[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "frames": self.frames,
            "within_one_rate": round(self.within_one_rate, 4),
            "est_rmse_db": round(self.est_rmse_db, 4),
            "est_switches_up": self.est_switches_up,
            "est_switches_down": self.est_switches_down,
            "oracle_switches_up": self.oracle_switches_up,
            "oracle_switches_down": self.oracle_switches_down,
            "frame_errors": self.frame_errors,
            "checked": self.checked,
        }


def run_acm_trace(
    table: ThresholdTable,
    *,
    frames: int = 120,
    esn0_start_db: Optional[float] = None,
    esn0_stop_db: Optional[float] = None,
    parallelism: int = 36,
    channel: str = "awgn",
    hysteresis_db: float = 0.3,
    dwell_frames: int = 4,
    ewma_alpha: float = 0.25,
    serve_config: Optional[ServeConfig] = None,
    seed: int = 2005,
    registry: Optional[MetricsRegistry] = None,
) -> AcmTraceResult:
    """Ramp the true Es/N0 and track estimator vs oracle adaptation.

    The ramp runs linearly from ``esn0_start_db`` to ``esn0_stop_db``
    (defaults: 1.5 dB below the table floor to 1.5 dB above the top
    threshold — every boundary gets crossed).  Each frame is encoded
    under the *estimator* adapter's current MODCOD, passed through the
    true channel at the ramp's operating point, submitted to a
    :class:`~repro.acm.service.MultiModcodService`, and fed to both
    adapters.  Deterministic for a ``(table, frames, ramp, seed)``
    tuple — the serve plane runs on a virtual frame-indexed clock.
    """
    if frames < 2:
        raise ValueError("need at least two frames for a ramp")
    if esn0_start_db is None:
        esn0_start_db = table.entries[0].esn0_db - 1.5
    if esn0_stop_db is None:
        esn0_stop_db = table.entries[-1].esn0_db + 1.5
    serve_config = (
        serve_config if serve_config is not None else ServeConfig()
    )

    est = LinkAdapter(
        AcmConfig(
            table,
            mode=MODE_ESTIMATOR,
            hysteresis_db=hysteresis_db,
            dwell_frames=dwell_frames,
            ewma_alpha=ewma_alpha,
        ),
        registry=registry,
    )
    oracle = LinkAdapter(
        AcmConfig(
            table,
            mode=MODE_ORACLE,
            hysteresis_db=hysteresis_db,
            dwell_frames=dwell_frames,
        ),
        registry=MetricsRegistry(enabled=False),
    )

    ramp = np.linspace(esn0_start_db, esn0_stop_db, frames)
    rng = np.random.default_rng(seed)
    encoders: Dict[str, IraEncoder] = {}
    truth: Dict[int, np.ndarray] = {}
    result = AcmTraceResult(
        frames=frames,
        within_one_rate=0.0,
        est_rmse_db=0.0,
        est_switches_up=0,
        est_switches_down=0,
        oracle_switches_up=0,
        oracle_switches_down=0,
        frame_errors=0,
        checked=0,
    )

    with MultiModcodService(
        serve_config, parallelism=parallelism
    ) as service:
        for i, true_esn0 in enumerate(ramp):
            modcod = est.current
            code = build_modcod_code(modcod, parallelism=parallelism)
            encoder = encoders.get(modcod.label)
            if encoder is None:
                encoder = encoders[modcod.label] = IraEncoder(code)
            info = rng.integers(0, 2, size=code.k, dtype=np.int8)
            codeword = encoder.encode(info)
            ch = make_channel(
                modcod,
                esn0_db=float(true_esn0),
                channel=channel,
                seed=np.random.SeedSequence((seed, i)),
            )
            llrs = ch.llrs(codeword)
            gid = service.submit(llrs, modcod, now=float(i))
            truth[gid] = codeword

            est.observe(llrs=llrs)
            oracle.observe(esn0_db=float(true_esn0))
            result.true_esn0_db.append(float(true_esn0))
            result.est_esn0_db.append(float(est.esn0_db))
            result.est_indices.append(est.current_index)
            result.oracle_indices.append(oracle.current_index)
            service.pump(now=float(i))
        service.flush(now=float(frames))
        for decoded in service.poll():
            if not decoded.ok:
                continue
            result.checked += 1
            if not np.array_equal(decoded.bits, truth[decoded.request_id]):
                result.frame_errors += 1

    within = sum(
        1
        for e, o in zip(result.est_indices, result.oracle_indices)
        if abs(e - o) <= 1
    )
    result.within_one_rate = within / frames
    # RMSE after EWMA warm-up — the first tenth of the trace is the
    # estimator converging from its first sample.
    skip = max(1, frames // 10)
    errs = np.asarray(result.est_esn0_db[skip:]) - np.asarray(
        result.true_esn0_db[skip:]
    )
    result.est_rmse_db = float(np.sqrt(np.mean(np.square(errs))))
    result.est_switches_up = est.switches_up
    result.est_switches_down = est.switches_down
    result.oracle_switches_up = oracle.switches_up
    result.oracle_switches_down = oracle.switches_down
    return result


# ----------------------------------------------------------------------
# Mixed-MODCOD bit-identity probe
# ----------------------------------------------------------------------
def mixed_serve_check(
    plan: Sequence[Tuple[ModCod, float]],
    *,
    frames_per_modcod: int = 8,
    parallelism: int = 36,
    serve_config: Optional[ServeConfig] = None,
    seed: int = 2005,
) -> dict:
    """Mixed-MODCOD serving vs dedicated per-config services.

    ``plan`` lists ``(modcod, esn0_db)`` operating points.  The same
    frames are decoded twice: interleaved round-robin through one
    :class:`~repro.acm.service.MultiModcodService`, and per-MODCOD
    through dedicated single-config :class:`DecodeService` instances
    with the identical config.  Since batch decode is bit-identical
    per frame regardless of batch composition, the two must agree bit
    for bit — the returned dict reports ``bit_identical`` plus the
    mixed plane's flush-mode throughput.
    """
    serve_config = (
        serve_config if serve_config is not None else ServeConfig()
    )
    rng = np.random.default_rng(seed)
    frames: Dict[str, List[np.ndarray]] = {}
    modcod_of: Dict[str, ModCod] = {}
    for k, (modcod, esn0_db) in enumerate(plan):
        code = build_modcod_code(modcod, parallelism=parallelism)
        encoder = IraEncoder(code)
        info = rng.integers(
            0, 2, size=(frames_per_modcod, code.k), dtype=np.int8
        )
        channel = make_channel(
            modcod,
            esn0_db=esn0_db,
            seed=np.random.SeedSequence((seed, k)),
        )
        frames[modcod.label] = list(
            channel.llrs(encoder.encode_batch(info))
        )
        modcod_of[modcod.label] = modcod

    # Mixed plane: round-robin interleave on a virtual clock.
    mixed: Dict[Tuple[str, int], object] = {}
    order: Dict[int, Tuple[str, int]] = {}
    start = time.perf_counter()
    with MultiModcodService(
        serve_config, parallelism=parallelism
    ) as service:
        for j in range(frames_per_modcod):
            for label, pool in frames.items():
                gid = service.submit(
                    pool[j], modcod_of[label], now=float(j)
                )
                order[gid] = (label, j)
        service.flush(now=float(frames_per_modcod))
        for decoded in service.poll():
            mixed[order[decoded.request_id]] = decoded
    elapsed = time.perf_counter() - start

    # Dedicated planes: one single-config service per MODCOD.
    identical = True
    for label, pool in frames.items():
        code = build_modcod_code(
            modcod_of[label], parallelism=parallelism
        )
        with DecodeService(
            code, serve_config, registry=MetricsRegistry(enabled=False)
        ) as dedicated:
            local: Dict[int, int] = {}
            for j, llrs in enumerate(pool):
                local[dedicated.submit(llrs, now=float(j))] = j
            dedicated.flush(float(frames_per_modcod))
            for decoded in dedicated.poll():
                twin = mixed.get((label, local[decoded.request_id]))
                if (
                    twin is None
                    or twin.status != decoded.status
                    or not np.array_equal(twin.bits, decoded.bits)
                ):
                    identical = False

    total = frames_per_modcod * len(plan)
    return {
        "bit_identical": bool(identical and len(mixed) == total),
        "frames": total,
        "modcods": sorted(frames),
        "served_fps": total / elapsed if elapsed > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# Scenario matrix
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioCell:
    """One matrix cell: a MODCOD under a channel model."""

    modcod: ModCod
    channel: str = "awgn"

    @property
    def label(self) -> str:
        return f"{self.modcod.label}:{self.channel}"


@dataclass
class ScenarioRow:
    """One cell's measurements: waterfall leg + serve leg."""

    cell: ScenarioCell
    #: The Monte-Carlo waterfall samples for this cell.
    points: List[SweepPoint]
    #: Interpolated Eb/N0 of the target-FER crossing (None if the
    #: grid never crossed it).
    waterfall_ebn0_db: Optional[float]
    #: Loadgen outcome at the serve operating point (None when the
    #: serve leg was skipped).
    serve: Optional[LoadgenResult] = None
    serve_ebn0_db: Optional[float] = None

    def to_dict(self) -> dict:
        row = {
            "modcod": self.cell.modcod.label,
            "channel": self.cell.channel,
            "spectral_efficiency": round(
                self.cell.modcod.spectral_efficiency, 4
            ),
            "waterfall_ebn0_db": (
                None
                if self.waterfall_ebn0_db is None
                else round(self.waterfall_ebn0_db, 3)
            ),
            "points": [
                {
                    "ebn0_db": p.value,
                    "ber": p.result.ber,
                    "fer": p.result.fer,
                }
                for p in self.points
            ],
        }
        if self.serve is not None:
            row["serve"] = {
                "ebn0_db": round(self.serve_ebn0_db, 3),
                "offered_fps": self.serve.offered_fps,
                "served_fps": round(self.serve.report.frames_per_s, 1),
                "p99_ms": round(self.serve.report.latency_p99_ms, 3),
                "frame_errors": self.serve.frame_errors,
                "checked": self.serve.checked,
            }
        return row


def _crossing_db(
    points: Sequence[SweepPoint], target_fer: float
) -> Optional[float]:
    """Linear-interpolated Eb/N0 where FER falls through ``target_fer``."""
    for prev, cur in zip(points, points[1:]):
        hi, lo = prev.result.fer, cur.result.fer
        if hi > target_fer >= lo:
            if hi == lo:
                return float(cur.value)
            frac = (hi - target_fer) / (hi - lo)
            return float(prev.value + frac * (cur.value - prev.value))
    if points and points[0].result.fer <= target_fer:
        return float(points[0].value)  # already below at the grid floor
    return None


@dataclass
class ScenarioMatrixResult:
    """All rows of one :func:`run_matrix` run."""

    rows: List[ScenarioRow]

    def to_dict(self) -> dict:
        return {"rows": [r.to_dict() for r in self.rows]}

    def to_markdown(self) -> str:
        """The EXPERIMENTS.md table: one waterfall + capacity row per
        cell."""
        lines = [
            "| MODCOD | channel | SE (bit/sym) | waterfall Eb/N0 (dB)"
            " | serve Eb/N0 (dB) | offered (fps) | served (fps)"
            " | p99 (ms) | serve FER |",
            "|---|---|---|---|---|---|---|---|---|",
        ]
        for row in self.rows:
            waterfall = (
                "—"
                if row.waterfall_ebn0_db is None
                else f"{row.waterfall_ebn0_db:.2f}"
            )
            if row.serve is None:
                serve_cols = ["—"] * 5
            else:
                checked = max(1, row.serve.checked)
                serve_cols = [
                    f"{row.serve_ebn0_db:.2f}",
                    f"{row.serve.offered_fps:.0f}",
                    f"{row.serve.report.frames_per_s:.0f}",
                    f"{row.serve.report.latency_p99_ms:.2f}",
                    f"{row.serve.frame_errors / checked:.3f}",
                ]
            lines.append(
                "| "
                + " | ".join(
                    [
                        row.cell.modcod.label,
                        row.cell.channel,
                        f"{row.cell.modcod.spectral_efficiency:.3f}",
                        waterfall,
                        *serve_cols,
                    ]
                )
                + " |"
            )
        return "\n".join(lines)


def run_matrix(
    cells: Sequence[ScenarioCell],
    *,
    ebn0_points_db: Sequence[float] = (0.0, 1.0, 2.0, 3.0, 4.0),
    grids: Optional[Dict[str, Sequence[float]]] = None,
    parallelism: int = 36,
    mc_frames: int = 64,
    max_iterations: int = 30,
    target_fer: float = 0.5,
    workers: Optional[int] = None,
    serve: bool = True,
    serve_margin_db: float = 1.0,
    offered_fps: float = 200.0,
    duration_s: float = 0.25,
    serve_config: Optional[ServeConfig] = None,
    seed: int = 2005,
) -> ScenarioMatrixResult:
    """Run every cell through Monte-Carlo *and* the live serve path.

    Waterfall leg: :func:`~repro.sim.sweep.parallel_snr_sweep` over the
    cell's Eb/N0 grid (``grids[cell.label]`` when given, else
    ``ebn0_points_db`` — higher-order cells need shifted grids), with
    the cell's channel spec shipped to the worker processes.  Serve
    leg: a loadgen burst at ``serve_margin_db`` above the measured
    waterfall (skipped when the grid never crossed ``target_fer`` —
    no honest operating point exists on it).
    """
    serve_config = (
        serve_config if serve_config is not None else ServeConfig()
    )
    rows: List[ScenarioRow] = []
    for index, cell in enumerate(cells):
        code = build_modcod_code(cell.modcod, parallelism=parallelism)
        grid = list(
            (grids or {}).get(cell.label, ebn0_points_db)
        )
        points = parallel_snr_sweep(
            code,
            grid,
            max_frames=mc_frames,
            max_iterations=max_iterations,
            seed=seed + index,
            workers=workers,
            channel=channel_spec(cell.modcod, cell.channel),
        )
        waterfall = _crossing_db(points, target_fer)
        row = ScenarioRow(
            cell=cell, points=points, waterfall_ebn0_db=waterfall
        )
        if serve and waterfall is not None:
            serve_ebn0 = waterfall + serve_margin_db
            channel = make_channel(
                cell.modcod,
                ebn0_db=serve_ebn0,
                channel=cell.channel,
                seed=np.random.SeedSequence((seed, index, 1)),
            )
            pool = make_frame_pool(
                code,
                ebn0_db=serve_ebn0,
                seed=seed + index,
                channel=channel,
            )
            row.serve = run_loadgen(
                code,
                serve_config,
                offered_fps=offered_fps,
                duration_s=duration_s,
                frame_pool=pool,
                seed=seed + index,
            )
            row.serve_ebn0_db = serve_ebn0
        rows.append(row)
    return ScenarioMatrixResult(rows=rows)
