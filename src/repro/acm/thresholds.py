"""MODCOD threshold tables: where each operating point starts working.

A threshold table is the ACM controller's policy: for each MODCOD, the
minimum Es/N0 at which its FER clears the target, measured with the
repo's own Monte-Carlo engines (the same provenance discipline as the
committed waterfall experiments — every threshold is reproducible from
a seed).  Entries sort by spectral efficiency; selection returns the
most efficient MODCOD whose threshold the measured SNR clears, with
the least efficient entry as the floor (a satellite link always
transmits *something*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..sim.fast import fast_ber
from .modcod import ModCod, build_modcod_code, make_channel


@dataclass(frozen=True)
class ModcodThreshold:
    """One table row: the MODCOD and its minimum operating Es/N0."""

    modcod: ModCod
    esn0_db: float


class ThresholdTable:
    """Threshold rows sorted by spectral efficiency (ascending)."""

    def __init__(self, entries: Sequence[ModcodThreshold]) -> None:
        if not entries:
            raise ValueError("need at least one threshold entry")
        self.entries: List[ModcodThreshold] = sorted(
            entries,
            key=lambda e: (e.modcod.spectral_efficiency, e.esn0_db),
        )
        labels = [e.modcod.label for e in self.entries]
        if len(set(labels)) != len(labels):
            raise ValueError("duplicate MODCOD in threshold table")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def select_index(self, esn0_db: float) -> int:
        """Index of the most efficient MODCOD whose threshold is
        cleared; 0 (the floor entry) when none is."""
        chosen = 0
        for index, entry in enumerate(self.entries):
            if esn0_db >= entry.esn0_db:
                chosen = index
        return chosen

    def select(self, esn0_db: float) -> ModCod:
        """The MODCOD for a measured Es/N0."""
        return self.entries[self.select_index(esn0_db)].modcod

    def index_of(self, modcod: ModCod) -> int:
        for index, entry in enumerate(self.entries):
            if entry.modcod == modcod:
                return index
        raise KeyError(f"{modcod.label} not in table")

    def to_rows(self) -> List[dict]:
        """JSON-able rows (for reports and the CLI)."""
        return [
            {
                "modcod": e.modcod.label,
                "esn0_db": round(e.esn0_db, 3),
                "spectral_efficiency": round(
                    e.modcod.spectral_efficiency, 4
                ),
            }
            for e in self.entries
        ]


# ----------------------------------------------------------------------
def _fer_at(
    code,
    modcod: ModCod,
    esn0_db: float,
    *,
    channel: str,
    frames: int,
    max_iterations: int,
    seed: int,
) -> float:
    ch = make_channel(
        modcod, esn0_db=esn0_db, channel=channel, seed=seed
    )
    result = fast_ber(
        code,
        modcod.ebn0_from_esn0(esn0_db),
        frames=frames,
        max_iterations=max_iterations,
        channel=ch,
    )
    return result.fer


def derive_threshold_table(
    modcods: Sequence[ModCod],
    *,
    parallelism: int = 36,
    channel: str = "awgn",
    target_fer: float = 0.5,
    margin_db: float = 0.5,
    lo_db: float = -6.0,
    hi_db: float = 14.0,
    resolution_db: float = 0.25,
    frames: int = 48,
    max_iterations: int = 30,
    seed: int = 2005,
) -> ThresholdTable:
    """Measure each MODCOD's threshold by bisecting its FER waterfall.

    For every MODCOD the Es/N0 where the FER crosses ``target_fer`` is
    located by bisection over :func:`~repro.sim.fast.fast_ber` (through
    the channel-factory cell for ``channel``), then ``margin_db`` of
    link margin is added — the table records where the MODCOD is *safe*
    to run, not where it starts limping.  ``parallelism`` scales
    normal-frame codes for fast derivation; thresholds derived on the
    structure-preserving scaled codes are internally consistent (the
    controller only compares against them), and full-size tables are a
    matter of budget, not code.
    """
    entries = []
    for modcod in modcods:
        code = build_modcod_code(modcod, parallelism=parallelism)
        lo, hi = float(lo_db), float(hi_db)
        fer_kwargs = dict(
            channel=channel,
            frames=frames,
            max_iterations=max_iterations,
            seed=seed,
        )
        if _fer_at(code, modcod, hi, **fer_kwargs) > target_fer:
            crossing = hi  # never works in range; pinned at the top
        elif _fer_at(code, modcod, lo, **fer_kwargs) <= target_fer:
            crossing = lo  # already fine at the bottom of the range
        else:
            while hi - lo > resolution_db:
                mid = 0.5 * (lo + hi)
                if _fer_at(code, modcod, mid, **fer_kwargs) > target_fer:
                    lo = mid
                else:
                    hi = mid
            crossing = 0.5 * (lo + hi)
        entries.append(
            ModcodThreshold(
                modcod=modcod, esn0_db=crossing + margin_db
            )
        )
    return ThresholdTable(entries)


# ----------------------------------------------------------------------
#: Measured thresholds for the default BPSK rate ladder on the
#: structure-preserving scaled codes (P=36, n=6480/4320 — rate 1/4 is
#: n=8640 at P=36), via ``derive_threshold_table`` with its defaults
#: (AWGN, FER 0.5 crossing + 0.5 dB margin, 48 frames/point, 30
#: iterations, resolution 0.25 dB, seed 2005).  Regenerate with
#: ``python -m repro acm --derive`` after any decoder change that moves
#: waterfalls.
DEFAULT_SCALED_BPSK_THRESHOLDS_DB = {
    "1/4": -2.766,
    "1/2": -1.203,
    "3/4": 1.609,
}


def default_scaled_table() -> ThresholdTable:
    """The committed scaled-code BPSK ladder (see the constants above).

    Three well-separated rates — enough structure for the controller's
    up/down dynamics, small enough that tests and CI derive nothing.
    """
    return ThresholdTable(
        [
            ModcodThreshold(ModCod(rate), esn0_db)
            for rate, esn0_db in (
                DEFAULT_SCALED_BPSK_THRESHOLDS_DB.items()
            )
        ]
    )
