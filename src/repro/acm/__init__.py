"""Adaptive coding & modulation: the DVB-S2 control plane.

The decoder chapters built the engine; this package closes the loop
around it the way a DVB-S2 receiver does — measure the channel from
the LLRs it already produces, pick the operating point (MODCOD) from
measured threshold tables, and retune the serve plane per frame:

* :mod:`~repro.acm.modcod` — the MODCOD value type (rate × modulation
  × frame length), its code cache, and its channel factory;
* :mod:`~repro.acm.estimator` — pilotless Es/N0 estimation from LLR
  moments;
* :mod:`~repro.acm.thresholds` — threshold tables derived from the
  repo's own Monte-Carlo waterfalls;
* :mod:`~repro.acm.controller` — the hysteresis/dwell link adapter;
* :mod:`~repro.acm.service` — multi-MODCOD serving over cached
  per-config decode services;
* :mod:`~repro.acm.harness` — the closed-loop ramp trace and the
  scenario matrix (every cell through Monte-Carlo *and* live serve).
"""

from ..channel.factory import MODULATION_BITS
from .controller import (
    MODE_ESTIMATOR,
    MODE_ORACLE,
    AcmConfig,
    LinkAdapter,
)
from .estimator import SnrEstimator, llr_moment_esn0_db
from .harness import (
    AcmTraceResult,
    ScenarioCell,
    ScenarioMatrixResult,
    ScenarioRow,
    mixed_serve_check,
    run_acm_trace,
    run_matrix,
)
from .modcod import (
    FRAME_NAMES,
    ModCod,
    build_modcod_code,
    channel_spec,
    make_channel,
)
from .service import MultiModcodService
from .thresholds import (
    DEFAULT_SCALED_BPSK_THRESHOLDS_DB,
    ModcodThreshold,
    ThresholdTable,
    default_scaled_table,
    derive_threshold_table,
)

__all__ = [
    "MODE_ESTIMATOR",
    "MODE_ORACLE",
    "AcmConfig",
    "LinkAdapter",
    "SnrEstimator",
    "llr_moment_esn0_db",
    "AcmTraceResult",
    "ScenarioCell",
    "ScenarioMatrixResult",
    "ScenarioRow",
    "mixed_serve_check",
    "run_acm_trace",
    "run_matrix",
    "FRAME_NAMES",
    "ModCod",
    "build_modcod_code",
    "channel_spec",
    "make_channel",
    "MultiModcodService",
    "MODULATION_BITS",
    "ModcodThreshold",
    "ThresholdTable",
    "DEFAULT_SCALED_BPSK_THRESHOLDS_DB",
    "default_scaled_table",
    "derive_threshold_table",
]
