"""Multi-MODCOD serving: one submit/poll plane over per-config services.

The decode engine serves exactly one ``(code, config)`` — its batches
are same-rate by construction.  ACM traffic mixes MODCODs frame by
frame, so :class:`MultiModcodService` keeps a lazy cache of
single-config :class:`~repro.serve.engine.DecodeService` instances
(one per MODCOD label, built on first use — the serve-plane analogue
of :class:`~repro.sim.pool.PersistentPool`'s configure-keyed reuse),
routes each submitted frame to its MODCOD's service, and merges
completions back under one global request-id space.

Batching therefore groups *by config automatically*: frames of the
same MODCOD land in the same child service and micro-batch together,
while different MODCODs decode independently — and since the batched
decoders are bit-identical per frame regardless of batch composition,
the mixed plane's output matches dedicated per-MODCOD services bit for
bit (the acceptance bar the scenario bench enforces).

Each child meters into its own registry; :meth:`merged_snapshot` folds
them with per-MODCOD sub-views via
:func:`~repro.obs.registry.merge_snapshots`, so one
:class:`~repro.serve.report.ServiceReport` can break the mix down.
"""

from __future__ import annotations

import time
from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.registry import MetricsRegistry, merge_snapshots
from ..obs.trace import TraceRecorder
from ..serve.api import DecodeResult, ServeConfig
from ..serve.engine import DecodeService
from .modcod import ModCod, build_modcod_code


class MultiModcodService:
    """Serve a per-frame MODCOD mix through cached per-config services.

    Parameters
    ----------
    config:
        The :class:`~repro.serve.api.ServeConfig` template every child
        service is built from (same batching/shedding/decoder knobs;
        only the code differs per MODCOD).
    parallelism:
        Code scale for normal frames (see
        :func:`~repro.acm.modcod.build_modcod_code`).
    registry:
        When given, children meter into per-label sub-registries
        derived from it only via :meth:`merged_snapshot`; children
        always get private registries so per-MODCOD numbers never mix.
    clock:
        Shared service clock (tests inject a manual clock).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        parallelism: int = 360,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.parallelism = parallelism
        self.registry = registry
        self.trace = trace
        self.clock = clock
        self._services: Dict[str, DecodeService] = {}
        self._registries: Dict[str, MetricsRegistry] = {}
        #: global id -> (label, child-local id)
        self._routes: Dict[int, Tuple[str, int]] = {}
        #: (label, child-local id) -> global id
        self._global_of: Dict[Tuple[str, int], int] = {}
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    def service_for(self, modcod: ModCod) -> DecodeService:
        """The (lazily built) child service for a MODCOD."""
        label = modcod.label
        service = self._services.get(label)
        if service is None:
            code = build_modcod_code(
                modcod, parallelism=self.parallelism
            )
            child_registry = MetricsRegistry()
            service = DecodeService(
                code,
                self.config,
                registry=child_registry,
                trace=self.trace,
                clock=self.clock,
            )
            self._services[label] = service
            self._registries[label] = child_registry
        return service

    @property
    def active_modcods(self) -> List[str]:
        """Labels of the configs built so far (submission order)."""
        return list(self._services)

    # ------------------------------------------------------------------
    def submit(
        self,
        llrs: np.ndarray,
        modcod: ModCod,
        *,
        deadline_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Admit one frame under its MODCOD; returns a *global* id.

        The frame must be sized for the MODCOD's code (``(n,)`` LLRs);
        child services enforce that, so a mislabeled frame fails loudly
        at the door rather than decoding under the wrong graph.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        service = self.service_for(modcod)
        local = service.submit(
            llrs, deadline_s=deadline_s, now=now, modcod=modcod.label
        )
        global_id = self._next_id
        self._next_id += 1
        self._routes[global_id] = (modcod.label, local)
        self._global_of[(modcod.label, local)] = global_id
        return global_id

    def pump(self, now: Optional[float] = None) -> int:
        """Pump every child; returns total batches dispatched."""
        now = self.clock() if now is None else now
        return sum(s.pump(now) for s in self._services.values())

    def next_due(
        self, now: Optional[float] = None
    ) -> Optional[float]:
        """Earliest child wake-up time (None = all idle)."""
        now = self.clock() if now is None else now
        dues = [
            due
            for due in (
                s.next_due(now) for s in self._services.values()
            )
            if due is not None
        ]
        return min(dues) if dues else None

    def poll(self) -> List[DecodeResult]:
        """Drain every child, restamping results with global ids."""
        out: List[DecodeResult] = []
        for label, service in self._services.items():
            for result in service.poll():
                global_id = self._global_of.pop(
                    (label, result.request_id)
                )
                self._routes.pop(global_id, None)
                out.append(
                    dc_replace(result, request_id=global_id)
                )
        return out

    def flush(self, now: Optional[float] = None) -> None:
        """Flush every child (decode everything queued)."""
        for service in self._services.values():
            service.flush(now)

    def close(self) -> None:
        """Close every child service (idempotent)."""
        if self._closed:
            return
        for service in self._services.values():
            service.close()
        self._closed = True

    def __enter__(self) -> "MultiModcodService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def merged_snapshot(self) -> dict:
        """Cross-MODCOD merge with per-label sub-views.

        Sub-views land under the snapshot's ``workers`` key (the
        :func:`~repro.obs.registry.merge_snapshots` convention); labels
        are MODCOD strings, so report worker-counting (which looks for
        ``worker*`` labels) is unaffected.  When the service was built
        with a parent ``registry``, the merge is folded into it too.
        """
        parts = {
            label: reg.snapshot()
            for label, reg in self._registries.items()
        }
        snapshot = merge_snapshots(parts)
        if self.registry is not None and self.registry.enabled:
            self.registry.merge(
                {k: v for k, v in snapshot.items() if k != "workers"}
            )
        return snapshot
