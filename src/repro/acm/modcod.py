"""MODCOD: one DVB-S2 operating point (rate × modulation × frame).

DVB-S2's adaptive coding & modulation retunes the link per-receiver by
picking a MODCOD — a code rate, a modulation, and a frame length
(normal 64800 / short 16200) — against the measured SNR.  This module
gives that triple a value type, builds (and caches) the LDPC code
behind it, and constructs the matching channel for a target Es/N0, so
the controller, the serve plane, and the scenario harness all speak
the same coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..channel.factory import MODULATION_BITS, build_channel
from ..codes import RATE_NAMES, build_code, build_small_code
from ..codes.construction import LdpcCode
from ..codes.short import SHORT_RATE_NAMES, build_short_code
from ..codes.short import effective_rate as short_effective_rate

#: Frame-length names: the standard's 64800-bit and 16200-bit FECFRAMEs.
FRAME_NAMES = ("normal", "short")


@dataclass(frozen=True)
class ModCod:
    """One ACM operating point.

    ``rate`` is the nominal DVB-S2 rate label (``"1/2"``, ...),
    ``modulation`` a :data:`~repro.channel.factory.MODULATION_BITS`
    name, ``frame`` ``"normal"`` or ``"short"``.  Frozen and hashable —
    MODCODs key decoder caches and metric labels.
    """

    rate: str
    modulation: str = "bpsk"
    frame: str = "normal"

    def __post_init__(self) -> None:
        names = SHORT_RATE_NAMES if self.frame == "short" else RATE_NAMES
        if self.rate not in names:
            raise ValueError(
                f"unknown {self.frame}-frame rate {self.rate!r}"
            )
        if self.modulation not in MODULATION_BITS:
            raise ValueError(f"unknown modulation {self.modulation!r}")
        if self.frame not in FRAME_NAMES:
            raise ValueError(f"unknown frame length {self.frame!r}")

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Stable identifier, e.g. ``"1/2:bpsk:normal"`` (no dots —
        labels embed into metric names)."""
        return f"{self.rate}:{self.modulation}:{self.frame}"

    @classmethod
    def parse(cls, label: str) -> "ModCod":
        """Inverse of :attr:`label`."""
        rate, modulation, frame = label.split(":")
        return cls(rate=rate, modulation=modulation, frame=frame)

    @property
    def bits_per_symbol(self) -> int:
        return MODULATION_BITS[self.modulation]

    @property
    def rate_fraction(self) -> float:
        """The nominal code rate as a float (``k/n`` of the LDPC code)."""
        num, den = self.rate.split("/")
        return float(num) / float(den)

    @property
    def effective_rate(self) -> float:
        """Information rate including short-frame shortening loss."""
        if self.frame == "short":
            return short_effective_rate(self.rate)
        return self.rate_fraction

    @property
    def spectral_efficiency(self) -> float:
        """Information bits per channel symbol — the ACM ordering key."""
        return self.bits_per_symbol * self.effective_rate

    # ------------------------------------------------------------------
    def ebn0_from_esn0(self, esn0_db: float) -> float:
        """Convert Es/N0 → Eb/N0 via ``Es = m R Eb`` (nominal rate,
        matching the repo's channel constructors)."""
        return float(
            esn0_db
            - 10.0 * np.log10(self.bits_per_symbol * self.rate_fraction)
        )

    def esn0_from_ebn0(self, ebn0_db: float) -> float:
        """Inverse of :meth:`ebn0_from_esn0`."""
        return float(
            ebn0_db
            + 10.0 * np.log10(self.bits_per_symbol * self.rate_fraction)
        )


# ----------------------------------------------------------------------
#: Built codes, keyed by (rate, frame, parallelism) — code construction
#: costs seconds at P=360, and the multi-config serve path asks for the
#: same code once per service.
_CODE_CACHE: Dict[tuple, LdpcCode] = {}


def build_modcod_code(
    modcod: ModCod, *, parallelism: int = 360
) -> LdpcCode:
    """The LDPC code behind a MODCOD (memoized).

    ``parallelism`` scales normal frames through
    :func:`~repro.codes.small.build_small_code` (structure-preserving,
    the test/bench workhorse); short frames exist only at the
    standard's P=360.
    """
    key = (modcod.rate, modcod.frame, parallelism)
    code = _CODE_CACHE.get(key)
    if code is not None:
        return code
    if modcod.frame == "short":
        if parallelism != 360:
            raise ValueError(
                "short frames are defined at parallelism 360 only"
            )
        code = build_short_code(modcod.rate)
    elif parallelism == 360:
        code = build_code(modcod.rate)
    else:
        code = build_small_code(modcod.rate, parallelism=parallelism)
    _CODE_CACHE[key] = code
    return code


def make_channel(
    modcod: ModCod,
    *,
    esn0_db: Optional[float] = None,
    ebn0_db: Optional[float] = None,
    channel: str = "awgn",
    seed=None,
    k_factor_db: float = 10.0,
    block_length: int = 0,
    max_log: bool = True,
):
    """Build the channel for a MODCOD at an operating point.

    Exactly one of ``esn0_db`` / ``ebn0_db`` must be given — ACM
    thinks in Es/N0 (what the receiver measures), sweeps think in
    Eb/N0 (what waterfalls are plotted against); both land on the same
    :func:`repro.channel.build_channel` cell.
    """
    if (esn0_db is None) == (ebn0_db is None):
        raise ValueError("give exactly one of esn0_db / ebn0_db")
    if ebn0_db is None:
        ebn0_db = modcod.ebn0_from_esn0(esn0_db)
    return build_channel(
        ebn0_db=ebn0_db,
        rate=modcod.rate_fraction,
        modulation=modcod.modulation,
        channel=channel,
        seed=seed,
        k_factor_db=k_factor_db,
        block_length=block_length,
        rate_label=modcod.rate,
        max_log=max_log,
    )


def channel_spec(modcod: ModCod, channel: str = "awgn", **extra) -> dict:
    """The picklable :func:`repro.channel.build_channel` spec of a
    MODCOD cell — what :func:`repro.sim.parallel.parallel_ber` ships to
    worker processes (``None`` for the plain BPSK/AWGN cell, keeping
    the legacy bit-identical stream)."""
    if modcod.modulation == "bpsk" and channel == "awgn" and not extra:
        return None
    spec = {
        "modulation": modcod.modulation,
        "channel": channel,
        "rate_label": modcod.rate,
    }
    spec.update(extra)
    return spec
