"""Tests for repro.hw.pipeline — the frame-pipelined multi-core model."""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.codes.standard import get_profile
from repro.hw import (
    PAPER_TABLE3_MM2,
    AreaModel,
    FramePipelineModel,
    PipelineStage,
    Technology,
    ThroughputModel,
    pipeline_area_rows,
    pipeline_tradeoff_table,
    technology_from_sweep,
)


@pytest.fixture(scope="module")
def half():
    return get_profile("1/2")


# ----------------------------------------------------------------------
# stages and the bottleneck law
# ----------------------------------------------------------------------
class TestStages:
    def test_stage_interval_divides_by_replicas(self):
        stage = PipelineStage("decode", cycles=100, replicas=3)
        assert stage.interval_cycles == math.ceil(100 / 3)
        assert PipelineStage("io", cycles=100).interval_cycles == 100

    def test_stage_occupancies_match_core_model(self, half):
        model = FramePipelineModel(half)
        core = ThroughputModel(half)
        stages = {s.name: s for s in model.stages(iterations=30)}
        assert stages["deframe"].cycles == core.io_cycles()
        assert stages["decode"].cycles == core.decode_cycles(30)
        assert stages["bch"].cycles == math.ceil(
            half.n / model.bch_parallelism
        )

    def test_decode_is_bottleneck_at_paper_iterations(self, half):
        model = FramePipelineModel(half)
        assert model.bottleneck(30).name == "decode"
        assert model.initiation_interval_cycles(30) == ThroughputModel(
            half
        ).decode_cycles(30)

    def test_io_becomes_bottleneck_with_enough_cores(self, half):
        # Enough decode replicas push the II down to the streaming
        # stages' pace — throughput saturates at the deframe stage.
        model = FramePipelineModel(half, decode_cores=64)
        assert model.bottleneck(30).name in ("deframe", "bch")

    def test_invalid_configs_rejected(self, half):
        with pytest.raises(ValueError):
            FramePipelineModel(half, decode_cores=0)
        with pytest.raises(ValueError):
            FramePipelineModel(half, bch_parallelism=0)


# ----------------------------------------------------------------------
# throughput, latency, speedup
# ----------------------------------------------------------------------
class TestThroughput:
    def test_single_core_beats_eq8(self, half):
        """Even one pipelined core beats Eq. 8: the I/O cycles Eq. 8
        charges serially stream concurrently in the pipeline."""
        model = FramePipelineModel(half)
        assert model.speedup_vs_eq8(30) > 1.0
        eq8 = ThroughputModel(half).throughput_bps(30)
        assert model.throughput_bps(30) > eq8

    def test_cores_scale_throughput_until_streaming_bound(self, half):
        fps = [
            FramePipelineModel(half, decode_cores=c).frames_per_s(30)
            for c in (1, 2, 4, 8)
        ]
        assert all(b >= a for a, b in zip(fps, fps[1:]))
        # Two cores nearly double a decode-bound pipeline.
        assert fps[1] / fps[0] == pytest.approx(2.0, rel=0.01)

    def test_replication_never_shortens_fill_latency(self, half):
        one = FramePipelineModel(half, decode_cores=1)
        many = FramePipelineModel(half, decode_cores=8)
        assert many.fill_latency_cycles(30) == one.fill_latency_cycles(30)
        assert one.fill_latency_s(30) == pytest.approx(
            one.fill_latency_cycles(30) / one.clock_hz
        )

    def test_fill_is_sum_ii_is_max(self, half):
        model = FramePipelineModel(half)
        stages = model.stages(30)
        assert model.fill_latency_cycles(30) == sum(
            s.cycles for s in stages
        )
        assert model.initiation_interval_cycles(30) == max(
            s.interval_cycles for s in stages
        )

    def test_latency_adds_backlog_drain(self, half):
        model = FramePipelineModel(half)
        empty = model.latency_s(30, queued_frames=0)
        queued = model.latency_s(30, queued_frames=5)
        ii_s = model.initiation_interval_cycles(30) / model.clock_hz
        assert queued == pytest.approx(empty + 5 * ii_s)

    def test_meets_requirement_consistent(self, half):
        model = FramePipelineModel(half)
        assert model.meets_requirement(30) == (
            model.coded_throughput_bps(30) >= 255e6
        )

    def test_info_vs_coded_ratio_is_code_rate(self, half):
        model = FramePipelineModel(half)
        ratio = model.throughput_bps(30) / model.coded_throughput_bps(30)
        assert ratio == pytest.approx(half.k_info / half.n)


# ----------------------------------------------------------------------
# area and the trade-off table
# ----------------------------------------------------------------------
class TestAreaAndTable:
    def test_area_rows_structure(self):
        rows = pipeline_area_rows(2)
        by = {r["component"]: r["area_mm2"] for r in rows}
        assert set(by) == {
            "decode cores", "deframe double buffer", "bch stage", "total"
        }
        assert by["total"] == pytest.approx(
            by["decode cores"]
            + by["deframe double buffer"]
            + by["bch stage"]
        )
        report = AreaModel().report()
        assert by["decode cores"] == pytest.approx(2 * report.total)
        assert by["deframe double buffer"] == pytest.approx(
            report.channel_ram
        )
        with pytest.raises(ValueError):
            pipeline_area_rows(0)

    def test_model_area_matches_rows(self, half):
        model = FramePipelineModel(half, decode_cores=3)
        rows = pipeline_area_rows(3)
        total = next(
            r["area_mm2"] for r in rows if r["component"] == "total"
        )
        assert model.area_mm2() == pytest.approx(total)

    def test_single_core_pipeline_area_near_table3(self):
        rows = pipeline_area_rows(1)
        total = next(
            r["area_mm2"] for r in rows if r["component"] == "total"
        )
        # One core plus the extra channel-RAM buffer and BCH logic:
        # bigger than the paper's 22.74 mm² core, but not by much.
        assert PAPER_TABLE3_MM2["total"] < total
        assert total < 2 * PAPER_TABLE3_MM2["total"]

    def test_tradeoff_table_rows(self):
        rows = pipeline_tradeoff_table(core_counts=(1, 2, 4))
        assert [r["decode_cores"] for r in rows] == [1, 2, 4]
        for row in rows:
            assert row["speedup_vs_eq8"] >= 1.0
            assert row["area_mm2"] > 0
            assert row["mbps_per_mm2"] == pytest.approx(
                row["info_mbps"] / row["area_mm2"]
            )
        # Throughput grows with cores, but per-area efficiency peaks
        # while the pipeline stays decode-bound.
        assert rows[1]["frames_per_s"] > rows[0]["frames_per_s"]
        assert all(r["meets_255"] for r in rows)

    def test_technology_from_sweep_sizes_buffer(self):
        sweep = SimpleNamespace(max_final_peak=7.0)
        tech = technology_from_sweep(sweep)
        assert tech.buffer_words == 7
        base = Technology()
        assert tech.gate_um2 == base.gate_um2
        # Degenerate sweeps clamp to one word.
        assert technology_from_sweep(
            SimpleNamespace(max_final_peak=0)
        ).buffer_words == 1

    def test_sweep_feeds_tradeoff_table(self):
        small = pipeline_tradeoff_table(
            core_counts=(1,),
            sweep=SimpleNamespace(max_final_peak=1),
        )[0]
        large = pipeline_tradeoff_table(
            core_counts=(1,),
            sweep=SimpleNamespace(max_final_peak=512),
        )[0]
        assert large["area_mm2"] > small["area_mm2"]
        assert large["frames_per_s"] == small["frames_per_s"]
