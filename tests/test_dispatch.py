"""Tests for repro.serve.dispatch — the fabric's routing policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    DISPATCH_POLICIES,
    ConsistentHashDispatch,
    DecodeRequest,
    DispatchPolicy,
    LeastLoadedDispatch,
    RoundRobinDispatch,
    make_dispatch,
)


def _req(rid: int, client=None) -> DecodeRequest:
    return DecodeRequest(
        request_id=rid,
        llrs=np.zeros(1),
        arrival_s=0.0,
        client=client,
    )


class TestLeastLoaded:
    def test_picks_emptiest_worker(self):
        policy = LeastLoadedDispatch(4)
        assert policy.select([5, 1, 3, 2], [0, 1, 2, 3]) == 1

    def test_ties_break_to_lowest_index(self):
        policy = LeastLoadedDispatch(3)
        assert policy.select([2, 2, 2], [0, 1, 2]) == 0
        assert policy.select([2, 2, 2], [2, 1]) == 1

    def test_respects_eligibility(self):
        policy = LeastLoadedDispatch(3)
        # Worker 0 is emptiest but has no window room.
        assert policy.select([0, 4, 2], [1, 2]) == 2

    def test_routes_nothing(self):
        assert LeastLoadedDispatch(2).route(_req(0, client="a")) is None


class TestRoundRobin:
    def test_cycles_through_workers(self):
        policy = RoundRobinDispatch(3)
        picks = [policy.select([0, 0, 0], [0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_ineligible_workers(self):
        policy = RoundRobinDispatch(3)
        picks = [policy.select([0, 0, 0], [0, 2]) for _ in range(4)]
        assert picks == [0, 2, 0, 2]


class TestConsistentHash:
    def test_same_client_same_worker(self):
        policy = ConsistentHashDispatch(4)
        first = policy.route(_req(0, client="alice"))
        assert first is not None and 0 <= first < 4
        for rid in range(1, 20):
            assert policy.route(_req(rid, client="alice")) == first

    def test_stable_across_instances(self):
        a = ConsistentHashDispatch(4)
        b = ConsistentHashDispatch(4)
        clients = [f"client{i}" for i in range(50)]
        assert [a.worker_for(c) for c in clients] == [
            b.worker_for(c) for c in clients
        ]

    def test_no_client_falls_back_to_shared(self):
        policy = ConsistentHashDispatch(4)
        assert policy.route(_req(0)) is None

    def test_spreads_clients_across_workers(self):
        policy = ConsistentHashDispatch(4, replicas=128)
        owners = {policy.worker_for(f"client{i}") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_rescale_moves_only_a_fraction(self):
        # The consistent-hashing property: growing 4 -> 5 workers moves
        # roughly 1/5 of the keys, not ~4/5 like a modulo hash.
        before = ConsistentHashDispatch(4, replicas=128)
        after = ConsistentHashDispatch(5, replicas=128)
        clients = [f"client{i}" for i in range(400)]
        moved = sum(
            before.worker_for(c) != after.worker_for(c) for c in clients
        )
        assert moved / len(clients) < 0.5

    def test_shared_batches_use_least_loaded(self):
        policy = ConsistentHashDispatch(3)
        assert policy.select([4, 0, 2], [0, 1, 2]) == 1


class TestMakeDispatch:
    def test_registry_covers_all_policies(self):
        assert set(DISPATCH_POLICIES) == {
            "least-loaded", "round-robin", "hash",
        }

    @pytest.mark.parametrize("name,cls", [
        ("least-loaded", LeastLoadedDispatch),
        ("round-robin", RoundRobinDispatch),
        ("hash", ConsistentHashDispatch),
    ])
    def test_builds_named_policy(self, name, cls):
        policy = make_dispatch(name, 3)
        assert isinstance(policy, cls)
        assert policy.workers == 3

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="least-loaded"):
            make_dispatch("random", 2)

    def test_hash_replicas_forwarded(self):
        policy = make_dispatch("hash", 2, replicas=7)
        assert policy.replicas == 7

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            LeastLoadedDispatch(0)
        with pytest.raises(ValueError):
            ConsistentHashDispatch(2, replicas=0)

    def test_base_policy_select_is_abstract(self):
        with pytest.raises(NotImplementedError):
            DispatchPolicy(1).select([0], [0])
