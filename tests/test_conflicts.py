"""Tests for repro.hw.conflicts — the cycle-accurate RAM conflict sim."""

import numpy as np
import pytest

from repro.codes import build_small_code
from repro.hw.conflicts import (
    _simulate,
    cn_phase_emissions,
    simulate_cn_phase,
    simulate_iteration,
    simulate_vn_phase,
    vn_phase_emissions,
)
from repro.hw.mapping import IpMapping
from repro.hw.schedule import DecoderSchedule


@pytest.fixture(scope="module")
def schedule():
    return DecoderSchedule.canonical(
        IpMapping(build_small_code("1/2", parallelism=36))
    )


# ----------------------------------------------------------------------
# the generic engine on hand-built cases
# ----------------------------------------------------------------------
def test_no_emissions_no_buffer():
    stats = _simulate(np.arange(10), {}, n_partitions=4, write_ports=2)
    assert stats.peak_buffer == 0
    assert stats.cycles == 10
    assert stats.drain_cycles == 0


def test_single_write_passes_through_other_partition():
    # read addr 0 (part 0) while writing addr 1 (part 1): no deferral
    stats = _simulate(
        np.array([0, 4, 8]), {0: [1]}, n_partitions=4, write_ports=2
    )
    assert stats.peak_buffer == 0
    assert stats.blocked_write_cycles == 0


def test_write_conflicting_with_read_is_deferred():
    # every read hits partition 0 and the write also targets partition 0
    stats = _simulate(
        np.array([0, 4, 8]), {0: [4]}, n_partitions=4, write_ports=2
    )
    # deferred during all three reads, drains afterwards
    assert stats.peak_buffer == 1
    assert stats.drain_cycles >= 1
    assert stats.blocked_write_cycles == 3


def test_write_port_limit_enforced():
    # three writes ready at cycle 0, all to distinct non-read partitions,
    # but only 2 ports: one waits one cycle.
    stats = _simulate(
        np.array([0, 0]), {0: [1, 2, 3]}, n_partitions=4, write_ports=2
    )
    assert stats.peak_buffer == 1


def test_same_partition_writes_serialize():
    # two writes to partition 1 in one cycle: only one accepted.
    stats = _simulate(
        np.array([0, 0]), {0: [1, 5]}, n_partitions=4, write_ports=2
    )
    assert stats.peak_buffer == 1


def test_single_partition_blocks_everything_during_reads():
    # with one partition a write can never proceed while reading
    stats = _simulate(
        np.array([0, 1, 2]), {0: [0]}, n_partitions=1, write_ports=2
    )
    assert stats.drain_cycles >= 1
    assert stats.blocked_write_cycles >= 3


def test_total_writes_conserved():
    emissions = {0: [1, 2], 2: [3], 5: [0, 4, 8]}
    n_writes = sum(len(v) for v in emissions.values())
    stats = _simulate(
        np.arange(6), emissions, n_partitions=4, write_ports=2
    )
    # engine terminates only once the buffer is empty
    assert stats.cycles >= stats.read_cycles
    assert stats.peak_buffer <= n_writes


# ----------------------------------------------------------------------
# emission builders
# ----------------------------------------------------------------------
def test_cn_emissions_cover_every_word(schedule):
    emissions = cn_phase_emissions(schedule, latency=3)
    total = sum(len(v) for v in emissions.values())
    assert total == schedule.mapping.n_words


def test_cn_emissions_after_check_completes(schedule):
    """No output may be emitted before its check's last read."""
    emissions = cn_phase_emissions(schedule, latency=3)
    bounds = schedule.cn_schedule.check_bounds
    phys = schedule.layout.phys
    reads = schedule.cn_schedule.read_order
    first_allowed = {}
    for r in range(len(bounds) - 1):
        for idx in range(bounds[r], bounds[r + 1]):
            first_allowed[int(phys[reads[idx]])] = int(bounds[r + 1]) - 1 + 3
    for cycle, addrs in emissions.items():
        for addr in addrs:
            assert cycle >= first_allowed[addr]


def test_vn_emissions_cover_every_word(schedule):
    emissions = vn_phase_emissions(schedule, latency=3)
    total = sum(len(v) for v in emissions.values())
    assert total == schedule.mapping.n_words


# ----------------------------------------------------------------------
# full phases
# ----------------------------------------------------------------------
def test_cn_phase_needs_small_buffer(schedule):
    stats = simulate_cn_phase(schedule)
    assert 0 < stats.peak_buffer <= 16
    assert stats.read_cycles == schedule.mapping.n_words


def test_vn_phase_is_benign(schedule):
    """Round-robin reads and spaced writes: tiny or no buffering."""
    stats = simulate_vn_phase(schedule)
    assert stats.peak_buffer <= 2


def test_more_partitions_reduce_pressure(schedule):
    p2 = simulate_cn_phase(schedule, n_partitions=2)
    p4 = simulate_cn_phase(schedule, n_partitions=4)
    p8 = simulate_cn_phase(schedule, n_partitions=8)
    assert p4.total_deferred <= p2.total_deferred
    assert p8.total_deferred <= p4.total_deferred


def test_more_write_ports_reduce_pressure(schedule):
    w1 = simulate_cn_phase(schedule, write_ports=1)
    w2 = simulate_cn_phase(schedule, write_ports=2)
    assert w2.peak_buffer <= w1.peak_buffer
    assert w2.total_deferred <= w1.total_deferred


def test_simulate_iteration_returns_both(schedule):
    vn, cn = simulate_iteration(schedule)
    assert vn.read_cycles == cn.read_cycles == schedule.mapping.n_words


def test_latency_shifts_but_preserves_writes(schedule):
    a = simulate_cn_phase(schedule, latency=1)
    b = simulate_cn_phase(schedule, latency=10)
    # all words written in both cases; drain differs
    assert a.read_cycles == b.read_cycles
    assert b.cycles >= a.read_cycles
