"""Tests for repro.bch.chain — the concatenated DVB-S2 FEC."""

import numpy as np
import pytest

from repro.bch import Dvbs2FecChain
from repro.channel import AwgnChannel
from repro.decode import ZigzagDecoder


@pytest.fixture(scope="module")
def chain(code_half):
    decoder = ZigzagDecoder(code_half, "tanh", segments=36)
    return Dvbs2FecChain(code_half, decoder, bch_m=12, bch_t=8)


def test_dimensions(chain, code_half):
    assert chain.k + chain.bch.n_parity == code_half.k
    assert chain.n == code_half.n
    assert chain.rate < float(code_half.profile.rate)


def test_roundtrip_noiseless(chain, rng):
    payload = rng.integers(0, 2, chain.k, dtype=np.uint8)
    frame = chain.encode(payload)
    llrs = 9.0 * (1.0 - 2.0 * frame)
    result = chain.decode(llrs)
    assert result.bch_success
    assert result.bch_corrected == 0
    assert np.array_equal(result.info_bits, payload)


def test_roundtrip_through_noise(chain, code_half, rng):
    payload = rng.integers(0, 2, chain.k, dtype=np.uint8)
    frame = chain.encode(payload)
    channel = AwgnChannel(
        ebn0_db=2.2, rate=float(code_half.profile.rate), seed=5
    )
    result = chain.decode(channel.llrs(frame), max_iterations=40)
    assert result.bch_success
    assert np.array_equal(result.info_bits, payload)


def test_bch_cleans_residual_errors(chain, code_half, rng):
    """Force the inner decoder to leave a few errors (tiny iteration
    budget) and verify the outer code removes them when <= t."""
    payload = rng.integers(0, 2, chain.k, dtype=np.uint8)
    frame = chain.encode(payload)
    channel = AwgnChannel(
        ebn0_db=2.6, rate=float(code_half.profile.rate), seed=11
    )
    llrs = channel.llrs(frame)
    for budget in (1, 2, 3, 4):
        result = chain.decode(llrs, max_iterations=budget)
        inner_errors = int(
            np.count_nonzero(
                result.ldpc_result.bits[: code_half.k] != frame[: code_half.k]
            )
        )
        if 0 < inner_errors <= chain.bch.t:
            assert result.bch_success
            assert result.bch_corrected == inner_errors
            assert np.array_equal(result.info_bits, payload)
            return
    pytest.skip("no budget produced a residual pattern within t")


def test_rejects_too_small_field(code_half):
    decoder = ZigzagDecoder(code_half, "tanh", segments=36)
    with pytest.raises(ValueError, match="too small"):
        Dvbs2FecChain(code_half, decoder, bch_m=10, bch_t=8)


def test_payload_length_enforced(chain):
    with pytest.raises(ValueError, match="message bits"):
        chain.encode(np.zeros(chain.k + 1, dtype=np.uint8))
