"""Tests for repro.core.vectors — golden test-vector delivery."""

import json

import numpy as np
import pytest

from repro.core.vectors import (
    VectorSet,
    generate_vectors,
    load_vectors,
    replay_vectors,
)


@pytest.fixture(scope="module")
def vector_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("vectors") / "golden.vec"
    generated = generate_vectors(
        path, rate="1/2", parallelism=12, n_frames=3, iterations=8,
        seed=4,
    )
    return path, generated


def test_generation_shapes(vector_file):
    path, generated = vector_file
    assert generated.n_frames == 3
    for stim, exp in zip(generated.stimuli, generated.expected):
        assert stim.size == exp.size == 2160


def test_file_roundtrip(vector_file):
    path, generated = vector_file
    loaded = load_vectors(path)
    assert loaded.header["rate"] == "1/2"
    assert loaded.n_frames == generated.n_frames
    for a, b in zip(loaded.stimuli, generated.stimuli):
        assert np.array_equal(a, b)
    for a, b in zip(loaded.expected, generated.expected):
        assert np.array_equal(a, b)


def test_replay_matches(vector_file):
    path, _ = vector_file
    assert replay_vectors(path) == 3


def test_replay_detects_tampering(vector_file, tmp_path):
    path, _ = vector_file
    lines = path.read_text().strip().splitlines()
    record = json.loads(lines[1])
    # flip one expected bit
    raw = bytearray(bytes.fromhex(record["expected_hex"]))
    raw[0] ^= 0x80
    record["expected_hex"] = raw.hex()
    lines[1] = json.dumps(record)
    tampered = tmp_path / "tampered.vec"
    tampered.write_text("\n".join(lines) + "\n")
    with pytest.raises(AssertionError, match="vector 0"):
        replay_vectors(tampered)


def test_load_rejects_bad_version(tmp_path):
    bad = tmp_path / "bad.vec"
    bad.write_text(json.dumps({"format_version": 99}) + "\n")
    with pytest.raises(ValueError, match="unsupported vector format"):
        load_vectors(bad)


def test_load_rejects_empty(tmp_path):
    empty = tmp_path / "empty.vec"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_vectors(empty)


def test_vectors_are_deterministic(tmp_path):
    a = generate_vectors(tmp_path / "a.vec", parallelism=12,
                         n_frames=2, seed=9)
    b = generate_vectors(tmp_path / "b.vec", parallelism=12,
                         n_frames=2, seed=9)
    for x, y in zip(a.stimuli, b.stimuli):
        assert np.array_equal(x, y)
    assert (tmp_path / "a.vec").read_text() == (
        tmp_path / "b.vec"
    ).read_text()
