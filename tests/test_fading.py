"""Tests for repro.channel.fading — Rician/Rayleigh block fading."""

import numpy as np
import pytest

from repro.channel.fading import (
    BlockFadingChannel,
    rayleigh_amplitudes,
    rician_amplitudes,
)


def test_rician_unit_mean_power(rng):
    amps = rician_amplitudes(200_000, k_factor_db=10.0, rng=rng)
    assert (amps > 0).all()
    assert np.mean(amps**2) == pytest.approx(1.0, rel=0.02)


def test_rayleigh_unit_mean_power(rng):
    amps = rayleigh_amplitudes(200_000, rng=rng)
    assert np.mean(amps**2) == pytest.approx(1.0, rel=0.02)


def test_high_k_approaches_los(rng):
    """K -> inf: amplitudes concentrate at 1 (pure line of sight)."""
    amps = rician_amplitudes(10_000, k_factor_db=40.0, rng=rng)
    assert amps.std() < 0.02
    assert amps.mean() == pytest.approx(1.0, abs=0.01)


def test_rayleigh_spreads_more_than_rician(rng):
    rice = rician_amplitudes(50_000, k_factor_db=10.0, rng=rng)
    ray = rayleigh_amplitudes(50_000, rng=rng)
    assert ray.std() > rice.std()


def test_block_structure():
    ch = BlockFadingChannel(
        ebn0_db=5.0, rate=0.5, k_factor_db=5.0, block_length=100, seed=1
    )
    gains = ch._draw_gains(1000)
    # constant within each 100-symbol block
    blocks = gains.reshape(10, 100)
    assert (blocks == blocks[:, :1]).all()
    # but different across blocks
    assert np.unique(blocks[:, 0]).size > 1


def test_whole_frame_fading_default():
    ch = BlockFadingChannel(ebn0_db=5.0, rate=0.5, seed=2)
    gains = ch._draw_gains(500)
    assert np.unique(gains).size == 1


def test_llrs_scale_with_gain():
    """Weak blocks must produce proportionally weak LLRs (coherent
    reception)."""
    ch = BlockFadingChannel(
        ebn0_db=20.0, rate=0.5, k_factor_db=None, block_length=50, seed=3
    )
    bits = np.zeros(500, dtype=np.uint8)
    llrs = ch.llrs(bits)
    gains = BlockFadingChannel(
        ebn0_db=20.0, rate=0.5, k_factor_db=None, block_length=50, seed=3
    )._draw_gains(500)
    # at high SNR llr ≈ 2 g^2 / sigma^2: correlation with g^2 is ~1
    corr = np.corrcoef(llrs, gains**2)[0, 1]
    assert corr > 0.99


def test_all_zero_shortcut_positive_at_high_snr():
    ch = BlockFadingChannel(ebn0_db=15.0, rate=0.5, seed=4,
                            k_factor_db=10.0, block_length=10)
    llrs = ch.llrs_all_zero(2000)
    assert (llrs > 0).mean() > 0.98


def test_decoder_survives_mild_fading(code_half, encoder_half, rng):
    from repro.decode import ZigzagDecoder

    word = encoder_half.encode(
        rng.integers(0, 2, code_half.k, dtype=np.uint8)
    )
    ch = BlockFadingChannel(
        ebn0_db=4.0,
        rate=float(code_half.profile.rate),
        k_factor_db=10.0,
        block_length=360,
        seed=5,
    )
    dec = ZigzagDecoder(code_half, "tanh", segments=36)
    result = dec.decode(ch.llrs(word), max_iterations=50)
    assert result.bit_errors(word) == 0


def test_rayleigh_needs_more_snr_than_awgn(code_half, encoder_half):
    """Shape check: at the same average Eb/N0 near the AWGN threshold,
    Rayleigh whole-frame fading produces more frame errors."""
    from repro.decode import ZigzagDecoder
    from repro.sim import BerSimulator

    dec = ZigzagDecoder(code_half, "minsum", normalization=0.75,
                        segments=36)
    awgn_errors = fading_errors = 0
    for seed in range(6):
        word = np.zeros(code_half.n, dtype=np.uint8)
        ch_fade = BlockFadingChannel(
            ebn0_db=2.5, rate=0.5, k_factor_db=None,
            block_length=code_half.n, seed=seed,
        )
        from repro.channel import AwgnChannel

        ch_awgn = AwgnChannel(ebn0_db=2.5, rate=0.5, seed=seed)
        r_f = dec.decode(ch_fade.llrs_all_zero(code_half.n),
                         max_iterations=30)
        r_a = dec.decode(ch_awgn.llrs_all_zero(code_half.n),
                         max_iterations=30)
        fading_errors += r_f.bits.any()
        awgn_errors += r_a.bits.any()
    assert fading_errors >= awgn_errors


def test_all_zero_shortcut_matches_explicit_zeros():
    """llrs_all_zero must draw the identical stream as llrs(zeros) —
    it is a shortcut, not a different channel."""
    kwargs = dict(ebn0_db=4.0, rate=0.5, k_factor_db=6.0,
                  block_length=50, seed=9)
    shortcut = BlockFadingChannel(**kwargs).llrs_all_zero(600)
    explicit = BlockFadingChannel(**kwargs).llrs(
        np.zeros(600, dtype=np.uint8)
    )
    np.testing.assert_allclose(shortcut, explicit)


def test_batched_llrs_match_sequential():
    """A (frames, n) batch consumes the RNG exactly like frame-by-frame
    calls on the same channel instance."""
    bits = np.random.default_rng(5).integers(
        0, 2, size=(4, 300), dtype=np.uint8
    )
    kwargs = dict(ebn0_db=3.0, rate=0.5, k_factor_db=None,
                  block_length=30, seed=11)
    batched = BlockFadingChannel(**kwargs).llrs(bits)
    assert batched.shape == (4, 300)
    seq_channel = BlockFadingChannel(**kwargs)
    sequential = np.stack([seq_channel.llrs(row) for row in bits])
    np.testing.assert_allclose(batched, sequential)


def test_batched_all_zero_matches_sequential():
    kwargs = dict(ebn0_db=3.0, rate=0.5, k_factor_db=8.0,
                  block_length=25, seed=13)
    batched = BlockFadingChannel(**kwargs).llrs_all_zero(200, size=3)
    assert batched.shape == (3, 200)
    seq_channel = BlockFadingChannel(**kwargs)
    sequential = np.stack(
        [seq_channel.llrs_all_zero(200) for _ in range(3)]
    )
    np.testing.assert_allclose(batched, sequential)


def test_esn0_and_reseed():
    ch = BlockFadingChannel(ebn0_db=2.0, rate=0.5, seed=17)
    assert ch.esn0_db == pytest.approx(2.0 + 10 * np.log10(0.5))
    first = ch.llrs_all_zero(100)
    ch.reseed(17)
    np.testing.assert_allclose(ch.llrs_all_zero(100), first)
